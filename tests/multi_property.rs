//! End-to-end multi-property acceptance gates.
//!
//! The scenario of the PR's acceptance criterion: a multi-property AIGER
//! benchmark with one falsifiable and one deep-open property, checked in a
//! single incremental session, must yield one validated witness plus one
//! `OpenAt` verdict — and the session's per-depth verdicts must be identical
//! to fresh-per-depth single-property runs (the paper's regime), for every
//! ordering strategy.

use refined_bmc::bmc::{
    BmcEngine, BmcOptions, BmcOutcome, OrderingStrategy, ProblemBuilder, PropertyVerdict,
    SolveResult, SolverReuse, VerificationProblem,
};
use refined_bmc::circuit::aiger::{write_aag, write_aig};
use refined_bmc::gens::corpus::{multi_even_counter, problem_to_aig};

fn all_strategies() -> Vec<OrderingStrategy> {
    vec![
        OrderingStrategy::Standard,
        OrderingStrategy::RefinedStatic,
        OrderingStrategy::RefinedDynamic { divisor: 64 },
        OrderingStrategy::Shtrichman,
    ]
}

/// Runs the session engine on a problem ingested from AIGER bytes and
/// checks the witness + open verdict shape.
fn check_ingested(bytes: &[u8], strategy: OrderingStrategy) {
    let problem = VerificationProblem::from_aiger("multi", bytes).expect("parses");
    assert_eq!(problem.num_properties(), 2);
    let mut engine = BmcEngine::for_problem(
        problem.clone(),
        BmcOptions {
            max_depth: 9,
            strategy,
            reuse: SolverReuse::Session,
            ..BmcOptions::default()
        },
    );
    let run = engine.run_collecting();

    // One validated witness…
    match &run.property("reach6").expect("report exists").verdict {
        PropertyVerdict::Falsified { depth, trace } => {
            assert_eq!(*depth, 3, "{strategy:?}");
            trace
                .validate_against(problem.netlist(), problem.property(0).bad())
                .expect("witness replays on the netlist");
        }
        other => panic!("{strategy:?}: reach6 expected falsified, got {other}"),
    }
    // …plus one OpenAt verdict, in the same single run.
    match &run.property("reach7").expect("report exists").verdict {
        PropertyVerdict::OpenAt { depth } => assert_eq!(*depth, 9, "{strategy:?}"),
        other => panic!("{strategy:?}: reach7 expected open, got {other}"),
    }
    assert!(matches!(
        run.outcome,
        BmcOutcome::Counterexample { depth: 3, .. }
    ));

    // Per-depth verdicts identical to fresh-per-depth single-property runs.
    for (idx, report) in run.properties.iter().enumerate() {
        let single = ProblemBuilder::new("single", problem.netlist().clone())
            .property(&report.name, problem.property(idx).bad())
            .build();
        let mut fresh = BmcEngine::for_problem(
            single,
            BmcOptions {
                max_depth: 9,
                strategy,
                reuse: SolverReuse::Fresh,
                ..BmcOptions::default()
            },
        );
        let fresh_run = fresh.run_collecting();
        let fresh_verdicts: Vec<SolveResult> =
            fresh_run.per_depth.iter().map(|d| d.result).collect();
        assert_eq!(
            report.depth_results, fresh_verdicts,
            "{strategy:?} property {}",
            report.name
        );
    }
}

#[test]
fn ascii_ingestion_yields_witness_and_open_verdict() {
    let aig = problem_to_aig(&multi_even_counter());
    let bytes = write_aag(&aig).into_bytes();
    for strategy in all_strategies() {
        check_ingested(&bytes, strategy);
    }
}

#[test]
fn binary_ingestion_yields_witness_and_open_verdict() {
    let aig = problem_to_aig(&multi_even_counter());
    let bytes = write_aig(&aig);
    for strategy in all_strategies() {
        check_ingested(&bytes, strategy);
    }
}

#[test]
fn session_stats_cover_both_properties() {
    let problem = multi_even_counter();
    let mut engine = BmcEngine::for_problem(
        problem,
        BmcOptions {
            max_depth: 9,
            strategy: OrderingStrategy::RefinedStatic,
            ..BmcOptions::default()
        },
    );
    let run = engine.run_collecting();
    let r6 = run.property("reach6").unwrap();
    let r7 = run.property("reach7").unwrap();
    // reach6 retires at depth 3: episodes for depths 0..=3 only.
    assert_eq!(r6.episodes, 4);
    assert_eq!(r6.retirement_depth, Some(3));
    assert_eq!(r6.assumption_conflicts, 3);
    // reach7 sweeps the whole bound: depths 0..=9, all UNSAT.
    assert_eq!(r7.episodes, 10);
    assert_eq!(r7.retirement_depth, None);
    assert_eq!(r7.assumption_conflicts, 10);
    // The shared session solver saw every episode.
    assert_eq!(run.solver_stats.solve_calls, r6.episodes + r7.episodes);
    // Per-depth aggregates cover both properties' episodes at each depth.
    assert_eq!(run.per_depth.len(), 10);
}
