//! Differential testing of the two solver-reuse regimes: on random
//! sequential circuits, a persistent incremental session and the paper's
//! fresh-solver-per-depth setup must produce identical verdicts — per depth,
//! not just at the end — and every SAT verdict must come with a
//! simulation-valid counterexample in both regimes.

use proptest::prelude::*;
use refined_bmc::bmc::{
    BmcEngine, BmcOptions, BmcOutcome, BmcRun, Model, OrderingStrategy, SolveResult, SolverReuse,
};
use refined_bmc::circuit::{LatchInit, Netlist, Signal};

/// Construction steps over a signal pool (inputs, latches, then gates) —
/// the same recipe shape as `proptest_random_models`.
#[derive(Debug, Clone)]
enum Step {
    And(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

#[derive(Debug, Clone)]
struct ModelRecipe {
    num_inputs: usize,
    latch_inits: Vec<LatchInit>,
    steps: Vec<Step>,
    nexts: Vec<usize>,
    bad: usize,
}

fn arb_recipe() -> impl Strategy<Value = ModelRecipe> {
    let init = prop_oneof![
        Just(LatchInit::Zero),
        Just(LatchInit::One),
        Just(LatchInit::Free)
    ];
    (1usize..3, prop::collection::vec(init, 1..5)).prop_flat_map(|(num_inputs, latch_inits)| {
        let steps = prop::collection::vec(
            prop_oneof![
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::And(a, b)),
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::Xor(a, b)),
                (0usize..64, 0usize..64, 0usize..64).prop_map(|(s, a, b)| Step::Mux(s, a, b)),
            ],
            1..12,
        );
        let nl = latch_inits.len();
        (steps, Just(latch_inits)).prop_flat_map(move |(steps, latch_inits)| {
            let pool = 1 + num_inputs + nl + steps.len();
            (
                prop::collection::vec(0usize..pool, nl),
                0usize..pool,
                Just(steps),
                Just(latch_inits),
            )
                .prop_map(move |(nexts, bad, steps, latch_inits)| ModelRecipe {
                    num_inputs,
                    latch_inits,
                    steps,
                    nexts,
                    bad,
                })
        })
    })
}

fn build(recipe: &ModelRecipe) -> Model {
    let mut n = Netlist::new();
    let mut pool: Vec<Signal> = vec![Signal::TRUE];
    for i in 0..recipe.num_inputs {
        pool.push(n.add_input(&format!("i{i}")));
    }
    let latches: Vec<Signal> = recipe
        .latch_inits
        .iter()
        .enumerate()
        .map(|(i, &init)| {
            let l = n.add_latch(&format!("l{i}"), init);
            pool.push(l);
            l
        })
        .collect();
    for step in &recipe.steps {
        let pick = |i: usize, pool: &Vec<Signal>| pool[i % pool.len()];
        let s = match *step {
            Step::And(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.and2(x, y)
            }
            Step::Xor(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.xor2(x, y)
            }
            Step::Mux(s, a, b) => {
                let (c, x, y) = (pick(s, &pool), pick(a, &pool), pick(b, &pool));
                n.mux(c, x, y)
            }
        };
        pool.push(s);
    }
    for (&l, &nx) in latches.iter().zip(&recipe.nexts) {
        n.set_next(l, pool[nx % pool.len()]);
    }
    let bad = pool[recipe.bad % pool.len()];
    Model::new("random", n, bad)
}

fn run(model: &Model, strategy: OrderingStrategy, reuse: SolverReuse, depth: usize) -> BmcRun {
    let mut engine = BmcEngine::new(
        model.clone(),
        BmcOptions {
            max_depth: depth,
            strategy,
            reuse,
            ..BmcOptions::default()
        },
    );
    let run = engine.run_collecting();
    // A SAT verdict must carry a counterexample that replays on the
    // circuit simulator, in either regime.
    if let BmcOutcome::Counterexample { trace, .. } = &run.outcome {
        trace.validate(model).expect("trace must replay");
    }
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn session_and_fresh_verdicts_are_identical(recipe in arb_recipe()) {
        const DEPTH: usize = 7;
        let model = build(&recipe);
        for strategy in [
            OrderingStrategy::Standard,
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::RefinedDynamic { divisor: 64 },
        ] {
            let fresh = run(&model, strategy, SolverReuse::Fresh, DEPTH);
            let session = run(&model, strategy, SolverReuse::Session, DEPTH);
            let verdicts = |r: &BmcRun| -> Vec<SolveResult> {
                r.per_depth.iter().map(|d| d.result).collect()
            };
            prop_assert_eq!(
                verdicts(&fresh),
                verdicts(&session),
                "per-depth divergence under {:?}",
                strategy
            );
            // Identical verdict sequences imply identical outcome kinds;
            // counterexamples must agree on the (minimal-per-regime) depth.
            match (&fresh.outcome, &session.outcome) {
                (
                    BmcOutcome::Counterexample { depth: df, .. },
                    BmcOutcome::Counterexample { depth: ds, .. },
                ) => prop_assert_eq!(df, ds),
                (
                    BmcOutcome::BoundReached { depth_completed: df },
                    BmcOutcome::BoundReached { depth_completed: ds },
                ) => prop_assert_eq!(df, ds),
                (f, s) => prop_assert!(false, "outcome kinds diverged: {f} vs {s}"),
            }
        }
    }
}
