//! Structural-audit runs (the `debug-invariants` feature).
//!
//! With the feature enabled, the solver audits its watch lists, trail,
//! arena, and CDG after every learned-database compaction and CDG prune,
//! and the engine re-audits the session solver plus the rank table at every
//! depth boundary — any violation panics. These tests drive search-heavy
//! session sweeps with compaction-aggressive settings so the hooks fire
//! many times; they pass exactly when every audit along the way does.
//!
//! Run with `cargo test --features debug-invariants`.

#![cfg(feature = "debug-invariants")]

use refined_bmc::bmc::Model;
use refined_bmc::bmc::{
    BmcEngine, BmcOptions, BmcOutcome, OrderingStrategy, ProofMode, SolverReuse,
};
use refined_bmc::gens::families;
use refined_bmc::solver::SolverOptions;

/// Compaction-heavy engine options: reduction after a handful of learned
/// clauses, session reuse, depth-boundary CDG pruning — the configuration
/// that exercises every audited hook. Proof checking rides along so the
/// depth-boundary audits also cover proof-log coherence (the live lines in
/// the log must mirror the solver's learned database exactly).
fn audited_options(max_depth: usize, strategy: OrderingStrategy) -> BmcOptions {
    BmcOptions {
        max_depth,
        strategy,
        reuse: SolverReuse::Session,
        cdg_prune: true,
        proof: ProofMode::Check,
        solver: SolverOptions {
            reduce_base: 4,
            reduce_inc: 2,
            ..SolverOptions::default()
        },
        ..BmcOptions::default()
    }
}

fn run(model: Model, max_depth: usize, strategy: OrderingStrategy) -> BmcOutcome {
    let mut engine = BmcEngine::new(model, audited_options(max_depth, strategy));
    let bmc_run = engine.run_collecting();
    assert!(
        bmc_run.solver_stats.compactions > 0 || bmc_run.solver_stats.conflicts < 50,
        "compaction-heavy settings should compact on a search-heavy run"
    );
    bmc_run.outcome
}

#[test]
fn holding_sweep_passes_every_audit() {
    // TMR voter: UNSAT at every depth, search-heavy — many compactions and
    // depth-boundary prunes, each followed by a full structural audit.
    let outcome = run(
        families::tmr_voter(3, 1),
        16,
        OrderingStrategy::RefinedStatic,
    );
    assert!(matches!(
        outcome,
        BmcOutcome::BoundReached {
            depth_completed: 16
        }
    ));
}

#[test]
fn falsified_sweep_passes_every_audit() {
    // A counterexample run: UNSAT prefixes (audited) then a SAT instance.
    let outcome = run(
        families::token_ring_buggy(3, 6),
        12,
        OrderingStrategy::RefinedStatic,
    );
    assert!(
        matches!(outcome, BmcOutcome::Counterexample { .. }),
        "buggy token ring must fall within the bound, got {outcome:?}"
    );
}

#[test]
fn dynamic_ordering_sweep_passes_every_audit() {
    let outcome = run(
        families::mutex_arbiter(3),
        10,
        OrderingStrategy::RefinedDynamic { divisor: 64 },
    );
    assert!(matches!(outcome, BmcOutcome::BoundReached { .. }));
}

#[test]
fn rank_table_audit_holds_across_promotion() {
    use rbmc_cnf::Var;
    use refined_bmc::bmc::{VarRank, Weighting};

    for weighting in [Weighting::Linear, Weighting::Uniform, Weighting::LastOnly] {
        let mut rank = VarRank::new(weighting);
        rank.audit().expect("empty table");
        rank.update(&[Var::new(9999)], 0);
        rank.audit().expect("sparse far-out entry");
        let block: Vec<Var> = (0..4096).map(Var::new).collect();
        rank.update(&block, 1);
        rank.audit().expect("after promotion-sized block");
        rank.update(&[Var::new(12)], 2);
        rank.audit().expect("after post-promotion update");
    }
}
