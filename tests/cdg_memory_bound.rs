//! Session-memory bound: depth-boundary CDG pruning keeps a deep sweep's
//! conflict-dependency graph smaller than a much shallower unpruned sweep's,
//! without perturbing the search in any observable way.

use refined_bmc::bmc::{BmcEngine, BmcOptions, BmcOutcome, BmcRun, OrderingStrategy, SolverReuse};
use refined_bmc::gens::families;
use refined_bmc::solver::SolverOptions;

/// A session sweep of the TMR voter (holds at every depth, search-heavy) at
/// `max_depth`, with an aggressive flat clause-deletion threshold so
/// retired depths' learned clauses actually leave the database — the
/// workload whose CDG garbage pruning exists to reclaim.
fn sweep(max_depth: usize, cdg_prune: bool) -> BmcRun {
    let mut engine = BmcEngine::new(
        families::tmr_voter(3, 1),
        BmcOptions {
            max_depth,
            strategy: OrderingStrategy::RefinedStatic,
            reuse: SolverReuse::Session,
            cdg_prune,
            solver: SolverOptions {
                reduce_base: 20,
                reduce_inc: 0,
                ..SolverOptions::default()
            },
            ..BmcOptions::default()
        },
    );
    let run = engine.run_collecting();
    assert!(
        matches!(run.outcome, BmcOutcome::BoundReached { depth_completed } if depth_completed == max_depth),
        "tmr voter must hold to depth {max_depth}, got {:?}",
        run.outcome
    );
    run
}

#[test]
fn pruned_deep_sweep_peaks_below_unpruned_shallow_sweep() {
    // The acceptance bound: a depth-40 sweep with depth-boundary pruning
    // must peak below what an *unpruned* depth-20 sweep accumulates. Without
    // pruning the CDG only ever grows, so doubling the depth roughly doubles
    // the node count; with pruning, each depth boundary discards everything
    // unreachable from live clauses.
    let shallow_unpruned = sweep(20, false);
    let deep_pruned = sweep(40, true);
    let shallow_nodes = shallow_unpruned.solver_stats.cdg_peak_nodes;
    let deep_peak = deep_pruned.solver_stats.cdg_peak_nodes;
    assert!(deep_pruned.solver_stats.cdg_pruned_nodes > 0, "pruning ran");
    assert!(
        deep_peak < shallow_nodes,
        "depth-40 pruned peak ({deep_peak}) must stay below the unpruned \
         depth-20 count ({shallow_nodes})"
    );
}

#[test]
fn pruning_does_not_perturb_the_search() {
    // Same instance, same depth, pruning on vs off: identical verdicts and
    // identical search effort — pruning only reclaims memory.
    let pruned = sweep(40, true);
    let unpruned = sweep(40, false);
    assert_eq!(
        pruned.solver_stats.conflicts,
        unpruned.solver_stats.conflicts
    );
    assert_eq!(
        pruned.solver_stats.decisions,
        unpruned.solver_stats.decisions
    );
    assert_eq!(
        pruned.solver_stats.propagations,
        unpruned.solver_stats.propagations
    );
    let verdicts = |r: &BmcRun| -> Vec<_> { r.per_depth.iter().map(|d| d.result).collect() };
    assert_eq!(verdicts(&pruned), verdicts(&unpruned));
    // And the memory win at equal depth is real.
    assert!(
        pruned.solver_stats.cdg_peak_nodes < unpruned.solver_stats.cdg_peak_nodes,
        "pruned peak {} vs unpruned {}",
        pruned.solver_stats.cdg_peak_nodes,
        unpruned.solver_stats.cdg_peak_nodes
    );
    // The lazy compaction repair was exercised along the way: compactions
    // happened, and only relocated clauses' entries were rewritten.
    assert!(unpruned.solver_stats.compactions > 0);
}
