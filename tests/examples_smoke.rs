//! Smoke tests executing every example binary end-to-end, so the doc-facing
//! entry points in `examples/` cannot silently rot.
//!
//! `cargo test` builds all examples before running integration tests, so the
//! binaries are found next to this test's own executable (`target/<profile>/
//! examples/`). Each test asserts a stable marker of the example's expected
//! verdict, not exact output, to stay robust against formatting tweaks.

use std::path::PathBuf;
use std::process::Command;

/// Locates a built example binary relative to this test executable
/// (`target/<profile>/deps/examples_smoke-*` → `target/<profile>/examples/`).
fn example_path(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("test executable path");
    dir.pop(); // strip the test binary name -> deps/
    if dir.ends_with("deps") {
        dir.pop(); // -> target/<profile>/
    }
    let path = dir
        .join("examples")
        .join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    assert!(
        path.is_file(),
        "example binary `{name}` not found at {path:?}; run `cargo build --examples` first \
         (plain `cargo test` builds them automatically)"
    );
    path
}

/// Runs one example with no arguments and returns its stdout.
fn run_example(name: &str) -> String {
    let path = example_path(name);
    let output = Command::new(&path)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {path:?}: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(
        !stdout.trim().is_empty(),
        "example `{name}` printed nothing"
    );
    stdout
}

#[test]
fn quickstart_finds_the_planted_counterexample() {
    let out = run_example("quickstart");
    assert!(out.contains("property FAILS"), "unexpected output:\n{out}");
    assert!(
        out.contains("trace validates: true"),
        "unexpected output:\n{out}"
    );
}

#[test]
fn dimacs_solve_refutes_the_pigeonhole_instance() {
    let out = run_example("dimacs_solve");
    assert!(out.contains("UNSAT"), "unexpected output:\n{out}");
    assert!(out.contains("core"), "unexpected output:\n{out}");
}

#[test]
fn blif_bmc_checks_the_builtin_arbiter() {
    let out = run_example("blif_bmc");
    assert!(out.contains("property"), "unexpected output:\n{out}");
}

#[test]
fn bmc_trace_replays_and_dumps_a_waveform() {
    let out = run_example("bmc_trace");
    assert!(
        out.contains("counterexample found"),
        "unexpected output:\n{out}"
    );
    assert!(
        out.contains("waveform written"),
        "unexpected output:\n{out}"
    );
}

#[test]
fn ordering_comparison_reports_all_strategies() {
    let out = run_example("ordering_comparison");
    for label in [
        "standard VSIDS",
        "refined static",
        "refined dynamic",
        "shtrichman",
    ] {
        assert!(out.contains(label), "missing strategy `{label}`:\n{out}");
    }
}

#[test]
fn induction_prove_proves_the_guarded_fifo() {
    let out = run_example("induction_prove");
    assert!(out.contains("PROVED"), "unexpected output:\n{out}");
}

#[test]
fn aiger_multi_prop_checks_both_properties_in_one_session() {
    let out = run_example("aiger_multi_prop");
    assert!(out.contains("2 properties"), "unexpected output:\n{out}");
    assert!(
        out.contains("falsified at depth 3") && out.contains("witness validates: true"),
        "unexpected output:\n{out}"
    );
    assert!(
        out.contains("open at depth 12"),
        "unexpected output:\n{out}"
    );
    assert!(out.contains("1 falsified / 2"), "unexpected output:\n{out}");
}
