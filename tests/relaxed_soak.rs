//! Soak tests of the relaxed parallel machinery: oversubscription far past
//! the useful worker count, mid-run cooperative cancellation, and the
//! budget-exhaustion truncation contract. Every case must come back as a
//! *committed* partial [`BmcRun`] — properly joined workers (the scoped
//! pool cannot leak threads past the call), internally consistent
//! per-property state, and verdicts that form a prefix of the sequential
//! oracle's.

use std::time::Duration;

use refined_bmc::bmc::{
    BmcEngine, BmcOptions, BmcOutcome, BmcRun, CancelFlag, OrderingStrategy, ParallelConfig,
    ProblemBuilder, PropertyVerdict, ShardMode, SolveResult, VerificationProblem,
};
use refined_bmc::circuit::{LatchInit, Netlist, Signal};

fn counter_problem(width: usize, targets: &[u64]) -> VerificationProblem {
    let mut n = Netlist::new();
    let bits: Vec<Signal> = (0..width)
        .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
        .collect();
    let next = n.bus_increment(&bits);
    for (&b, &nx) in bits.iter().zip(&next) {
        n.set_next(b, nx);
    }
    let props: Vec<(String, Signal)> = targets
        .iter()
        .map(|&t| (format!("reach_{t}"), n.bus_eq_const(&bits, t)))
        .collect();
    let mut builder = ProblemBuilder::new("soak_counter", n);
    for (name, sig) in props {
        builder = builder.property(&name, sig);
    }
    builder.build()
}

fn options(parallel: Option<ParallelConfig>, max_depth: usize) -> BmcOptions {
    BmcOptions {
        max_depth,
        parallel,
        ..BmcOptions::default()
    }
}

/// Structural invariants every committed run — complete or truncated —
/// must satisfy: consistent per-property bookkeeping and validating traces.
fn assert_committed(run: &BmcRun, problem: &VerificationProblem, max_depth: usize, ctx: &str) {
    assert_eq!(run.properties.len(), problem.num_properties(), "{ctx}");
    for (idx, prop) in run.properties.iter().enumerate() {
        assert!(
            prop.depth_results.len() <= max_depth + 1,
            "{ctx}: property {} overran the depth bound",
            prop.name
        );
        match &prop.verdict {
            PropertyVerdict::Falsified { depth, trace } => {
                assert_eq!(
                    prop.depth_results.last(),
                    Some(&SolveResult::Sat),
                    "{ctx}: {}",
                    prop.name
                );
                assert_eq!(prop.depth_results.len(), depth + 1, "{ctx}: {}", prop.name);
                trace
                    .validate_against(problem.netlist(), problem.property(idx).bad())
                    .unwrap_or_else(|e| panic!("{ctx}: {} trace invalid: {e}", prop.name));
            }
            PropertyVerdict::OpenAt { .. } | PropertyVerdict::Unknown => {
                assert!(
                    !prop.depth_results.contains(&SolveResult::Sat),
                    "{ctx}: {} has a SAT verdict but was not retired",
                    prop.name
                );
            }
            PropertyVerdict::Proved { .. } => {
                panic!("{ctx}: {} proved by a BMC-only mode", prop.name);
            }
        }
        // Everything before a trailing Unknown is a real verdict.
        for (k, r) in prop.depth_results.iter().enumerate() {
            if *r == SolveResult::Unknown {
                assert_eq!(
                    k + 1,
                    prop.depth_results.len(),
                    "{ctx}: {} has a non-trailing Unknown",
                    prop.name
                );
            }
        }
    }
}

/// The committed run's verdicts must be a prefix of the oracle's — a
/// truncated run may know less, never something different. Trailing
/// Unknowns (the truncation marker) are exempt from the comparison.
fn assert_prefix_of_oracle(run: &BmcRun, oracle: &BmcRun, ctx: &str) {
    for (p, o) in run.properties.iter().zip(&oracle.properties) {
        for (k, r) in p.depth_results.iter().enumerate() {
            if *r == SolveResult::Unknown {
                continue;
            }
            assert_eq!(
                Some(r),
                o.depth_results.get(k),
                "{ctx}: property {} depth {k} contradicts the oracle",
                p.name
            );
        }
    }
}

#[test]
fn oversubscribed_relaxed_runs_complete_and_match_the_oracle() {
    // Worker budgets far beyond both the property count (3) and the depth
    // count (13): every surplus worker must park and join cleanly, and the
    // verdicts must not care.
    let targets: &[u64] = &[3, 14, 9];
    const DEPTH: usize = 12;
    let mut oracle_engine =
        BmcEngine::for_problem(counter_problem(4, targets), options(None, DEPTH));
    let oracle = oracle_engine.run_collecting();
    for shard in [ShardMode::Striped, ShardMode::WorkStealing] {
        for jobs in [8usize, 64, 256] {
            let mut engine = BmcEngine::for_problem(
                counter_problem(4, targets),
                options(Some(ParallelConfig { jobs, shard }), DEPTH),
            );
            let run = engine.run_collecting();
            let ctx = format!("{} jobs={jobs}", shard.label());
            assert_committed(&run, engine.problem(), DEPTH, &ctx);
            assert_prefix_of_oracle(&run, &oracle, &ctx);
            for (p, o) in run.properties.iter().zip(&oracle.properties) {
                assert_eq!(p.depth_results, o.depth_results, "{ctx}: {}", p.name);
                assert_eq!(p.retirement_depth, o.retirement_depth, "{ctx}: {}", p.name);
            }
            // The worker pool clamps to useful work; oversubscription never
            // fabricates reports.
            assert!(run.workers.len() <= jobs, "{ctx}");
        }
    }
}

#[test]
fn precancelled_relaxed_run_returns_a_committed_partial_run() {
    // The flag is already tripped when the run starts: the engine must come
    // straight back with a committed truncation, not hang or panic.
    for shard in [ShardMode::Striped, ShardMode::WorkStealing] {
        let mut engine = BmcEngine::for_problem(
            counter_problem(6, &[60, 61, 62]),
            options(Some(ParallelConfig { jobs: 4, shard }), 40),
        );
        let cancel = CancelFlag::new();
        cancel.cancel();
        engine.set_cancel(cancel);
        let run = engine.run_collecting();
        let ctx = format!("precancelled {}", shard.label());
        assert_committed(&run, engine.problem(), 40, &ctx);
        assert!(
            matches!(run.outcome, BmcOutcome::ResourceOut { .. }),
            "{ctx}: expected a truncated run, got {:?}",
            run.outcome
        );
        assert!(
            run.properties
                .iter()
                .all(|p| matches!(p.verdict, PropertyVerdict::Unknown)),
            "{ctx}: a cancelled-at-start run cannot decide anything"
        );
    }
}

#[test]
fn midrun_cancellation_soak_leaves_consistent_state_every_time() {
    // Repeatedly cancel a deep oversubscribed run from another thread at
    // varying points. Whatever the race lands on, the run must return a
    // committed partial result whose verdicts prefix the oracle's — and
    // because every worker is joined before run_collecting returns, thirty
    // consecutive iterations also soak for leaked worker state.
    let targets: &[u64] = &[200, 201, 202, 203];
    const DEPTH: usize = 120;
    let mut oracle_engine =
        BmcEngine::for_problem(counter_problem(8, targets), options(None, DEPTH));
    let oracle = oracle_engine.run_collecting();
    for iteration in 0..30 {
        let shard = if iteration % 2 == 0 {
            ShardMode::Striped
        } else {
            ShardMode::WorkStealing
        };
        let mut engine = BmcEngine::for_problem(
            counter_problem(8, targets),
            options(Some(ParallelConfig { jobs: 16, shard }), DEPTH),
        );
        let cancel = CancelFlag::new();
        engine.set_cancel(cancel.clone());
        let run = std::thread::scope(|s| {
            s.spawn(|| {
                // Sweep the cancellation point across iterations, from
                // "almost immediately" to "probably after completion".
                std::thread::sleep(Duration::from_micros(50 * iteration as u64));
                cancel.cancel();
            });
            engine.run_collecting()
        });
        let ctx = format!("iteration {iteration} {}", shard.label());
        assert_committed(&run, engine.problem(), DEPTH, &ctx);
        assert_prefix_of_oracle(&run, &oracle, &ctx);
    }
}

#[test]
fn zero_budget_truncation_is_committed_in_every_relaxed_mode() {
    // The PR-5 budget-exhaustion gate, extended to the relaxed grains: a
    // zero conflict budget must surface as a committed ResourceOut run, and
    // under the Standard strategy (no rank feedback) the work-stealing
    // decomposition runs the very same per-property session episodes as the
    // deterministic by-property grain — so their results must coincide.
    let mk = |shard| {
        let mut engine = BmcEngine::for_problem(
            counter_problem(3, &[5]),
            BmcOptions {
                max_depth: 12,
                strategy: OrderingStrategy::Standard,
                max_conflicts_per_depth: Some(0),
                parallel: Some(ParallelConfig { jobs: 4, shard }),
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        assert_committed(&run, engine.problem(), 12, shard.label());
        run
    };
    for shard in [ShardMode::Striped, ShardMode::WorkStealing] {
        let run = mk(shard);
        assert!(
            matches!(run.outcome, BmcOutcome::ResourceOut { .. }),
            "{}: {:?}",
            shard.label(),
            run.outcome
        );
    }
    let deterministic = mk(ShardMode::ByProperty);
    let stealing = mk(ShardMode::WorkStealing);
    for (d, s) in deterministic.properties.iter().zip(&stealing.properties) {
        assert_eq!(
            d.depth_results, s.depth_results,
            "work stealing must truncate where the by-property grain does \
             when no rank feedback distinguishes them"
        );
    }
}
