//! Integration across the I/O formats: a generated model written to BLIF or
//! AIGER, read back, and model-checked must give the same verdict at the
//! same depth.

use refined_bmc::bmc::{BmcEngine, BmcOptions, BmcOutcome, Model};
use refined_bmc::circuit::aiger::{parse_aag, write_aag};
use refined_bmc::circuit::blif::{parse_blif, write_blif};
use refined_bmc::circuit::{Aig, LatchInit, Netlist, Signal};
use refined_bmc::gens::families;

/// Runs BMC and summarizes the outcome as `Some(depth)` / `None`.
fn bmc_verdict(model: Model, max_depth: usize) -> Option<usize> {
    let mut engine = BmcEngine::new(
        model,
        BmcOptions {
            max_depth,
            ..BmcOptions::default()
        },
    );
    match engine.run() {
        BmcOutcome::Counterexample { depth, .. } => Some(depth),
        BmcOutcome::BoundReached { .. } => None,
        BmcOutcome::ResourceOut { at_depth } => panic!("resource out at {at_depth}"),
    }
}

#[test]
fn blif_roundtrip_preserves_bmc_verdict() {
    for (model, max_depth) in [
        (families::token_ring_buggy(4, 2), 8),
        (families::gated_counter(4, 1, 9), 12),
        (families::shift_twin(4), 8),
    ] {
        // Attach the bad signal as an output so it survives the roundtrip.
        let mut netlist = model.netlist().clone();
        netlist.add_output("bad_property", model.bad());
        let text = write_blif(&netlist, model.name());
        let reparsed = parse_blif(&text).unwrap_or_else(|e| panic!("{}: {e}", model.name()));
        let roundtripped = Model::from_output(model.name(), reparsed, "bad_property");

        let original = bmc_verdict(model.clone(), max_depth);
        let after = bmc_verdict(roundtripped, max_depth);
        assert_eq!(original, after, "{} verdict changed", model.name());
    }
}

#[test]
fn aiger_roundtrip_preserves_bmc_verdict() {
    for (model, max_depth) in [
        (families::token_ring_buggy(4, 2), 8),
        (families::pipeline_emerge(5), 8),
    ] {
        let mut netlist = model.netlist().clone();
        netlist.add_output("bad_property", model.bad());
        let lowered = Aig::from_netlist(&netlist);
        let text = write_aag(&lowered.aig);
        let back = parse_aag(&text).unwrap();

        // Rebuild a netlist from the parsed AIG by direct translation.
        let rebuilt = aig_to_netlist(&back);
        let bad_index = back
            .outputs()
            .iter()
            .position(|(name, _)| name == "bad_property")
            .expect("property output survives");
        let bad = rebuilt
            .output(&format!("o{bad_index}"))
            .or_else(|| rebuilt.output("bad_property"));
        let roundtripped = Model::new(model.name(), rebuilt.clone(), bad.unwrap());

        let original = bmc_verdict(model.clone(), max_depth);
        let after = bmc_verdict(roundtripped, max_depth);
        assert_eq!(original, after, "{} verdict changed", model.name());
    }
}

/// Minimal AIG -> netlist translation (inverse of `Aig::from_netlist`).
fn aig_to_netlist(aig: &Aig) -> Netlist {
    let mut n = Netlist::new();
    let mut map: Vec<Signal> = vec![Signal::FALSE; aig.num_nodes()];
    for (i, &id) in aig.inputs().iter().enumerate() {
        map[id] = n.add_input(&format!("i{i}"));
    }
    for (i, &id) in aig.latches().iter().enumerate() {
        let init = aig.init_of(id).unwrap_or(LatchInit::Zero);
        map[id] = n.add_latch(&format!("l{i}"), init);
    }
    let read = |map: &Vec<Signal>, lit: refined_bmc::circuit::AigLit| -> Signal {
        let s = map[lit.node()];
        if lit.is_inverted() {
            !s
        } else {
            s
        }
    };
    for node in 0..aig.num_nodes() {
        if let Some((a, b)) = aig.and_fanins(node) {
            let (sa, sb) = (read(&map, a), read(&map, b));
            map[node] = n.and2(sa, sb);
        }
    }
    for &id in aig.latches() {
        let next = aig.next_of(id).expect("connected");
        let sig = read(&map, next);
        n.set_next(map[id], sig);
    }
    for (name, lit) in aig.outputs() {
        let sig = read(&map, *lit);
        n.add_output(name, sig);
    }
    n
}

#[test]
fn dimacs_export_of_bmc_instance_is_solvable_by_reference() {
    use refined_bmc::bmc::Unroller;
    use refined_bmc::cnf::{parse_dimacs, to_dimacs_string};
    use refined_bmc::solver::reference_dpll;

    // A small failing instance: the DIMACS text of F_k must be SAT from the
    // failure depth on (the enable input lets the counter hold at the bad
    // value), even for an independent solver.
    let model = families::gated_counter(3, 1, 5);
    let unroller = Unroller::new(&model);
    for k in 3..=6 {
        let formula = unroller.formula(k);
        let text = to_dimacs_string(&formula);
        let reparsed = parse_dimacs(&text).unwrap();
        let sat = reference_dpll(&reparsed).is_some();
        assert_eq!(sat, k >= 5, "depth {k}");
    }
}
