//! Integration tests of the refinement mechanism itself: unsatisfiable cores
//! flow from the solver through `varRank` into the next instance, stay
//! semantically valid, and actually shrink the search on the instances the
//! paper's argument targets.

use refined_bmc::bmc::{
    BmcEngine, BmcOptions, BmcOutcome, Model, OrderingStrategy, SolverReuse, Unroller, VarRank,
    Weighting,
};
use refined_bmc::gens::families;
use refined_bmc::solver::{SolveResult, Solver, SolverOptions};

/// For a passing instance, re-derive each depth's core by hand and check the
/// invariant that justifies the whole method: the core clauses alone are
/// UNSAT, and their variables map to coherent (node, frame) pairs.
#[test]
fn cores_are_unsat_and_map_to_frames() {
    let model = families::shift_twin(5);
    let unroller = Unroller::new(&model);
    for k in 0..8 {
        let formula = unroller.formula(k);
        let mut solver = Solver::from_formula(&formula);
        assert_eq!(solver.solve(), SolveResult::Unsat, "depth {k}");
        let core = solver.core_clauses().expect("core").to_vec();
        // Core subset must stay UNSAT.
        let mut check = Solver::from_formula(&formula.subformula(&core));
        assert_eq!(check.solve(), SolveResult::Unsat, "core at depth {k}");
        // Every core variable decodes to a frame within 0..=k.
        for var in solver.core_vars().expect("core vars") {
            let (node, frame) = unroller.origin_of(var);
            assert!(frame <= k, "frame {frame} beyond depth {k}");
            assert!(node.index() < model.netlist().num_nodes());
        }
    }
}

/// The ranking grows monotonically along the run and ranks a strict subset
/// of all variables (the paper's point: cores are small relative to the
/// formula).
#[test]
fn rank_grows_and_stays_sparse() {
    let model = families::fifo_guarded(3);
    let mut engine = BmcEngine::new(
        model,
        BmcOptions {
            max_depth: 12,
            strategy: OrderingStrategy::RefinedStatic,
            ..BmcOptions::default()
        },
    );
    let run = engine.run_collecting();
    assert!(matches!(run.outcome, BmcOutcome::BoundReached { .. }));
    assert_eq!(engine.rank().num_updates(), 13);
    let ranked = engine.rank().num_ranked();
    let total_vars = run.per_depth.last().unwrap().num_vars;
    assert!(ranked > 0, "some variables must be ranked");
    assert!(
        ranked < total_vars,
        "ranking must be a strict subset: {ranked} vs {total_vars}"
    );
}

/// The headline effect on a search-heavy passing instance: the refined
/// static ordering needs several times fewer decisions than plain VSIDS.
/// Measured in the paper's fresh-per-depth regime — an incremental session
/// carries learned clauses across depths, which already collapses the search
/// for *both* orderings and compresses the gap the refinement exploits.
#[test]
fn refined_ordering_shrinks_search_trees() {
    let run_with = |strategy, reuse| {
        let mut engine = BmcEngine::new(
            families::shift_twin(10),
            BmcOptions {
                max_depth: 14,
                strategy,
                reuse,
                ..BmcOptions::default()
            },
        );
        engine.run_collecting().total_decisions()
    };
    let standard = run_with(OrderingStrategy::Standard, SolverReuse::Fresh);
    let refined = run_with(OrderingStrategy::RefinedStatic, SolverReuse::Fresh);
    assert!(
        refined * 2 < standard,
        "expected at least 2x fewer decisions, got {refined} vs {standard}"
    );
    // The session's own headline effect: retaining learned clauses across
    // depths beats re-searching every prefix from scratch, even under the
    // plain VSIDS ordering.
    let session = run_with(OrderingStrategy::Standard, SolverReuse::Session);
    assert!(
        session * 2 < standard,
        "expected at least 2x fewer decisions from solver reuse, \
         got {session} vs {standard}"
    );
}

/// All three weighting schemes still produce correct verdicts.
#[test]
fn weighting_schemes_agree_on_verdicts() {
    for weighting in [Weighting::Linear, Weighting::Uniform, Weighting::LastOnly] {
        let mut engine = BmcEngine::new(
            families::gated_counter(4, 1, 9),
            BmcOptions {
                max_depth: 12,
                strategy: OrderingStrategy::RefinedStatic,
                weighting,
                ..BmcOptions::default()
            },
        );
        match engine.run() {
            BmcOutcome::Counterexample { depth, .. } => assert_eq!(depth, 9, "{weighting:?}"),
            other => panic!("{weighting:?}: {other}"),
        }
    }
}

/// `VarRank` can be driven directly (library use without the engine): feed
/// it the cores of a hand-rolled loop and install it into a solver.
#[test]
fn manual_refine_loop_matches_engine() {
    let model = families::shift_twin(6);
    let unroller = Unroller::new(&model);
    let mut rank = VarRank::new(Weighting::Linear);
    for k in 0..8 {
        let formula = unroller.formula(k);
        let mut solver = Solver::from_formula_with(
            &formula,
            SolverOptions {
                order_mode: rbmc_solver::OrderMode::Static,
                ..SolverOptions::default()
            },
        );
        solver.set_var_ranking(&rank.snapshot());
        assert_eq!(solver.solve(), SolveResult::Unsat);
        rank.update(&solver.core_vars().unwrap(), k);
    }
    // The engine's rank after the same run must match in sparsity.
    let mut engine = BmcEngine::new(
        families::shift_twin(6),
        BmcOptions {
            max_depth: 7,
            strategy: OrderingStrategy::RefinedStatic,
            ..BmcOptions::default()
        },
    );
    let _ = engine.run();
    assert_eq!(engine.rank().num_updates(), rank.num_updates());
}

/// Free-initial-state latches survive the whole pipeline (encode, solve,
/// trace extraction, replay).
#[test]
fn free_latches_end_to_end() {
    use refined_bmc::circuit::{LatchInit, Netlist};
    let mut n = Netlist::new();
    let a = n.add_latch("a", LatchInit::Free);
    let b = n.add_latch("b", LatchInit::Zero);
    n.set_next(a, a);
    let b_next = n.xor2(b, a);
    n.set_next(b, b_next);
    // bad: b has been toggled twice in a row — needs a = 1 initially.
    let bad = n.and2(b, a);
    let model = Model::new("free_toggle", n, bad);
    let mut engine = BmcEngine::new(
        model,
        BmcOptions {
            max_depth: 5,
            ..BmcOptions::default()
        },
    );
    match engine.run() {
        BmcOutcome::Counterexample { depth, trace } => {
            assert_eq!(depth, 1);
            assert!(trace.initial_state()[0], "a must start at 1");
            trace.validate(engine.model()).unwrap();
        }
        other => panic!("expected counterexample, got {other}"),
    }
}
