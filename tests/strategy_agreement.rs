//! Cross-crate integration: every ordering strategy must reach the oracle's
//! verdict (and the exact minimal counterexample depth) on the whole small
//! suite.

use refined_bmc::bmc::oracle::{check_reachable, OracleVerdict};
use refined_bmc::bmc::{BmcEngine, BmcOptions, BmcOutcome, OrderingStrategy};
use refined_bmc::gens::{small_suite, Expectation};

fn strategies() -> [OrderingStrategy; 5] {
    [
        OrderingStrategy::Standard,
        OrderingStrategy::RefinedStatic,
        OrderingStrategy::RefinedDynamic { divisor: 64 },
        OrderingStrategy::RefinedDynamic { divisor: 1 },
        OrderingStrategy::Shtrichman,
    ]
}

#[test]
fn all_strategies_match_the_oracle_on_the_small_suite() {
    for instance in small_suite() {
        // The suite's ground truth is itself verified against the oracle.
        let oracle = check_reachable(&instance.model, instance.max_depth);
        match (instance.expectation, oracle) {
            (Expectation::FailsAt(d), OracleVerdict::FailsAt(o)) => {
                assert_eq!(d, o, "{}: suite ground truth is wrong", instance.name);
            }
            (Expectation::Holds, OracleVerdict::HoldsUpTo(_)) => {}
            (e, o) => panic!("{}: expectation {e:?} vs oracle {o:?}", instance.name),
        }
        for strategy in strategies() {
            let mut engine = BmcEngine::new(
                instance.model.clone(),
                BmcOptions {
                    max_depth: instance.max_depth,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            let outcome = engine.run();
            match (instance.expectation, &outcome) {
                (Expectation::FailsAt(d), BmcOutcome::Counterexample { depth, trace }) => {
                    assert_eq!(*depth, d, "{} [{strategy:?}]", instance.name);
                    trace
                        .validate(engine.model())
                        .unwrap_or_else(|e| panic!("{} [{strategy:?}]: {e}", instance.name));
                }
                (Expectation::Holds, BmcOutcome::BoundReached { depth_completed }) => {
                    assert_eq!(*depth_completed, instance.max_depth);
                }
                (e, o) => panic!("{} [{strategy:?}]: {e:?} vs {o}", instance.name),
            }
        }
    }
}

#[test]
fn per_depth_verdicts_are_identical_across_strategies() {
    // Not just the final verdict: the per-depth SAT/UNSAT sequence must be
    // identical, since the ordering only steers the search.
    for instance in small_suite().into_iter().take(5) {
        let mut reference: Option<Vec<rbmc_solver::SolveResult>> = None;
        for strategy in strategies() {
            let mut engine = BmcEngine::new(
                instance.model.clone(),
                BmcOptions {
                    max_depth: instance.max_depth,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            let run = engine.run_collecting();
            let verdicts: Vec<_> = run.per_depth.iter().map(|d| d.result).collect();
            match &reference {
                None => reference = Some(verdicts),
                Some(expected) => {
                    assert_eq!(expected, &verdicts, "{} [{strategy:?}]", instance.name);
                }
            }
        }
    }
}
