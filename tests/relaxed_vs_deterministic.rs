//! The differential harness of the relaxed parallel modes: on random
//! multi-property sequential circuits, every relaxed grain (striped
//! sessions, work stealing) and every portfolio roster at every worker
//! budget must reproduce the sequential oracle's per-property per-depth
//! verdicts and retirement depths, and every counterexample trace must
//! replay on the netlist. Rank tables are deliberately *not* compared —
//! scheduling-dependence of the heuristic state is the relaxation; the
//! semantic results are the contract.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use refined_bmc::bmc::{
    run_portfolio, BmcEngine, BmcOptions, BmcRun, OrderingStrategy, ParallelConfig, PortfolioMode,
    ProblemBuilder, PropertyVerdict, ShardMode, SolveResult, VerificationProblem,
};
use refined_bmc::circuit::{LatchInit, Netlist, Signal};

/// Construction steps over a signal pool (inputs, latches, then gates) —
/// the same recipe shape as `parallel_vs_sequential`.
#[derive(Debug, Clone)]
enum Step {
    And(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

#[derive(Debug, Clone)]
struct ProblemRecipe {
    num_inputs: usize,
    latch_inits: Vec<LatchInit>,
    steps: Vec<Step>,
    nexts: Vec<usize>,
    bads: Vec<usize>,
}

fn arb_recipe() -> impl Strategy<Value = ProblemRecipe> {
    let init = prop_oneof![
        Just(LatchInit::Zero),
        Just(LatchInit::One),
        Just(LatchInit::Free)
    ];
    (1usize..3, prop::collection::vec(init, 1..5)).prop_flat_map(|(num_inputs, latch_inits)| {
        let steps = prop::collection::vec(
            prop_oneof![
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::And(a, b)),
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::Xor(a, b)),
                (0usize..64, 0usize..64, 0usize..64).prop_map(|(s, a, b)| Step::Mux(s, a, b)),
            ],
            1..12,
        );
        let nl = latch_inits.len();
        (steps, Just(latch_inits)).prop_flat_map(move |(steps, latch_inits)| {
            let pool = 1 + num_inputs + nl + steps.len();
            (
                prop::collection::vec(0usize..pool, nl),
                prop::collection::vec(0usize..pool, 1..4),
                Just(steps),
                Just(latch_inits),
            )
                .prop_map(move |(nexts, bads, steps, latch_inits)| ProblemRecipe {
                    num_inputs,
                    latch_inits,
                    steps,
                    nexts,
                    bads,
                })
        })
    })
}

fn build(recipe: &ProblemRecipe) -> VerificationProblem {
    let mut n = Netlist::new();
    let mut pool: Vec<Signal> = vec![Signal::TRUE];
    for i in 0..recipe.num_inputs {
        pool.push(n.add_input(&format!("i{i}")));
    }
    let latches: Vec<Signal> = recipe
        .latch_inits
        .iter()
        .enumerate()
        .map(|(i, &init)| {
            let l = n.add_latch(&format!("l{i}"), init);
            pool.push(l);
            l
        })
        .collect();
    for step in &recipe.steps {
        let pick = |i: usize, pool: &Vec<Signal>| pool[i % pool.len()];
        let s = match *step {
            Step::And(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.and2(x, y)
            }
            Step::Xor(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.xor2(x, y)
            }
            Step::Mux(s, a, b) => {
                let (c, x, y) = (pick(s, &pool), pick(a, &pool), pick(b, &pool));
                n.mux(c, x, y)
            }
        };
        pool.push(s);
    }
    for (&l, &nx) in latches.iter().zip(&recipe.nexts) {
        n.set_next(l, pool[nx % pool.len()]);
    }
    let mut builder = ProblemBuilder::new("random", n);
    for (i, &b) in recipe.bads.iter().enumerate() {
        builder = builder.property(&format!("p{i}"), pool[b % pool.len()]);
    }
    builder.build()
}

fn options(
    strategy: OrderingStrategy,
    parallel: Option<ParallelConfig>,
    depth: usize,
) -> BmcOptions {
    BmcOptions {
        max_depth: depth,
        strategy,
        parallel,
        // Relaxed modes must not only agree with the oracle — every UNSAT
        // they report must carry a certificate the independent checker
        // accepts. Rejections fail the differential run outright.
        proof: refined_bmc::bmc::ProofMode::Check,
        ..BmcOptions::default()
    }
}

fn run(
    problem: &VerificationProblem,
    strategy: OrderingStrategy,
    parallel: Option<ParallelConfig>,
    depth: usize,
) -> BmcRun {
    let mut engine = BmcEngine::for_problem(problem.clone(), options(strategy, parallel, depth));
    let run = engine.run_collecting();
    let proof = run.proof.as_ref().expect("proof checking was enabled");
    assert!(
        !proof.rejected(),
        "certificate rejected: {:?}",
        proof.first_rejection
    );
    run
}

/// The cross-run comparison currency: per-property per-depth verdict
/// sequences plus retirement depths. Rank tables are excluded on purpose.
type Signature = Vec<(Vec<SolveResult>, Option<usize>)>;

fn signature(run: &BmcRun) -> Signature {
    run.properties
        .iter()
        .map(|p| (p.depth_results.clone(), p.retirement_depth))
        .collect()
}

/// Asserts two signatures agree property by property, naming the mode,
/// worker budget, and the offending property on failure.
fn assert_signatures_match(
    oracle: &Signature,
    relaxed: &Signature,
    run: &BmcRun,
    problem: &VerificationProblem,
    mode: &str,
    jobs: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        relaxed.len(),
        oracle.len(),
        "{} jobs={}: property count diverged",
        mode,
        jobs
    );
    for (idx, (o, r)) in oracle.iter().zip(relaxed).enumerate() {
        prop_assert_eq!(
            r,
            o,
            "mode {} jobs={} property {}: relaxed verdicts diverged from the sequential oracle",
            mode,
            jobs,
            problem.property(idx).name()
        );
    }
    // Every counterexample the relaxed run reports must replay on the
    // netlist — verdict equivalence with an invalid witness would be vacuous.
    for (idx, prop) in run.properties.iter().enumerate() {
        if let PropertyVerdict::Falsified { trace, .. } = &prop.verdict {
            prop_assert!(
                trace
                    .validate_against(problem.netlist(), problem.property(idx).bad())
                    .is_ok(),
                "mode {} jobs={} property {}: relaxed trace fails netlist replay",
                mode,
                jobs,
                problem.property(idx).name()
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn relaxed_grains_match_the_sequential_oracle(recipe in arb_recipe()) {
        const DEPTH: usize = 6;
        let problem = build(&recipe);
        for strategy in [
            OrderingStrategy::Standard,
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::RefinedDynamic { divisor: 64 },
        ] {
            let oracle = run(&problem, strategy, None, DEPTH);
            let oracle_sig = signature(&oracle);
            for shard in [ShardMode::Striped, ShardMode::WorkStealing] {
                for jobs in [1usize, 2, 4] {
                    let par = run(
                        &problem,
                        strategy,
                        Some(ParallelConfig { jobs, shard }),
                        DEPTH,
                    );
                    assert_signatures_match(
                        &oracle_sig,
                        &signature(&par),
                        &par,
                        &problem,
                        &format!("{}/{}", shard.label(), strategy.label()),
                        jobs,
                    )?;
                }
            }
        }
    }

    #[test]
    fn portfolio_races_match_the_sequential_oracle(recipe in arb_recipe()) {
        const DEPTH: usize = 6;
        let problem = build(&recipe);
        let base = options(OrderingStrategy::default(), None, DEPTH);
        let mut engine = BmcEngine::for_problem(problem.clone(), base);
        let oracle = engine.run_collecting();
        let oracle_sig = signature(&oracle);
        for mode in [
            PortfolioMode::Strategies,
            PortfolioMode::ReuseRegimes,
            PortfolioMode::Full,
        ] {
            for jobs in [1usize, 2, 4] {
                let race = run_portfolio(&problem, &base, mode, jobs);
                assert_signatures_match(
                    &oracle_sig,
                    &signature(&race.run),
                    &race.run,
                    &problem,
                    &format!("portfolio-{}", mode.label()),
                    jobs,
                )?;
            }
        }
    }
}
