//! Differential property test: the IC3 engine against the BMC oracle.
//!
//! Random sequential circuits are checked by both engines to the same bound.
//! Wherever BMC finds a counterexample, IC3 must falsify at the **same**
//! depth with a validated trace; wherever BMC leaves the property open, IC3
//! may either agree (open at the bound) or close it with a proof — and every
//! proof must carry an invariant that passes [`check_invariant`]'s
//! independent initiation/consecution/safety solver queries. A second,
//! deterministic test runs the proving specimens of `proof_suite` end to
//! end: all of them must prove, under both the unordered and the
//! core-ordered assumption ranking.

use proptest::prelude::*;
use refined_bmc::bmc::{
    check_invariant, BmcEngine, BmcOptions, Ic3Engine, Model, OrderingStrategy, PropertyVerdict,
};
use refined_bmc::circuit::{LatchInit, Netlist, Signal};
use refined_bmc::gens::{proof_suite, Expectation};

/// Construction steps over a signal pool (inputs, latches, then gates).
#[derive(Debug, Clone)]
enum Step {
    And(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

#[derive(Debug, Clone)]
struct ModelRecipe {
    num_inputs: usize,
    latch_inits: Vec<LatchInit>,
    steps: Vec<Step>,
    nexts: Vec<usize>,
    bad: usize,
}

fn arb_recipe() -> impl Strategy<Value = ModelRecipe> {
    let init = prop_oneof![
        Just(LatchInit::Zero),
        Just(LatchInit::One),
        Just(LatchInit::Free)
    ];
    (1usize..3, prop::collection::vec(init, 1..4)).prop_flat_map(|(num_inputs, latch_inits)| {
        let steps = prop::collection::vec(
            prop_oneof![
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::And(a, b)),
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::Xor(a, b)),
                (0usize..64, 0usize..64, 0usize..64).prop_map(|(s, a, b)| Step::Mux(s, a, b)),
            ],
            1..10,
        );
        let nl = latch_inits.len();
        (steps, Just(latch_inits)).prop_flat_map(move |(steps, latch_inits)| {
            let pool = 1 + num_inputs + nl + steps.len();
            (
                prop::collection::vec(0usize..pool, nl),
                0usize..pool,
                Just(steps),
                Just(latch_inits),
            )
                .prop_map(move |(nexts, bad, steps, latch_inits)| ModelRecipe {
                    num_inputs,
                    latch_inits,
                    steps,
                    nexts,
                    bad,
                })
        })
    })
}

fn build(recipe: &ModelRecipe) -> Model {
    let mut n = Netlist::new();
    let mut pool: Vec<Signal> = vec![Signal::TRUE];
    for i in 0..recipe.num_inputs {
        pool.push(n.add_input(&format!("i{i}")));
    }
    let latches: Vec<Signal> = recipe
        .latch_inits
        .iter()
        .enumerate()
        .map(|(i, &init)| {
            let l = n.add_latch(&format!("l{i}"), init);
            pool.push(l);
            l
        })
        .collect();
    for step in &recipe.steps {
        let pick = |i: usize, pool: &Vec<Signal>| pool[i % pool.len()];
        let s = match *step {
            Step::And(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.and2(x, y)
            }
            Step::Xor(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.xor2(x, y)
            }
            Step::Mux(s, a, b) => {
                let (c, x, y) = (pick(s, &pool), pick(a, &pool), pick(b, &pool));
                n.mux(c, x, y)
            }
        };
        pool.push(s);
    }
    for (&l, &nx) in latches.iter().zip(&recipe.nexts) {
        n.set_next(l, pool[nx % pool.len()]);
    }
    let bad = pool[recipe.bad % pool.len()];
    Model::new("random", n, bad)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ic3_agrees_with_the_bmc_oracle_on_random_models(recipe in arb_recipe()) {
        const DEPTH: usize = 6;
        let model = build(&recipe);
        let mut bmc = BmcEngine::new(
            model.clone(),
            BmcOptions { max_depth: DEPTH, ..BmcOptions::default() },
        );
        let bmc_run = bmc.run_collecting();
        let bmc_verdict = &bmc_run.properties[0].verdict;
        for strategy in [OrderingStrategy::Standard, OrderingStrategy::RefinedStatic] {
            let mut engine = Ic3Engine::new(
                model.clone(),
                BmcOptions { max_depth: DEPTH, strategy, ..BmcOptions::default() },
            );
            let run = engine.run_collecting();
            let verdict = &run.properties[0].verdict;
            match bmc_verdict {
                PropertyVerdict::Falsified { depth: oracle_depth, .. } => match verdict {
                    PropertyVerdict::Falsified { depth, trace } => {
                        prop_assert_eq!(depth, oracle_depth, "{:?}", strategy);
                        prop_assert!(
                            trace.validate(engine.model()).is_ok(),
                            "{:?}: ic3 trace fails replay", strategy
                        );
                    }
                    other => prop_assert!(
                        false,
                        "bmc falsified at {oracle_depth} but ic3 said {other} under {strategy:?}"
                    ),
                },
                PropertyVerdict::OpenAt { .. } => match verdict {
                    PropertyVerdict::Proved { invariant_clauses: Some(clauses), .. } => {
                        let working = engine.working_model();
                        let checked = check_invariant(working, working.bad(), clauses);
                        prop_assert!(
                            checked.is_ok(),
                            "{strategy:?}: proof invariant rejected: {checked:?}"
                        );
                    }
                    PropertyVerdict::OpenAt { depth } => {
                        prop_assert_eq!(*depth, DEPTH, "{:?}", strategy);
                    }
                    other => prop_assert!(
                        false,
                        "bmc left the property open but ic3 said {other} under {strategy:?}"
                    ),
                },
                other => prop_assert!(false, "unexpected bmc verdict {other}"),
            }
        }
    }
}

/// The dedicated proving specimens all close under IC3 — with either
/// assumption order — and every extracted invariant survives the
/// independent inductive check.
#[test]
fn proof_suite_proves_under_both_assumption_orders() {
    for instance in proof_suite() {
        assert_eq!(
            instance.expectation,
            Expectation::Holds,
            "{}",
            instance.name
        );
        for strategy in [OrderingStrategy::Standard, OrderingStrategy::RefinedStatic] {
            let mut engine = Ic3Engine::new(
                instance.model.clone(),
                BmcOptions {
                    max_depth: 20,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            let run = engine.run_collecting();
            match &run.properties[0].verdict {
                PropertyVerdict::Proved {
                    invariant_clauses: Some(clauses),
                    ..
                } => {
                    let working = engine.working_model();
                    check_invariant(working, working.bad(), clauses).unwrap_or_else(|e| {
                        panic!("{} [{strategy:?}]: invariant rejected: {e}", instance.name)
                    });
                }
                other => panic!(
                    "{} [{strategy:?}]: expected a proof, got {other}",
                    instance.name
                ),
            }
        }
    }
}
