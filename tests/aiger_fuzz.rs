//! AIGER parser robustness fuzzing.
//!
//! Valid AIGER files in both encodings are mutilated — truncated at an
//! arbitrary byte, hit with random byte flips, or both — and fed back to
//! [`parse_aiger`]. The contract under test: the parser never panics on
//! corrupted input, and every rejection is a [`ParseAigerError`] whose byte
//! offset points into (or just past the end of) the input, so a damaged
//! benchmark file surfaces as a positioned per-file diagnostic in the
//! corpus runner instead of a crash.
//!
//! [`parse_aiger`]: refined_bmc::circuit::aiger::parse_aiger
//! [`ParseAigerError`]: refined_bmc::circuit::aiger::ParseAigerError

use std::sync::OnceLock;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use refined_bmc::bmc::ProblemBuilder;
use refined_bmc::circuit::aiger::{parse_aiger, write_aag, write_aig};
use refined_bmc::gens::corpus::{multi_even_counter, problem_to_aig};
use refined_bmc::gens::families;

/// Valid seed files in both encodings from a spread of generator families,
/// including the multi-property instance (extra `B` lines and symbols).
fn seeds() -> &'static Vec<Vec<u8>> {
    static SEEDS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    SEEDS.get_or_init(|| {
        let models = [
            families::gated_counter(4, 2, 7),
            families::token_ring(3),
            families::tmr_voter(2, 1),
            families::mutex_arbiter(2),
        ];
        let mut files = Vec::new();
        for model in &models {
            let aig = problem_to_aig(&ProblemBuilder::from_model(model).build());
            files.push(write_aag(&aig).into_bytes());
            files.push(write_aig(&aig));
        }
        let multi = problem_to_aig(&multi_even_counter());
        files.push(write_aag(&multi).into_bytes());
        files.push(write_aig(&multi));
        files
    })
}

/// The robustness contract for one mutated input: parsing must return (a
/// benign mutation may still parse), and any error must carry a byte offset
/// inside the input and render it.
fn parses_or_positions_error(bytes: &[u8]) -> Result<(), TestCaseError> {
    match parse_aiger(bytes) {
        Ok(_) => {}
        Err(e) => {
            prop_assert!(
                e.offset() <= bytes.len(),
                "offset {} outside the {}-byte input: {e}",
                e.offset(),
                bytes.len()
            );
            prop_assert!(
                e.to_string().contains("at byte"),
                "display must carry the position: {e}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn truncations_never_panic(file in 0usize..64, cut in 0usize..1 << 20) {
        let files = seeds();
        let bytes = &files[file % files.len()];
        let cut = cut % (bytes.len() + 1);
        parses_or_positions_error(&bytes[..cut])?;
    }

    #[test]
    fn byte_flips_never_panic(
        file in 0usize..64,
        at in 0usize..1 << 20,
        mask in 1u8..=255,
    ) {
        let files = seeds();
        let mut bytes = files[file % files.len()].clone();
        let i = at % bytes.len();
        bytes[i] ^= mask;
        parses_or_positions_error(&bytes)?;
    }

    #[test]
    fn truncated_and_flipped_never_panic(
        file in 0usize..64,
        cut in 0usize..1 << 20,
        at in 0usize..1 << 20,
        mask in 1u8..=255,
    ) {
        let files = seeds();
        let bytes = &files[file % files.len()];
        // Keep at least the magic so both parser front ends get exercised.
        let cut = 4 + cut % (bytes.len() - 3);
        let mut mutant = bytes[..cut].to_vec();
        let i = at % mutant.len();
        mutant[i] ^= mask;
        parses_or_positions_error(&mutant)?;
    }
}
