//! Differential testing of the parallel dispatch layer: on random
//! multi-property sequential circuits, both sharding grains at every worker
//! budget must reproduce the sequential engine's per-depth verdicts and
//! retirement depths, be bit-identical across `jobs` values (the
//! commit-order merge makes scheduling invisible), and — where the
//! decomposition coincides with a sequential regime — reproduce its
//! `varRank` table bit for bit.

use proptest::prelude::*;
use refined_bmc::bmc::{
    BmcEngine, BmcOptions, BmcRun, OrderingStrategy, ParallelConfig, ProblemBuilder, ShardMode,
    SolveResult, SolverReuse, VerificationProblem,
};
use refined_bmc::circuit::{LatchInit, Netlist, Signal};

/// Construction steps over a signal pool (inputs, latches, then gates) —
/// the same recipe shape as `session_vs_fresh`, plus a property-count knob.
#[derive(Debug, Clone)]
enum Step {
    And(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

#[derive(Debug, Clone)]
struct ProblemRecipe {
    num_inputs: usize,
    latch_inits: Vec<LatchInit>,
    steps: Vec<Step>,
    nexts: Vec<usize>,
    bads: Vec<usize>,
}

fn arb_recipe() -> impl Strategy<Value = ProblemRecipe> {
    let init = prop_oneof![
        Just(LatchInit::Zero),
        Just(LatchInit::One),
        Just(LatchInit::Free)
    ];
    (1usize..3, prop::collection::vec(init, 1..5)).prop_flat_map(|(num_inputs, latch_inits)| {
        let steps = prop::collection::vec(
            prop_oneof![
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::And(a, b)),
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::Xor(a, b)),
                (0usize..64, 0usize..64, 0usize..64).prop_map(|(s, a, b)| Step::Mux(s, a, b)),
            ],
            1..12,
        );
        let nl = latch_inits.len();
        (steps, Just(latch_inits)).prop_flat_map(move |(steps, latch_inits)| {
            let pool = 1 + num_inputs + nl + steps.len();
            (
                prop::collection::vec(0usize..pool, nl),
                prop::collection::vec(0usize..pool, 1..4),
                Just(steps),
                Just(latch_inits),
            )
                .prop_map(move |(nexts, bads, steps, latch_inits)| ProblemRecipe {
                    num_inputs,
                    latch_inits,
                    steps,
                    nexts,
                    bads,
                })
        })
    })
}

fn build(recipe: &ProblemRecipe) -> VerificationProblem {
    let mut n = Netlist::new();
    let mut pool: Vec<Signal> = vec![Signal::TRUE];
    for i in 0..recipe.num_inputs {
        pool.push(n.add_input(&format!("i{i}")));
    }
    let latches: Vec<Signal> = recipe
        .latch_inits
        .iter()
        .enumerate()
        .map(|(i, &init)| {
            let l = n.add_latch(&format!("l{i}"), init);
            pool.push(l);
            l
        })
        .collect();
    for step in &recipe.steps {
        let pick = |i: usize, pool: &Vec<Signal>| pool[i % pool.len()];
        let s = match *step {
            Step::And(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.and2(x, y)
            }
            Step::Xor(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.xor2(x, y)
            }
            Step::Mux(s, a, b) => {
                let (c, x, y) = (pick(s, &pool), pick(a, &pool), pick(b, &pool));
                n.mux(c, x, y)
            }
        };
        pool.push(s);
    }
    for (&l, &nx) in latches.iter().zip(&recipe.nexts) {
        n.set_next(l, pool[nx % pool.len()]);
    }
    let mut builder = ProblemBuilder::new("random", n);
    for (i, &b) in recipe.bads.iter().enumerate() {
        builder = builder.property(&format!("p{i}"), pool[b % pool.len()]);
    }
    builder.build()
}

fn run(
    problem: &VerificationProblem,
    strategy: OrderingStrategy,
    reuse: SolverReuse,
    parallel: Option<ParallelConfig>,
    depth: usize,
) -> (BmcRun, Vec<u64>) {
    let mut engine = BmcEngine::for_problem(
        problem.clone(),
        BmcOptions {
            max_depth: depth,
            strategy,
            reuse,
            parallel,
            // Certify every UNSAT along the way: a relaxed or parallel mode
            // that merely *agrees* with the oracle but derives its verdicts
            // unsoundly is caught here, not just a verdict divergence.
            proof: refined_bmc::bmc::ProofMode::Check,
            ..BmcOptions::default()
        },
    );
    let run = engine.run_collecting();
    let proof = run.proof.as_ref().expect("proof checking was enabled");
    assert!(
        !proof.rejected(),
        "certificate rejected: {:?}",
        proof.first_rejection
    );
    (run, engine.rank().snapshot())
}

/// The cross-run comparison currency: per-property per-depth verdict
/// sequences plus retirement depths.
type Signature = Vec<(Vec<SolveResult>, Option<usize>)>;

fn signature(run: &BmcRun) -> Signature {
    run.properties
        .iter()
        .map(|p| (p.depth_results.clone(), p.retirement_depth))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_runs_match_sequential_at_every_jobs_count(recipe in arb_recipe()) {
        const DEPTH: usize = 6;
        let problem = build(&recipe);
        for strategy in [
            OrderingStrategy::Standard,
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::RefinedDynamic { divisor: 64 },
        ] {
            let (session, session_rank) =
                run(&problem, strategy, SolverReuse::Session, None, DEPTH);
            let (fresh, fresh_rank) = run(&problem, strategy, SolverReuse::Fresh, None, DEPTH);
            // Every SAT verdict carries a validating trace in every mode;
            // validate the sequential ones once up front.
            for (idx, prop) in session.properties.iter().enumerate() {
                if let refined_bmc::bmc::PropertyVerdict::Falsified { trace, .. } = &prop.verdict {
                    prop_assert!(trace
                        .validate_against(problem.netlist(), problem.property(idx).bad())
                        .is_ok());
                }
            }
            for shard in [ShardMode::ByProperty, ShardMode::ByDepth] {
                let mut jobs_baseline: Option<(Signature, Vec<u64>)> = None;
                for jobs in [1usize, 2, 4] {
                    let (par, par_rank) = run(
                        &problem,
                        strategy,
                        SolverReuse::Session,
                        Some(ParallelConfig { jobs, shard }),
                        DEPTH,
                    );
                    // Verdicts and retirement depths are semantic: identical
                    // to the sequential session engine in every mode.
                    prop_assert_eq!(
                        signature(&par),
                        signature(&session),
                        "{:?} {:?} jobs={}",
                        strategy,
                        shard,
                        jobs
                    );
                    // The whole result — rank table included — is invariant
                    // in the worker budget.
                    match &jobs_baseline {
                        None => jobs_baseline = Some((signature(&par), par_rank.clone())),
                        Some((sig, rank)) => {
                            prop_assert_eq!(&signature(&par), sig);
                            prop_assert_eq!(&par_rank, rank, "{:?} {:?} jobs={}", strategy, shard, jobs);
                        }
                    }
                    // Where the decomposition coincides with a sequential
                    // regime, the rank table is bit-identical to it:
                    // depth-sharding is the fresh regime (any property
                    // count), property-sharding is the session regime for
                    // single-property problems.
                    match shard {
                        ShardMode::ByDepth => {
                            prop_assert_eq!(&par_rank, &fresh_rank, "{:?} jobs={}", strategy, jobs);
                        }
                        ShardMode::ByProperty if problem.num_properties() == 1 => {
                            prop_assert_eq!(&par_rank, &session_rank, "{:?} jobs={}", strategy, jobs);
                        }
                        ShardMode::ByProperty => {}
                        // Relaxed grains are covered by
                        // tests/relaxed_vs_deterministic.rs; this harness
                        // only sweeps the deterministic ones.
                        ShardMode::Striped | ShardMode::WorkStealing => {
                            unreachable!("deterministic harness swept a relaxed shard")
                        }
                    }
                }
            }
            // The two sequential regimes agree on verdicts too (the PR 3/4
            // gate, re-checked here on multi-property problems).
            prop_assert_eq!(signature(&fresh), signature(&session), "{:?}", strategy);
        }
    }
}
