//! Property-based integration: random sequential circuits are checked by
//! BMC under every strategy and compared against the explicit-state oracle.

use proptest::prelude::*;
use refined_bmc::bmc::oracle::{check_reachable, OracleVerdict};
use refined_bmc::bmc::{BmcEngine, BmcOptions, BmcOutcome, Model, OrderingStrategy};
use refined_bmc::circuit::{LatchInit, Netlist, Signal};

/// Construction steps over a signal pool (inputs, latches, then gates).
#[derive(Debug, Clone)]
enum Step {
    And(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

#[derive(Debug, Clone)]
struct ModelRecipe {
    num_inputs: usize,
    latch_inits: Vec<LatchInit>,
    steps: Vec<Step>,
    nexts: Vec<usize>,
    bad: usize,
}

fn arb_recipe() -> impl Strategy<Value = ModelRecipe> {
    let init = prop_oneof![
        Just(LatchInit::Zero),
        Just(LatchInit::One),
        Just(LatchInit::Free)
    ];
    (1usize..3, prop::collection::vec(init, 1..4)).prop_flat_map(|(num_inputs, latch_inits)| {
        let steps = prop::collection::vec(
            prop_oneof![
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::And(a, b)),
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::Xor(a, b)),
                (0usize..64, 0usize..64, 0usize..64).prop_map(|(s, a, b)| Step::Mux(s, a, b)),
            ],
            1..10,
        );
        let nl = latch_inits.len();
        (steps, Just(latch_inits)).prop_flat_map(move |(steps, latch_inits)| {
            let pool = 1 + num_inputs + nl + steps.len();
            (
                prop::collection::vec(0usize..pool, nl),
                0usize..pool,
                Just(steps),
                Just(latch_inits),
            )
                .prop_map(move |(nexts, bad, steps, latch_inits)| ModelRecipe {
                    num_inputs,
                    latch_inits,
                    steps,
                    nexts,
                    bad,
                })
        })
    })
}

fn build(recipe: &ModelRecipe) -> Model {
    let mut n = Netlist::new();
    let mut pool: Vec<Signal> = vec![Signal::TRUE];
    for i in 0..recipe.num_inputs {
        pool.push(n.add_input(&format!("i{i}")));
    }
    let latches: Vec<Signal> = recipe
        .latch_inits
        .iter()
        .enumerate()
        .map(|(i, &init)| {
            let l = n.add_latch(&format!("l{i}"), init);
            pool.push(l);
            l
        })
        .collect();
    for step in &recipe.steps {
        let pick = |i: usize, pool: &Vec<Signal>| pool[i % pool.len()];
        let s = match *step {
            Step::And(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.and2(x, y)
            }
            Step::Xor(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.xor2(x, y)
            }
            Step::Mux(s, a, b) => {
                let (c, x, y) = (pick(s, &pool), pick(a, &pool), pick(b, &pool));
                n.mux(c, x, y)
            }
        };
        pool.push(s);
    }
    for (&l, &nx) in latches.iter().zip(&recipe.nexts) {
        n.set_next(l, pool[nx % pool.len()]);
    }
    let bad = pool[recipe.bad % pool.len()];
    Model::new("random", n, bad)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bmc_matches_oracle_on_random_models(recipe in arb_recipe()) {
        const DEPTH: usize = 6;
        let model = build(&recipe);
        let oracle = check_reachable(&model, DEPTH);
        for strategy in [
            OrderingStrategy::Standard,
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::RefinedDynamic { divisor: 64 },
            OrderingStrategy::Shtrichman,
        ] {
            let mut engine = BmcEngine::new(
                model.clone(),
                BmcOptions { max_depth: DEPTH, strategy, ..BmcOptions::default() },
            );
            let outcome = engine.run();
            match (oracle, &outcome) {
                (OracleVerdict::FailsAt(d), BmcOutcome::Counterexample { depth, trace }) => {
                    prop_assert_eq!(*depth, d, "{:?}", strategy);
                    prop_assert!(trace.validate(engine.model()).is_ok());
                }
                (OracleVerdict::HoldsUpTo(_), BmcOutcome::BoundReached { depth_completed }) => {
                    prop_assert_eq!(*depth_completed, DEPTH);
                }
                (o, b) => prop_assert!(false, "oracle {o:?} vs bmc {b} under {strategy:?}"),
            }
        }
    }
}
