//! Differential gate of the structural preprocessing pass: on random
//! multi-property sequential circuits, the preprocessed engine must
//! reproduce the raw engine's per-depth verdicts and retirement depths in
//! every reuse regime and shard mode, and every counterexample it returns —
//! lifted back to original coordinates — must replay on the *original*
//! netlist.

use proptest::prelude::*;
use refined_bmc::bmc::{
    BmcEngine, BmcOptions, BmcRun, OrderingStrategy, ParallelConfig, ProblemBuilder,
    PropertyVerdict, ShardMode, SolveResult, SolverReuse, VerificationProblem,
};
use refined_bmc::circuit::{LatchInit, Netlist, Signal};

/// Construction steps over a signal pool (inputs, latches, then gates) —
/// the `parallel_vs_sequential` recipe shape. Random `nexts` routinely
/// produce self-looping (stuck) latches and out-of-cone logic, so the pass
/// has real work on most cases.
#[derive(Debug, Clone)]
enum Step {
    And(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

#[derive(Debug, Clone)]
struct ProblemRecipe {
    num_inputs: usize,
    latch_inits: Vec<LatchInit>,
    steps: Vec<Step>,
    nexts: Vec<usize>,
    bads: Vec<usize>,
}

fn arb_recipe() -> impl Strategy<Value = ProblemRecipe> {
    let init = prop_oneof![
        Just(LatchInit::Zero),
        Just(LatchInit::One),
        Just(LatchInit::Free)
    ];
    (1usize..3, prop::collection::vec(init, 1..5)).prop_flat_map(|(num_inputs, latch_inits)| {
        let steps = prop::collection::vec(
            prop_oneof![
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::And(a, b)),
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::Xor(a, b)),
                (0usize..64, 0usize..64, 0usize..64).prop_map(|(s, a, b)| Step::Mux(s, a, b)),
            ],
            1..12,
        );
        let nl = latch_inits.len();
        (steps, Just(latch_inits)).prop_flat_map(move |(steps, latch_inits)| {
            let pool = 1 + num_inputs + nl + steps.len();
            (
                prop::collection::vec(0usize..pool, nl),
                prop::collection::vec(0usize..pool, 1..4),
                Just(steps),
                Just(latch_inits),
            )
                .prop_map(move |(nexts, bads, steps, latch_inits)| ProblemRecipe {
                    num_inputs,
                    latch_inits,
                    steps,
                    nexts,
                    bads,
                })
        })
    })
}

fn build(recipe: &ProblemRecipe) -> VerificationProblem {
    let mut n = Netlist::new();
    let mut pool: Vec<Signal> = vec![Signal::TRUE];
    for i in 0..recipe.num_inputs {
        pool.push(n.add_input(&format!("i{i}")));
    }
    let latches: Vec<Signal> = recipe
        .latch_inits
        .iter()
        .enumerate()
        .map(|(i, &init)| {
            let l = n.add_latch(&format!("l{i}"), init);
            pool.push(l);
            l
        })
        .collect();
    for step in &recipe.steps {
        let pick = |i: usize, pool: &Vec<Signal>| pool[i % pool.len()];
        let s = match *step {
            Step::And(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.and2(x, y)
            }
            Step::Xor(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.xor2(x, y)
            }
            Step::Mux(s, a, b) => {
                let (c, x, y) = (pick(s, &pool), pick(a, &pool), pick(b, &pool));
                n.mux(c, x, y)
            }
        };
        pool.push(s);
    }
    for (&l, &nx) in latches.iter().zip(&recipe.nexts) {
        n.set_next(l, pool[nx % pool.len()]);
    }
    let mut builder = ProblemBuilder::new("random", n);
    for (i, &b) in recipe.bads.iter().enumerate() {
        builder = builder.property(&format!("p{i}"), pool[b % pool.len()]);
    }
    builder.build()
}

/// Disjoint-cone fixture: one 4-bit counter per property plus shared stuck
/// latches, so preprocessing provably shrinks every property's instance.
fn disjoint_cones_problem() -> VerificationProblem {
    let mut n = Netlist::new();
    let stuck: Vec<Signal> = (0..4)
        .map(|i| {
            let s = n.add_latch(&format!("stuck{i}"), LatchInit::Zero);
            n.set_next(s, s);
            s
        })
        .collect();
    let mut props: Vec<(String, Signal)> = Vec::new();
    for (p, target) in [3u64, 9, 14].into_iter().enumerate() {
        let bits: Vec<Signal> = (0..4)
            .map(|i| n.add_latch(&format!("c{p}_{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        // OR-ing a stuck-at-0 latch into the property is behavior-neutral
        // but puts it in the cone: sweeping (not COI) must remove it.
        // stuck[3] stays out of every cone and is dropped instead.
        let eq = n.bus_eq_const(&bits, target);
        props.push((format!("reach_{target}"), n.or2(eq, stuck[p])));
    }
    let mut builder = ProblemBuilder::new("disjoint", n);
    for (name, sig) in props {
        builder = builder.property(&name, sig);
    }
    builder.build()
}

fn run(
    problem: &VerificationProblem,
    preprocess: bool,
    reuse: SolverReuse,
    parallel: Option<ParallelConfig>,
    depth: usize,
) -> BmcRun {
    let mut engine = BmcEngine::for_problem(
        problem.clone(),
        BmcOptions {
            max_depth: depth,
            strategy: OrderingStrategy::RefinedStatic,
            reuse,
            parallel,
            preprocess,
            ..BmcOptions::default()
        },
    );
    let run = engine.run_collecting();
    // Every trace the engine hands back must be in *original* coordinates,
    // preprocessed or not.
    for (idx, prop) in run.properties.iter().enumerate() {
        if let PropertyVerdict::Falsified { trace, .. } = &prop.verdict {
            trace
                .validate_against(problem.netlist(), problem.property(idx).bad())
                .unwrap_or_else(|e| {
                    panic!(
                        "property {idx} trace invalid (preprocess={preprocess}, \
                         reuse={reuse:?}, parallel={parallel:?}): {e}"
                    )
                });
        }
    }
    run
}

/// The cross-run comparison currency: per-property per-depth verdict
/// sequences plus retirement depths.
type Signature = Vec<(Vec<SolveResult>, Option<usize>)>;

fn signature(run: &BmcRun) -> Signature {
    run.properties
        .iter()
        .map(|p| (p.depth_results.clone(), p.retirement_depth))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn preprocessed_runs_match_raw_on_random_problems(recipe in arb_recipe()) {
        const DEPTH: usize = 6;
        let problem = build(&recipe);
        for reuse in [SolverReuse::Session, SolverReuse::Fresh] {
            let raw = run(&problem, false, reuse, None, DEPTH);
            let pp = run(&problem, true, reuse, None, DEPTH);
            prop_assert_eq!(signature(&pp), signature(&raw), "{:?}", reuse);
        }
        // The dispatch layers inherit the reduction through the engine's
        // working model: same contract under both deterministic shards.
        let raw = run(&problem, false, SolverReuse::Session, None, DEPTH);
        for shard in [ShardMode::ByProperty, ShardMode::ByDepth] {
            let par = run(
                &problem,
                true,
                SolverReuse::Session,
                Some(ParallelConfig { jobs: 2, shard }),
                DEPTH,
            );
            prop_assert_eq!(signature(&par), signature(&raw), "{:?}", shard);
        }
    }
}

#[test]
fn preprocessing_agrees_across_all_shard_modes_on_disjoint_cones() {
    const DEPTH: usize = 15;
    let problem = disjoint_cones_problem();
    let baseline = run(&problem, false, SolverReuse::Session, None, DEPTH);
    // reach_3 and reach_9 falsified, reach_14 falsified at 14.
    assert_eq!(baseline.num_falsified(), 3);
    for shard in [
        None,
        Some(ShardMode::ByProperty),
        Some(ShardMode::ByDepth),
        Some(ShardMode::Striped),
        Some(ShardMode::WorkStealing),
    ] {
        let parallel = shard.map(|shard| ParallelConfig { jobs: 3, shard });
        let pp = run(&problem, true, SolverReuse::Session, parallel, DEPTH);
        assert_eq!(
            signature(&pp),
            signature(&baseline),
            "shard {shard:?} diverged from the raw sequential engine"
        );
    }
}

#[test]
fn preprocessing_shrinks_the_encoded_problem() {
    let problem = disjoint_cones_problem();
    let mut engine = BmcEngine::for_problem(problem.clone(), BmcOptions::default());
    // 16 original latches (4 stuck + 3 × 4 counter bits): the union cone
    // keeps the 12 counter bits, sweeps the 3 in-cone stuck latches, and
    // drops the out-of-cone one.
    assert_eq!(engine.model().netlist().num_latches(), 16);
    assert_eq!(engine.working_model().netlist().num_latches(), 12);
    let report = engine.preprocess_report().expect("preprocessing on");
    assert_eq!(report.swept_latches, 3);
    assert_eq!(report.dropped_latches, 1);
    assert!(report.after.gates <= report.before.gates);
    let lift = engine.trace_lift().expect("preprocessing on");
    assert!(!lift.is_identity());
    // Only the dropped latch is don't-care; swept in-cone latches are not.
    assert_eq!(
        lift.dontcare_latches().iter().filter(|&&d| d).count(),
        1,
        "exactly the out-of-cone stuck latch may print x"
    );
    assert!(lift.dontcare_latches()[3]);
    let run = engine.run_collecting();
    assert_eq!(run.num_falsified(), 3);

    // Space contract, on instances the pass can reduce: fewer peak encoded
    // clauses than the raw engine at the same depth bound.
    let mut raw = BmcEngine::for_problem(
        problem,
        BmcOptions {
            preprocess: false,
            ..BmcOptions::default()
        },
    );
    let raw_run = raw.run_collecting();
    assert!(
        run.solver_stats.arena_peak_bytes < raw_run.solver_stats.arena_peak_bytes,
        "reduced encoding must peak below the raw one ({} vs {})",
        run.solver_stats.arena_peak_bytes,
        raw_run.solver_stats.arena_peak_bytes
    );
}

#[test]
fn bounded_prefix_keeps_session_cache_below_fresh() {
    let problem = disjoint_cones_problem();
    let run_with = |reuse: SolverReuse| {
        let mut engine = BmcEngine::for_problem(
            problem.clone(),
            BmcOptions {
                max_depth: 15,
                reuse,
                ..BmcOptions::default()
            },
        );
        engine.run_collecting()
    };
    let session = run_with(SolverReuse::Session);
    let fresh = run_with(SolverReuse::Fresh);
    assert_eq!(signature(&session), signature(&fresh));
    // The sequential session retires each frame after appending it, so its
    // cache peaks at one frame; fresh-per-depth runs keep the whole prefix.
    assert!(session.solver_stats.prefix_peak_clauses > 0);
    assert!(
        session.solver_stats.prefix_peak_clauses * 4 < fresh.solver_stats.prefix_peak_clauses,
        "bounded prefix peak {} vs full prefix {}",
        session.solver_stats.prefix_peak_clauses,
        fresh.solver_stats.prefix_peak_clauses
    );
}
