//! Mutation testing of UNSAT certificates.
//!
//! Real certificates — produced by the CDCL solver's proof log on randomly
//! generated unsatisfiable formulas — must pass the independent checker of
//! `rbmc-proof`, and corrupted ones must not. Each corruption class the
//! checker claims to catch is exercised:
//!
//! - **dropped line**: removing a step the final clause's hints cite breaks
//!   structural coherence;
//! - **flipped literal**: editing a clause body invalidates its (strict,
//!   sequential) hint replay;
//! - **reordered antecedents**: LRAT hints are checked in propagation
//!   order, so a permutation that asks a not-yet-unit clause to propagate
//!   is rejected;
//! - **swapped formula hash**: a certificate is bound to the axiom sequence
//!   it was produced from and cannot be replayed against another formula.
//!
//! Not every mutation of a class is invalid — a flipped literal can weaken
//! a clause that stays RUP, and reversing a symmetric two-hint chain can
//! yield another valid propagation order. The flip sweep therefore asserts
//! over all positions (*some* flip must be rejected), while the reorder
//! sweep only applies mutations that are invalid by construction: citing a
//! clause first when the negated target leaves two or more of its literals
//! unfalsified, which can neither conflict nor propagate. Deterministic
//! fixtures pin one concrete rejected mutation for each class besides.

use proptest::prelude::*;
use refined_bmc::bmc::SharedRecorder;
use refined_bmc::cnf::Lit;
use refined_bmc::proof::{CertificateBundle, ProofError, ProofStep};
use refined_bmc::solver::{SolveResult, Solver, SolverOptions};

fn lit(n: i64) -> Lit {
    Lit::from_dimacs(n)
}

/// Solves `clauses` (DIMACS-style literals) with a proof log attached and
/// returns the episode certificate if the formula is UNSAT.
fn certify(num_vars: usize, clauses: &[Vec<i64>]) -> Option<CertificateBundle> {
    let recorder = SharedRecorder::new();
    let mut solver = Solver::with_options(SolverOptions::default());
    solver.set_proof_log(Box::new(recorder.clone()));
    solver.reserve_vars(num_vars);
    for clause in clauses {
        let lits: Vec<Lit> = clause.iter().map(|&d| lit(d)).collect();
        solver.add_clause(&lits);
    }
    if solver.solve() != SolveResult::Unsat {
        return None;
    }
    Some(recorder.with(rbmc_proof::ProofRecorder::bundle))
}

/// Dense random 1-to-3-literal clauses over a handful of variables: at this
/// density most samples are unsatisfiable, and refuting them takes real
/// propagation (non-trivial certificates). SAT samples are discarded.
fn arb_clauses() -> impl Strategy<Value = (usize, Vec<Vec<i64>>)> {
    (3usize..=5).prop_flat_map(|num_vars| {
        let literal =
            (1..=num_vars, 0u8..=1)
                .prop_map(|(var, neg)| if neg == 1 { -(var as i64) } else { var as i64 });
        let clause = prop::collection::vec(literal, 1..=3).prop_map(|mut c| {
            c.sort_unstable();
            c.dedup();
            c
        });
        (
            Just(num_vars),
            prop::collection::vec(clause, 4 * num_vars..8 * num_vars),
        )
    })
}

/// The ids the final clause's hints cite (the steps whose removal must be
/// structurally fatal).
fn cited_by_final(bundle: &CertificateBundle) -> Vec<u64> {
    bundle.final_clause.hints.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_certificates_check_clean(input in arb_clauses()) {
        let (num_vars, clauses) = input;
        let Some(bundle) = certify(num_vars, &clauses) else {
            return Ok(()); // satisfiable sample
        };
        let stats = bundle.check().expect("genuine certificate must check");
        prop_assert!(stats.steps_verified <= stats.steps_total);
        // And it survives a text round-trip unchanged.
        let text = bundle.to_lrat_text();
        let back = CertificateBundle::from_lrat_text(&text).expect("round-trip parse");
        prop_assert_eq!(&back, &bundle);
        back.check().expect("round-tripped certificate must check");
    }

    #[test]
    fn swapped_formula_hash_is_rejected(input in arb_clauses()) {
        let (num_vars, clauses) = input;
        let Some(mut bundle) = certify(num_vars, &clauses) else {
            return Ok(());
        };
        bundle.formula_hash ^= 0x1;
        prop_assert!(matches!(
            bundle.check(),
            Err(ProofError::FormulaHashMismatch { .. })
        ));
    }

    #[test]
    fn dropping_a_cited_line_is_rejected(input in arb_clauses()) {
        let (num_vars, clauses) = input;
        let Some(bundle) = certify(num_vars, &clauses) else {
            return Ok(());
        };
        // Every step the final clause cites is load-bearing: removing any
        // one of them must be rejected (structurally if the dangling id is
        // caught, semantically otherwise). Dropping an *axiom* would also
        // change the formula hash; keeping the stored hash means the
        // mutation is caught either way — exactly the fail-closed contract.
        for cited in cited_by_final(&bundle) {
            let mut corrupt = bundle.clone();
            corrupt.steps.retain(|s| s.id() != cited);
            prop_assert!(
                corrupt.check().is_err(),
                "dropping cited line {cited} must invalidate the certificate"
            );
        }
    }

    #[test]
    fn some_literal_flip_is_rejected(input in arb_clauses()) {
        let (num_vars, clauses) = input;
        let Some(bundle) = certify(num_vars, &clauses) else {
            return Ok(());
        };
        // Flip each literal of each derived step (and of the final clause)
        // in turn; at least one flip must be rejected. (Not every single
        // flip is invalid — a weakened clause can still be RUP — but a
        // checker that accepts *every* flip checks nothing.)
        let mut rejected = 0usize;
        let mut attempted = 0usize;
        for (si, step) in bundle.steps.iter().enumerate() {
            let ProofStep::Derived { lits, .. } = step else {
                continue;
            };
            for li in 0..lits.len() {
                attempted += 1;
                let mut corrupt = bundle.clone();
                if let ProofStep::Derived { lits, .. } = &mut corrupt.steps[si] {
                    lits[li] = !lits[li];
                }
                rejected += usize::from(corrupt.check().is_err());
            }
        }
        for li in 0..bundle.final_clause.lits.len() {
            attempted += 1;
            let mut corrupt = bundle.clone();
            corrupt.final_clause.lits[li] = !corrupt.final_clause.lits[li];
            rejected += usize::from(corrupt.check().is_err());
        }
        prop_assert!(
            attempted == 0 || rejected > 0,
            "no literal flip among {attempted} was rejected"
        );
    }

    #[test]
    fn front_loading_a_blocked_hint_is_rejected(input in arb_clauses()) {
        let (num_vars, clauses) = input;
        let Some(bundle) = certify(num_vars, &clauses) else {
            return Ok(());
        };
        // Clause bodies by proof line id (ids are unique, so deletions can
        // be ignored for the lookup).
        let mut db: std::collections::HashMap<u64, &[Lit]> =
            std::collections::HashMap::new();
        for step in &bundle.steps {
            match step {
                ProofStep::Axiom { id, lits } | ProofStep::Derived { id, lits, .. } => {
                    db.insert(*id, lits);
                }
                ProofStep::Delete { .. } => {}
            }
        }
        // Targets guaranteed to be propagation-verified: the final clause
        // itself, plus every derived step it cites directly (those are in
        // the checker's marked cone by construction). `None` marks the
        // final clause, `Some(si)` a step index.
        let mut targets: Vec<(Option<usize>, &[Lit], &[u64])> = vec![(
            None,
            &bundle.final_clause.lits[..],
            &bundle.final_clause.hints[..],
        )];
        for (si, step) in bundle.steps.iter().enumerate() {
            if let ProofStep::Derived { id, lits, hints } = step {
                if bundle.final_clause.hints.contains(id) {
                    targets.push((Some(si), lits, hints));
                }
            }
        }
        for (si, lits, hints) in targets {
            if lits.iter().any(|&l| lits.contains(&!l)) {
                continue; // tautological target: vacuously RUP, any order
            }
            for (j, &hint) in hints.iter().enumerate() {
                // Under ¬target alone, the cited clause's literals that the
                // target does not falsify are unassigned or true. With two
                // or more of them, citing this clause *first* can neither
                // conflict nor propagate — the strict sequential checker
                // must reject (HintNotUnit or SatisfiedHint). A genuine
                // certificate never has such a clause in front, so the
                // mutation below is a real reorder, never the identity.
                let nonfalsified = db[&hint]
                    .iter()
                    .filter(|&&c| !lits.contains(&c))
                    .count();
                if nonfalsified < 2 {
                    continue;
                }
                let mut reordered = hints.to_vec();
                reordered.remove(j);
                reordered.insert(0, hint);
                let mut corrupt = bundle.clone();
                match si {
                    None => corrupt.final_clause.hints = reordered,
                    Some(si) => {
                        if let ProofStep::Derived { hints, .. } = &mut corrupt.steps[si] {
                            *hints = reordered;
                        }
                    }
                }
                prop_assert!(
                    corrupt.check().is_err(),
                    "front-loading blocked hint {hint} must be rejected"
                );
            }
        }
    }
}

/// Deterministic fixture for the flip class: one specific literal flip in a
/// hand-built certificate is rejected.
#[test]
fn flipping_one_specific_literal_is_rejected() {
    // a ∧ ¬a, final empty clause.
    let bundle = CertificateBundle {
        formula_hash: {
            let mut rec = rbmc_proof::ProofRecorder::new();
            rec.axiom(1, &[lit(1)]);
            rec.axiom(2, &[lit(-1)]);
            rec.formula_hash()
        },
        steps: vec![
            ProofStep::Axiom {
                id: 1,
                lits: vec![lit(1)],
            },
            ProofStep::Axiom {
                id: 2,
                lits: vec![lit(-1)],
            },
        ],
        final_clause: refined_bmc::proof::FinalClause {
            lits: Vec::new(),
            hints: vec![1, 2],
        },
    };
    bundle.check().expect("fixture is valid");
    let mut corrupt = bundle;
    if let ProofStep::Axiom { lits, .. } = &mut corrupt.steps[1] {
        lits[0] = !lits[0];
    }
    // The flip breaks the hash binding AND the replay; with the hash field
    // updated to match the edited axioms, the replay rejection remains.
    assert!(corrupt.check().is_err());
    corrupt.formula_hash = {
        let mut rec = rbmc_proof::ProofRecorder::new();
        rec.axiom(1, &[lit(1)]);
        rec.axiom(2, &[lit(1)]);
        rec.formula_hash()
    };
    assert!(matches!(
        corrupt.check(),
        Err(ProofError::NoConflict { .. } | ProofError::SatisfiedHint { .. })
    ));
}

/// Deterministic fixture for the reorder class: a propagation chain through
/// a wide clause (unit only after two earlier hints) has exactly one valid
/// order, so the rotated hint list must be rejected.
#[test]
fn one_specific_hint_reorder_is_rejected() {
    // a ∧ b ∧ (¬a ∨ ¬b ∨ c) ∧ ¬c: refuting needs a, b first, then the wide
    // clause (now unit on c), then ¬c conflicts.
    let mut rec = rbmc_proof::ProofRecorder::new();
    rec.axiom(1, &[lit(1)]);
    rec.axiom(2, &[lit(2)]);
    rec.axiom(3, &[lit(-1), lit(-2), lit(3)]);
    rec.axiom(4, &[lit(-3)]);
    rec.finalize(&[], &[1, 2, 3, 4]);
    let good = rec.bundle();
    good.check().expect("propagation order is valid");
    let mut corrupt = good;
    // Ask the wide clause to propagate first: it still has two unassigned
    // literals, so the strict sequential checker must reject.
    corrupt.final_clause.hints = vec![3, 1, 2, 4];
    assert!(matches!(
        corrupt.check(),
        Err(ProofError::HintNotUnit { hint: 3, .. })
    ));
}
