//! # refined-bmc
//!
//! A from-scratch Rust reproduction of *"Refining the SAT Decision Ordering
//! for Bounded Model Checking"* (Wang, Jin, Hachtel, Somenzi — DAC 2004).
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`cnf`] — variables, literals, clauses, formulas, DIMACS I/O.
//! - [`solver`] — a Chaff-style CDCL SAT solver with literal-based VSIDS,
//!   learned-clause deletion, and unsat-core extraction through a simplified
//!   conflict dependency graph (the paper's §3.1).
//! - [`circuit`] — sequential gate-level netlists, AIGs, simulation,
//!   cone-of-influence, BLIF and AIGER I/O.
//! - [`bmc`] — the paper's contribution: Tseitin unrolling with frame-stable
//!   variable numbering, the `refine_order_bmc` engine (Fig. 5), `bmc_score`
//!   ranking (§3.2), and the static/dynamic ordering application (§3.3).
//! - [`proof`] — the independent DRAT/LRAT certificate checker: UNSAT
//!   verdicts of the solver are re-derived from its clausal proof log with
//!   no access to solver internals (`rbmc --proof check`).
//! - [`gens`] — the synthetic benchmark suite standing in for the IBM Formal
//!   Verification benchmarks of §4.
//!
//! # Quickstart
//!
//! Check an invariant on a small sequential circuit:
//!
//! ```
//! use refined_bmc::bmc::{BmcEngine, BmcOptions, BmcOutcome, OrderingStrategy};
//! use refined_bmc::gens::families;
//!
//! // An 8-bit enable-gated counter stepping by 2: it only ever holds even
//! // values, so the property "counter != 21" holds at every depth.
//! let model = families::gated_counter(8, 2, 21);
//! let mut engine = BmcEngine::new(model, BmcOptions {
//!     max_depth: 20,
//!     strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
//!     ..BmcOptions::default()
//! });
//! let outcome = engine.run();
//! assert!(matches!(outcome, BmcOutcome::BoundReached { depth_completed: 20 }));
//! ```

pub use rbmc_circuit as circuit;
pub use rbmc_cnf as cnf;
pub use rbmc_core as bmc;
pub use rbmc_gens as gens;
pub use rbmc_proof as proof;
pub use rbmc_solver as solver;
