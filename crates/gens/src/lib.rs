//! Synthetic benchmark circuits standing in for the IBM Formal Verification
//! benchmarks of the paper's §4.
//!
//! The original 37 industrial model/property instances are no longer
//! distributable, so this crate generates parameterized sequential circuits
//! with the property *structure* the refinement exploits: correlated SAT
//! instances whose UNSAT cores concentrate on a stable sub-cone of the model
//! (control registers, interlocks, invariant-carrying state). Families:
//!
//! | family | failing variant | passing variant |
//! |---|---|---|
//! | gated counter | reaches an even target | odd target unreachable (step = 2) |
//! | shift register | all-ones window observed | twin copies never diverge |
//! | token ring | injection bug double-grants | one-hot token mutual exclusion |
//! | FIFO | unguarded push overflows | guarded counter never overflows |
//! | combination lock | code sequence opens it | impossible code step |
//! | TMR voter | two faults per cycle break it | one fault per cycle is masked |
//! | valid pipeline | token emerges at the end | no token without insertion |
//! | gray counter | binary flips ≥ 3 bits | gray flips exactly 1 bit |
//! | traffic light | sensor bug double-greens | interlock holds |
//! | LFSR | tap state reached | zero state unreachable from seed |
//!
//! Each [`BenchInstance`] carries its ground truth ([`Expectation`]) so the
//! harness can verify verdicts, and [`suite_table1`] assembles 37 named
//! instances mirroring the shape of the paper's Table 1 (a mix of failing
//! properties and passing properties checked up to a depth bound).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod families;
pub mod random;

mod lint_suite;
mod suite;

pub use lint_suite::{lint_suite, LintSpecimen};
pub use suite::{proof_suite, small_suite, suite_table1, BenchInstance, Expectation};
