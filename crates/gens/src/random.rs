//! Seeded random sequential circuits, for fuzzing the whole pipeline.
//!
//! Unlike the named [`families`](crate::families), these models have no
//! designed property — the bad signal is a random function of the state, so
//! ground truth comes from the explicit-state oracle. The generator is
//! deterministic per seed, which keeps failures reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbmc_circuit::{LatchInit, Netlist, Signal};
use rbmc_core::Model;

/// Shape parameters of a random model.
#[derive(Clone, Copy, Debug)]
pub struct RandomModelConfig {
    /// Number of primary inputs (≥ 0).
    pub num_inputs: usize,
    /// Number of registers (≥ 1).
    pub num_latches: usize,
    /// Number of random gates layered on top.
    pub num_gates: usize,
    /// Probability that a latch starts [`LatchInit::Free`].
    pub free_init_prob: f64,
}

impl Default for RandomModelConfig {
    fn default() -> RandomModelConfig {
        RandomModelConfig {
            num_inputs: 2,
            num_latches: 4,
            num_gates: 12,
            free_init_prob: 0.2,
        }
    }
}

/// Generates a random well-formed sequential model from a seed.
///
/// # Examples
///
/// ```
/// use rbmc_gens::random::{random_model, RandomModelConfig};
///
/// let a = random_model(7, RandomModelConfig::default());
/// let b = random_model(7, RandomModelConfig::default());
/// // Determinism: the same seed gives the same circuit.
/// assert_eq!(a.netlist().num_nodes(), b.netlist().num_nodes());
/// assert!(a.netlist().validate().is_ok());
/// ```
pub fn random_model(seed: u64, config: RandomModelConfig) -> Model {
    assert!(config.num_latches >= 1, "need at least one register");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = Netlist::new();
    let mut pool: Vec<Signal> = vec![Signal::TRUE, Signal::FALSE];
    for i in 0..config.num_inputs {
        pool.push(n.add_input(&format!("i{i}")));
    }
    let latches: Vec<Signal> = (0..config.num_latches)
        .map(|i| {
            let init = if rng.gen_bool(config.free_init_prob) {
                LatchInit::Free
            } else if rng.gen_bool(0.5) {
                LatchInit::One
            } else {
                LatchInit::Zero
            };
            let l = n.add_latch(&format!("r{i}"), init);
            pool.push(l);
            l
        })
        .collect();
    for _ in 0..config.num_gates {
        let pick = |rng: &mut StdRng, pool: &Vec<Signal>| {
            let s = pool[rng.gen_range(0..pool.len())];
            if rng.gen_bool(0.3) {
                !s
            } else {
                s
            }
        };
        let gate = match rng.gen_range(0..4) {
            0 => {
                let (a, b) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                n.and2(a, b)
            }
            1 => {
                let (a, b) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                n.or2(a, b)
            }
            2 => {
                let (a, b) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                n.xor2(a, b)
            }
            _ => {
                let (s, a, b) = (
                    pick(&mut rng, &pool),
                    pick(&mut rng, &pool),
                    pick(&mut rng, &pool),
                );
                n.mux(s, a, b)
            }
        };
        pool.push(gate);
    }
    for &l in &latches {
        let next = pool[rng.gen_range(0..pool.len())];
        n.set_next(l, next);
    }
    let bad = loop {
        let candidate = pool[rng.gen_range(0..pool.len())];
        // A constant bad signal makes a degenerate (but legal) property;
        // retry a few times for an interesting one, then accept whatever.
        if !candidate.is_const() || rng.gen_bool(0.1) {
            break candidate;
        }
    };
    Model::new(&format!("rand{seed}"), n, bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_core::oracle::{check_reachable, OracleVerdict};
    use rbmc_core::{BmcEngine, BmcOptions, BmcOutcome, OrderingStrategy};

    #[test]
    fn generator_is_deterministic() {
        let a = random_model(123, RandomModelConfig::default());
        let b = random_model(123, RandomModelConfig::default());
        assert_eq!(a.netlist().num_nodes(), b.netlist().num_nodes());
        assert_eq!(a.bad(), b.bad());
    }

    #[test]
    fn different_seeds_differ() {
        let shapes: Vec<usize> = (0..10)
            .map(|s| {
                random_model(s, RandomModelConfig::default())
                    .netlist()
                    .num_nodes()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = shapes.iter().collect();
        assert!(distinct.len() > 1, "all seeds produced identical shapes");
    }

    #[test]
    fn fuzz_bmc_against_oracle() {
        const DEPTH: usize = 5;
        for seed in 0..30 {
            let model = random_model(seed, RandomModelConfig::default());
            let oracle = check_reachable(&model, DEPTH);
            let mut engine = BmcEngine::new(
                model.clone(),
                BmcOptions {
                    max_depth: DEPTH,
                    strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
                    ..BmcOptions::default()
                },
            );
            match (oracle, engine.run()) {
                (OracleVerdict::FailsAt(d), BmcOutcome::Counterexample { depth, trace }) => {
                    assert_eq!(depth, d, "seed {seed}");
                    assert!(trace.validate(&model).is_ok(), "seed {seed}");
                }
                (OracleVerdict::HoldsUpTo(_), BmcOutcome::BoundReached { .. }) => {}
                (o, b) => panic!("seed {seed}: oracle {o:?} vs bmc {b}"),
            }
        }
    }
}
