//! Adversarial linter specimens: one hand-written AIGER file per diagnostic
//! code of [`rbmc_circuit::lint`], each crafted to trigger **exactly** its
//! intended code and nothing else, plus a clean control specimen.
//!
//! The suite is the linter's precision contract: the runner and CI lint
//! every specimen and compare the reported code set against
//! [`LintSpecimen::expect`], so a lint pass that becomes either noisier
//! (extra codes on a specimen) or blinder (missing the intended code) fails
//! the suite rather than silently shifting the corpus diagnostics.

use rbmc_circuit::lint::{lint_aiger, LintCode, LintReport};

/// One adversarial specimen: an ASCII AIGER file plus the exact diagnostic
/// code set the linter must report for it.
#[derive(Clone, Copy, Debug)]
pub struct LintSpecimen {
    /// Short identifier (stable; used in test output and CI logs).
    pub name: &'static str,
    /// What the specimen models and why it trips its code.
    pub description: &'static str,
    /// The ASCII AIGER text of the specimen.
    pub aag: &'static str,
    /// The exact diagnostic code the linter must report — or `None` for the
    /// clean control specimen, which must lint empty.
    pub expect: Option<LintCode>,
}

impl LintSpecimen {
    /// Lints the specimen's AIGER text.
    pub fn lint(&self) -> LintReport {
        lint_aiger(self.aag.as_bytes())
    }
}

/// The full specimen table: every [`LintCode`] once, then the clean control.
pub fn lint_suite() -> Vec<LintSpecimen> {
    vec![
        LintSpecimen {
            name: "constant_property",
            description: "single output wired to constant true: the property \
                          is decided without solving",
            aag: "aag 0 0 0 0 0 1\n1\n",
            expect: Some(LintCode::ConstantProperty),
        },
        LintSpecimen {
            name: "register_free_coi",
            description: "output reads an input directly; its cone holds no \
                          register, so every depth checks the same formula",
            aag: "aag 1 1 0 0 0 1\n2\n2\n",
            expect: Some(LintCode::RegisterFreeCoi),
        },
        LintSpecimen {
            name: "floating_input",
            description: "an input outside the property cone (the latch only \
                          observes itself)",
            aag: "aag 2 1 1 0 0 1\n2\n4 5\n4\n",
            expect: Some(LintCode::FloatingInput),
        },
        LintSpecimen {
            name: "dead_latch",
            description: "a second latch pair outside the property cone",
            aag: "aag 2 0 2 0 0 1\n2 3\n4 5\n2\n",
            expect: Some(LintCode::DeadLatch),
        },
        LintSpecimen {
            name: "duplicate_property",
            description: "two bad properties share the symbol name `p` (the \
                          latch resets free so no reset diagnostic fires)",
            aag: "aag 1 0 1 0 0 2\n2 3 2\n2\n3\nb0 p\nb1 p\n",
            expect: Some(LintCode::DuplicateProperty),
        },
        LintSpecimen {
            name: "aliased_property",
            description: "two bad properties point at the same literal",
            aag: "aag 1 0 1 0 0 2\n2 3\n2\n2\n",
            expect: Some(LintCode::AliasedProperty),
        },
        LintSpecimen {
            name: "reset_violation",
            description: "the bad literal reads a latch that resets to one: \
                          the property fails at depth 0 by construction",
            aag: "aag 1 0 1 0 0 1\n2 3 1\n2\n",
            expect: Some(LintCode::ResetViolation),
        },
        LintSpecimen {
            name: "non_normalized_and",
            description: "AND gate `6 2 4` lists its smaller fanin first, \
                          violating the lhs > rhs0 >= rhs1 normal form",
            aag: "aag 3 1 1 0 1 1\n2\n4 5\n6\n6 2 4\n",
            expect: Some(LintCode::NonNormalizedAnd),
        },
        LintSpecimen {
            name: "unsupported_section",
            description: "header declares one C (invariant constraint) \
                          section, which the pipeline cannot honour",
            aag: "aag 1 0 1 0 0 1 1\n2 3\n2\n0\n",
            expect: Some(LintCode::UnsupportedSection),
        },
        LintSpecimen {
            name: "clean_toggle",
            description: "self-toggling latch observed by its property: \
                          every lint stays quiet (the control specimen)",
            aag: "aag 1 0 1 0 0 1\n2 3\n2\n",
            expect: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_specimen_triggers_exactly_its_code() {
        for specimen in lint_suite() {
            let report = specimen.lint();
            let expected: Vec<LintCode> = specimen.expect.into_iter().collect();
            assert_eq!(
                report.codes(),
                expected,
                "specimen `{}` ({}) reported {:?}",
                specimen.name,
                specimen.description,
                report.diagnostics()
            );
        }
    }

    #[test]
    fn suite_covers_every_diagnostic_code() {
        let mut covered: Vec<LintCode> = lint_suite().iter().filter_map(|s| s.expect).collect();
        covered.sort_unstable();
        covered.dedup();
        let all = [
            LintCode::ConstantProperty,
            LintCode::RegisterFreeCoi,
            LintCode::FloatingInput,
            LintCode::DeadLatch,
            LintCode::DuplicateProperty,
            LintCode::AliasedProperty,
            LintCode::ResetViolation,
            LintCode::NonNormalizedAnd,
            LintCode::UnsupportedSection,
        ];
        assert_eq!(covered, all, "one specimen per diagnostic code");
    }

    #[test]
    fn specimen_names_are_unique() {
        let mut names: Vec<&str> = lint_suite().iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
