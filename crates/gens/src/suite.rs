//! The 37-instance benchmark suite mirroring the shape of the paper's
//! Table 1.

use rbmc_core::Model;

use crate::families;

/// Ground truth for one benchmark instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The property fails; the minimal counterexample has this length.
    FailsAt(usize),
    /// The property holds at every depth the harness will try.
    Holds,
}

/// One row of the benchmark table: a model, its ground truth, and the depth
/// bound the harness should explore (the analog of Table 1's `(k)` column).
#[derive(Debug)]
pub struct BenchInstance {
    /// Table name (ordinal prefix mirrors the paper's `01_b`, `02_1_b1`, …).
    pub name: String,
    /// The model/property pair.
    pub model: Model,
    /// Ground truth.
    pub expectation: Expectation,
    /// Depth bound for passing properties (failing ones stop at the
    /// counterexample).
    pub max_depth: usize,
}

impl BenchInstance {
    fn new(name: &str, model: Model, expectation: Expectation, max_depth: usize) -> BenchInstance {
        BenchInstance {
            name: name.to_string(),
            model,
            expectation,
            max_depth,
        }
    }

    /// `T` for passing properties, `F` for failing ones (Table 1's second
    /// column).
    pub fn verdict_label(&self) -> &'static str {
        match self.expectation {
            Expectation::FailsAt(_) => "F",
            Expectation::Holds => "T",
        }
    }
}

/// The full 37-instance suite standing in for the IBM benchmark set used in
/// §4 (see DESIGN.md for the substitution rationale). Instances mix failing
/// (`F`) and passing (`T`) properties across ten circuit families, with
/// search-heavy inputs so decision ordering matters.
pub fn suite_table1() -> Vec<BenchInstance> {
    use Expectation::{FailsAt, Holds};
    let mut v: Vec<BenchInstance> = Vec::with_capacity(37);
    let mut add = |name: &str, model: Model, e: Expectation, d: usize| {
        v.push(BenchInstance::new(name, model, e, d));
    };

    // Combination locks: the search-heavy failing family (+ passing twins).
    add(
        "01_lock8",
        families::combination_lock(&[2, 1, 3, 0, 2, 3, 1, 2], 2),
        FailsAt(8),
        12,
    );
    add(
        "02_1_lock10",
        families::combination_lock(&[1, 2, 0, 3, 1, 0, 2, 3, 0, 1], 2),
        FailsAt(10),
        14,
    );
    add(
        "02_2_lock12",
        families::combination_lock(&[3, 1, 0, 2, 3, 0, 1, 2, 3, 1, 0, 2], 2),
        FailsAt(12),
        16,
    );
    add(
        "02_3_lock14",
        families::combination_lock(&[1, 3, 2, 0, 1, 2, 3, 0, 2, 1, 0, 3, 1, 2], 2),
        FailsAt(14),
        18,
    );
    add(
        "03_lock10_imp",
        families::combination_lock_impossible(&[1, 2, 0, 3, 1, 0, 2, 3, 0, 1], 2),
        Holds,
        14,
    );

    // Token rings: mutual exclusion (passing) and injection bugs (failing).
    add("05_ring8", families::token_ring(8), Holds, 16);
    add("06_ring12", families::token_ring(12), Holds, 14);
    add(
        "08_1_ring8_bug4",
        families::token_ring_buggy(8, 4),
        FailsAt(5),
        10,
    );
    add(
        "08_2_ring12_bug6",
        families::token_ring_buggy(12, 6),
        FailsAt(7),
        12,
    );

    // Shift registers.
    add(
        "09_shift12_ones",
        families::shift_all_ones(12),
        FailsAt(12),
        16,
    );
    add("10_1_drift4x6", families::drifting_twin(4, 6), Holds, 16);
    add("10_2_drift4x8", families::drifting_twin(4, 8), Holds, 14);
    add("11_1_shift10_twin", families::shift_twin(10), Holds, 18);
    add("11_2_shift14_twin", families::shift_twin(14), Holds, 16);

    // FIFOs.
    add("12_fifo8_guard", families::fifo_guarded(3), Holds, 16);
    add("13_fifo16_guard", families::fifo_guarded(4), Holds, 14);
    add(
        "14_1_fifo8_over",
        families::fifo_unguarded(3),
        FailsAt(9),
        12,
    );
    add(
        "14_2_fifo16_over",
        families::fifo_unguarded(4),
        FailsAt(17),
        20,
    );

    // Gated counters.
    add(
        "15_cnt8",
        families::gated_counter(8, 1, 11),
        FailsAt(11),
        15,
    );
    add(
        "16_1_cnt10",
        families::gated_counter(10, 1, 13),
        FailsAt(13),
        16,
    );
    add(
        "17_1_cnt12_odd",
        families::gated_counter(12, 2, 15),
        Holds,
        14,
    );
    add(
        "17_2_cnt12",
        families::gated_counter(12, 1, 14),
        FailsAt(14),
        18,
    );

    // TMR voters.
    add("18_tmr3_f1", families::tmr_voter(3, 1), Holds, 12);
    add("19_tmr4_f1", families::tmr_voter(4, 1), Holds, 10);
    add("20_tmr3_f2", families::tmr_voter(3, 2), FailsAt(1), 8);

    // Pipelines.
    add("21_pipe12", families::pipeline_emerge(12), FailsAt(12), 16);
    add("22_pipe16", families::pipeline_emerge(16), FailsAt(16), 20);
    add(
        "23_pipe12_ghost",
        families::pipeline_no_ghost(12),
        Holds,
        16,
    );

    // Counters under flip bounds (binary fails, gray holds).
    add(
        "24_1_bin8_flip3",
        families::binary_flips(8, 3),
        FailsAt(3),
        12,
    );
    add(
        "24_2_bin8_flip4",
        families::binary_flips(8, 4),
        FailsAt(7),
        14,
    );
    add("25_gray8", families::gray_flips(8), Holds, 16);

    // Drifting cores: the adversarial case for the static refinement.
    add("26_1_drift8x6", families::drifting_twin(8, 6), Holds, 16);
    add("26_2_drift8x8", families::drifting_twin(8, 8), Holds, 14);

    // Traffic controllers (the bug window opens when the timer saturates).
    add("27_traffic3", families::traffic_interlock(3), Holds, 18);
    add(
        "28_traffic3_bug",
        families::traffic_buggy(3),
        FailsAt(8),
        12,
    );

    // LFSRs.
    add("29_lfsr10_zero", families::lfsr(10, &[9, 6], 0), Holds, 16);
    add(
        "31_1_lfsr10",
        families::lfsr(10, &[9, 6], 4),
        FailsAt(2),
        10,
    );

    assert_eq!(v.len(), 37, "the suite mirrors Table 1's 37 instances");
    v
}

/// UNSAT-heavy specimens for the proving engines: every instance **holds**,
/// with a counterexample-free frontier at every depth, so BMC alone can
/// never close them — they exist to exercise IC3 / k-induction proofs (and
/// the core-ordered assumption ranking) rather than bug hunting. Exported
/// into the corpus alongside [`suite_table1`] / [`small_suite`].
pub fn proof_suite() -> Vec<BenchInstance> {
    use Expectation::Holds;
    vec![
        // Token conservation across capture/release: the proof needs the
        // quadratic one-hotness invariant over token AND lock registers.
        BenchInstance::new("p1_mutex4", families::mutex_arbiter(4), Holds, 12),
        // The counter saturates at 10; reaching 12 is unreachable, but only
        // an inductive proof (carving out the band above the cap) shows it.
        BenchInstance::new(
            "p2_satcnt4",
            families::saturating_counter(4, 10, 12),
            Holds,
            16,
        ),
        // Sticky error register guarded by a per-stage relational invariant
        // (twin data chains agree under shared stalls).
        BenchInstance::new("p3_hshake6", families::pipelined_handshake(6), Holds, 12),
        // A wider mutex: more stations, quadratically more invariant
        // clauses — the stress case for the assumption ordering.
        BenchInstance::new("p4_mutex6", families::mutex_arbiter(6), Holds, 10),
    ]
}

/// A fast subset (small parameters) for unit tests and smoke runs.
pub fn small_suite() -> Vec<BenchInstance> {
    use Expectation::{FailsAt, Holds};
    vec![
        BenchInstance::new(
            "s1_lock4",
            families::combination_lock(&[2, 0, 3, 1], 2),
            FailsAt(4),
            8,
        ),
        BenchInstance::new(
            "s2_lock3_imp",
            families::combination_lock_impossible(&[2, 0, 3], 2),
            Holds,
            8,
        ),
        BenchInstance::new("s3_ring5", families::token_ring(5), Holds, 8),
        BenchInstance::new(
            "s4_ring4_bug2",
            families::token_ring_buggy(4, 2),
            FailsAt(3),
            8,
        ),
        BenchInstance::new("s5_shift5", families::shift_all_ones(5), FailsAt(5), 8),
        BenchInstance::new("s6_twin4", families::shift_twin(4), Holds, 8),
        BenchInstance::new("s7_fifo4_over", families::fifo_unguarded(2), FailsAt(5), 8),
        BenchInstance::new("s8_fifo4_guard", families::fifo_guarded(2), Holds, 8),
        BenchInstance::new("s9_tmr2_f1", families::tmr_voter(2, 1), Holds, 6),
        BenchInstance::new("s10_pipe4", families::pipeline_emerge(4), FailsAt(4), 8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_suite_has_37_instances_with_unique_names() {
        let suite = suite_table1();
        assert_eq!(suite.len(), 37);
        let mut names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 37, "names must be unique");
    }

    #[test]
    fn suite_mixes_passing_and_failing() {
        let suite = suite_table1();
        let failing = suite
            .iter()
            .filter(|b| matches!(b.expectation, Expectation::FailsAt(_)))
            .count();
        let passing = suite.len() - failing;
        assert!(
            failing >= 10,
            "at least 10 failing instances, got {failing}"
        );
        assert!(
            passing >= 10,
            "at least 10 passing instances, got {passing}"
        );
    }

    #[test]
    fn failing_depths_fit_in_bounds() {
        for b in suite_table1() {
            if let Expectation::FailsAt(d) = b.expectation {
                assert!(
                    d <= b.max_depth,
                    "{}: counterexample depth {d} beyond bound {}",
                    b.name,
                    b.max_depth
                );
            }
        }
    }

    #[test]
    fn all_models_validate() {
        for b in suite_table1() {
            assert!(b.model.netlist().validate().is_ok(), "{}", b.name);
        }
        for b in small_suite() {
            assert!(b.model.netlist().validate().is_ok(), "{}", b.name);
        }
        for b in proof_suite() {
            assert!(b.model.netlist().validate().is_ok(), "{}", b.name);
        }
    }

    #[test]
    fn proof_suite_is_all_holding() {
        let suite = proof_suite();
        assert!(suite.len() >= 3);
        for b in &suite {
            assert_eq!(b.expectation, Expectation::Holds, "{}", b.name);
            assert_eq!(b.verdict_label(), "T", "{}", b.name);
        }
        let mut names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len(), "names must be unique");
    }

    #[test]
    fn verdict_labels() {
        let suite = small_suite();
        assert_eq!(suite[0].verdict_label(), "F");
        assert_eq!(suite[1].verdict_label(), "T");
    }
}
