//! AIGER corpus export: the synthetic suite as `.aag`/`.aig` files.
//!
//! The `rbmc` corpus runner checks directories of AIGER benchmarks
//! (HWMCC-style). When no real benchmark set is present, this module
//! exports the gens suite as a self-generated fallback corpus: every
//! [`BenchInstance`] becomes an ASCII `.aag` file whose single bad-state
//! (`B`) line is the instance's property, and one hand-built
//! **multi-property** instance ([`multi_even_counter`]) is written in both
//! encodings, so a corpus sweep exercises the binary reader and the
//! per-property session machinery end-to-end.

use std::io;
use std::path::{Path, PathBuf};

use rbmc_circuit::aiger::{write_aag, write_aig};
use rbmc_circuit::{Aig, Signal};
use rbmc_core::{ProblemBuilder, VerificationProblem};

use crate::{BenchInstance, Expectation};

/// Lowers a problem to an AIG, attaching every property as a bad-state
/// declaration (so the AIGER file round-trips into the same property set).
pub fn problem_to_aig(problem: &VerificationProblem) -> Aig {
    let lowered = Aig::from_netlist(problem.netlist());
    let mut aig = lowered.aig;
    let read = |s: Signal| {
        let lit = lowered.map[s.node().index()];
        if s.is_inverted() {
            !lit
        } else {
            lit
        }
    };
    for prop in problem.properties() {
        aig.add_bad(prop.name(), read(prop.bad()));
    }
    aig
}

/// The corpus's multi-property instance: a 4-bit enable-gated counter that
/// steps by 2, with one falsifiable property (`reach6`, counterexample of
/// length 3) and one property that holds at every depth (`reach7`, the
/// counter only ever holds even values).
pub fn multi_even_counter() -> VerificationProblem {
    let mut n = rbmc_circuit::Netlist::new();
    let en = n.add_input("en");
    let bits: Vec<Signal> = (0..4)
        .map(|i| n.add_latch(&format!("b{i}"), rbmc_circuit::LatchInit::Zero))
        .collect();
    let plus_one = n.bus_increment(&bits);
    let plus_two = n.bus_increment(&plus_one);
    let nexts: Vec<Signal> = bits
        .iter()
        .zip(&plus_two)
        .map(|(&b, &nx)| n.mux(en, nx, b))
        .collect();
    for (&b, &nx) in bits.iter().zip(&nexts) {
        n.set_next(b, nx);
    }
    let reach6 = n.bus_eq_const(&bits, 6);
    let reach7 = n.bus_eq_const(&bits, 7);
    ProblemBuilder::new("multi_even_counter", n)
        .property("reach6", reach6)
        .property("reach7", reach7)
        .build()
}

/// One exported corpus file.
#[derive(Debug, Clone)]
pub struct CorpusFile {
    /// Where the file was written.
    pub path: PathBuf,
    /// Number of properties in the file.
    pub num_properties: usize,
}

/// Exports `instances` (plus the [`multi_even_counter`] twin files) as an
/// AIGER corpus under `dir`, creating it if needed. Each instance becomes
/// `<name>.aag`; the multi-property instance is written as both
/// `zz_multi_even_counter.aag` and `.aig` so directory sweeps cover both
/// encodings. Ground truth rides along as an AIGER comment section (the
/// parser ignores it; humans and debugging sessions appreciate it).
///
/// # Errors
///
/// Returns the first I/O error encountered.
pub fn export_corpus(dir: &Path, instances: &[BenchInstance]) -> io::Result<Vec<CorpusFile>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for instance in instances {
        let problem = ProblemBuilder::from_model(&instance.model).build();
        let mut text = write_aag(&problem_to_aig(&problem));
        let expect = match instance.expectation {
            Expectation::FailsAt(d) => format!("fails_at {d}"),
            Expectation::Holds => "holds".to_string(),
        };
        text.push_str(&format!(
            "c\nexpect: {expect}\nmax_depth: {}\n",
            instance.max_depth
        ));
        let path = dir.join(format!("{}.aag", instance.name));
        std::fs::write(&path, text)?;
        written.push(CorpusFile {
            path,
            num_properties: 1,
        });
    }
    let multi = multi_even_counter();
    let aig = problem_to_aig(&multi);
    let aag_path = dir.join("zz_multi_even_counter.aag");
    std::fs::write(&aag_path, write_aag(&aig))?;
    written.push(CorpusFile {
        path: aag_path,
        num_properties: multi.num_properties(),
    });
    let aig_path = dir.join("zz_multi_even_counter.aig");
    std::fs::write(&aig_path, write_aig(&aig))?;
    written.push(CorpusFile {
        path: aig_path,
        num_properties: multi.num_properties(),
    });
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_core::{BmcEngine, BmcOptions, PropertyVerdict};

    #[test]
    fn multi_even_counter_ground_truth() {
        let problem = multi_even_counter();
        assert_eq!(problem.num_properties(), 2);
        let mut engine = BmcEngine::for_problem(
            problem,
            BmcOptions {
                max_depth: 8,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        match &run.property("reach6").unwrap().verdict {
            PropertyVerdict::Falsified { depth, .. } => assert_eq!(*depth, 3),
            other => panic!("reach6: expected falsified, got {other}"),
        }
        match &run.property("reach7").unwrap().verdict {
            PropertyVerdict::OpenAt { depth } => assert_eq!(*depth, 8),
            other => panic!("reach7: expected open, got {other}"),
        }
    }

    #[test]
    fn problem_roundtrips_through_aiger() {
        // Lower, serialize, re-ingest in both encodings: the property set
        // and the verdicts survive.
        let problem = multi_even_counter();
        let aig = problem_to_aig(&problem);
        for bytes in [write_aag(&aig).into_bytes(), write_aig(&aig)] {
            let back = VerificationProblem::from_aiger("back", &bytes).unwrap();
            assert_eq!(back.num_properties(), 2);
            assert_eq!(back.property(0).name(), "reach6");
            let mut engine = BmcEngine::for_problem(
                back,
                BmcOptions {
                    max_depth: 6,
                    ..BmcOptions::default()
                },
            );
            let run = engine.run_collecting();
            assert!(matches!(
                run.property("reach6").unwrap().verdict,
                PropertyVerdict::Falsified { depth: 3, .. }
            ));
            assert!(matches!(
                run.property("reach7").unwrap().verdict,
                PropertyVerdict::OpenAt { depth: 6 }
            ));
        }
    }

    #[test]
    fn export_writes_suite_and_twins() {
        let dir = std::env::temp_dir().join(format!("rbmc_corpus_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = export_corpus(&dir, &crate::small_suite()).unwrap();
        // Suite files plus the two multi-property twins.
        assert_eq!(written.len(), crate::small_suite().len() + 2);
        for f in &written {
            assert!(f.path.exists(), "{} missing", f.path.display());
            let bytes = std::fs::read(&f.path).unwrap();
            let problem = VerificationProblem::from_aiger("roundtrip", &bytes).unwrap();
            assert_eq!(problem.num_properties(), f.num_properties);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
