//! The parameterized circuit families.
//!
//! Every constructor returns a [`Model`] whose bad-state signal encodes the
//! property under check; see the crate docs for the family/variant table.

use rbmc_circuit::{LatchInit, Netlist, Signal};
use rbmc_core::Model;

/// A `width`-bit counter with an enable input, stepping by `step`; bad when
/// the count equals `target`.
///
/// With `step = 1` the property fails exactly at depth `target`. With
/// `step = 2` and an odd `target` the property holds: the LSB is an
/// invariant, and UNSAT cores concentrate on it — the situation of the
/// paper's Fig. 3/4.
pub fn gated_counter(width: usize, step: u64, target: u64) -> Model {
    let mut n = Netlist::new();
    let en = n.add_input("en");
    let bits: Vec<Signal> = (0..width)
        .map(|i| n.add_latch(&format!("c{i}"), LatchInit::Zero))
        .collect();
    // adder: bits + step (constant), gated by en.
    let step_bits: Vec<Signal> = (0..width)
        .map(|i| {
            if step >> i & 1 == 1 {
                Signal::TRUE
            } else {
                Signal::FALSE
            }
        })
        .collect();
    let sum = n.bus_add(&bits, &step_bits);
    for (&b, &s) in bits.iter().zip(&sum) {
        let next = n.mux(en, s, b);
        n.set_next(b, next);
    }
    let bad = n.bus_eq_const(&bits, target);
    Model::new(&format!("counter{width}x{step}@{target}"), n, bad)
}

/// A `width`-stage shift register fed by an input; bad when the whole window
/// is ones. Fails exactly at depth `width` (the earliest frame by which
/// `width` ones have been shifted in).
pub fn shift_all_ones(width: usize) -> Model {
    let mut n = Netlist::new();
    let i = n.add_input("in");
    let mut taps = Vec::with_capacity(width);
    let mut prev = i;
    for j in 0..width {
        let s = n.add_latch(&format!("s{j}"), LatchInit::Zero);
        n.set_next(s, prev);
        taps.push(s);
        prev = s;
    }
    let bad = n.and_many(&taps);
    Model::new(&format!("shift{width}_ones"), n, bad)
}

/// Two identical shift registers fed by the same input; bad when any pair of
/// corresponding taps disagrees. Holds at every depth; the UNSAT core is the
/// pairwise-equality invariant across both copies.
pub fn shift_twin(width: usize) -> Model {
    let mut n = Netlist::new();
    let i = n.add_input("in");
    let mut mismatch = Vec::with_capacity(width);
    let mut prev_a = i;
    let mut prev_b = i;
    for j in 0..width {
        let a = n.add_latch(&format!("a{j}"), LatchInit::Zero);
        let b = n.add_latch(&format!("b{j}"), LatchInit::Zero);
        n.set_next(a, prev_a);
        n.set_next(b, prev_b);
        mismatch.push(n.xor2(a, b));
        prev_a = a;
        prev_b = b;
    }
    let bad = n.or_many(&mismatch);
    Model::new(&format!("shift{width}_twin"), n, bad)
}

/// An `n`-station token ring with request inputs; a station grants when it
/// holds the token and its request is high; bad when two stations grant in
/// the same cycle. The token is one-hot initialized and rotates, so the
/// property holds.
pub fn token_ring(stations: usize) -> Model {
    let mut netlist = Netlist::new();
    let reqs: Vec<Signal> = (0..stations)
        .map(|i| netlist.add_input(&format!("r{i}")))
        .collect();
    let tokens: Vec<Signal> = (0..stations)
        .map(|i| {
            let init = if i == 0 {
                LatchInit::One
            } else {
                LatchInit::Zero
            };
            netlist.add_latch(&format!("t{i}"), init)
        })
        .collect();
    for i in 0..stations {
        let prev = tokens[(i + stations - 1) % stations];
        netlist.set_next(tokens[i], prev);
    }
    let grants: Vec<Signal> = tokens
        .iter()
        .zip(&reqs)
        .map(|(&t, &r)| netlist.and2(t, r))
        .collect();
    let mut doubles = Vec::new();
    for i in 0..stations {
        for j in i + 1..stations {
            doubles.push(netlist.and2(grants[i], grants[j]));
        }
    }
    let bad = netlist.or_many(&doubles);
    Model::new(&format!("ring{stations}"), netlist, bad)
}

/// A token ring with an injection bug: station 0 *also* receives a token
/// whenever its request has been high for `fuse` consecutive cycles. Two
/// tokens then coexist and a double grant becomes reachable; the property
/// fails at depth `fuse + 1`.
pub fn token_ring_buggy(stations: usize, fuse: usize) -> Model {
    assert!(fuse >= 1, "fuse must be at least 1");
    let mut netlist = Netlist::new();
    let reqs: Vec<Signal> = (0..stations)
        .map(|i| netlist.add_input(&format!("r{i}")))
        .collect();
    let tokens: Vec<Signal> = (0..stations)
        .map(|i| {
            let init = if i == 0 {
                LatchInit::One
            } else {
                LatchInit::Zero
            };
            netlist.add_latch(&format!("t{i}"), init)
        })
        .collect();
    // Saturating run-length recognizer for r0: chain of `fuse` latches.
    let mut run = Signal::TRUE;
    for j in 0..fuse {
        let l = netlist.add_latch(&format!("run{j}"), LatchInit::Zero);
        let next = netlist.and2(run, reqs[0]);
        netlist.set_next(l, next);
        run = l;
    }
    for i in 0..stations {
        let prev = tokens[(i + stations - 1) % stations];
        let next = if i == 0 {
            // Injection bug: the fuse OR the rotating predecessor.
            netlist.or2(prev, run)
        } else {
            prev
        };
        netlist.set_next(tokens[i], next);
    }
    let grants: Vec<Signal> = tokens
        .iter()
        .zip(&reqs)
        .map(|(&t, &r)| netlist.and2(t, r))
        .collect();
    let mut doubles = Vec::new();
    for i in 0..stations {
        for j in i + 1..stations {
            doubles.push(netlist.and2(grants[i], grants[j]));
        }
    }
    let bad = netlist.or_many(&doubles);
    Model::new(&format!("ring{stations}_bug{fuse}"), netlist, bad)
}

/// A FIFO occupancy tracker with `2^ptr_bits` slots. Push/pop inputs are
/// guarded by full/empty, so the count can never exceed the capacity: the
/// overflow property holds.
pub fn fifo_guarded(ptr_bits: usize) -> Model {
    fifo(ptr_bits, true)
}

/// The same FIFO with the full-guard removed: pushing every cycle overflows;
/// the property fails at depth `2^ptr_bits + 1`.
pub fn fifo_unguarded(ptr_bits: usize) -> Model {
    fifo(ptr_bits, false)
}

fn fifo(ptr_bits: usize, guarded: bool) -> Model {
    let capacity = 1u64 << ptr_bits;
    let width = ptr_bits + 2; // room to represent capacity + 1
    let mut n = Netlist::new();
    let push = n.add_input("push");
    let pop = n.add_input("pop");
    let count: Vec<Signal> = (0..width)
        .map(|i| n.add_latch(&format!("cnt{i}"), LatchInit::Zero))
        .collect();
    let full = n.bus_eq_const(&count, capacity);
    let empty = n.bus_eq_const(&count, 0);
    let do_push = if guarded { n.and2(push, !full) } else { push };
    let do_pop = {
        let p = n.and2(pop, !empty);
        // pushing and popping together cancel; prioritize push for simplicity
        n.and2(p, !do_push)
    };
    // count' = count + do_push - do_pop. Incrementer and decrementer muxed.
    let inc = n.bus_increment(&count);
    let dec = {
        // decrement = add all-ones (two's complement -1).
        let minus1: Vec<Signal> = (0..width).map(|_| Signal::TRUE).collect();
        n.bus_add(&count, &minus1)
    };
    for (i, &c) in count.iter().enumerate() {
        let after_push = n.mux(do_push, inc[i], c);
        let next = n.mux(do_pop, dec[i], after_push);
        n.set_next(c, next);
    }
    let bad = n.bus_eq_const(&count, capacity + 1);
    let name = format!(
        "fifo{}{}",
        capacity,
        if guarded { "_guarded" } else { "_overflow" }
    );
    Model::new(&name, n, bad)
}

/// A combination lock: a state counter advances only when the `code_bits`
/// input matches the next code symbol, and resets otherwise. Bad when fully
/// unlocked; fails exactly at depth `code.len()` (the prefix-free code makes
/// earlier unlocks impossible). This is the search-heavy family: the SAT
/// solver must discover the code.
pub fn combination_lock(code: &[u8], code_bits: usize) -> Model {
    assert!(code_bits <= 8 && !code.is_empty());
    let len = code.len();
    let state_bits = usize::BITS as usize - (len + 1).leading_zeros() as usize;
    let mut n = Netlist::new();
    let digit: Vec<Signal> = (0..code_bits)
        .map(|i| n.add_input(&format!("d{i}")))
        .collect();
    let state: Vec<Signal> = (0..state_bits)
        .map(|i| n.add_latch(&format!("st{i}"), LatchInit::Zero))
        .collect();
    // match_j = (state == j) ∧ (digit == code[j])
    let inc = n.bus_increment(&state);
    let mut advance_terms = Vec::with_capacity(len);
    for (j, &symbol) in code.iter().enumerate() {
        let at_j = n.bus_eq_const(&state, j as u64);
        let sym_ok = n.bus_eq_const(&digit, u64::from(symbol));
        advance_terms.push(n.and2(at_j, sym_ok));
    }
    let advance = n.or_many(&advance_terms);
    let unlocked = n.bus_eq_const(&state, len as u64);
    // Once unlocked, stay unlocked; otherwise advance or reset.
    for (i, &s) in state.iter().enumerate() {
        let reset_or_inc = n.mux(advance, inc[i], Signal::FALSE);
        let next = n.mux(unlocked, s, reset_or_inc);
        n.set_next(s, next);
    }
    Model::new(&format!("lock{len}x{code_bits}"), n, unlocked)
}

/// A combination lock whose final step is impossible (it requires the digit
/// to equal two different symbols at once), so it can never open: holds.
pub fn combination_lock_impossible(code: &[u8], code_bits: usize) -> Model {
    assert!(code.len() >= 2);
    let len = code.len();
    let state_bits = usize::BITS as usize - (len + 1).leading_zeros() as usize;
    let mut n = Netlist::new();
    let digit: Vec<Signal> = (0..code_bits)
        .map(|i| n.add_input(&format!("d{i}")))
        .collect();
    let state: Vec<Signal> = (0..state_bits)
        .map(|i| n.add_latch(&format!("st{i}"), LatchInit::Zero))
        .collect();
    let inc = n.bus_increment(&state);
    let mut advance_terms = Vec::with_capacity(len);
    for (j, &symbol) in code.iter().enumerate() {
        let at_j = n.bus_eq_const(&state, j as u64);
        let sym_ok = if j == len - 1 {
            // Impossible step: digit == symbol ∧ digit == symbol+1.
            let a = n.bus_eq_const(&digit, u64::from(symbol));
            let b = n.bus_eq_const(&digit, u64::from(symbol) + 1);
            n.and2(a, b)
        } else {
            n.bus_eq_const(&digit, u64::from(symbol))
        };
        advance_terms.push(n.and2(at_j, sym_ok));
    }
    let advance = n.or_many(&advance_terms);
    let unlocked = n.bus_eq_const(&state, len as u64);
    for (i, &s) in state.iter().enumerate() {
        let reset_or_inc = n.mux(advance, inc[i], Signal::FALSE);
        let next = n.mux(unlocked, s, reset_or_inc);
        n.set_next(s, next);
    }
    Model::new(&format!("lock{len}x{code_bits}_imp"), n, unlocked)
}

/// Triple-modular-redundant `width`-bit counter with feedback voting. A
/// fault input can corrupt at most `faults` copies per cycle (selected by
/// decoded select inputs). With `faults = 1` the majority always outvotes
/// the corruption and the three copies can never become pairwise distinct:
/// holds. With `faults = 2` the property fails within a few cycles.
pub fn tmr_voter(width: usize, faults: usize) -> Model {
    assert!((1..=2).contains(&faults));
    let mut n = Netlist::new();
    let en = n.add_input("en");
    // Fault controls: one flip target selector per allowed fault.
    let mut flip_for_copy: Vec<Vec<Signal>> = vec![Vec::new(); 3];
    for f in 0..faults {
        let s0 = n.add_input(&format!("f{f}_s0"));
        let s1 = n.add_input(&format!("f{f}_s1"));
        let hit = n.add_input(&format!("f{f}_hit"));
        // Decode: copy 0 = !s1 & !s0, copy 1 = !s1 & s0, copy 2 = s1 & !s0.
        let c0 = n.and_many(&[!s1, !s0, hit]);
        let c1 = n.and_many(&[!s1, s0, hit]);
        let c2 = n.and_many(&[s1, !s0, hit]);
        flip_for_copy[0].push(c0);
        flip_for_copy[1].push(c1);
        flip_for_copy[2].push(c2);
    }
    let copies: Vec<Vec<Signal>> = (0..3)
        .map(|c| {
            (0..width)
                .map(|i| n.add_latch(&format!("c{c}b{i}"), LatchInit::Zero))
                .collect()
        })
        .collect();
    // Voted current state, bit per bit: maj(c0, c1, c2).
    let voted: Vec<Signal> = (0..width)
        .map(|i| {
            let ab = n.and2(copies[0][i], copies[1][i]);
            let bc = n.and2(copies[1][i], copies[2][i]);
            let ac = n.and2(copies[0][i], copies[2][i]);
            n.or_many(&[ab, bc, ac])
        })
        .collect();
    // Common next state: voted + en (gated increment of the voted value).
    let inc = n.bus_increment(&voted);
    let common_next: Vec<Signal> = (0..width).map(|i| n.mux(en, inc[i], voted[i])).collect();
    for (c, copy) in copies.iter().enumerate() {
        for (i, &bit) in copy.iter().enumerate() {
            // Fault `f` flips bit `f` of the written value, so two
            // concurrent faults on different copies produce three pairwise
            // distinct values (one clean, two differently corrupted).
            let corrupted = match flip_for_copy[c].get(i) {
                Some(&flip) => n.xor2(common_next[i], flip),
                None => common_next[i],
            };
            n.set_next(bit, corrupted);
        }
    }
    // Bad: the three copies pairwise distinct.
    let d01 = {
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.xor2(copies[0][i], copies[1][i]))
            .collect();
        n.or_many(&bits)
    };
    let d12 = {
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.xor2(copies[1][i], copies[2][i]))
            .collect();
        n.or_many(&bits)
    };
    let d02 = {
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.xor2(copies[0][i], copies[2][i]))
            .collect();
        n.or_many(&bits)
    };
    let bad = n.and_many(&[d01, d12, d02]);
    Model::new(&format!("tmr{width}f{faults}"), n, bad)
}

/// A `stages`-deep valid-bit pipeline with a stall input. The failing
/// variant asks whether a token inserted at the front can emerge at the last
/// stage: it can, at depth `stages` (insert, then let it march).
pub fn pipeline_emerge(stages: usize) -> Model {
    let mut n = Netlist::new();
    let insert = n.add_input("insert");
    let stall = n.add_input("stall");
    let mut valid = Vec::with_capacity(stages);
    let mut prev = insert;
    for j in 0..stages {
        let v = n.add_latch(&format!("v{j}"), LatchInit::Zero);
        let next = n.mux(stall, v, prev);
        n.set_next(v, next);
        valid.push(v);
        prev = v;
    }
    let bad = valid[stages - 1];
    Model::new(&format!("pipe{stages}_emerge"), n, bad)
}

/// The passing pipeline variant: a sticky "ever inserted" bit accompanies
/// the data; bad is a token at the last stage without any insertion ever —
/// unreachable, and the UNSAT core must thread the whole pipeline.
pub fn pipeline_no_ghost(stages: usize) -> Model {
    let mut n = Netlist::new();
    let insert = n.add_input("insert");
    let stall = n.add_input("stall");
    let ever = n.add_latch("ever", LatchInit::Zero);
    let ever_next = n.or2(ever, insert);
    n.set_next(ever, ever_next);
    let mut valid = Vec::with_capacity(stages);
    let mut prev = insert;
    for j in 0..stages {
        let v = n.add_latch(&format!("v{j}"), LatchInit::Zero);
        let next = n.mux(stall, v, prev);
        n.set_next(v, next);
        valid.push(v);
        prev = v;
    }
    let bad = n.and2(valid[stages - 1], !ever_next);
    Model::new(&format!("pipe{stages}_ghost"), n, bad)
}

/// A `width`-bit binary counter with an enable input, checked for "at most
/// `flips - 1` bits change per step". A binary increment flips `flips` bits
/// for the first time when the counter is `2^(flips-1) - 1`, reached
/// earliest at that depth (enable high every cycle); the property fails
/// there. The enable makes the counter's timing input-dependent, so the
/// UNSAT depths need genuine search.
pub fn binary_flips(width: usize, flips: usize) -> Model {
    assert!(flips >= 2 && flips <= width);
    let mut n = Netlist::new();
    let en = n.add_input("en");
    let bits: Vec<Signal> = (0..width)
        .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
        .collect();
    let inc = n.bus_increment(&bits);
    let next: Vec<Signal> = bits
        .iter()
        .zip(&inc)
        .map(|(&b, &nx)| n.mux(en, nx, b))
        .collect();
    for (&b, &nx) in bits.iter().zip(&next) {
        n.set_next(b, nx);
    }
    let changed: Vec<Signal> = bits
        .iter()
        .zip(&next)
        .map(|(&b, &nx)| n.xor2(b, nx))
        .collect();
    let bad = at_least_k(&mut n, &changed, flips);
    Model::new(&format!("bin{width}_flip{flips}"), n, bad)
}

/// The same change-count check on a Gray-code counter, which flips exactly
/// one bit per step: checking "at most 1 flip" … holds for every bound.
pub fn gray_flips(width: usize) -> Model {
    let mut n = Netlist::new();
    // Keep the binary counter as the state; derive gray = b ^ (b >> 1)
    // combinationally for both the current and next values. The enable input
    // makes the timing input-dependent (as in [`binary_flips`]).
    let en = n.add_input("en");
    let bits: Vec<Signal> = (0..width)
        .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
        .collect();
    let inc = n.bus_increment(&bits);
    let next: Vec<Signal> = bits
        .iter()
        .zip(&inc)
        .map(|(&b, &nx)| n.mux(en, nx, b))
        .collect();
    for (&b, &nx) in bits.iter().zip(&next) {
        n.set_next(b, nx);
    }
    let gray_cur: Vec<Signal> = (0..width)
        .map(|i| {
            if i + 1 < width {
                n.xor2(bits[i], bits[i + 1])
            } else {
                bits[i]
            }
        })
        .collect();
    let gray_next: Vec<Signal> = (0..width)
        .map(|i| {
            if i + 1 < width {
                n.xor2(next[i], next[i + 1])
            } else {
                next[i]
            }
        })
        .collect();
    let changed: Vec<Signal> = gray_cur
        .iter()
        .zip(&gray_next)
        .map(|(&a, &b)| n.xor2(a, b))
        .collect();
    let bad = at_least_k(&mut n, &changed, 2);
    Model::new(&format!("gray{width}"), n, bad)
}

/// A two-road traffic-light interlock with timers. The correct controller
/// never shows green on both roads: holds.
pub fn traffic_interlock(timer_bits: usize) -> Model {
    traffic(timer_bits, false)
}

/// The buggy controller lets a sensor input switch road B to green without
/// waiting for road A's yellow phase: fails within a few cycles.
pub fn traffic_buggy(timer_bits: usize) -> Model {
    traffic(timer_bits, true)
}

fn traffic(timer_bits: usize, buggy: bool) -> Model {
    let mut n = Netlist::new();
    let sensor = n.add_input("sensor");
    // Phase encoding: 0 = A green, 1 = A yellow, 2 = B green, 3 = B yellow.
    let p0 = n.add_latch("p0", LatchInit::Zero);
    let p1 = n.add_latch("p1", LatchInit::Zero);
    let timer: Vec<Signal> = (0..timer_bits)
        .map(|i| n.add_latch(&format!("tm{i}"), LatchInit::Zero))
        .collect();
    let timer_max = n.and_many(&timer.clone());
    let tick = n.bus_increment(&timer);
    // Advance the phase when the timer saturates (and reset the timer).
    let advance = timer_max;
    for (i, &t) in timer.iter().enumerate() {
        let next = n.mux(advance, Signal::FALSE, tick[i]);
        n.set_next(t, next);
    }
    let in_p0 = n.and_many(&[!p0, !p1]); // A green
    let in_p1 = n.and_many(&[p0, !p1]); // A yellow

    // Phase counter increments on advance (wraps 3 -> 0).
    let p0_next_normal = n.xor2(p0, advance);
    let carry = n.and2(p0, advance);
    let p1_next_normal = n.xor2(p1, carry);
    let jump = if buggy {
        // Bug: once the timer saturates, a sensor pulse in "A green" jumps
        // straight to "B green" (phase 2), skipping the yellow interlock.
        n.and_many(&[in_p0, sensor, timer_max])
    } else {
        Signal::FALSE
    };
    let p0_next = n.mux(jump, Signal::FALSE, p0_next_normal);
    let p1_next = n.mux(jump, Signal::TRUE, p1_next_normal);
    n.set_next(p0, p0_next);
    n.set_next(p1, p1_next);
    // Lights: A's light is set during "A green" and sticks until the yellow
    // phase completes (the 1 -> 2 transition clears it). The buggy jump
    // enters phase 2 without that clear, so both lights end up on together.
    let a_light = n.add_latch("a_light", LatchInit::One);
    let b_light = n.add_latch("b_light", LatchInit::Zero);
    let clear_a = n.and2(in_p1, advance);
    let a_on = n.or2(a_light, in_p0);
    let a_next = n.mux(clear_a, Signal::FALSE, a_on);
    n.set_next(a_light, a_next);
    // B's light tracks "phase will be 2 next cycle".
    let b_next = n.and2(!p0_next, p1_next);
    n.set_next(b_light, b_next);
    let bad = n.and2(a_light, b_light);
    let name = format!("traffic{timer_bits}{}", if buggy { "_bug" } else { "" });
    Model::new(&name, n, bad)
}

/// A Fibonacci LFSR from a non-zero seed; bad when it reaches `target`.
/// With the all-zero target the property holds (the zero state is not
/// reachable from a non-zero seed under a maximal-length feedback).
pub fn lfsr(width: usize, taps: &[usize], target: u64) -> Model {
    assert!(width >= 2 && taps.iter().all(|&t| t < width));
    let mut n = Netlist::new();
    let bits: Vec<Signal> = (0..width)
        .map(|i| {
            let init = if i == 0 {
                LatchInit::One
            } else {
                LatchInit::Zero
            };
            n.add_latch(&format!("x{i}"), init)
        })
        .collect();
    let feedback_bits: Vec<Signal> = taps.iter().map(|&t| bits[t]).collect();
    let feedback = n.xor_many(&feedback_bits);
    for i in 0..width {
        let next = if i == 0 { feedback } else { bits[i - 1] };
        n.set_next(bits[i], next);
    }
    let bad = n.bus_eq_const(&bits, target);
    Model::new(&format!("lfsr{width}@{target}"), n, bad)
}

/// A bank-drifting twin checker: `banks` pairs of `width`-stage shift
/// registers, all fed by the same input, but each bank only shifts while a
/// rotating phase counter selects it; bad is "the *selected* bank's copies
/// disagree". The property holds, but the UNSAT core rotates with the phase
/// — at depth `k` it concentrates on bank `k mod banks` — so rankings
/// learned from previous instances point at the *wrong* bank. This is the
/// adversarial case for the static refinement that motivates the paper's
/// dynamic fallback (§3.3).
///
/// # Panics
///
/// Panics unless `banks` is a power of two (the phase counter wraps
/// naturally).
pub fn drifting_twin(banks: usize, width: usize) -> Model {
    assert!(
        banks.is_power_of_two() && banks >= 2,
        "banks must be a power of two"
    );
    let phase_bits = banks.trailing_zeros() as usize;
    let mut n = Netlist::new();
    let input = n.add_input("in");
    let noise = n.add_input("noise");
    let phase: Vec<Signal> = (0..phase_bits)
        .map(|i| n.add_latch(&format!("ph{i}"), LatchInit::Zero))
        .collect();
    let tick = n.bus_increment(&phase);
    for (&p, &t) in phase.iter().zip(&tick) {
        n.set_next(p, t);
    }
    let mut mismatch_terms = Vec::with_capacity(banks);
    for b in 0..banks {
        let selected = n.bus_eq_const(&phase, b as u64);
        // Unselected banks shift the noise input instead, so their contents
        // stay input-dependent (not constant-foldable) but irrelevant.
        let feed = n.mux(selected, input, noise);
        let mut prev_a = feed;
        let mut prev_c = feed;
        let mut tap_a = feed;
        let mut tap_c = feed;
        for j in 0..width {
            let a = n.add_latch(&format!("b{b}a{j}"), LatchInit::Zero);
            let c = n.add_latch(&format!("b{b}c{j}"), LatchInit::Zero);
            n.set_next(a, prev_a);
            n.set_next(c, prev_c);
            prev_a = a;
            prev_c = c;
            tap_a = a;
            tap_c = c;
        }
        let diff = n.xor2(tap_a, tap_c);
        mismatch_terms.push(n.and2(selected, diff));
    }
    let bad = n.or_many(&mismatch_terms);
    Model::new(&format!("drift{banks}x{width}"), n, bad)
}

/// A mutual-exclusion arbiter: a one-hot token ring whose token can be
/// *captured* into a per-station lock register (station `i` acquires when it
/// holds the token and its request `r_i` is high) and re-enters the ring one
/// station downstream when the holder signals done (`d_i`). Bad when two
/// stations hold the lock in the same cycle.
///
/// Ground truth: **holds at every depth**. Exactly one of the `2·stations`
/// token/lock registers is ever set (the token is conserved: it is either
/// circulating or captured), so two simultaneous locks are unreachable. The
/// proof needs the full quadratic one-hotness invariant over tokens *and*
/// locks — the multi-clause relational strengthening IC3 has to discover,
/// and the clauses its UNSAT cores concentrate on.
pub fn mutex_arbiter(stations: usize) -> Model {
    let mut n = Netlist::new();
    let reqs: Vec<Signal> = (0..stations)
        .map(|i| n.add_input(&format!("r{i}")))
        .collect();
    let dones: Vec<Signal> = (0..stations)
        .map(|i| n.add_input(&format!("d{i}")))
        .collect();
    let tokens: Vec<Signal> = (0..stations)
        .map(|i| {
            let init = if i == 0 {
                LatchInit::One
            } else {
                LatchInit::Zero
            };
            n.add_latch(&format!("t{i}"), init)
        })
        .collect();
    let locks: Vec<Signal> = (0..stations)
        .map(|i| n.add_latch(&format!("l{i}"), LatchInit::Zero))
        .collect();
    let acquires: Vec<Signal> = (0..stations).map(|i| n.and2(tokens[i], reqs[i])).collect();
    let releases: Vec<Signal> = (0..stations).map(|i| n.and2(locks[i], dones[i])).collect();
    for i in 0..stations {
        let prev = (i + stations - 1) % stations;
        // The token moves downstream unless captured; a released lock
        // re-injects it one station downstream of the holder.
        let pass = n.and2(tokens[prev], !acquires[prev]);
        let next_t = n.or2(pass, releases[prev]);
        n.set_next(tokens[i], next_t);
        // The lock holds until done, and latches a fresh capture.
        let keep = n.and2(locks[i], !dones[i]);
        let next_l = n.or2(keep, acquires[i]);
        n.set_next(locks[i], next_l);
    }
    let mut doubles = Vec::new();
    for i in 0..stations {
        for j in i + 1..stations {
            doubles.push(n.and2(locks[i], locks[j]));
        }
    }
    let bad = n.or_many(&doubles);
    Model::new(&format!("mutex{stations}"), n, bad)
}

/// A `width`-bit saturating counter: increments when `en` is high until it
/// reaches `cap`, then holds there forever. Bad when the count equals
/// `target`.
///
/// With `target > cap` the property **holds at every depth**: the counter
/// walks 0, 1, …, `cap` and stops. BMC never closes this (every depth is
/// UNSAT but the frontier stays open); the inductive proof must carve the
/// unreachable band `(cap, 2^width)` out of the state space clause by
/// clause — a pure UNSAT workload whose cores rank the high-order bits.
pub fn saturating_counter(width: usize, cap: u64, target: u64) -> Model {
    let mut n = Netlist::new();
    let en = n.add_input("en");
    let bits: Vec<Signal> = (0..width)
        .map(|i| n.add_latch(&format!("c{i}"), LatchInit::Zero))
        .collect();
    let inc = n.bus_increment(&bits);
    let at_cap = n.bus_eq_const(&bits, cap);
    for (&b, &i) in bits.iter().zip(&inc) {
        let step = n.mux(at_cap, b, i);
        let next = n.mux(en, step, b);
        n.set_next(b, next);
    }
    let bad = n.bus_eq_const(&bits, target);
    Model::new(&format!("satcnt{width}@{cap}v{target}"), n, bad)
}

/// A pipelined handshake checker: one request/valid bit chain and *two*
/// identical data chains advance in lockstep (a `stall` input freezes all
/// three), and a sticky error register fires if the data copies disagree on
/// the cycle their valid bit emerges. Bad when the error register is set.
///
/// Ground truth: **holds at every depth**. Both data chains see the same
/// input and the same stalls, so corresponding stages are always equal —
/// but `bad` is a *latch*, so the proof needs the relational invariant
/// `a_j = b_j` at every stage (plus `¬err`), not just a frontier query:
/// the per-stage equality clauses are exactly what the UNSAT cores return.
pub fn pipelined_handshake(stages: usize) -> Model {
    let mut n = Netlist::new();
    let data = n.add_input("d");
    let valid_in = n.add_input("v");
    let stall = n.add_input("stall");
    let mut valids = Vec::with_capacity(stages);
    let mut chain_a = Vec::with_capacity(stages);
    let mut chain_b = Vec::with_capacity(stages);
    let (mut prev_v, mut prev_a, mut prev_b) = (valid_in, data, data);
    for j in 0..stages {
        let v = n.add_latch(&format!("v{j}"), LatchInit::Zero);
        let a = n.add_latch(&format!("a{j}"), LatchInit::Zero);
        let b = n.add_latch(&format!("b{j}"), LatchInit::Zero);
        let next_v = n.mux(stall, v, prev_v);
        let next_a = n.mux(stall, a, prev_a);
        let next_b = n.mux(stall, b, prev_b);
        n.set_next(v, next_v);
        n.set_next(a, next_a);
        n.set_next(b, next_b);
        prev_v = v;
        prev_a = a;
        prev_b = b;
        valids.push(v);
        chain_a.push(a);
        chain_b.push(b);
    }
    let err = n.add_latch("err", LatchInit::Zero);
    let diff = n.xor2(chain_a[stages - 1], chain_b[stages - 1]);
    let observed = n.and2(valids[stages - 1], diff);
    let next_err = n.or2(err, observed);
    n.set_next(err, next_err);
    Model::new(&format!("hshake{stages}"), n, err)
}

/// Builds "at least `k` of the signals are true" as a small sorting-free
/// threshold circuit (sum of bits compared against `k`).
fn at_least_k(n: &mut Netlist, signals: &[Signal], k: usize) -> Signal {
    if k == 0 {
        return Signal::TRUE;
    }
    if k > signals.len() {
        return Signal::FALSE;
    }
    // Unary counter chain: count[j] = "at least j+1 true among prefix".
    let mut at_least: Vec<Signal> = vec![Signal::FALSE; k];
    for &s in signals {
        let mut new = at_least.clone();
        for j in (0..k).rev() {
            let carry_in = if j == 0 {
                Signal::TRUE
            } else {
                at_least[j - 1]
            };
            let gained = n.and2(s, carry_in);
            new[j] = n.or2(at_least[j], gained);
        }
        at_least = new;
    }
    at_least[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_core::oracle::{check_reachable, OracleVerdict};

    #[test]
    fn gated_counter_fails_at_target() {
        let model = gated_counter(4, 1, 9);
        assert_eq!(check_reachable(&model, 15), OracleVerdict::FailsAt(9));
    }

    #[test]
    fn gated_counter_step2_odd_target_holds() {
        let model = gated_counter(4, 2, 9);
        assert_eq!(check_reachable(&model, 20), OracleVerdict::HoldsUpTo(20));
    }

    #[test]
    fn shift_all_ones_fails_at_width() {
        let model = shift_all_ones(5);
        assert_eq!(check_reachable(&model, 10), OracleVerdict::FailsAt(5));
    }

    #[test]
    fn shift_twin_holds() {
        let model = shift_twin(4);
        assert_eq!(check_reachable(&model, 12), OracleVerdict::HoldsUpTo(12));
    }

    #[test]
    fn token_ring_holds() {
        let model = token_ring(5);
        assert_eq!(check_reachable(&model, 12), OracleVerdict::HoldsUpTo(12));
    }

    #[test]
    fn buggy_ring_fails_after_fuse() {
        let model = token_ring_buggy(4, 2);
        assert_eq!(check_reachable(&model, 10), OracleVerdict::FailsAt(3));
    }

    #[test]
    fn guarded_fifo_holds() {
        let model = fifo_guarded(2);
        assert_eq!(check_reachable(&model, 14), OracleVerdict::HoldsUpTo(14));
    }

    #[test]
    fn unguarded_fifo_overflows() {
        let model = fifo_unguarded(2);
        assert_eq!(check_reachable(&model, 10), OracleVerdict::FailsAt(5));
    }

    #[test]
    fn lock_opens_at_code_length() {
        let model = combination_lock(&[2, 0, 3, 1], 2);
        assert_eq!(check_reachable(&model, 10), OracleVerdict::FailsAt(4));
    }

    #[test]
    fn impossible_lock_holds() {
        let model = combination_lock_impossible(&[2, 0, 3], 2);
        assert_eq!(check_reachable(&model, 12), OracleVerdict::HoldsUpTo(12));
    }

    #[test]
    fn tmr_single_fault_holds() {
        let model = tmr_voter(2, 1);
        assert_eq!(check_reachable(&model, 8), OracleVerdict::HoldsUpTo(8));
    }

    #[test]
    fn tmr_double_fault_fails() {
        let model = tmr_voter(2, 2);
        assert!(matches!(
            check_reachable(&model, 8),
            OracleVerdict::FailsAt(_)
        ));
    }

    #[test]
    fn pipeline_emerges_at_depth() {
        let model = pipeline_emerge(4);
        assert_eq!(check_reachable(&model, 10), OracleVerdict::FailsAt(4));
    }

    #[test]
    fn pipeline_ghost_holds() {
        let model = pipeline_no_ghost(4);
        assert_eq!(check_reachable(&model, 12), OracleVerdict::HoldsUpTo(12));
    }

    #[test]
    fn binary_flip3_fails_at_three() {
        // 3 bits flip first on 011 -> 100, i.e. when the counter is 3.
        let model = binary_flips(5, 3);
        assert_eq!(check_reachable(&model, 10), OracleVerdict::FailsAt(3));
    }

    #[test]
    fn gray_flips_holds() {
        let model = gray_flips(4);
        assert_eq!(check_reachable(&model, 20), OracleVerdict::HoldsUpTo(20));
    }

    #[test]
    fn traffic_interlock_holds() {
        let model = traffic_interlock(2);
        assert_eq!(check_reachable(&model, 16), OracleVerdict::HoldsUpTo(16));
    }

    #[test]
    fn traffic_bug_fails() {
        let model = traffic_buggy(2);
        assert!(matches!(
            check_reachable(&model, 16),
            OracleVerdict::FailsAt(_)
        ));
    }

    #[test]
    fn lfsr_never_zero() {
        let model = lfsr(4, &[3, 2], 0);
        assert_eq!(check_reachable(&model, 20), OracleVerdict::HoldsUpTo(20));
    }

    #[test]
    fn lfsr_reaches_some_state() {
        // From seed 0001, two steps of x^4 + x^3 + 1 style feedback.
        let model = lfsr(4, &[3, 2], 2);
        assert!(matches!(
            check_reachable(&model, 20),
            OracleVerdict::FailsAt(_)
        ));
    }

    #[test]
    fn drifting_twin_holds() {
        let model = drifting_twin(2, 2);
        assert_eq!(check_reachable(&model, 10), OracleVerdict::HoldsUpTo(10));
    }

    #[test]
    fn mutex_arbiter_holds() {
        let model = mutex_arbiter(3);
        assert_eq!(check_reachable(&model, 12), OracleVerdict::HoldsUpTo(12));
    }

    #[test]
    fn saturating_counter_holds_beyond_cap() {
        let model = saturating_counter(4, 10, 12);
        assert_eq!(check_reachable(&model, 20), OracleVerdict::HoldsUpTo(20));
    }

    #[test]
    fn saturating_counter_reaches_the_cap() {
        // Sanity check on the saturation logic itself: the cap is reachable
        // (at exactly `cap` steps), only the band above it is not.
        let model = saturating_counter(4, 10, 10);
        assert_eq!(check_reachable(&model, 20), OracleVerdict::FailsAt(10));
    }

    #[test]
    fn pipelined_handshake_holds() {
        let model = pipelined_handshake(4);
        assert_eq!(check_reachable(&model, 12), OracleVerdict::HoldsUpTo(12));
    }

    #[test]
    fn at_least_k_threshold() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let th2 = at_least_k(&mut n, &[a, b, c], 2);
        for bits in 0..8u8 {
            let inputs = [bits & 1 == 1, bits & 2 != 0, bits & 4 != 0];
            let vals = rbmc_circuit::sim::eval_frame(&n, &[], &inputs);
            let count = inputs.iter().filter(|&&x| x).count();
            assert_eq!(
                rbmc_circuit::sim::read_signal(&vals, th2),
                count >= 2,
                "{inputs:?}"
            );
        }
    }
}
