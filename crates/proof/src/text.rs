//! Text serialisation of certificates: a self-contained LRAT-style format
//! that round-trips through [`CertificateBundle`], and a one-way export to
//! standard DRAT for third-party checkers.
//!
//! The LRAT-style format is line-oriented:
//!
//! ```text
//! c rbmc-lrat 1 <formula-hash-hex>
//! a <id> <lits…> 0              axiom (original clause, in input order)
//! <id> <lits…> 0 <hints…> 0     derived clause with antecedent hints
//! <id> d <ids…> 0               deletion of derived clauses
//! f <lits…> 0 <hints…> 0        the episode's final clause
//! ```
//!
//! Literals use DIMACS signs. Unlike stock LRAT, axioms are spelled out
//! (`a` lines) so the file carries the whole obligation — the checker never
//! has to trust a side channel for the input formula; the header hash binds
//! the file to the encoder run that produced it.

use std::fmt;
use std::fmt::Write as _;

use rbmc_cnf::Lit;

use crate::{CertificateBundle, FinalClause, ProofStep};

/// A parse failure, with the 1-based line number it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLratError {
    /// 1-based line number of the offending line (0 for whole-file
    /// problems, e.g. a missing header or final clause).
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseLratError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "lrat parse error: {}", self.message)
        } else {
            write!(
                f,
                "lrat parse error at line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for ParseLratError {}

fn err(line: usize, message: impl Into<String>) -> ParseLratError {
    ParseLratError {
        line,
        message: message.into(),
    }
}

fn push_lits(out: &mut String, lits: &[Lit]) {
    for &lit in lits {
        let _ = write!(out, "{} ", lit.to_dimacs());
    }
    out.push('0');
}

fn push_hints(out: &mut String, hints: &[u64]) {
    for &hint in hints {
        let _ = write!(out, "{hint} ");
    }
    out.push('0');
}

impl CertificateBundle {
    /// Serialises the bundle to the self-contained LRAT-style text format
    /// (round-trips through [`CertificateBundle::from_lrat_text`]).
    pub fn to_lrat_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "c rbmc-lrat 1 {:016x}", self.formula_hash);
        for step in &self.steps {
            match step {
                ProofStep::Axiom { id, lits } => {
                    let _ = write!(out, "a {id} ");
                    push_lits(&mut out, lits);
                    out.push('\n');
                }
                ProofStep::Derived { id, lits, hints } => {
                    let _ = write!(out, "{id} ");
                    push_lits(&mut out, lits);
                    out.push(' ');
                    push_hints(&mut out, hints);
                    out.push('\n');
                }
                ProofStep::Delete { id } => {
                    let _ = writeln!(out, "{id} d {id} 0");
                }
            }
        }
        out.push_str("f ");
        push_lits(&mut out, &self.final_clause.lits);
        out.push(' ');
        push_hints(&mut out, &self.final_clause.hints);
        out.push('\n');
        out
    }

    /// Parses the self-contained LRAT-style text format produced by
    /// [`CertificateBundle::to_lrat_text`]. Only syntax is validated here;
    /// call [`CertificateBundle::check`] on the result to verify the proof.
    pub fn from_lrat_text(text: &str) -> Result<CertificateBundle, ParseLratError> {
        let mut formula_hash: Option<u64> = None;
        let mut steps: Vec<ProofStep> = Vec::new();
        let mut final_clause: Option<FinalClause> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_ascii_whitespace();
            let first = tokens.next().expect("non-empty line has a token");
            match first {
                "c" => {
                    let rest: Vec<&str> = tokens.collect();
                    if formula_hash.is_none()
                        && rest.len() == 3
                        && rest[0] == "rbmc-lrat"
                        && rest[1] == "1"
                    {
                        let hash = u64::from_str_radix(rest[2], 16)
                            .map_err(|_| err(lineno, "bad formula hash in header"))?;
                        formula_hash = Some(hash);
                    }
                    // Other comments are ignored.
                }
                "a" => {
                    let id = parse_id(tokens.next(), lineno)?;
                    let lits = parse_lits(&mut tokens, lineno)?;
                    expect_end(&mut tokens, lineno)?;
                    steps.push(ProofStep::Axiom { id, lits });
                }
                "f" => {
                    let lits = parse_lits(&mut tokens, lineno)?;
                    let hints = parse_hints(&mut tokens, lineno)?;
                    expect_end(&mut tokens, lineno)?;
                    if final_clause.is_some() {
                        return Err(err(lineno, "duplicate final clause"));
                    }
                    final_clause = Some(FinalClause { lits, hints });
                }
                _ => {
                    let id = parse_id(Some(first), lineno)?;
                    let mut rest = tokens.peekable();
                    if rest.peek() == Some(&"d") {
                        rest.next();
                        for step_id in parse_hints(&mut rest, lineno)? {
                            steps.push(ProofStep::Delete { id: step_id });
                        }
                        expect_end(&mut rest, lineno)?;
                    } else {
                        let lits = parse_lits(&mut rest, lineno)?;
                        let hints = parse_hints(&mut rest, lineno)?;
                        expect_end(&mut rest, lineno)?;
                        steps.push(ProofStep::Derived { id, lits, hints });
                    }
                }
            }
        }
        let formula_hash = formula_hash.ok_or_else(|| err(0, "missing `c rbmc-lrat 1` header"))?;
        let final_clause = final_clause.ok_or_else(|| err(0, "missing final (`f`) line"))?;
        Ok(CertificateBundle {
            formula_hash,
            steps,
            final_clause,
        })
    }

    /// Exports the derivation as standard DRAT (one-way: DRAT has no ids,
    /// hints, axioms, or hash, so this loses the self-containment of the
    /// LRAT-style format). Deletion lines spell out the deleted clause body,
    /// as DRAT requires.
    pub fn to_drat_text(&self) -> String {
        let mut out = String::new();
        let mut bodies: Vec<(u64, &[Lit])> = Vec::new();
        for step in &self.steps {
            match step {
                ProofStep::Axiom { .. } => {}
                ProofStep::Derived { id, lits, .. } => {
                    bodies.push((*id, lits));
                    push_lits(&mut out, lits);
                    out.push('\n');
                }
                ProofStep::Delete { id } => {
                    if let Some(pos) = bodies.iter().position(|&(bid, _)| bid == *id) {
                        let (_, lits) = bodies.swap_remove(pos);
                        out.push_str("d ");
                        push_lits(&mut out, lits);
                        out.push('\n');
                    }
                }
            }
        }
        push_lits(&mut out, &self.final_clause.lits);
        out.push('\n');
        out
    }
}

fn parse_id(token: Option<&str>, lineno: usize) -> Result<u64, ParseLratError> {
    let token = token.ok_or_else(|| err(lineno, "missing proof line id"))?;
    let id: u64 = token
        .parse()
        .map_err(|_| err(lineno, format!("bad proof line id `{token}`")))?;
    if id == 0 {
        return Err(err(lineno, "proof line id 0 is reserved"));
    }
    Ok(id)
}

/// Consumes DIMACS literals up to and including the `0` terminator.
fn parse_lits<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<Vec<Lit>, ParseLratError> {
    let mut lits = Vec::new();
    for token in tokens {
        let n: i64 = token
            .parse()
            .map_err(|_| err(lineno, format!("bad literal `{token}`")))?;
        if n == 0 {
            return Ok(lits);
        }
        lits.push(Lit::from_dimacs(n));
    }
    Err(err(lineno, "literal list not terminated by 0"))
}

/// Consumes hint ids up to and including the `0` terminator.
fn parse_hints<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<Vec<u64>, ParseLratError> {
    let mut hints = Vec::new();
    for token in tokens {
        let id: u64 = token
            .parse()
            .map_err(|_| err(lineno, format!("bad hint id `{token}`")))?;
        if id == 0 {
            return Ok(hints);
        }
        hints.push(id);
    }
    Err(err(lineno, "hint list not terminated by 0"))
}

fn expect_end<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<(), ParseLratError> {
    match tokens.next() {
        None => Ok(()),
        Some(extra) => Err(err(lineno, format!("trailing token `{extra}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n)
    }

    fn sample_bundle() -> CertificateBundle {
        CertificateBundle {
            formula_hash: 0x1234_5678_9abc_def0,
            steps: vec![
                ProofStep::Axiom {
                    id: 1,
                    lits: vec![lit(1)],
                },
                ProofStep::Axiom {
                    id: 2,
                    lits: vec![lit(-1), lit(2)],
                },
                ProofStep::Derived {
                    id: 3,
                    lits: vec![lit(2)],
                    hints: vec![1, 2],
                },
                ProofStep::Delete { id: 3 },
            ],
            final_clause: FinalClause {
                lits: vec![lit(-2)],
                hints: vec![1, 2],
            },
        }
    }

    #[test]
    fn lrat_text_round_trips() {
        let bundle = sample_bundle();
        let text = bundle.to_lrat_text();
        let parsed = CertificateBundle::from_lrat_text(&text).unwrap();
        assert_eq!(parsed, bundle);
    }

    #[test]
    fn missing_header_is_rejected() {
        let e = CertificateBundle::from_lrat_text("f 0 0\n").unwrap_err();
        assert!(e.message.contains("header"));
    }

    #[test]
    fn missing_final_is_rejected() {
        let text = "c rbmc-lrat 1 00000000000000aa\na 1 1 0\n";
        let e = CertificateBundle::from_lrat_text(text).unwrap_err();
        assert!(e.message.contains("final"));
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let text = "c rbmc-lrat 1 00000000000000aa\na one 1 0\nf 0 0\n";
        let e = CertificateBundle::from_lrat_text(text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn drat_export_spells_out_deletions() {
        let drat = sample_bundle().to_drat_text();
        assert_eq!(drat, "2 0\nd 2 0\n-2 0\n");
    }
}
