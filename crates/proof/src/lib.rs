//! Independent checker for the session solver's clausal UNSAT certificates.
//!
//! The solver (`rbmc-solver`) can log every original clause, every derived
//! clause with LRAT-style antecedent hints, every deletion, and a final
//! clause per UNSAT episode. This crate replays such a log **without any
//! dependency on the solver** — it consumes only [`rbmc_cnf`] literals — and
//! accepts a certificate only if every step it depends on is a genuine
//! reverse-unit-propagation (RUP) consequence of the clauses before it:
//!
//! - A [`ProofRecorder`] accumulates the step log (one per solver) and can
//!   check the current episode in place, or snapshot it into an owned
//!   [`CertificateBundle`].
//! - A [`CertificateBundle`] is the self-contained, file-backable form: the
//!   axiom/derived/delete step list, the episode's final clause, and a
//!   formula hash binding the certificate to the exact input clause sequence
//!   — a certificate replayed against a different formula fails the hash
//!   check before any propagation runs.
//! - Checking is **backward**: only the steps reachable from the final
//!   clause's hints are propagation-verified (the rest get structural checks
//!   only), which keeps repeated per-episode checks cheap in an incremental
//!   session.
//! - Hint verification is **strict LRAT**: hints are processed in order and
//!   each cited clause must be unit (propagating one literal) until a
//!   conflict closes the step. A satisfied or non-unit hint rejects the
//!   certificate — the checker is deliberately intolerant, so corrupted or
//!   reordered hint lists cannot slip through. Steps with no hints fall
//!   back to full-database RUP.
//!
//! # Examples
//!
//! A two-step refutation of `x ∧ ¬x`, checked end to end:
//!
//! ```
//! use rbmc_cnf::Lit;
//! use rbmc_proof::ProofRecorder;
//!
//! let x = Lit::from_dimacs(1);
//! let mut rec = ProofRecorder::new();
//! rec.axiom(1, &[x]);
//! rec.axiom(2, &[!x]);
//! // The solver derives the empty clause from both units.
//! rec.finalize(&[], &[1, 2]);
//! let stats = rec.check_current().expect("valid certificate");
//! assert_eq!(stats.steps_verified, 1); // just the final clause
//! let bundle = rec.bundle();
//! assert!(bundle.check().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod check;
mod text;

use rbmc_cnf::Lit;

pub use check::{CheckStats, ProofError};
pub use text::ParseLratError;

/// One line of a clausal proof log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// An original clause of the input formula, in `add_clause` order.
    Axiom {
        /// Proof line id (shared, strictly increasing sequence).
        id: u64,
        /// The clause as given.
        lits: Vec<Lit>,
    },
    /// A derived clause: RUP under the hints (processed in order, each hint
    /// must be unit until one conflicts).
    Derived {
        /// Proof line id.
        id: u64,
        /// The derived clause.
        lits: Vec<Lit>,
        /// Earlier proof lines justifying the derivation.
        hints: Vec<u64>,
    },
    /// The derived clause with the given id left the database.
    Delete {
        /// Proof line id of the deleted derived clause.
        id: u64,
    },
}

impl ProofStep {
    /// The proof line id this step declares or retracts.
    pub fn id(&self) -> u64 {
        match self {
            ProofStep::Axiom { id, .. }
            | ProofStep::Derived { id, .. }
            | ProofStep::Delete { id } => *id,
        }
    }
}

/// The final clause of one UNSAT episode: the negation of the episode's
/// failed assumptions, or empty when the clause database is unsatisfiable
/// outright. Not part of the database; justified like a derived step.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FinalClause {
    /// The episode's final clause.
    pub lits: Vec<Lit>,
    /// Hints justifying it (same semantics as [`ProofStep::Derived`]).
    pub hints: Vec<u64>,
}

/// A self-contained, owned UNSAT certificate: the step log up to one
/// episode's final clause, bound to the input formula by a hash over the
/// axiom sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertificateBundle {
    /// FNV-1a hash over the axiom lines in order (see
    /// [`ProofRecorder::formula_hash`]). [`CertificateBundle::check`]
    /// recomputes it from [`CertificateBundle::steps`] and rejects on
    /// mismatch, so a certificate cannot be replayed against a formula it
    /// was not produced from.
    pub formula_hash: u64,
    /// The proof lines, in emission order.
    pub steps: Vec<ProofStep>,
    /// The episode's final clause.
    pub final_clause: FinalClause,
}

impl CertificateBundle {
    /// Verifies the certificate: hash binding, structural coherence of ids
    /// and hints, and backward RUP/LRAT checking of every step the final
    /// clause depends on.
    pub fn check(&self) -> Result<CheckStats, ProofError> {
        check::check_certificate(Some(self.formula_hash), &self.steps, &self.final_clause)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Folds one `u32` word into a running FNV-1a hash, byte by byte.
fn fnv_word(mut hash: u64, word: u32) -> u64 {
    for byte in word.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Clause separator fed to the hash between axiom lines (no literal code
/// collides with it: codes come from `var << 1 | sign` over in-use vars).
const HASH_SEP: u32 = u32::MAX;

/// Accumulates a solver's proof log and checks episodes in place.
///
/// One recorder serves one solver for its whole incremental session; each
/// UNSAT episode overwrites the final clause, and checking or bundling
/// always refers to the most recent one. See the crate docs for an example.
#[derive(Clone, Debug)]
pub struct ProofRecorder {
    steps: Vec<ProofStep>,
    final_clause: Option<FinalClause>,
    /// Running FNV-1a over the axiom lines.
    hash: u64,
    num_axioms: u64,
    /// Derived line ids without a deletion record, in emission order (the
    /// audit snapshot sorts; deletions are rare enough for a linear sweep).
    live_derived: Vec<u64>,
}

// Not derived: the derived impl would zero-initialise `hash`, silently
// diverging from the FNV offset basis `new()` seeds — every certificate
// bundled from a defaulted recorder would then fail its own hash binding.
impl Default for ProofRecorder {
    fn default() -> ProofRecorder {
        ProofRecorder::new()
    }
}

impl ProofRecorder {
    /// Creates an empty recorder.
    pub fn new() -> ProofRecorder {
        ProofRecorder {
            steps: Vec::new(),
            final_clause: None,
            hash: FNV_OFFSET,
            num_axioms: 0,
            live_derived: Vec::new(),
        }
    }

    /// Records an axiom line (original clause).
    pub fn axiom(&mut self, id: u64, lits: &[Lit]) {
        for &lit in lits {
            self.hash = fnv_word(self.hash, lit.code() as u32);
        }
        self.hash = fnv_word(self.hash, HASH_SEP);
        self.num_axioms += 1;
        self.steps.push(ProofStep::Axiom {
            id,
            lits: lits.to_vec(),
        });
    }

    /// Records a derived line (learned clause or root-level unit fact).
    pub fn derived(&mut self, id: u64, lits: &[Lit], hints: &[u64]) {
        self.live_derived.push(id);
        self.steps.push(ProofStep::Derived {
            id,
            lits: lits.to_vec(),
            hints: hints.to_vec(),
        });
    }

    /// Records the deletion of a derived line.
    pub fn delete(&mut self, id: u64) {
        if let Some(pos) = self.live_derived.iter().position(|&l| l == id) {
            self.live_derived.swap_remove(pos);
        }
        self.steps.push(ProofStep::Delete { id });
    }

    /// Records (or replaces) the current episode's final clause.
    pub fn finalize(&mut self, lits: &[Lit], hints: &[u64]) {
        self.final_clause = Some(FinalClause {
            lits: lits.to_vec(),
            hints: hints.to_vec(),
        });
    }

    /// The FNV-1a hash over the axiom lines recorded so far — the identity
    /// of the formula the log is about.
    pub fn formula_hash(&self) -> u64 {
        self.hash
    }

    /// Number of proof lines recorded so far (excluding the final clause).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of axiom lines recorded so far.
    pub fn num_axioms(&self) -> u64 {
        self.num_axioms
    }

    /// The most recent episode's final clause, if any episode ended UNSAT.
    pub fn final_clause(&self) -> Option<&FinalClause> {
        self.final_clause.as_ref()
    }

    /// Derived line ids without a deletion record, sorted ascending — the
    /// recorder's half of the `debug-invariants` coherence audit.
    pub fn live_derived_sorted(&self) -> Vec<u64> {
        let mut live = self.live_derived.clone();
        live.sort_unstable();
        live
    }

    /// Checks the current episode in place (no copy of the log): the most
    /// recent final clause against the steps recorded so far. The hash is
    /// the recorder's own, so only structure and propagation are verified.
    ///
    /// Returns [`ProofError::NoFinal`] if no episode has ended UNSAT yet.
    pub fn check_current(&self) -> Result<CheckStats, ProofError> {
        let final_clause = self.final_clause.as_ref().ok_or(ProofError::NoFinal)?;
        check::check_certificate(None, &self.steps, final_clause)
    }

    /// Snapshots the log into an owned [`CertificateBundle`] for the most
    /// recent episode.
    ///
    /// # Panics
    ///
    /// Panics if no episode has ended UNSAT (there is nothing to certify).
    pub fn bundle(&self) -> CertificateBundle {
        CertificateBundle {
            formula_hash: self.hash,
            steps: self.steps.clone(),
            final_clause: self
                .final_clause
                .clone()
                .expect("bundle requires an UNSAT episode"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n)
    }

    /// x ∧ (¬x ∨ y) ∧ ¬y: unit propagation refutes; the recorder logs the
    /// two root facts as derived lines and the empty final.
    fn chain_recorder() -> ProofRecorder {
        let mut rec = ProofRecorder::new();
        rec.axiom(1, &[lit(1)]);
        rec.axiom(2, &[lit(-1), lit(2)]);
        rec.axiom(3, &[lit(-2)]);
        // Root facts, hints in propagation order.
        rec.derived(4, &[lit(1)], &[1]);
        rec.derived(5, &[lit(2)], &[4, 2]);
        rec.finalize(&[], &[5, 3]);
        rec
    }

    #[test]
    fn valid_chain_checks() {
        let rec = chain_recorder();
        let stats = rec.check_current().unwrap();
        assert_eq!(stats.steps_total, 5);
        assert!(stats.steps_verified >= 3);
        assert!(rec.bundle().check().is_ok());
    }

    #[test]
    fn assumption_episode_final() {
        // (¬a ∨ x) ∧ (¬a ∨ ¬x) refutes the assumption a: final = [¬a].
        let mut rec = ProofRecorder::new();
        rec.axiom(1, &[lit(-3), lit(1)]);
        rec.axiom(2, &[lit(-3), lit(-1)]);
        rec.finalize(&[lit(-3)], &[1, 2]);
        assert!(rec.check_current().is_ok());
    }

    #[test]
    fn tautological_final_is_trivially_valid() {
        // Self-contradictory assumptions: final [¬a, a], no hints.
        let mut rec = ProofRecorder::new();
        rec.axiom(1, &[lit(1), lit(2)]);
        rec.finalize(&[lit(-3), lit(3)], &[]);
        assert!(rec.check_current().is_ok());
    }

    #[test]
    fn no_final_is_an_error() {
        let mut rec = ProofRecorder::new();
        rec.axiom(1, &[lit(1)]);
        assert!(matches!(rec.check_current(), Err(ProofError::NoFinal)));
    }

    #[test]
    fn hash_binds_the_formula() {
        let rec = chain_recorder();
        let mut bundle = rec.bundle();
        bundle.formula_hash ^= 0xdead_beef;
        assert!(matches!(
            bundle.check(),
            Err(ProofError::FormulaHashMismatch { .. })
        ));
    }

    #[test]
    fn deleted_lines_leave_the_live_set() {
        let mut rec = ProofRecorder::new();
        rec.axiom(1, &[lit(1), lit(2)]);
        rec.derived(2, &[lit(1)], &[]);
        rec.derived(3, &[lit(2)], &[]);
        rec.delete(2);
        assert_eq!(rec.live_derived_sorted(), vec![3]);
        assert_eq!(rec.num_axioms(), 1);
    }

    #[test]
    fn citing_a_deleted_line_is_rejected() {
        let mut rec = ProofRecorder::new();
        rec.axiom(1, &[lit(1)]);
        rec.derived(2, &[lit(1)], &[1]);
        rec.delete(2);
        rec.finalize(&[lit(1)], &[2]);
        assert!(matches!(
            rec.check_current(),
            Err(ProofError::UnknownHint { .. })
        ));
    }
}
