//! Backward RUP/LRAT certificate checking. See the crate docs for the
//! acceptance rules; this module is the enforcement.

use std::collections::{HashMap, HashSet};
use std::fmt;

use rbmc_cnf::Lit;

use crate::{fnv_word, FinalClause, ProofStep, FNV_OFFSET, HASH_SEP};

/// Why a certificate was rejected. Every variant names the offending line
/// so a fail-closed gate can report something actionable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// The log has no final clause: no episode ended UNSAT, so there is
    /// nothing to certify.
    NoFinal,
    /// The recomputed axiom hash does not match the bundle's — the
    /// certificate belongs to a different formula.
    FormulaHashMismatch {
        /// Hash stored in the bundle.
        expected: u64,
        /// Hash recomputed from the bundle's axiom lines.
        actual: u64,
    },
    /// Proof line ids must be strictly increasing.
    IdOrder {
        /// The offending line id.
        id: u64,
    },
    /// A hint cites a line that does not exist, is not yet declared, or was
    /// deleted before the citing step.
    UnknownHint {
        /// The citing line (0 stands for the final clause).
        step: u64,
        /// The cited line.
        hint: u64,
    },
    /// A deletion names a line that is not a live derived clause.
    BadDelete {
        /// The offending deletion target.
        id: u64,
    },
    /// Strict LRAT: a hint clause was already satisfied under the
    /// accumulated assignment — it cannot participate in the propagation.
    SatisfiedHint {
        /// The citing line (0 stands for the final clause).
        step: u64,
        /// The offending hint.
        hint: u64,
    },
    /// Strict LRAT: a hint clause had two or more unassigned literals —
    /// the hint order does not describe a unit propagation.
    HintNotUnit {
        /// The citing line (0 stands for the final clause).
        step: u64,
        /// The offending hint.
        hint: u64,
    },
    /// The hint list ran out without reaching a conflict: the clause is not
    /// RUP under its hints.
    NoConflict {
        /// The unjustified line (0 stands for the final clause).
        step: u64,
    },
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn line(id: u64) -> String {
            if id == 0 {
                "the final clause".to_string()
            } else {
                format!("line {id}")
            }
        }
        match self {
            ProofError::NoFinal => write!(f, "no UNSAT episode to certify"),
            ProofError::FormulaHashMismatch { expected, actual } => write!(
                f,
                "formula hash mismatch: bundle says {expected:#018x}, axioms hash to {actual:#018x}"
            ),
            ProofError::IdOrder { id } => {
                write!(f, "proof line ids not strictly increasing at id {id}")
            }
            ProofError::UnknownHint { step, hint } => {
                write!(f, "{} cites unknown or deleted line {hint}", line(*step))
            }
            ProofError::BadDelete { id } => {
                write!(f, "deletion of {id}, which is not a live derived line")
            }
            ProofError::SatisfiedHint { step, hint } => {
                write!(f, "{} cites satisfied clause {hint}", line(*step))
            }
            ProofError::HintNotUnit { step, hint } => {
                write!(f, "{} cites non-unit clause {hint}", line(*step))
            }
            ProofError::NoConflict { step } => {
                write!(
                    f,
                    "{} is not RUP: hints end without a conflict",
                    line(*step)
                )
            }
        }
    }
}

impl std::error::Error for ProofError {}

/// What a successful check covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Total proof lines in the log.
    pub steps_total: usize,
    /// Lines propagation-verified: the final clause plus every derived line
    /// in its backward dependency cone (the rest get structural checks
    /// only).
    pub steps_verified: usize,
}

/// In the strict hint walk, processing one clause yields one of these.
enum HintState {
    /// All literals false: the propagation reached its conflict.
    Conflict,
    /// Exactly one literal unassigned: propagate it.
    Unit(Lit),
    /// Some literal is already true.
    Satisfied,
    /// Two or more literals unassigned.
    Open,
}

/// Partial assignment keyed by variable index; `true` means the positive
/// literal holds.
type Assignment = HashMap<usize, bool>;

fn lit_state(assignment: &Assignment, lit: Lit) -> Option<bool> {
    assignment
        .get(&lit.var().index())
        .map(|&v| v == lit.is_positive())
}

fn classify(assignment: &Assignment, clause: &[Lit]) -> HintState {
    let mut unassigned: Option<Lit> = None;
    for &lit in clause {
        match lit_state(assignment, lit) {
            Some(true) => return HintState::Satisfied,
            Some(false) => {}
            None => {
                if unassigned.is_some() {
                    return HintState::Open;
                }
                unassigned = Some(lit);
            }
        }
    }
    match unassigned {
        None => HintState::Conflict,
        Some(lit) => HintState::Unit(lit),
    }
}

/// Asserts the negation of `clause` into a fresh assignment. Returns `None`
/// when the clause is a tautology (contains both phases of a variable):
/// such a clause is trivially RUP and needs no propagation.
fn negate_into_assignment(clause: &[Lit]) -> Option<Assignment> {
    let mut assignment = Assignment::new();
    for &lit in clause {
        // ¬clause asserts the negation of every literal.
        let want = !lit.is_positive();
        match assignment.insert(lit.var().index(), want) {
            Some(prev) if prev != want => return None,
            _ => {}
        }
    }
    Some(assignment)
}

/// Strict LRAT verification of one clause under its hints: sequential
/// processing, every cited clause unit until a conflict. `step` is the
/// citing line id for error reporting (0 = final clause).
fn verify_hinted(
    step: u64,
    clause: &[Lit],
    hints: &[u64],
    db: &HashMap<u64, &[Lit]>,
) -> Result<(), ProofError> {
    let Some(mut assignment) = negate_into_assignment(clause) else {
        return Ok(());
    };
    for &hint in hints {
        let body = *db
            .get(&hint)
            .ok_or(ProofError::UnknownHint { step, hint })?;
        match classify(&assignment, body) {
            HintState::Conflict => return Ok(()),
            HintState::Unit(lit) => {
                assignment.insert(lit.var().index(), lit.is_positive());
            }
            HintState::Satisfied => return Err(ProofError::SatisfiedHint { step, hint }),
            HintState::Open => return Err(ProofError::HintNotUnit { step, hint }),
        }
    }
    Err(ProofError::NoConflict { step })
}

/// Full-database RUP for hintless clauses: saturate unit propagation over
/// every active clause until a conflict or a fixpoint.
fn verify_full_db(step: u64, clause: &[Lit], db: &HashMap<u64, &[Lit]>) -> Result<(), ProofError> {
    let Some(mut assignment) = negate_into_assignment(clause) else {
        return Ok(());
    };
    loop {
        let mut progressed = false;
        for body in db.values() {
            match classify(&assignment, body) {
                HintState::Conflict => return Ok(()),
                HintState::Unit(lit) => {
                    assignment.insert(lit.var().index(), lit.is_positive());
                    progressed = true;
                }
                HintState::Satisfied | HintState::Open => {}
            }
        }
        if !progressed {
            return Err(ProofError::NoConflict { step });
        }
    }
}

/// The whole acceptance procedure: hash binding (when `expected_hash` is
/// given), structural coherence, backward marking from the final clause,
/// and propagation verification of the marked cone.
pub(crate) fn check_certificate(
    expected_hash: Option<u64>,
    steps: &[ProofStep],
    final_clause: &FinalClause,
) -> Result<CheckStats, ProofError> {
    // --- hash binding ----------------------------------------------------
    if let Some(expected) = expected_hash {
        let mut hash = FNV_OFFSET;
        for step in steps {
            if let ProofStep::Axiom { lits, .. } = step {
                for &lit in lits {
                    hash = fnv_word(hash, lit.code() as u32);
                }
                hash = fnv_word(hash, HASH_SEP);
            }
        }
        if hash != expected {
            return Err(ProofError::FormulaHashMismatch {
                expected,
                actual: hash,
            });
        }
    }

    // --- structural pass -------------------------------------------------
    // Ids strictly increasing; every hint of every step cites a line that
    // is declared earlier and still active (not deleted) at that point.
    let mut last_id = 0u64;
    let mut active: HashSet<u64> = HashSet::new();
    let mut derived_ids: HashSet<u64> = HashSet::new();
    for step in steps {
        match step {
            ProofStep::Axiom { id, .. } => {
                if *id <= last_id {
                    return Err(ProofError::IdOrder { id: *id });
                }
                last_id = *id;
                active.insert(*id);
            }
            ProofStep::Derived { id, hints, .. } => {
                if *id <= last_id {
                    return Err(ProofError::IdOrder { id: *id });
                }
                last_id = *id;
                for &hint in hints {
                    if !active.contains(&hint) {
                        return Err(ProofError::UnknownHint { step: *id, hint });
                    }
                }
                active.insert(*id);
                derived_ids.insert(*id);
            }
            ProofStep::Delete { id } => {
                if !derived_ids.contains(id) || !active.remove(id) {
                    return Err(ProofError::BadDelete { id: *id });
                }
            }
        }
    }
    for &hint in &final_clause.hints {
        if !active.contains(&hint) {
            return Err(ProofError::UnknownHint { step: 0, hint });
        }
    }

    // --- backward marking ------------------------------------------------
    // Only derived lines reachable from the final clause's hints need
    // propagation verification. A hintless marked line falls back to
    // full-database RUP, which may use anything — mark everything then.
    let mut marked: HashSet<u64> = final_clause.hints.iter().copied().collect();
    // A hintless, non-tautological final clause goes through full-database
    // RUP, which may lean on any derived line — verify them all.
    let mut mark_all =
        final_clause.hints.is_empty() && negate_into_assignment(&final_clause.lits).is_some();
    for step in steps.iter().rev() {
        if let ProofStep::Derived { id, hints, .. } = step {
            if mark_all || marked.contains(id) {
                if hints.is_empty() {
                    mark_all = true;
                } else {
                    marked.extend(hints.iter().copied());
                }
            }
        }
    }

    // --- forward verification over the marked cone -----------------------
    let mut db: HashMap<u64, &[Lit]> = HashMap::new();
    let mut verified = 0usize;
    for step in steps {
        match step {
            ProofStep::Axiom { id, lits } => {
                db.insert(*id, lits);
            }
            ProofStep::Derived { id, lits, hints } => {
                if mark_all || marked.contains(id) {
                    if hints.is_empty() {
                        verify_full_db(*id, lits, &db)?;
                    } else {
                        verify_hinted(*id, lits, hints, &db)?;
                    }
                    verified += 1;
                }
                db.insert(*id, lits);
            }
            ProofStep::Delete { id } => {
                db.remove(id);
            }
        }
    }
    if final_clause.hints.is_empty() {
        if negate_into_assignment(&final_clause.lits).is_some() {
            verify_full_db(0, &final_clause.lits, &db)?;
        }
    } else {
        verify_hinted(0, &final_clause.lits, &final_clause.hints, &db)?;
    }
    verified += 1;

    Ok(CheckStats {
        steps_total: steps.len(),
        steps_verified: verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n)
    }

    fn axiom(id: u64, lits: &[i64]) -> ProofStep {
        ProofStep::Axiom {
            id,
            lits: lits.iter().map(|&n| lit(n)).collect(),
        }
    }

    fn derived(id: u64, lits: &[i64], hints: &[u64]) -> ProofStep {
        ProofStep::Derived {
            id,
            lits: lits.iter().map(|&n| lit(n)).collect(),
            hints: hints.to_vec(),
        }
    }

    fn fin(lits: &[i64], hints: &[u64]) -> FinalClause {
        FinalClause {
            lits: lits.iter().map(|&n| lit(n)).collect(),
            hints: hints.to_vec(),
        }
    }

    #[test]
    fn strict_rejects_out_of_order_hints() {
        // a ∧ b ∧ (¬a ∨ ¬b ∨ c) ⊢ c. The wide clause is unit only after
        // both units have propagated.
        let steps = vec![axiom(1, &[1]), axiom(2, &[2]), axiom(3, &[-1, -2, 3])];
        let good = fin(&[3], &[1, 2, 3]);
        assert!(check_certificate(None, &steps, &good).is_ok());
        // Cited first, the wide clause has two unassigned literals, and a
        // saturating checker would silently accept — strictness rejects.
        let bad = fin(&[3], &[3, 1, 2]);
        assert!(matches!(
            check_certificate(None, &steps, &bad),
            Err(ProofError::HintNotUnit { step: 0, hint: 3 })
        ));
    }

    #[test]
    fn satisfied_hint_is_rejected() {
        let steps = vec![axiom(1, &[1]), axiom(2, &[-1, 2]), axiom(3, &[1, 2])];
        // Assert ¬2: hint 3 = [1∨2]… after hint 1 propagates x, clause 3 is
        // satisfied → strict rejection.
        let bad = fin(&[2], &[1, 3]);
        assert!(matches!(
            check_certificate(None, &steps, &bad),
            Err(ProofError::SatisfiedHint { .. })
        ));
    }

    #[test]
    fn unknown_and_future_hints_are_rejected() {
        let steps = vec![axiom(1, &[1]), derived(2, &[1], &[7])];
        let f = fin(&[], &[1]);
        assert!(matches!(
            check_certificate(None, &steps, &f),
            Err(ProofError::UnknownHint { step: 2, hint: 7 })
        ));
    }

    #[test]
    fn ids_must_increase() {
        let steps = vec![axiom(2, &[1]), axiom(2, &[-1])];
        let f = fin(&[], &[2]);
        assert!(matches!(
            check_certificate(None, &steps, &f),
            Err(ProofError::IdOrder { id: 2 })
        ));
    }

    #[test]
    fn deleting_an_axiom_is_rejected() {
        let steps = vec![axiom(1, &[1]), ProofStep::Delete { id: 1 }];
        let f = fin(&[], &[1]);
        assert!(matches!(
            check_certificate(None, &steps, &f),
            Err(ProofError::BadDelete { id: 1 })
        ));
    }

    #[test]
    fn unmarked_garbage_is_structurally_checked_only() {
        // A bogus derived line outside the final cone: hints must still
        // resolve (structural), but its RUP is not checked.
        let steps = vec![
            axiom(1, &[1]),
            axiom(2, &[-1]),
            derived(3, &[2], &[1]), // not RUP, unmarked
        ];
        let f = fin(&[], &[1, 2]);
        assert!(check_certificate(None, &steps, &f).is_ok());
    }

    #[test]
    fn hintless_derived_falls_back_to_full_db() {
        let steps = vec![axiom(1, &[1]), axiom(2, &[-1, 2]), derived(3, &[2], &[])];
        let f = fin(&[-2], &[3]);
        // Final [¬2] cites 3; 3 is hintless → full-DB RUP (propagates x
        // from 1, conflicts on 2)… and the final itself: assert 2; hint 3 =
        // [2] satisfied → strict rejection. Use a fuller final instead.
        assert!(check_certificate(None, &steps, &f).is_err());
        let f = fin(&[], &[]);
        // Empty final with no hints: full-DB RUP over {x, ¬x∨y, y} — no
        // conflict (it is satisfiable), so rejected.
        assert!(matches!(
            check_certificate(None, &steps, &f),
            Err(ProofError::NoConflict { step: 0 })
        ));
    }
}
