//! Tseitin unrolling of the model into the CNF instances of Eq. 1, with
//! frame-stable variable numbering and an incremental clause-prefix cache.
//!
//! Every netlist node gets one CNF variable per time frame, at the fixed
//! index `frame · num_nodes + node`. The variable standing for a given
//! (node, frame) pair is therefore **identical in every instance `F_k`** —
//! exactly the invariant the paper relies on when it transfers `varRank`
//! from one BMC instance to the next.
//!
//! The same invariant makes the instances *append-only*: the clauses of
//! frame `f` depend only on `f`, so `F_k` is the clauses of `F_{k-1}` minus
//! its final bad-state unit, plus one new frame, plus a new bad-state unit.
//! The unroller caches the encoded clause prefix per model and only ever
//! encodes each frame once, turning the total encoding work of a BMC run
//! (one instance per depth) from quadratic to linear in the depth bound.
//! Consumers read the cache two ways: [`Unroller::with_prefix`] lends all of
//! frames `0..=k` (a fresh solver loading one whole instance), and
//! [`Unroller::with_frame_delta`] lends frame `k` alone (a persistent
//! session solver appending just the new frame — see its docs for why the
//! deltas concatenate exactly to the prefix).

use std::cell::RefCell;
use std::fmt;

use rbmc_circuit::{GateOp, LatchInit, Node, NodeId, Signal};
use rbmc_cnf::{Clauses, CnfFormula, Lit, Var};

use crate::Model;

/// The cached clause prefix: every frame encoded so far, in emission order,
/// without any bad-state unit clause.
///
/// In **bounded prefix mode** (see [`Unroller::retire_frames_through`]) the
/// clauses of frames already handed to a persistent session solver are
/// dropped from `formula`; `frame_end` keeps *absolute* clause counts so the
/// bookkeeping (`num_clauses_at`, delta boundaries) is unaffected, and
/// `retired_clauses` maps absolute offsets to the retained suffix.
#[derive(Clone, Default)]
struct PrefixCache {
    /// Clauses of frames `retired_frames..frame_end.len()`.
    formula: CnfFormula,
    /// Clause count after each encoded frame: `frame_end[f]` is the number
    /// of clauses encoding frames `0..=f` (absolute, including retired).
    frame_end: Vec<usize>,
    /// Frames `0..retired_frames` have been dropped from `formula`.
    retired_frames: usize,
    /// Number of dropped clauses (`frame_end[retired_frames - 1]`).
    retired_clauses: usize,
    /// Most clauses `formula` ever held at once (the space metric bounded
    /// prefix mode exists to shrink).
    peak_clauses: usize,
}

/// The Eq. 1 encoder (`gen_cnf_formula` in the paper's Fig. 5).
///
/// # Examples
///
/// ```
/// use rbmc_circuit::{LatchInit, Netlist};
/// use rbmc_core::{Model, Unroller};
///
/// let mut n = Netlist::new();
/// let t = n.add_latch("t", LatchInit::Zero);
/// n.set_next(t, !t);
/// let model = Model::new("toggle", n, t);
/// let unroller = Unroller::new(&model);
/// let f0 = unroller.formula(0);
/// let f3 = unroller.formula(3);
/// // Frame-stable numbering: deeper instances only append variables.
/// assert!(f0.num_vars() < f3.num_vars());
/// assert_eq!(unroller.var_of(t.node(), 2), unroller.var_of(t.node(), 2));
/// ```
#[derive(Clone)]
pub struct Unroller<'a> {
    model: &'a Model,
    num_nodes: usize,
    prefix: RefCell<PrefixCache>,
}

impl fmt::Debug for Unroller<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Unroller")
            .field("model", &self.model.name())
            .field("num_nodes", &self.num_nodes)
            .field("cached_frames", &self.prefix.borrow().frame_end.len())
            .finish()
    }
}

impl<'a> Unroller<'a> {
    /// Creates an unroller for the model (with an empty prefix cache).
    pub fn new(model: &'a Model) -> Unroller<'a> {
        Unroller {
            model,
            num_nodes: model.netlist().num_nodes(),
            prefix: RefCell::new(PrefixCache::default()),
        }
    }

    /// Extends the cached clause prefix through frame `k`. Each frame is
    /// encoded exactly once per unroller, which is sound because frame
    /// numbering is stable: the clauses of frame `f` are the same in every
    /// instance `F_k` with `k ≥ f`.
    fn ensure_frames(&self, k: usize) {
        let mut cache = self.prefix.borrow_mut();
        while cache.frame_end.len() <= k {
            let frame = cache.frame_end.len();
            self.emit_frame(frame, &mut cache.formula);
            let end = cache.retired_clauses + cache.formula.num_clauses();
            cache.frame_end.push(end);
        }
        cache.peak_clauses = cache.peak_clauses.max(cache.formula.num_clauses());
    }

    /// The model being unrolled.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// The CNF variable of `node` at time `frame` (stable across instances).
    pub fn var_of(&self, node: NodeId, frame: usize) -> Var {
        Var::new(frame * self.num_nodes + node.index())
    }

    /// The CNF literal of `signal` at time `frame`.
    pub fn lit_of(&self, signal: Signal, frame: usize) -> Lit {
        Lit::new(self.var_of(signal.node(), frame), signal.is_inverted())
    }

    /// The (node, frame) pair a CNF variable stands for.
    pub fn origin_of(&self, var: Var) -> (NodeId, usize) {
        (
            NodeId::new(var.index() % self.num_nodes),
            var.index() / self.num_nodes,
        )
    }

    /// The time frame a CNF variable belongs to (the x-axis of Shtrichman's
    /// plane; our refinement ranks along the other axis).
    pub fn frame_of(&self, var: Var) -> usize {
        var.index() / self.num_nodes
    }

    /// Number of CNF variables in the instance of depth `k`.
    pub fn num_vars_at(&self, k: usize) -> usize {
        (k + 1) * self.num_nodes
    }

    /// Builds `F_k`: `I(V⁰) ∧ ⋀_{1≤i≤k} T(V^{i-1}, Wⁱ, Vⁱ) ∧ ¬P(V^k)`.
    ///
    /// All instances share their clause prefix (except the final unit clause
    /// asserting the bad state), and their variables coincide on common
    /// frames.
    ///
    /// This materializes a fresh owned `CnfFormula`, which costs one
    /// allocation per clause — as much as encoding it — so it deliberately
    /// bypasses the prefix cache. Callers that build one instance per depth
    /// (the BMC loop) should consume [`Unroller::with_prefix`] instead: that
    /// path encodes every frame exactly once per unroller and lends out the
    /// cached clauses without copying.
    pub fn formula(&self, k: usize) -> CnfFormula {
        let mut formula = CnfFormula::with_vars(self.num_vars_at(k));
        for frame in 0..=k {
            self.emit_frame(frame, &mut formula);
        }
        // ¬P(V^k): the bad signal holds at the last frame.
        formula.add_clause([self.lit_of(self.model.bad(), k)]);
        formula
    }

    /// Runs `consume` on the cached clauses of frames `0..=k` — everything
    /// in `F_k` except the final unit clause [`Unroller::bad_lit`] asserts.
    /// This is the zero-copy path fresh-per-depth consumers (the
    /// [`SolverReuse::Fresh`](crate::SolverReuse) differential path, tests,
    /// benches) load whole instances from.
    ///
    /// `consume` must not call back into cache-filling methods of the same
    /// unroller (`formula`, `with_prefix`, `with_frame_delta`): the cache is
    /// borrowed for the duration of the call. The pure index arithmetic
    /// (`var_of`, `lit_of`, `num_vars_at`, …) is fine.
    /// In bounded prefix mode, asking for a prefix that includes retired
    /// frames falls back to a one-off re-encode of frames `0..=k` (correct,
    /// but it pays the encoding again — session-style consumers should not
    /// land here).
    pub fn with_prefix<R>(&self, k: usize, consume: impl FnOnce(Clauses<'_>) -> R) -> R {
        self.ensure_frames(k);
        let cache = self.prefix.borrow();
        if cache.retired_clauses > 0 {
            drop(cache);
            let mut formula = CnfFormula::with_vars(self.num_vars_at(k));
            for frame in 0..=k {
                self.emit_frame(frame, &mut formula);
            }
            let total = formula.num_clauses();
            return consume(formula.clauses_in(0..total));
        }
        consume(cache.formula.clauses_in(0..cache.frame_end[k]))
    }

    /// Runs `consume` on the cached clauses of frame `k` **alone** — the
    /// difference between `F_k` and `F_{k-1}` (ignoring the bad-state
    /// units). This is what the incremental solving session appends per
    /// depth: the persistent solver already holds frames `0..k`, so each
    /// depth costs one frame of encoding and loading instead of `k + 1`.
    ///
    /// Serving the delta from the same append-only cache as
    /// [`Unroller::with_prefix`] is sound **because frame numbering is
    /// stable**: the variable of `(node, frame)` is `frame · num_nodes +
    /// node`, independent of the depth bound, so the clauses of frame `k`
    /// are byte-identical in every instance `F_j` with `j ≥ k`. The deltas
    /// therefore concatenate exactly to the prefix —
    /// `prefix(k) = delta(0) ++ … ++ delta(k)` — and a solver fed deltas
    /// incrementally holds, clause for clause, the formula a fresh solver
    /// would load via `with_prefix`. Without stable numbering (e.g. had
    /// variables been numbered per-instance), earlier frames would need
    /// re-encoding at every depth and no delta could exist.
    ///
    /// The same borrow rule as [`Unroller::with_prefix`] applies to
    /// `consume`.
    pub fn with_frame_delta<R>(&self, k: usize, consume: impl FnOnce(Clauses<'_>) -> R) -> R {
        self.ensure_frames(k);
        let cache = self.prefix.borrow();
        if k < cache.retired_frames {
            // Bounded prefix mode dropped this frame: re-encode it one-off.
            drop(cache);
            let mut formula = CnfFormula::with_vars(self.num_vars_at(k));
            self.emit_frame(k, &mut formula);
            let total = formula.num_clauses();
            return consume(formula.clauses_in(0..total));
        }
        let base = cache.retired_clauses;
        let start = if k == 0 { 0 } else { cache.frame_end[k - 1] };
        consume(
            cache
                .formula
                .clauses_in(start - base..cache.frame_end[k] - base),
        )
    }

    /// Encodes frames `0..=k` and runs `consume` with a [`SharedPrefix`] —
    /// a plain-reference view of the cached clauses that, unlike the
    /// unroller itself (whose lazily filled cache lives in a `RefCell`), is
    /// `Sync` and can be lent to **worker threads**. This is how the
    /// parallel dispatch layer shares one encoding across all workers
    /// zero-copy: the cache is filled once here, on the calling thread, and
    /// the workers only ever read borrowed clause slices.
    ///
    /// Filling through `k` is **eager**, unlike the sequential engine's
    /// frame-at-a-time encoding — a run that retires every property at a
    /// shallow depth pays for frames it never solves. That trade is
    /// deliberate: encoding is linear and orders of magnitude cheaper than
    /// solving, and a lazily extended shared cache would need cross-thread
    /// synchronization on the hot clause-read path.
    ///
    /// The same borrow rule as [`Unroller::with_prefix`] applies to
    /// `consume` — on *this* unroller. Workers typically pair the view with
    /// a thread-local `Unroller::new(model)` for the pure index arithmetic
    /// (`lit_of`, `num_vars_at`, trace extraction), which never touches the
    /// cache.
    pub fn with_shared_prefix<R>(
        &self,
        k: usize,
        consume: impl FnOnce(SharedPrefix<'_>) -> R,
    ) -> R {
        self.ensure_frames(k);
        let cache = self.prefix.borrow();
        consume(SharedPrefix {
            formula: &cache.formula,
            frame_end: &cache.frame_end,
            retired_frames: cache.retired_frames,
            retired_clauses: cache.retired_clauses,
        })
    }

    /// **Bounded prefix mode**: drops the cached clauses of frames `0..=k`.
    ///
    /// A persistent session solver holds every frame it was fed for the rest
    /// of the run, so once frame `k`'s delta has been appended the cache
    /// copy is pure duplication — the sequential session engine retires each
    /// depth after solving it, keeping the cache at one frame instead of
    /// `max_depth`. Absolute bookkeeping ([`Unroller::num_clauses_at`],
    /// delta boundaries for later frames) is unaffected; re-reading a
    /// retired frame ([`Unroller::with_prefix`],
    /// [`Unroller::with_frame_delta`]) falls back to a one-off re-encode.
    /// Frames beyond the cache are ignored.
    pub fn retire_frames_through(&self, k: usize) {
        let mut cache = self.prefix.borrow_mut();
        if cache.frame_end.is_empty() {
            return;
        }
        let through = k.min(cache.frame_end.len() - 1);
        if through < cache.retired_frames {
            return;
        }
        let drop_to = cache.frame_end[through];
        let local_drop = drop_to - cache.retired_clauses;
        let total_local = cache.formula.num_clauses();
        let mut rest = CnfFormula::with_vars(cache.formula.num_vars());
        for clause in cache.formula.clauses_in(local_drop..total_local) {
            rest.add_clause(clause);
        }
        cache.formula = rest;
        cache.retired_frames = through + 1;
        cache.retired_clauses = drop_to;
    }

    /// Number of clauses currently held by the prefix cache (drops as
    /// [`Unroller::retire_frames_through`] is applied).
    pub fn cached_clauses(&self) -> usize {
        self.prefix.borrow().formula.num_clauses()
    }

    /// Most clauses the prefix cache ever held at once — the peak-memory
    /// metric the space-efficient engine reports.
    pub fn peak_cached_clauses(&self) -> usize {
        self.prefix.borrow().peak_clauses
    }

    /// The unit literal `¬P(V^k)` that turns the frame prefix into `F_k`,
    /// for the model's **primary** property. The frame prefix itself is
    /// property-independent — all properties of a
    /// [`VerificationProblem`](crate::VerificationProblem) share it — so the
    /// multi-property engine derives each property's literal with
    /// [`Unroller::lit_of`] on the property's own bad signal instead.
    pub fn bad_lit(&self, k: usize) -> Lit {
        self.lit_of(self.model.bad(), k)
    }

    /// Number of clauses in the instance of depth `k` (prefix plus the
    /// bad-state unit).
    pub fn num_clauses_at(&self, k: usize) -> usize {
        self.ensure_frames(k);
        self.prefix.borrow().frame_end[k] + 1
    }

    /// Emits the constraints of one time frame: constant pinning, gate
    /// relations, the initial-state predicate (frame 0), and the transition
    /// linking to the previous frame (frames ≥ 1).
    fn emit_frame(&self, frame: usize, formula: &mut CnfFormula) {
        let netlist = self.model.netlist();
        // The constant node is false in every frame.
        formula.add_clause([self.var_of(NodeId::CONST, frame).negative()]);
        for id in netlist.node_ids() {
            match netlist.node(id) {
                Node::Const | Node::Input => {}
                Node::Latch { init, next } => {
                    if frame == 0 {
                        match init {
                            LatchInit::Zero => {
                                formula.add_clause([self.var_of(id, 0).negative()]);
                            }
                            LatchInit::One => {
                                formula.add_clause([self.var_of(id, 0).positive()]);
                            }
                            LatchInit::Free => {}
                        }
                    } else {
                        // V^frame = next(V^{frame-1}, W^{frame-1}).
                        let next = next.expect("validated netlist");
                        let cur = self.var_of(id, frame).positive();
                        let prev = self.lit_of(next, frame - 1);
                        formula.add_clause([!cur, prev]);
                        formula.add_clause([cur, !prev]);
                    }
                }
                Node::Gate { op, fanins } => {
                    self.emit_gate(id, *op, fanins, frame, formula);
                }
            }
        }
    }

    /// Full Tseitin encoding of one gate (output variable ⟷ gate function).
    fn emit_gate(
        &self,
        id: NodeId,
        op: GateOp,
        fanins: &[Signal],
        frame: usize,
        formula: &mut CnfFormula,
    ) {
        let out = self.var_of(id, frame).positive();
        let ins: Vec<Lit> = fanins.iter().map(|&s| self.lit_of(s, frame)).collect();
        match op {
            GateOp::And => {
                // out → each input; all inputs → out.
                let mut long = Vec::with_capacity(ins.len() + 1);
                for &lit in &ins {
                    formula.add_clause([!out, lit]);
                    long.push(!lit);
                }
                long.push(out);
                formula.add_clause(long);
            }
            GateOp::Or => {
                let mut long = Vec::with_capacity(ins.len() + 1);
                for &lit in &ins {
                    formula.add_clause([out, !lit]);
                    long.push(lit);
                }
                long.push(!out);
                formula.add_clause(long);
            }
            GateOp::Xor => {
                assert!(
                    ins.len() <= 12,
                    "XOR arity {} too wide for direct CNF enumeration",
                    ins.len()
                );
                // Forbid every assignment where out ≠ parity(inputs).
                for bits in 0u32..1 << ins.len() {
                    let parity = bits.count_ones() % 2 == 1;
                    // Block (inputs = bits, out = !parity).
                    let mut clause = Vec::with_capacity(ins.len() + 1);
                    for (i, &lit) in ins.iter().enumerate() {
                        // Literal that is false under this input combination.
                        clause.push(if bits >> i & 1 == 1 { !lit } else { lit });
                    }
                    clause.push(if parity { out } else { !out });
                    formula.add_clause(clause);
                }
            }
            GateOp::Mux => {
                let (s, a, b) = (ins[0], ins[1], ins[2]);
                formula.add_clause([!s, !a, out]);
                formula.add_clause([!s, a, !out]);
                formula.add_clause([s, !b, out]);
                formula.add_clause([s, b, !out]);
                // Redundant but propagation-friendly: both branches agree.
                formula.add_clause([!a, !b, out]);
                formula.add_clause([a, b, !out]);
            }
        }
    }

    /// Emits the Tseitin clauses of a single gate at `frame` (used by the
    /// induction prover to assemble uninitialized unrollings).
    pub(crate) fn emit_gate_for(&self, id: NodeId, frame: usize, formula: &mut CnfFormula) {
        if let Node::Gate { op, fanins } = self.model.netlist().node(id) {
            self.emit_gate(id, *op, fanins, frame, formula);
        }
    }

    /// Reads the initial register state out of a satisfying assignment of
    /// some `F_k` (in [`Netlist::latches`](rbmc_circuit::Netlist::latches) order).
    pub fn initial_state_from(&self, assignment: &[bool]) -> Vec<bool> {
        self.model
            .netlist()
            .latches()
            .iter()
            .map(|&id| assignment[self.var_of(id, 0).index()])
            .collect()
    }

    /// Reads the input vector of `frame` out of a satisfying assignment (in
    /// [`Netlist::inputs`](rbmc_circuit::Netlist::inputs) order).
    pub fn inputs_at_from(&self, assignment: &[bool], frame: usize) -> Vec<bool> {
        self.model
            .netlist()
            .inputs()
            .iter()
            .map(|&id| assignment[self.var_of(id, frame).index()])
            .collect()
    }
}

/// A thread-shareable view of an [`Unroller`]'s encoded clause prefix (see
/// [`Unroller::with_shared_prefix`]). Holds plain shared references, so it
/// is `Copy` + `Sync`: the parallel dispatch layer hands one to every worker
/// and each reads the frames it needs without re-encoding or copying.
#[derive(Clone, Copy)]
pub struct SharedPrefix<'a> {
    formula: &'a CnfFormula,
    frame_end: &'a [usize],
    retired_frames: usize,
    retired_clauses: usize,
}

impl fmt::Debug for SharedPrefix<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedPrefix")
            .field("frames", &self.frame_end.len())
            .field("clauses", &self.formula.num_clauses())
            .finish()
    }
}

impl SharedPrefix<'_> {
    /// The clauses of frames `0..=k` — what [`Unroller::with_prefix`] lends.
    ///
    /// # Panics
    ///
    /// Panics if frame `k` was not encoded when the view was taken, or if
    /// any covered frame was retired
    /// ([`Unroller::retire_frames_through`]) — the parallel consumers that
    /// share prefixes never run in bounded prefix mode.
    pub fn prefix(&self, k: usize) -> Clauses<'_> {
        assert_eq!(
            self.retired_frames, 0,
            "shared prefix reads are incompatible with bounded prefix mode"
        );
        self.formula.clauses_in(0..self.frame_end[k])
    }

    /// The clauses of frame `k` alone — what [`Unroller::with_frame_delta`]
    /// lends.
    ///
    /// # Panics
    ///
    /// Panics if frame `k` was not encoded when the view was taken, or was
    /// retired ([`Unroller::retire_frames_through`]).
    pub fn frame_delta(&self, k: usize) -> Clauses<'_> {
        assert!(
            k >= self.retired_frames,
            "frame {k} was retired from the shared prefix"
        );
        let base = self.retired_clauses;
        let start = if k == 0 { 0 } else { self.frame_end[k - 1] };
        self.formula
            .clauses_in(start - base..self.frame_end[k] - base)
    }

    /// Number of frames the view covers (frames `0..frames()` are readable).
    pub fn frames(&self) -> usize {
        self.frame_end.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_circuit::Netlist;
    use rbmc_solver::{SolveResult, Solver};

    /// Counter model: `width`-bit counter, bad when it equals `target`.
    fn counter_model(width: usize, target: u64) -> Model {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let bad = n.bus_eq_const(&bits, target);
        Model::new("counter", n, bad)
    }

    #[test]
    fn instance_sat_exactly_at_target_depth() {
        let model = counter_model(4, 6);
        let unroller = Unroller::new(&model);
        for k in 0..10 {
            let f = unroller.formula(k);
            let mut solver = Solver::from_formula(&f);
            let expected = if k == 6 {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(solver.solve(), expected, "depth {k}");
        }
    }

    #[test]
    fn variables_are_frame_stable() {
        let model = counter_model(3, 7);
        let unroller = Unroller::new(&model);
        let n = model.netlist().num_nodes();
        for frame in 0..5 {
            for node in model.netlist().node_ids() {
                let v = unroller.var_of(node, frame);
                assert_eq!(v.index(), frame * n + node.index());
                assert_eq!(unroller.origin_of(v), (node, frame));
                assert_eq!(unroller.frame_of(v), frame);
            }
        }
    }

    #[test]
    fn incremental_prefix_identical_to_fresh_encode() {
        // The instance assembled from one long-lived unroller's prefix cache
        // (the path BmcEngine drives) must be clause-for-clause identical to
        // a fresh encode at every depth — ascending, then descending, so
        // cache hits and partial reads are both covered.
        let model = counter_model(4, 9);
        let shared = Unroller::new(&model);
        let rebuild = |k: usize| {
            shared.with_prefix(k, |clauses| {
                let mut f = CnfFormula::with_vars(shared.num_vars_at(k));
                for clause in clauses {
                    f.add_clause(clause);
                }
                f.add_clause([shared.bad_lit(k)]);
                f
            })
        };
        for k in 0..12 {
            let fresh = Unroller::new(&model).formula(k);
            assert_eq!(rebuild(k), fresh, "ascending depth {k}");
        }
        for k in (0..12).rev() {
            let fresh = Unroller::new(&model).formula(k);
            assert_eq!(rebuild(k), fresh, "descending depth {k}");
        }
    }

    #[test]
    fn with_prefix_matches_formula_minus_bad_unit() {
        let model = counter_model(3, 5);
        let unroller = Unroller::new(&model);
        for k in [0usize, 2, 5, 3] {
            let f = unroller.formula(k);
            assert_eq!(unroller.num_clauses_at(k), f.num_clauses());
            unroller.with_prefix(k, |clauses| {
                assert_eq!(clauses.len() + 1, f.num_clauses(), "depth {k}");
                for (i, clause) in clauses.iter().enumerate() {
                    assert_eq!(clause, f.clause(i), "clause {i} at depth {k}");
                }
            });
            assert_eq!(
                f.clause(f.num_clauses() - 1).lits(),
                &[unroller.bad_lit(k)],
                "final unit at depth {k}"
            );
        }
    }

    #[test]
    fn frame_deltas_concatenate_to_the_prefix() {
        // prefix(k) = delta(0) ++ … ++ delta(k): the property that makes the
        // incremental session's per-depth appends sound (frame-stable
        // numbering; see `with_frame_delta`). Out-of-order depths exercise
        // partial cache reads.
        let model = counter_model(4, 9);
        let unroller = Unroller::new(&model);
        for k in [3usize, 1, 5] {
            let mut rebuilt = CnfFormula::with_vars(unroller.num_vars_at(k));
            for frame in 0..=k {
                unroller.with_frame_delta(frame, |clauses| {
                    for clause in clauses {
                        rebuilt.add_clause(clause);
                    }
                });
            }
            unroller.with_prefix(k, |prefix| {
                assert_eq!(prefix.len(), rebuilt.num_clauses(), "depth {k}");
                for (i, clause) in prefix.iter().enumerate() {
                    assert_eq!(clause, rebuilt.clause(i), "clause {i} at depth {k}");
                }
            });
        }
    }

    #[test]
    fn shared_prefix_matches_per_thread_reads() {
        // The Sync view lends the same clauses with_prefix/with_frame_delta
        // would, and actually works from worker threads.
        let model = counter_model(4, 9);
        let unroller = Unroller::new(&model);
        unroller.with_shared_prefix(6, |shared| {
            assert_eq!(shared.frames(), 7);
            for k in 0..=6usize {
                let expect: Vec<Vec<rbmc_cnf::Lit>> = Unroller::new(&model)
                    .with_prefix(k, |c| c.iter().map(|cl| cl.lits().to_vec()).collect());
                let got: Vec<Vec<rbmc_cnf::Lit>> = std::thread::scope(|s| {
                    s.spawn(move || {
                        shared
                            .prefix(k)
                            .iter()
                            .map(|cl| cl.lits().to_vec())
                            .collect()
                    })
                    .join()
                    .unwrap()
                });
                assert_eq!(got, expect, "depth {k}");
                let mut concat: Vec<Vec<rbmc_cnf::Lit>> = Vec::new();
                for f in 0..=k {
                    concat.extend(shared.frame_delta(f).iter().map(|cl| cl.lits().to_vec()));
                }
                assert_eq!(concat, expect, "delta concat at depth {k}");
            }
        });
    }

    #[test]
    fn bounded_prefix_keeps_deltas_and_bookkeeping_intact() {
        // Retire frames as a session engine would; later deltas must be
        // byte-identical to an unretired unroller's, absolute clause counts
        // must not change, and the peak must reflect the bounded window.
        let model = counter_model(4, 9);
        let reference = Unroller::new(&model);
        let bounded = Unroller::new(&model);
        let delta_of = |u: &Unroller<'_>, k: usize| -> Vec<Vec<rbmc_cnf::Lit>> {
            u.with_frame_delta(k, |c| c.iter().map(|cl| cl.lits().to_vec()).collect())
        };
        for k in 0..10usize {
            assert_eq!(delta_of(&bounded, k), delta_of(&reference, k), "depth {k}");
            assert_eq!(
                bounded.num_clauses_at(k),
                reference.num_clauses_at(k),
                "clause count at depth {k}"
            );
            bounded.retire_frames_through(k);
        }
        assert_eq!(bounded.cached_clauses(), 0, "everything retired");
        assert!(bounded.peak_cached_clauses() < reference.cached_clauses());
        assert_eq!(
            reference.peak_cached_clauses(),
            reference.cached_clauses(),
            "unretired cache peaks at its full size"
        );
    }

    #[test]
    fn bounded_prefix_reencodes_retired_reads() {
        // Reading a retired frame (prefix or delta) falls back to a one-off
        // re-encode with identical clauses.
        let model = counter_model(3, 5);
        let reference = Unroller::new(&model);
        let bounded = Unroller::new(&model);
        bounded.with_frame_delta(4, |_| {});
        bounded.retire_frames_through(2);
        for k in 0..=4usize {
            let expect: Vec<Vec<rbmc_cnf::Lit>> =
                reference.with_prefix(k, |c| c.iter().map(|cl| cl.lits().to_vec()).collect());
            let got: Vec<Vec<rbmc_cnf::Lit>> =
                bounded.with_prefix(k, |c| c.iter().map(|cl| cl.lits().to_vec()).collect());
            assert_eq!(got, expect, "prefix at depth {k}");
            let expect_delta: Vec<Vec<rbmc_cnf::Lit>> =
                reference.with_frame_delta(k, |c| c.iter().map(|cl| cl.lits().to_vec()).collect());
            let got_delta: Vec<Vec<rbmc_cnf::Lit>> =
                bounded.with_frame_delta(k, |c| c.iter().map(|cl| cl.lits().to_vec()).collect());
            assert_eq!(got_delta, expect_delta, "delta at depth {k}");
        }
    }

    #[test]
    fn formulas_share_clause_prefix() {
        let model = counter_model(3, 7);
        let unroller = Unroller::new(&model);
        let f2 = unroller.formula(2);
        let f3 = unroller.formula(3);
        // All clauses of F_2 except its final (bad) unit clause reappear
        // verbatim, in order, at the start of F_3.
        for i in 0..f2.num_clauses() - 1 {
            assert_eq!(f2.clause(i), f3.clause(i), "clause {i} differs");
        }
    }

    #[test]
    fn model_assignment_matches_simulation() {
        // SAT at depth 6; the satisfying assignment's gate values must agree
        // with the simulator run under the extracted inputs (full Tseitin).
        let model = counter_model(4, 6);
        let unroller = Unroller::new(&model);
        let f = unroller.formula(6);
        let mut solver = Solver::from_formula(&f);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let assignment = solver.model().unwrap();
        let mut state = unroller.initial_state_from(assignment);
        for frame in 0..=6 {
            let inputs = unroller.inputs_at_from(assignment, frame);
            let values = rbmc_circuit::sim::eval_frame(model.netlist(), &state, &inputs);
            for id in model.netlist().node_ids() {
                assert_eq!(
                    values[id.index()],
                    assignment[unroller.var_of(id, frame).index()],
                    "node {id:?} at frame {frame}"
                );
            }
            // Advance the state.
            state = model
                .netlist()
                .latches()
                .iter()
                .map(|&l| match model.netlist().node(l) {
                    Node::Latch { next: Some(nx), .. } => {
                        rbmc_circuit::sim::read_signal(&values, *nx)
                    }
                    _ => unreachable!(),
                })
                .collect();
        }
    }

    #[test]
    fn free_latches_are_unconstrained() {
        // A free-init latch that feeds the bad signal directly: SAT at k=0.
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Free);
        n.set_next(l, l);
        let model = Model::new("free", n, l);
        let unroller = Unroller::new(&model);
        let mut solver = Solver::from_formula(&unroller.formula(0));
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn num_vars_scales_linearly() {
        let model = counter_model(2, 3);
        let unroller = Unroller::new(&model);
        let n = model.netlist().num_nodes();
        assert_eq!(unroller.num_vars_at(0), n);
        assert_eq!(unroller.num_vars_at(4), 5 * n);
        assert_eq!(unroller.formula(4).num_vars(), 5 * n);
    }
}
