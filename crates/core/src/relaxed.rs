//! Relaxed-determinism parallel dispatch: the faster grain past the
//! commit-order barrier of the [`parallel`](crate::parallel) module.
//!
//! The deterministic grains reproduce the sequential engine bit for bit by
//! committing every result — `varRank` updates included — in sequential
//! order, which serializes exactly the part of the sweep the refinement
//! loop feeds on. The two grains here drop that barrier and keep only what
//! is *semantic*:
//!
//! - [`ShardMode::Striped`](crate::ShardMode) — worker `w` of `W` owns
//!   every depth `k ≡ w (mod W)` and sweeps **all** properties of each
//!   owned depth on one warm incremental session solver (learned clauses
//!   persist across the worker's depths). Each owned depth still commits
//!   its core union in one [`VarRank::update_union`] call — the same
//!   per-depth union the sequential engine forms — but the unions land in
//!   the shared table in *completion order*, not depth order. Under the
//!   [`Weighting::is_commutative`](crate::Weighting::is_commutative)
//!   schemes the final table is a permutation-invariant sum, so only the
//!   rank snapshots workers *observe mid-run* vary with scheduling.
//! - [`ShardMode::WorkStealing`](crate::ShardMode) — one session solver
//!   per property (the `ByProperty` decomposition), but tasks live in
//!   per-worker deques and advance **one depth per pop**: an idle worker
//!   steals the deepest-queued session from the fullest deque, so a skewed
//!   property mix no longer pins the whole run on the worker that drew the
//!   expensive properties. Core updates commit per episode as they finish.
//!
//! **What is guaranteed** (and differentially tested against the
//! sequential oracle in `tests/relaxed_vs_deterministic.rs`): per-property
//! verdicts, per-depth verdict sequences, retirement depths, and validated
//! counterexample traces. SAT-ness of instance `F_k ∧ bad_p^k` is a
//! property of the formula, not of the solver schedule, so every complete
//! solver agrees on it; the ranking only steers *how fast* a verdict is
//! reached. **What is not guaranteed**: the final rank table, per-episode
//! decision/conflict counts, and (under a resource budget) where the run
//! truncates — a relaxed session learns different clauses than the
//! sequential shared session, so a tight budget can exhaust at a different
//! episode. Budget-free runs match the oracle exactly.
//!
//! Cancellation: a [`CancelFlag`] attached to the engine
//! ([`BmcEngine::set_cancel`]) is threaded into every worker's limits.
//! Cancelled episodes surface as [`SolveResult::Unknown`]; depths a
//! cancelled worker never reached are backfilled with synthetic `Unknown`
//! episodes at commit, so the run truncates through the same
//! `ResourceOut` machinery a budget exhaustion uses and always returns a
//! committed partial [`BmcRun`](crate::BmcRun).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rbmc_solver::{CancelFlag, Limits, SolveResult, Solver, SolverStats};

use crate::certify::EpisodeCertifier;
use crate::engine::{
    core_model_vars, depth_limits, install_strategy_ranking, strategy_solver_options, BmcEngine,
    BmcOptions, BmcRun,
};
use crate::parallel::{
    commit_episode, cut_and_merge, striped_map, Episode, GroupOutcome, WorkerReport,
};
use crate::unroll::SharedPrefix;
use crate::{Model, Trace, Unroller, VarRank};

// ---------------------------------------------------------------------------
// Striped: session solvers across depth residues.
// ---------------------------------------------------------------------------

/// Shared read-mostly context of a striped run (one per run, borrowed by
/// every worker).
struct StripedCtx<'a, 'b> {
    model: &'a Model,
    options: &'a BmcOptions,
    prefix: &'a SharedPrefix<'b>,
    cancel: Option<&'a CancelFlag>,
    /// The shared rank table; workers snapshot before a depth and commit
    /// the depth's core union after (commutative, completion-ordered).
    rank: &'a Mutex<VarRank>,
    /// Shallowest known SAT depth per property (`usize::MAX` = none):
    /// depths beyond it are post-retirement and skipped.
    sat_min: &'a [AtomicUsize],
    /// Earliest depth that hit a resource budget (`usize::MAX` = none):
    /// deeper depths would be discarded at the cut anyway.
    unknown_min: &'a AtomicUsize,
    num_workers: usize,
}

/// One striped worker's complete output: for each owned depth, one episode
/// per property it actually solved.
struct StripedOut {
    rows: Vec<(usize, Vec<Option<Episode>>)>,
    report: WorkerReport,
    stats: SolverStats,
    /// The worker's session-solver proof summary (`None` with proof off).
    proof: Option<crate::ProofSummary>,
}

pub(crate) fn run_striped(engine: &mut BmcEngine, jobs: usize) -> BmcRun {
    let run_start = Instant::now();
    let options = *engine.opts();
    let cancel = engine.cancel_flag().cloned();
    let model = engine.working_model().clone();
    let num_props = model.problem().num_properties();
    let num_depths = options.max_depth + 1;
    let unroller = Unroller::new(&model);

    let shared_rank = Mutex::new(VarRank::new(options.weighting));
    let sat_min: Vec<AtomicUsize> = (0..num_props)
        .map(|_| AtomicUsize::new(usize::MAX))
        .collect();
    let unknown_min = AtomicUsize::new(usize::MAX);
    let num_workers = jobs.max(1).min(num_depths);

    let outputs = unroller.with_shared_prefix(options.max_depth, |prefix| {
        let ctx = StripedCtx {
            model: &model,
            options: &options,
            prefix: &prefix,
            cancel: cancel.as_ref(),
            rank: &shared_rank,
            sat_min: &sat_min,
            unknown_min: &unknown_min,
            num_workers,
        };
        striped_map(num_workers, num_workers, |_, w| run_striped_worker(&ctx, w))
    });

    // Reassemble the per-(depth, property) episode table, then walk each
    // property's depths in order — the same committed-prefix shape the
    // deterministic ByProperty merge consumes.
    let mut table: Vec<Vec<Option<Episode>>> = (0..num_depths)
        .map(|_| (0..num_props).map(|_| None).collect())
        .collect();
    let mut reports = Vec::with_capacity(outputs.len());
    let mut session_stats = SolverStats::new();
    let mut proof_acc: Option<crate::ProofSummary> = None;
    for out in outputs {
        for (k, row) in out.rows {
            table[k] = row;
        }
        reports.push(out.report);
        session_stats.accumulate(&out.stats);
        crate::certify::merge_opt(&mut proof_acc, out.proof);
    }
    let cancelled = cancel
        .as_ref()
        .is_some_and(rbmc_solver::CancelFlag::is_cancelled);
    let mut groups: Vec<GroupOutcome> = (0..num_props)
        .map(|p| GroupOutcome::fresh(&model, p))
        .collect();
    for (p, group) in groups.iter_mut().enumerate() {
        let mut unsat_depths = 0u64;
        for (k, row) in table.iter_mut().enumerate() {
            match row[p].take() {
                Some(episode) => {
                    let unknown = episode.result == SolveResult::Unknown;
                    if episode.result == SolveResult::Unsat {
                        unsat_depths += 1;
                    }
                    commit_episode(group, episode, k);
                    if unknown || !group.prop.open {
                        break;
                    }
                }
                None => {
                    // A depth this property still needed was never solved —
                    // only a cancelled run leaves such a gap. Surface it as
                    // the budget machinery's Unknown so the cut lands here.
                    if cancelled && k <= options.max_depth {
                        commit_episode(group, Episode::synthetic_unknown(), k);
                    }
                    break;
                }
            }
        }
        // Session semantics: every UNSAT episode retired its activation
        // literal through a failed-assumption conflict.
        group.prop.assumption_conflicts = unsat_depths;
    }

    let mut run = cut_and_merge(engine, &options, &unroller, groups, reports, run_start);
    // Each worker's warm session solver carries the aggregate counters (the
    // per-episode deltas are already in the per-depth stats). The proof
    // summaries likewise live with the workers' solvers, not the groups.
    run.solver_stats = session_stats;
    run.proof = proof_acc;
    *engine.rank_mut() = shared_rank.into_inner().expect("rank lock");
    run
}

/// One striped worker: sweep every property of each owned depth on one warm
/// session solver, committing each depth's core union to the shared table.
fn run_striped_worker(ctx: &StripedCtx<'_, '_>, w: usize) -> StripedOut {
    let worker_start = Instant::now();
    let options = ctx.options;
    let num_props = ctx.model.problem().num_properties();
    let unroller = Unroller::new(ctx.model);
    let mut solver = Solver::with_options(strategy_solver_options(options));
    let mut certifier = EpisodeCertifier::attach(options.proof, &mut solver);
    let limits = depth_limits(options, ctx.cancel);
    let mut loaded = 0usize;
    let mut rows = Vec::new();
    let mut report = WorkerReport {
        worker: w,
        ..WorkerReport::default()
    };

    let mut k = w;
    while k <= options.max_depth {
        if ctx
            .cancel
            .is_some_and(rbmc_solver::CancelFlag::is_cancelled)
        {
            break;
        }
        if k > ctx.unknown_min.load(Ordering::Relaxed) {
            break;
        }
        // All properties already retired shallower than this depth: nothing
        // at this depth (or deeper) can ever be committed.
        if (0..num_props).all(|p| ctx.sat_min[p].load(Ordering::Relaxed) < k) {
            break;
        }
        while loaded <= k {
            for clause in ctx.prefix.frame_delta(loaded) {
                solver.add_clause(clause.lits());
            }
            loaded += 1;
        }
        let rank_snapshot: Vec<u64> = ctx.rank.lock().expect("rank lock").snapshot();
        install_strategy_ranking(options.strategy, &rank_snapshot, &mut solver, &unroller, k);
        let mut row: Vec<Option<Episode>> = (0..num_props).map(|_| None).collect();
        let mut hit_unknown = false;
        for (p_idx, slot) in row.iter_mut().enumerate() {
            if k > ctx.sat_min[p_idx].load(Ordering::Relaxed) {
                continue;
            }
            let episode = run_striped_episode(ctx, &unroller, &mut solver, &limits, k, p_idx);
            if episode.result == SolveResult::Unsat {
                if let Some(cert) = certifier.as_mut() {
                    cert.observe_unsat();
                }
            }
            report.episodes += 1;
            report.decisions += episode.decisions;
            report.conflicts += episode.conflicts;
            report.propagations += episode.implications;
            hit_unknown = episode.result == SolveResult::Unknown;
            *slot = Some(episode);
            if hit_unknown {
                ctx.unknown_min.fetch_min(k, Ordering::Relaxed);
                break;
            }
        }
        // The worker owns the whole depth, so this is the sequential
        // engine's per-depth union — only its position in the shared
        // table's update order is relaxed.
        if options.strategy.needs_cores() {
            ctx.rank.lock().expect("rank lock").update_union(
                row.iter()
                    .flatten()
                    .filter(|e| e.result == SolveResult::Unsat)
                    .map(|e| e.core.as_slice()),
                k,
            );
        }
        if options.cdg_prune {
            solver.prune_cdg();
        }
        report.items += 1;
        rows.push((k, row));
        if hit_unknown {
            break;
        }
        k += ctx.num_workers;
    }
    report.time = worker_start.elapsed();
    StripedOut {
        rows,
        report,
        stats: solver.stats().clone(),
        proof: certifier.map(EpisodeCertifier::into_summary),
    }
}

/// One property's episode at one striped depth: the session scheme of the
/// sequential engine (activation literal, assumption solve, retirement
/// unit), buffered as an [`Episode`] for the commit walk.
fn run_striped_episode(
    ctx: &StripedCtx<'_, '_>,
    unroller: &Unroller<'_>,
    solver: &mut Solver,
    limits: &Limits,
    k: usize,
    p_idx: usize,
) -> Episode {
    let start = Instant::now();
    let num_props = ctx.model.problem().num_properties();
    let bad = ctx.model.problem().property(p_idx).bad();
    let base = solver.stats().clone();
    let act = BmcEngine::activation_lit(unroller, ctx.options, num_props, k, p_idx);
    solver.add_clause(&[!act, unroller.lit_of(bad, k)]);
    let result = solver.solve_under_limited(&[act], limits);
    let stats = solver.stats();
    let mut episode = Episode {
        result,
        decisions: stats.decisions - base.decisions,
        implications: stats.propagations - base.propagations,
        conflicts: stats.conflicts - base.conflicts,
        cdg_nodes: stats.cdg_nodes - base.cdg_nodes,
        cdg_edges: stats.cdg_edges - base.cdg_edges,
        num_clauses: solver.num_original_clauses(),
        switched: stats.switched_to_vsids,
        core: Vec::new(),
        trace: None,
        solver_stats: None,
        proof: None,
        time: Duration::ZERO,
    };
    match result {
        SolveResult::Sat => {
            let assignment = solver.model().expect("model after SAT");
            let trace = Trace::from_assignment(unroller, assignment, k);
            debug_assert!(
                trace.validate_against(ctx.model.netlist(), bad).is_ok(),
                "solver returned an invalid counterexample at depth {k}"
            );
            episode.trace = Some(trace);
            ctx.sat_min[p_idx].fetch_min(k, Ordering::Relaxed);
            solver.add_clause(&[!act]);
        }
        SolveResult::Unsat => {
            episode.core = core_model_vars(solver, unroller.num_vars_at(k));
            solver.add_clause(&[!act]);
        }
        SolveResult::Unknown => {}
    }
    episode.time = start.elapsed();
    episode
}

// ---------------------------------------------------------------------------
// Work stealing: per-property sessions rebalanced across worker deques.
// ---------------------------------------------------------------------------

/// A per-property session parked between depth advances.
struct Task {
    p_idx: usize,
    solver: Solver,
    /// The session's proof certifier — it migrates with the solver.
    certifier: Option<EpisodeCertifier>,
    /// Frames loaded into `solver` so far (exclusive bound).
    loaded: usize,
    next_depth: usize,
    group: GroupOutcome,
}

/// Shared state of a work-stealing run.
struct StealCtx<'a, 'b> {
    model: &'a Model,
    options: &'a BmcOptions,
    prefix: &'a SharedPrefix<'b>,
    cancel: Option<&'a CancelFlag>,
    rank: &'a Mutex<VarRank>,
    deques: &'a [Mutex<VecDeque<Task>>],
    /// Tasks not yet finished (parked in a deque or held by a worker).
    live: &'a AtomicUsize,
    finished: &'a Mutex<Vec<Task>>,
}

pub(crate) fn run_work_stealing(engine: &mut BmcEngine, jobs: usize) -> BmcRun {
    let run_start = Instant::now();
    let options = *engine.opts();
    let cancel = engine.cancel_flag().cloned();
    let model = engine.working_model().clone();
    let num_props = model.problem().num_properties();
    let unroller = Unroller::new(&model);
    // More workers than property sessions would only spin on empty deques:
    // oversubscribed `jobs` clamps to the task count (and to ≥ 1).
    let num_workers = jobs.max(1).min(num_props.max(1));

    let shared_rank = Mutex::new(VarRank::new(options.weighting));
    let deques: Vec<Mutex<VecDeque<Task>>> = (0..num_workers)
        .map(|_| Mutex::new(VecDeque::new()))
        .collect();
    for p in 0..num_props {
        let mut solver = Solver::with_options(strategy_solver_options(&options));
        let certifier = EpisodeCertifier::attach(options.proof, &mut solver);
        deques[p % num_workers]
            .lock()
            .expect("deque lock")
            .push_back(Task {
                p_idx: p,
                solver,
                certifier,
                loaded: 0,
                next_depth: 0,
                group: GroupOutcome::fresh(&model, p),
            });
    }
    let live = AtomicUsize::new(num_props);
    let finished = Mutex::new(Vec::with_capacity(num_props));

    let reports = unroller.with_shared_prefix(options.max_depth, |prefix| {
        let ctx = StealCtx {
            model: &model,
            options: &options,
            prefix: &prefix,
            cancel: cancel.as_ref(),
            rank: &shared_rank,
            deques: &deques,
            live: &live,
            finished: &finished,
        };
        striped_map(num_workers, num_workers, |_, w| run_steal_worker(&ctx, w))
    });

    let mut tasks = finished.into_inner().expect("finished lock");
    tasks.sort_by_key(|t| t.p_idx);
    debug_assert_eq!(tasks.len(), num_props, "every session ends in `finished`");
    let groups: Vec<GroupOutcome> = tasks.into_iter().map(|t| t.group).collect();

    // `group.stats` carries each property session's final counters, which
    // `merge_committed` aggregates — nothing to override here.
    let run = cut_and_merge(engine, &options, &unroller, groups, reports, run_start);
    *engine.rank_mut() = shared_rank.into_inner().expect("rank lock");
    run
}

/// One work-stealing worker: pop a session from the own deque (steal from
/// the fullest other deque when empty), advance it one depth, park it back
/// or retire it.
fn run_steal_worker(ctx: &StealCtx<'_, '_>, w: usize) -> WorkerReport {
    let worker_start = Instant::now();
    let limits = depth_limits(ctx.options, ctx.cancel);
    let unroller = Unroller::new(ctx.model);
    let mut report = WorkerReport {
        worker: w,
        ..WorkerReport::default()
    };
    loop {
        if ctx.live.load(Ordering::Acquire) == 0 {
            break;
        }
        let own = ctx.deques[w].lock().expect("deque lock").pop_front();
        let task = match own {
            Some(task) => Some(task),
            None => {
                // Steal from the back of the fullest other deque.
                let victim = (0..ctx.deques.len())
                    .filter(|&v| v != w)
                    .map(|v| (ctx.deques[v].lock().expect("deque lock").len(), v))
                    .max()
                    .filter(|&(len, _)| len > 0)
                    .map(|(_, v)| v);
                let stolen =
                    victim.and_then(|v| ctx.deques[v].lock().expect("deque lock").pop_back());
                if stolen.is_some() {
                    report.steals += 1;
                }
                stolen
            }
        };
        let Some(mut task) = task else {
            // Everything is in flight on other workers; wait for a park.
            std::thread::yield_now();
            continue;
        };
        report.items += 1;
        let episode_counters = advance_task(ctx, &unroller, &limits, &mut task);
        report.episodes += 1;
        report.decisions += episode_counters.0;
        report.conflicts += episode_counters.1;
        report.propagations += episode_counters.2;
        let done = !task.group.prop.open
            || task
                .group
                .episodes
                .last()
                .is_some_and(|e| e.result == SolveResult::Unknown)
            || task.next_depth > ctx.options.max_depth;
        if done {
            task.group.stats = task.solver.stats().clone();
            task.group.proof = task.certifier.take().map(EpisodeCertifier::into_summary);
            ctx.finished.lock().expect("finished lock").push(task);
            // Release ordering publishes the finished task before other
            // workers observe the counter reaching zero.
            ctx.live.fetch_sub(1, Ordering::Release);
        } else {
            ctx.deques[w].lock().expect("deque lock").push_back(task);
        }
    }
    report.time = worker_start.elapsed();
    report
}

/// Advances one property session by exactly one depth (the session scheme
/// of `run_property_session`, cut at depth granularity so sessions can
/// migrate between workers). Returns the episode's (decisions, conflicts,
/// propagations) for the worker report.
fn advance_task(
    ctx: &StealCtx<'_, '_>,
    unroller: &Unroller<'_>,
    limits: &Limits,
    task: &mut Task,
) -> (u64, u64, u64) {
    let options = ctx.options;
    let k = task.next_depth;
    let start = Instant::now();
    while task.loaded <= k {
        for clause in ctx.prefix.frame_delta(task.loaded) {
            task.solver.add_clause(clause.lits());
        }
        task.loaded += 1;
    }
    let base = task.solver.stats().clone();
    let act = BmcEngine::activation_lit(unroller, options, 1, k, 0);
    task.solver
        .add_clause(&[!act, unroller.lit_of(task.group.prop.bad, k)]);
    let rank_snapshot: Vec<u64> = ctx.rank.lock().expect("rank lock").snapshot();
    install_strategy_ranking(
        options.strategy,
        &rank_snapshot,
        &mut task.solver,
        unroller,
        k,
    );
    let result = task.solver.solve_under_limited(&[act], limits);
    let stats = task.solver.stats();
    let counters = (
        stats.decisions - base.decisions,
        stats.conflicts - base.conflicts,
        stats.propagations - base.propagations,
    );
    let mut episode = Episode {
        result,
        decisions: counters.0,
        implications: counters.2,
        conflicts: counters.1,
        cdg_nodes: stats.cdg_nodes - base.cdg_nodes,
        cdg_edges: stats.cdg_edges - base.cdg_edges,
        num_clauses: task.solver.num_original_clauses(),
        switched: stats.switched_to_vsids,
        core: Vec::new(),
        trace: None,
        solver_stats: None,
        proof: None,
        time: Duration::ZERO,
    };
    match result {
        SolveResult::Sat => {
            let assignment = task.solver.model().expect("model after SAT");
            let trace = Trace::from_assignment(unroller, assignment, k);
            debug_assert!(
                trace
                    .validate_against(ctx.model.netlist(), task.group.prop.bad)
                    .is_ok(),
                "solver returned an invalid counterexample for `{}`",
                task.group.prop.name
            );
            episode.trace = Some(trace);
            task.solver.add_clause(&[!act]);
        }
        SolveResult::Unsat => {
            episode.core = core_model_vars(&task.solver, unroller.num_vars_at(k));
            task.solver.add_clause(&[!act]);
            task.group.prop.assumption_conflicts += 1;
            if let Some(cert) = task.certifier.as_mut() {
                cert.observe_unsat();
            }
            // Per-episode commit: this property's core lands in the shared
            // table as soon as it exists — relaxed both in depth order and
            // in the per-depth union (a variable cited by several
            // properties' cores at the same depth is credited per core).
            if options.strategy.needs_cores() && !episode.core.is_empty() {
                ctx.rank
                    .lock()
                    .expect("rank lock")
                    .update_union(std::iter::once(episode.core.as_slice()), k);
            }
        }
        SolveResult::Unknown => {}
    }
    episode.time = start.elapsed();
    commit_episode(&mut task.group, episode, k);
    if options.cdg_prune {
        task.solver.prune_cdg();
    }
    task.next_depth = k + 1;
    counters
}

#[cfg(test)]
mod tests {
    use crate::engine::{BmcOutcome, PropertyVerdict};
    use crate::{
        BmcEngine, BmcOptions, BmcRun, OrderingStrategy, ParallelConfig, ProblemBuilder, ShardMode,
        SolveResult, VerificationProblem,
    };
    use rbmc_circuit::{LatchInit, Netlist, Signal};

    fn counter_problem(width: usize, targets: &[u64]) -> VerificationProblem {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let props: Vec<(String, Signal)> = targets
            .iter()
            .map(|&t| (format!("reach_{t}"), n.bus_eq_const(&bits, t)))
            .collect();
        let mut builder = ProblemBuilder::new("relaxed_counter", n);
        for (name, sig) in props {
            builder = builder.property(&name, sig);
        }
        builder.build()
    }

    fn all_strategies() -> Vec<OrderingStrategy> {
        vec![
            OrderingStrategy::Standard,
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::RefinedDynamic { divisor: 64 },
            OrderingStrategy::Shtrichman,
        ]
    }

    fn run(
        problem: VerificationProblem,
        strategy: OrderingStrategy,
        parallel: Option<ParallelConfig>,
    ) -> BmcRun {
        let mut engine = BmcEngine::for_problem(
            problem,
            BmcOptions {
                max_depth: 12,
                strategy,
                parallel,
                ..BmcOptions::default()
            },
        );
        engine.run_collecting()
    }

    type Signature = Vec<(Vec<SolveResult>, Option<usize>)>;

    fn signature(run: &BmcRun) -> Signature {
        run.properties
            .iter()
            .map(|p| (p.depth_results.clone(), p.retirement_depth))
            .collect()
    }

    #[test]
    fn striped_verdicts_match_sequential_oracle() {
        let targets: &[u64] = &[3, 14, 9];
        for strategy in all_strategies() {
            let seq = run(counter_problem(4, targets), strategy, None);
            for jobs in [1, 2, 4, 16] {
                let par = run(
                    counter_problem(4, targets),
                    strategy,
                    Some(ParallelConfig::striped(jobs)),
                );
                assert_eq!(signature(&par), signature(&seq), "{strategy:?} j{jobs}");
                assert!(
                    matches!(par.outcome, BmcOutcome::Counterexample { depth: 3, .. }),
                    "{strategy:?} j{jobs}: {:?}",
                    par.outcome
                );
            }
        }
    }

    #[test]
    fn work_stealing_verdicts_match_sequential_oracle() {
        let targets: &[u64] = &[3, 14, 9];
        for strategy in all_strategies() {
            let seq = run(counter_problem(4, targets), strategy, None);
            for jobs in [1, 2, 4, 16] {
                let par = run(
                    counter_problem(4, targets),
                    strategy,
                    Some(ParallelConfig::work_stealing(jobs)),
                );
                assert_eq!(signature(&par), signature(&seq), "{strategy:?} j{jobs}");
            }
        }
    }

    #[test]
    fn relaxed_traces_validate() {
        for shard in [ShardMode::Striped, ShardMode::WorkStealing] {
            let problem = counter_problem(4, &[11, 6]);
            let netlist = problem.netlist().clone();
            let bads: Vec<Signal> = problem
                .properties()
                .iter()
                .map(super::super::problem::Property::bad)
                .collect();
            let par = run(
                problem,
                OrderingStrategy::RefinedDynamic { divisor: 64 },
                Some(ParallelConfig { jobs: 4, shard }),
            );
            for (p, report) in par.properties.iter().enumerate() {
                let PropertyVerdict::Falsified { depth, trace } = &report.verdict else {
                    panic!("{shard:?}: property {p} should be falsified");
                };
                assert_eq!(*depth, if p == 0 { 11 } else { 6 });
                trace
                    .validate_against(&netlist, bads[p])
                    .expect("relaxed trace replays on the netlist");
            }
        }
    }

    #[test]
    fn striped_budget_exhaustion_truncates_like_a_budget() {
        // A zero conflict budget stops the very first episode; the run must
        // come back as a committed partial ResourceOut, not a panic or hang.
        let mut engine = BmcEngine::for_problem(
            counter_problem(3, &[5]),
            BmcOptions {
                max_depth: 12,
                max_conflicts_per_depth: Some(0),
                parallel: Some(ParallelConfig::striped(4)),
                ..BmcOptions::default()
            },
        );
        let par = engine.run_collecting();
        assert!(matches!(
            par.outcome,
            BmcOutcome::ResourceOut { at_depth: 0 }
        ));
        assert!(matches!(
            par.properties[0].verdict,
            PropertyVerdict::Unknown
        ));
    }

    #[test]
    fn work_stealing_reports_cover_all_sessions() {
        let par = run(
            counter_problem(4, &[3, 14, 9, 13]),
            OrderingStrategy::RefinedStatic,
            Some(ParallelConfig::work_stealing(2)),
        );
        assert_eq!(par.workers.len(), 2);
        let episodes: u64 = par.properties.iter().map(|p| p.episodes).sum();
        // Workers may solve more episodes than end up committed (a steal can
        // land past the eventual cut), never fewer.
        assert!(par.workers.iter().map(|w| w.episodes).sum::<u64>() >= episodes);
    }
}
