//! Parallel dispatch of the refinement loop: shard a sweep across a scoped
//! worker pool, then merge the results — `varRank` updates included — in
//! **commit order** (lowest depth first, then property order), so a
//! parallel run is deterministic and reproduces the sequential engine's
//! verdicts exactly.
//!
//! Two sharding grains, one per axis the sweep is independent along:
//!
//! - [`ShardMode::ByProperty`] — one incremental **session solver per
//!   property**, each sweeping depths `0..=max_depth` on its own and
//!   consuming the one shared encoded clause prefix zero-copy (the
//!   [`SharedPrefix`] view of the unroller cache). Workers pick properties
//!   off a queue; `jobs` only sets the concurrency, never the decomposition,
//!   so results are identical for every `jobs` value. A single-property
//!   problem degenerates to exactly the sequential
//!   [`SolverReuse::Session`](crate::SolverReuse) run — bit-identical
//!   verdicts, cores, and rank table.
//! - [`ShardMode::ByDepth`] — the paper's **fresh solver per (property,
//!   depth)** instances dispatched across workers. The refined strategies
//!   chain each depth's ranking to the previous depths' cores, so instances
//!   are launched as a per-depth wavefront: all open properties of depth `k`
//!   solve concurrently against the same rank snapshot the sequential
//!   [`SolverReuse::Fresh`](crate::SolverReuse) engine would install, and
//!   their cores are committed in property order before depth `k+1` starts.
//!   Core-free strategies (`Standard`, `Shtrichman`) have no such chain, so
//!   their whole `(depth × property)` lattice is dispatched at once — the
//!   embarrassingly parallel case. Either way the committed results are
//!   bit-identical to the sequential fresh engine (each instance is solved
//!   by an identically configured, identically seeded fresh solver);
//!   episodes the sequential loop would never have run (a depth beyond a
//!   property's retirement, or past a budget exhaustion) are discarded at
//!   commit time.
//!
//! Determinism contract: per-property verdicts, per-depth verdict
//! sequences, retirement depths, counterexample traces, and the final
//! `varRank` table do not depend on `jobs` or thread scheduling. Wall-clock
//! and the per-worker breakdown ([`BmcRun::workers`]) of course do. Two
//! qualifications:
//!
//! - **Wall-clock deadlines** ([`BmcOptions::deadline`]) are excluded: a
//!   deadline makes verdicts depend on elapsed time in *any* mode (the
//!   sequential engine included), so deadline-limited runs are
//!   reproducible in neither. The deterministic budget is
//!   [`BmcOptions::max_conflicts_per_depth`].
//! - **Conflict budgets** are honored per episode, and an exhaustion
//!   truncates the run at the sequential loop's `(depth, property)` commit
//!   rule — though work already done past that point (and its aggregate
//!   solver counters) cannot be un-spent. Under [`ShardMode::ByDepth`] the
//!   episodes themselves are bit-identical to the sequential fresh
//!   engine's, so the truncation point matches it exactly; under
//!   [`ShardMode::ByProperty`] each property's session lacks the clauses
//!   the sequential *shared* session would have learned from its siblings,
//!   so with a tight conflict budget an episode may exhaust it where the
//!   shared session would not (or vice versa) and the cut can land at a
//!   different point than sequential `Session` mode. Jobs-invariance holds
//!   regardless — the decomposition never depends on `jobs`.
//!
//! Beside these two deterministic grains live the **relaxed** grains
//! ([`ShardMode::Striped`], [`ShardMode::WorkStealing`]) of the `relaxed`
//! module, which trade the commit-order barrier for throughput:
//! verdict-equivalent to the sequential oracle (and gated by a differential
//! harness on exactly that contract), but with scheduling-dependent rank
//! tables and episode costs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rbmc_cnf::Var;
use rbmc_solver::{CancelFlag, SolveResult, Solver, SolverStats};

use crate::certify::EpisodeCertifier;
use crate::engine::{
    core_model_vars, depth_limits, install_strategy_ranking, strategy_solver_options, BmcEngine,
    BmcOptions, BmcOutcome, BmcRun, DepthStats, PropState,
};
use crate::unroll::SharedPrefix;
use crate::{Model, Trace, Unroller, VarRank};

/// Which independence axis a parallel run shards along.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ShardMode {
    /// One session solver per property, properties striped across workers
    /// (the HWMCC-portfolio axis). Best when the problem has several
    /// properties; a single-property problem runs on one worker and matches
    /// the sequential session engine exactly.
    #[default]
    ByProperty,
    /// Fresh-per-depth instances dispatched across workers (the paper's
    /// regime, parallelized). Core-free strategies dispatch every depth at
    /// once; the refined strategies pipeline depth-by-depth because each
    /// depth's ranking depends on the previous cores.
    ByDepth,
    /// **Relaxed**: session solvers striped across depth residues — worker
    /// `w` of `W` owns every depth `k ≡ w (mod W)`, keeping one warm
    /// incremental solver (learned clauses persist across its depths) that
    /// sweeps all properties of each owned depth. `varRank` core unions
    /// commit through a shared table as depths *finish*, not in depth
    /// order — commutative instead of commit-ordered, so verdicts,
    /// retirement depths, and traces still match the sequential oracle
    /// (they are semantic properties of each instance) but the final rank
    /// table and the episode costs may vary with scheduling. See the
    /// `relaxed` module docs for the exact contract.
    Striped,
    /// **Relaxed**: one session solver per property, rebalanced by work
    /// stealing — idle workers steal whole property sessions from the
    /// busiest deque, so a skewed property mix no longer serializes on the
    /// worker that drew the expensive properties. Same relaxed contract as
    /// [`ShardMode::Striped`].
    WorkStealing,
}

impl ShardMode {
    /// Short name used in benchmark tables and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            ShardMode::ByProperty => "by-property",
            ShardMode::ByDepth => "by-depth",
            ShardMode::Striped => "striped",
            ShardMode::WorkStealing => "work-stealing",
        }
    }

    /// Whether this grain honors the full determinism contract (results
    /// independent of `jobs` and scheduling, rank table included). The
    /// relaxed grains guarantee only verdict equivalence with the
    /// sequential oracle.
    pub fn is_deterministic(self) -> bool {
        matches!(self, ShardMode::ByProperty | ShardMode::ByDepth)
    }

    /// Parses a mode label as accepted by the CLI tools (`--shard`).
    pub fn parse(label: &str) -> Option<ShardMode> {
        match label {
            "by-property" | "property" => Some(ShardMode::ByProperty),
            "by-depth" | "depth" => Some(ShardMode::ByDepth),
            "striped" => Some(ShardMode::Striped),
            "work-stealing" | "steal" => Some(ShardMode::WorkStealing),
            _ => None,
        }
    }
}

/// Configuration of a parallel run ([`BmcOptions::parallel`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParallelConfig {
    /// Worker-thread budget (clamped to at least 1). The decomposition is
    /// independent of this value — only the wall clock changes.
    pub jobs: usize,
    /// The sharding grain.
    pub shard: ShardMode,
}

impl ParallelConfig {
    /// Property-sharded run with `jobs` workers.
    pub fn by_property(jobs: usize) -> ParallelConfig {
        ParallelConfig {
            jobs,
            shard: ShardMode::ByProperty,
        }
    }

    /// Depth-sharded run with `jobs` workers.
    pub fn by_depth(jobs: usize) -> ParallelConfig {
        ParallelConfig {
            jobs,
            shard: ShardMode::ByDepth,
        }
    }

    /// Relaxed depth-residue-striped run with `jobs` workers.
    pub fn striped(jobs: usize) -> ParallelConfig {
        ParallelConfig {
            jobs,
            shard: ShardMode::Striped,
        }
    }

    /// Relaxed work-stealing run with `jobs` workers.
    pub fn work_stealing(jobs: usize) -> ParallelConfig {
        ParallelConfig {
            jobs,
            shard: ShardMode::WorkStealing,
        }
    }
}

/// One worker's share of a parallel run (see [`BmcRun::workers`]).
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Worker index (`0..jobs`).
    pub worker: usize,
    /// Work items claimed: property groups under
    /// [`ShardMode::ByProperty`], solve instances under
    /// [`ShardMode::ByDepth`].
    pub items: u64,
    /// Solve episodes run by this worker.
    pub episodes: u64,
    /// Decisions over this worker's episodes.
    pub decisions: u64,
    /// Conflicts over this worker's episodes.
    pub conflicts: u64,
    /// Propagations over this worker's episodes.
    pub propagations: u64,
    /// Property sessions stolen from another worker's deque
    /// ([`ShardMode::WorkStealing`] only; 0 elsewhere).
    pub steals: u64,
    /// Busy wall-clock time of this worker (summed over its items).
    pub time: Duration,
}

/// Entry point from [`BmcEngine::run_collecting`].
pub(crate) fn run_parallel(engine: &mut BmcEngine, config: ParallelConfig) -> BmcRun {
    let jobs = config.jobs.max(1);
    match config.shard {
        ShardMode::ByProperty => run_by_property(engine, jobs),
        ShardMode::ByDepth => run_by_depth(engine, jobs),
        ShardMode::Striped => crate::relaxed::run_striped(engine, jobs),
        ShardMode::WorkStealing => crate::relaxed::run_work_stealing(engine, jobs),
    }
}

/// Everything one solve episode produced, buffered for commit-order merge.
pub(crate) struct Episode {
    pub(crate) result: SolveResult,
    pub(crate) decisions: u64,
    pub(crate) implications: u64,
    pub(crate) conflicts: u64,
    pub(crate) cdg_nodes: u64,
    pub(crate) cdg_edges: u64,
    pub(crate) num_clauses: usize,
    pub(crate) switched: bool,
    /// The frame-stable core variables of an UNSAT episode (already sorted
    /// and deduplicated), empty otherwise.
    pub(crate) core: Vec<Var>,
    /// The validated counterexample of a SAT episode.
    pub(crate) trace: Option<Trace>,
    /// Full stats of the fresh solver that ran this episode (ByDepth only;
    /// what the sequential fresh engine accumulates per episode).
    pub(crate) solver_stats: Option<SolverStats>,
    /// Proof-logging summary of a fresh episode's solver (`None` for
    /// session episodes, whose summary lives on the group).
    pub(crate) proof: Option<crate::ProofSummary>,
    pub(crate) time: Duration,
}

impl Episode {
    /// A zero-cost placeholder Unknown episode. The relaxed commit walk
    /// synthesizes one where a cancelled run left a gap a still-open
    /// property needed, so the truncation machinery sees the same
    /// `Unknown`-at-the-cut shape a budget exhaustion produces.
    pub(crate) fn synthetic_unknown() -> Episode {
        Episode {
            result: SolveResult::Unknown,
            decisions: 0,
            implications: 0,
            conflicts: 0,
            cdg_nodes: 0,
            cdg_edges: 0,
            num_clauses: 0,
            switched: false,
            core: Vec::new(),
            trace: None,
            solver_stats: None,
            proof: None,
            time: Duration::ZERO,
        }
    }
}

/// A per-property session's complete sweep (ByProperty worker output).
pub(crate) struct GroupOutcome {
    pub(crate) prop: PropState,
    /// One entry per attempted depth, in depth order.
    pub(crate) episodes: Vec<Episode>,
    /// The session solver's final counters.
    pub(crate) stats: SolverStats,
    /// The session solver's proof-logging summary (`None` with proof off).
    pub(crate) proof: Option<crate::ProofSummary>,
}

impl GroupOutcome {
    /// An empty group for property `p_idx` of `model` (no episodes yet).
    pub(crate) fn fresh(model: &Model, p_idx: usize) -> GroupOutcome {
        let property = model.problem().property(p_idx);
        GroupOutcome {
            prop: PropState::fresh(property.name().to_string(), property.bad()),
            episodes: Vec::new(),
            stats: SolverStats::new(),
            proof: None,
        }
    }
}

/// One work item's contribution to its worker's counters.
struct WorkerShare {
    episodes: u64,
    decisions: u64,
    conflicts: u64,
    propagations: u64,
}

impl WorkerShare {
    fn of_episode(episode: &Episode) -> WorkerShare {
        WorkerShare {
            episodes: 1,
            decisions: episode.decisions,
            conflicts: episode.conflicts,
            propagations: episode.implications,
        }
    }

    fn of_group(prop: &PropState) -> WorkerShare {
        WorkerShare {
            episodes: prop.episodes,
            decisions: prop.decisions,
            conflicts: prop.conflicts,
            propagations: prop.propagations,
        }
    }
}

/// The one fan-out primitive every striped sweep in the workspace runs on:
/// up to `workers` scoped threads claim indices `0..len` off one atomic
/// queue, `f(worker, index)` runs each item, and the results come back in
/// **index order** regardless of which worker claimed what (inline on the
/// calling thread when the effective worker count is 1). The worker index
/// lets callers keep per-worker accounting without a second queue
/// implementation; plain sweeps can ignore it.
pub fn striped_map<R: Send>(
    len: usize,
    workers: usize,
    f: impl Fn(usize, usize) -> R + Sync,
) -> Vec<R> {
    let worker_count = workers.min(len).max(1);
    if worker_count == 1 {
        return (0..len).map(|i| f(0, i)).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for w in 0..worker_count {
            let (next, slots, f) = (&next, &slots, &f);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                *slots[i].lock().expect("slot lock") = Some(f(w, i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every index mapped")
        })
        .collect()
}

/// [`striped_map`] with the per-worker accounting the dispatch modes need:
/// `f` may return `None` to skip an item (its slot stays empty and no
/// `items` credit is given), and each item's counters and wall time
/// accumulate into its worker's [`WorkerReport`]. `workers` is grown to the
/// number of threads actually spawned — so [`BmcRun::workers`] reports real
/// concurrency, not the requested budget.
fn striped_dispatch<R: Send>(
    len: usize,
    budget: usize,
    workers: &mut Vec<WorkerReport>,
    f: impl Fn(usize) -> Option<(R, WorkerShare)> + Sync,
) -> Vec<Option<R>> {
    let spawn = budget.min(len).max(1);
    while workers.len() < spawn {
        workers.push(WorkerReport {
            worker: workers.len(),
            ..WorkerReport::default()
        });
    }
    let shares: Vec<Mutex<WorkerReport>> = (0..spawn)
        .map(|_| Mutex::new(WorkerReport::default()))
        .collect();
    let results = striped_map(len, spawn, |w, i| {
        let start = Instant::now();
        let out = f(i);
        let mut share = shares[w].lock().expect("share lock");
        share.time += start.elapsed();
        if let Some((_, counters)) = &out {
            share.items += 1;
            share.episodes += counters.episodes;
            share.decisions += counters.decisions;
            share.conflicts += counters.conflicts;
            share.propagations += counters.propagations;
        }
        out.map(|(result, _)| result)
    });
    for (w, share) in shares.into_iter().enumerate() {
        absorb_worker_share(&mut workers[w], &share.into_inner().expect("share lock"));
    }
    results
}

// ---------------------------------------------------------------------------
// ByProperty: one session solver per property.
// ---------------------------------------------------------------------------

fn run_by_property(engine: &mut BmcEngine, jobs: usize) -> BmcRun {
    let run_start = Instant::now();
    let options = *engine.opts();
    let cancel = engine.cancel_flag().cloned();
    let model = engine.working_model().clone();
    let num_props = model.problem().num_properties();
    let unroller = Unroller::new(&model);

    let (groups, workers) = unroller.with_shared_prefix(options.max_depth, |prefix| {
        let mut workers = Vec::new();
        let results = striped_dispatch(num_props, jobs, &mut workers, |p| {
            let group = run_property_session(&model, &options, &prefix, cancel.as_ref(), p);
            let share = WorkerShare::of_group(&group.prop);
            Some((group, share))
        });
        let groups: Vec<GroupOutcome> = results
            .into_iter()
            .map(|group| group.expect("every property was dispatched"))
            .collect();
        (groups, workers)
    });

    cut_and_merge(engine, &options, &unroller, groups, workers, run_start)
}

/// Emulates the sequential control flow on per-property session results:
/// the earliest (depth, property) budget exhaustion stops the whole run, so
/// episodes past that commit point are discarded, then the committed
/// remainder merges into a [`BmcRun`]. Shared by [`ShardMode::ByProperty`]
/// and the relaxed grains (whose group shape is identical once their
/// episodes are reassembled per property).
pub(crate) fn cut_and_merge(
    engine: &mut BmcEngine,
    options: &BmcOptions,
    unroller: &Unroller<'_>,
    mut groups: Vec<GroupOutcome>,
    workers: Vec<WorkerReport>,
    run_start: Instant,
) -> BmcRun {
    let cut = groups
        .iter()
        .enumerate()
        .filter_map(|(p, g)| {
            g.episodes
                .iter()
                .position(|e| e.result == SolveResult::Unknown)
                .map(|k| (k, p))
        })
        .min();
    if let Some((cut_depth, cut_prop)) = cut {
        for (p, group) in groups.iter_mut().enumerate() {
            let keep = if p <= cut_prop {
                cut_depth + 1
            } else {
                cut_depth
            };
            truncate_group(group, keep);
        }
    }

    merge_committed(engine, options, unroller, groups, workers, run_start)
}

/// Trims a per-property session result to its first `keep` episodes,
/// recomputing the derived per-property counters (used when a budget
/// exhaustion elsewhere stops the run before this property's later depths
/// would have been reached sequentially).
pub(crate) fn truncate_group(group: &mut GroupOutcome, keep: usize) {
    if group.episodes.len() <= keep {
        return;
    }
    group.episodes.truncate(keep);
    group.prop.depth_results.truncate(keep);
    group.prop.episodes = keep as u64;
    group.prop.decisions = group.episodes.iter().map(|e| e.decisions).sum();
    group.prop.conflicts = group.episodes.iter().map(|e| e.conflicts).sum();
    group.prop.propagations = group.episodes.iter().map(|e| e.implications).sum();
    group.prop.assumption_conflicts = group
        .episodes
        .iter()
        .filter(|e| e.result == SolveResult::Unsat)
        .count() as u64;
    group.prop.completed = group
        .episodes
        .iter()
        .rposition(|e| e.result == SolveResult::Unsat);
    if matches!(group.prop.falsified, Some((d, _)) if d >= keep) {
        group.prop.falsified = None;
        group.prop.open = true;
    }
}

/// One property's full sweep on its own session solver — the parallel twin
/// of the sequential [`SolverReuse::Session`](crate::SolverReuse) loop,
/// specialized to a single property (same episode structure, same
/// activation-literal scheme, same per-depth rank refresh from its own
/// cores, same depth-boundary CDG pruning).
fn run_property_session(
    model: &Model,
    options: &BmcOptions,
    prefix: &SharedPrefix<'_>,
    cancel: Option<&CancelFlag>,
    p_idx: usize,
) -> GroupOutcome {
    let property = model.problem().property(p_idx);
    // Thread-local unroller for the pure index arithmetic; clauses come from
    // the shared pre-encoded prefix.
    let unroller = Unroller::new(model);
    let mut prop = PropState::fresh(property.name().to_string(), property.bad());
    let mut rank = VarRank::new(options.weighting);
    let mut solver = Solver::with_options(strategy_solver_options(options));
    let mut certifier = EpisodeCertifier::attach(options.proof, &mut solver);
    let limits = depth_limits(options, cancel);
    let mut episodes = Vec::new();

    for k in 0..=options.max_depth {
        let depth_start = Instant::now();
        let base = solver.stats().clone();
        for clause in prefix.frame_delta(k) {
            solver.add_clause(clause.lits());
        }
        let act = BmcEngine::activation_lit(&unroller, options, 1, k, 0);
        solver.add_clause(&[!act, unroller.lit_of(prop.bad, k)]);
        install_strategy_ranking(
            options.strategy,
            &rank.snapshot(),
            &mut solver,
            &unroller,
            k,
        );
        let result = solver.solve_under_limited(&[act], &limits);

        let stats = solver.stats();
        prop.episodes += 1;
        prop.decisions += stats.decisions - base.decisions;
        prop.conflicts += stats.conflicts - base.conflicts;
        prop.propagations += stats.propagations - base.propagations;
        prop.depth_results.push(result);
        let mut episode = Episode {
            result,
            decisions: stats.decisions - base.decisions,
            implications: stats.propagations - base.propagations,
            conflicts: stats.conflicts - base.conflicts,
            cdg_nodes: stats.cdg_nodes - base.cdg_nodes,
            cdg_edges: stats.cdg_edges - base.cdg_edges,
            num_clauses: solver.num_original_clauses(),
            switched: stats.switched_to_vsids,
            core: Vec::new(),
            trace: None,
            solver_stats: None,
            proof: None,
            time: Duration::ZERO,
        };
        match result {
            SolveResult::Sat => {
                let assignment = solver.model().expect("model after SAT");
                let trace = Trace::from_assignment(&unroller, assignment, k);
                debug_assert!(
                    trace.validate_against(model.netlist(), prop.bad).is_ok(),
                    "solver returned an invalid counterexample for `{}`",
                    prop.name
                );
                prop.falsified = Some((k, trace));
                prop.open = false;
                solver.add_clause(&[!act]);
            }
            SolveResult::Unsat => {
                episode.core = core_model_vars(&solver, unroller.num_vars_at(k));
                prop.completed = Some(k);
                solver.add_clause(&[!act]);
                prop.assumption_conflicts += 1;
                if options.strategy.needs_cores() && !episode.core.is_empty() {
                    rank.update(&episode.core, k);
                }
                if let Some(cert) = certifier.as_mut() {
                    cert.observe_unsat();
                }
            }
            SolveResult::Unknown => {}
        }
        episode.time = depth_start.elapsed();
        episodes.push(episode);
        if options.cdg_prune {
            solver.prune_cdg();
        }
        if result == SolveResult::Unknown || !prop.open {
            break;
        }
    }
    GroupOutcome {
        prop,
        episodes,
        stats: solver.stats().clone(),
        proof: certifier.map(EpisodeCertifier::into_summary),
    }
}

// ---------------------------------------------------------------------------
// ByDepth: fresh solver per (property, depth) instance.
// ---------------------------------------------------------------------------

fn run_by_depth(engine: &mut BmcEngine, jobs: usize) -> BmcRun {
    let run_start = Instant::now();
    let options = *engine.opts();
    let cancel = engine.cancel_flag().cloned();
    let model = engine.working_model().clone();
    let unroller = Unroller::new(&model);
    let bads: Vec<_> = model
        .problem()
        .properties()
        .iter()
        .map(super::problem::Property::bad)
        .collect();

    let mut rank = engine.rank().clone();
    // Grown by the dispatch helper to the concurrency actually reached.
    let mut workers: Vec<WorkerReport> = Vec::new();

    let groups = unroller.with_shared_prefix(options.max_depth, |prefix| {
        if options.strategy.needs_cores() {
            // The refined strategies chain depth k's ranking to the cores of
            // depths < k: dispatch one depth at a time, all open properties
            // concurrently, each against the same rank snapshot the
            // sequential fresh engine would install.
            run_depth_wavefront(
                &model,
                &options,
                &prefix,
                cancel.as_ref(),
                &bads,
                &mut rank,
                &mut workers,
                jobs,
            )
        } else {
            // No rank chaining: the whole (depth × property) lattice is
            // independent. Dispatch everything; commit order sorts it out.
            run_depth_lattice(
                &model,
                &options,
                &prefix,
                cancel.as_ref(),
                &bads,
                &mut workers,
                jobs,
            )
        }
    });
    *engine.rank_mut() = rank;

    merge_committed(engine, &options, &unroller, groups, workers, run_start)
}

/// One fresh-per-depth instance: the parallel twin of the sequential
/// [`SolverReuse::Fresh`](crate::SolverReuse) episode (same prefix load
/// order, same bad-state unit, same ranking, same limits — an identical
/// deterministic solver, so an identical result).
fn run_fresh_episode(
    model: &Model,
    options: &BmcOptions,
    prefix: &SharedPrefix<'_>,
    cancel: Option<&CancelFlag>,
    rank: &[u64],
    bad: rbmc_circuit::Signal,
    k: usize,
) -> Episode {
    let start = Instant::now();
    let unroller = Unroller::new(model);
    let mut solver = Solver::with_options(strategy_solver_options(options));
    let mut certifier = EpisodeCertifier::attach(options.proof, &mut solver);
    solver.reserve_vars(unroller.num_vars_at(k));
    for clause in prefix.prefix(k) {
        solver.add_clause(clause.lits());
    }
    solver.add_clause(&[unroller.lit_of(bad, k)]);
    install_strategy_ranking(options.strategy, rank, &mut solver, &unroller, k);
    let result = solver.solve_limited(&depth_limits(options, cancel));
    let stats = solver.stats().clone();
    let mut episode = Episode {
        result,
        decisions: stats.decisions,
        implications: stats.propagations,
        conflicts: stats.conflicts,
        cdg_nodes: stats.cdg_nodes,
        cdg_edges: stats.cdg_edges,
        num_clauses: solver.num_original_clauses(),
        switched: stats.switched_to_vsids,
        core: Vec::new(),
        trace: None,
        solver_stats: Some(stats),
        proof: None,
        time: Duration::ZERO,
    };
    match result {
        SolveResult::Sat => {
            let assignment = solver.model().expect("model after SAT");
            episode.trace = Some(Trace::from_assignment(&unroller, assignment, k));
        }
        SolveResult::Unsat => {
            episode.core = core_model_vars(&solver, unroller.num_vars_at(k));
            if let Some(cert) = certifier.as_mut() {
                cert.observe_unsat();
            }
        }
        SolveResult::Unknown => {}
    }
    episode.proof = certifier.map(EpisodeCertifier::into_summary);
    episode.time = start.elapsed();
    episode
}

/// Depth-synchronized dispatch for the core-chained strategies: solve all
/// open properties of each depth concurrently, then commit their cores (in
/// property order) into the rank table before the next depth launches.
#[allow(clippy::too_many_arguments)]
fn run_depth_wavefront(
    model: &Model,
    options: &BmcOptions,
    prefix: &SharedPrefix<'_>,
    cancel: Option<&CancelFlag>,
    bads: &[rbmc_circuit::Signal],
    rank: &mut VarRank,
    workers: &mut Vec<WorkerReport>,
    jobs: usize,
) -> Vec<GroupOutcome> {
    let num_props = bads.len();
    let mut groups: Vec<GroupOutcome> = (0..num_props)
        .map(|p| GroupOutcome {
            prop: PropState::fresh(model.problem().property(p).name().to_string(), bads[p]),
            episodes: Vec::new(),
            stats: SolverStats::new(),
            proof: None,
        })
        .collect();

    for k in 0..=options.max_depth {
        let open: Vec<usize> = (0..num_props).filter(|&p| groups[p].prop.open).collect();
        if open.is_empty() {
            break;
        }
        let rank_snapshot = rank.snapshot();
        let mut episodes = striped_dispatch(open.len(), jobs, workers, |i| {
            let episode = run_fresh_episode(
                model,
                options,
                prefix,
                cancel,
                &rank_snapshot,
                bads[open[i]],
                k,
            );
            let share = WorkerShare::of_episode(&episode);
            Some((episode, share))
        });
        // Commit this depth in property order — exactly the sequential
        // within-depth walk, including the stop-at-first-Unknown rule.
        let mut stop = false;
        for (i, &p) in open.iter().enumerate() {
            let episode = episodes[i].take().expect("episode solved");
            let unknown = episode.result == SolveResult::Unknown;
            commit_episode(&mut groups[p], episode, k);
            if unknown {
                stop = true;
                break;
            }
        }
        commit_depth_rank(options, rank, &groups, k);
        if stop {
            break;
        }
    }
    groups
}

/// Whole-lattice dispatch for the core-free strategies: every (depth,
/// property) instance is independent, so workers drain one global queue.
/// A SAT result publishes the property's provisional retirement depth so
/// deeper instances of the same property are skipped instead of solved —
/// commit order retires the property at its *shallowest* SAT depth, and a
/// skipped instance is by construction deeper than that.
fn run_depth_lattice(
    model: &Model,
    options: &BmcOptions,
    prefix: &SharedPrefix<'_>,
    cancel: Option<&CancelFlag>,
    bads: &[rbmc_circuit::Signal],
    workers: &mut Vec<WorkerReport>,
    jobs: usize,
) -> Vec<GroupOutcome> {
    let num_props = bads.len();
    let num_depths = options.max_depth + 1;
    let total = num_depths * num_props;
    let sat_seen: Vec<AtomicUsize> = (0..num_props)
        .map(|_| AtomicUsize::new(usize::MAX))
        .collect();
    let mut episodes = striped_dispatch(total, jobs, workers, |idx| {
        let (k, p) = (idx / num_props, idx % num_props);
        // Skip instances provably beyond the property's retirement (a
        // shallower SAT is already known).
        if k > sat_seen[p].load(Ordering::Relaxed) {
            return None;
        }
        let episode = run_fresh_episode(model, options, prefix, cancel, &[], bads[p], k);
        if episode.result == SolveResult::Sat {
            sat_seen[p].fetch_min(k, Ordering::Relaxed);
        }
        let share = WorkerShare::of_episode(&episode);
        Some((episode, share))
    });

    // Commit in (depth, property) order, reproducing the sequential loop's
    // retirement and stop rules; uncommitted episodes are speculative waste.
    let mut groups: Vec<GroupOutcome> = (0..num_props)
        .map(|p| GroupOutcome {
            prop: PropState::fresh(model.problem().property(p).name().to_string(), bads[p]),
            episodes: Vec::new(),
            stats: SolverStats::new(),
            proof: None,
        })
        .collect();
    'depths: for k in 0..num_depths {
        if groups.iter().all(|g| !g.prop.open) {
            break;
        }
        for p in 0..num_props {
            if !groups[p].prop.open {
                continue;
            }
            let episode = episodes[k * num_props + p]
                .take()
                .expect("open property's instance was dispatched");
            let unknown = episode.result == SolveResult::Unknown;
            commit_episode(&mut groups[p], episode, k);
            if unknown {
                break 'depths;
            }
        }
    }
    groups
}

fn absorb_worker_share(report: &mut WorkerReport, share: &WorkerReport) {
    report.items += share.items;
    report.episodes += share.episodes;
    report.decisions += share.decisions;
    report.conflicts += share.conflicts;
    report.propagations += share.propagations;
    report.steals += share.steals;
    report.time += share.time;
}

/// Folds one committed fresh episode into its property's running state
/// (mirrors the sequential fresh path's per-episode bookkeeping).
pub(crate) fn commit_episode(group: &mut GroupOutcome, mut episode: Episode, k: usize) {
    let prop = &mut group.prop;
    prop.episodes += 1;
    prop.decisions += episode.decisions;
    prop.conflicts += episode.conflicts;
    prop.propagations += episode.implications;
    prop.depth_results.push(episode.result);
    match episode.result {
        SolveResult::Sat => {
            prop.falsified = Some((
                k,
                episode.trace.take().expect("SAT episode carries a trace"),
            ));
            prop.open = false;
        }
        SolveResult::Unsat => {
            prop.completed = Some(k);
        }
        SolveResult::Unknown => {}
    }
    if let Some(stats) = &episode.solver_stats {
        group.stats.accumulate(stats);
    }
    crate::certify::merge_opt(&mut group.proof, episode.proof.take());
    group.episodes.push(episode);
}

/// The commit-order `varRank` update of one depth: the union of the open
/// properties' cores at that depth, deduplicated, exactly as the sequential
/// engine's `update_ranking` consumes it.
fn commit_depth_rank(options: &BmcOptions, rank: &mut VarRank, groups: &[GroupOutcome], k: usize) {
    if !options.strategy.needs_cores() {
        return;
    }
    rank.update_union(
        groups
            .iter()
            .filter_map(|g| g.episodes.get(k).map(|e| e.core.as_slice())),
        k,
    );
}

// ---------------------------------------------------------------------------
// Merge: committed per-property results -> one BmcRun.
// ---------------------------------------------------------------------------

/// Merges the committed per-property results into a [`BmcRun`], replaying
/// the sequential engine's aggregation: per-depth stats summed over that
/// depth's episodes, the commit-order rank merge for property-sharded runs,
/// and the sequential outcome precedence (shallowest counterexample first,
/// then budget exhaustion, then bound reached).
pub(crate) fn merge_committed(
    engine: &mut BmcEngine,
    options: &BmcOptions,
    unroller: &Unroller<'_>,
    groups: Vec<GroupOutcome>,
    workers: Vec<WorkerReport>,
    run_start: Instant,
) -> BmcRun {
    let max_attempted = groups.iter().map(|g| g.episodes.len()).max().unwrap_or(0);
    let mut per_depth = Vec::with_capacity(max_attempted);
    let mut resource_out: Option<usize> = None;
    let mut depth_completed = 0usize;
    let by_property = matches!(
        options.parallel.map(|c| c.shard),
        Some(ShardMode::ByProperty)
    );
    for k in 0..max_attempted {
        let mut depth = DepthStats {
            depth: k,
            result: SolveResult::Unsat,
            decisions: 0,
            implications: 0,
            conflicts: 0,
            num_vars: unroller.num_vars_at(k),
            num_clauses: 0,
            core_vars: 0,
            switched_to_vsids: false,
            cdg_nodes: 0,
            cdg_edges: 0,
            time: Duration::ZERO,
        };
        let mut core_union: Vec<Var> = Vec::new();
        for group in &groups {
            let Some(episode) = group.episodes.get(k) else {
                continue;
            };
            depth.decisions += episode.decisions;
            depth.implications += episode.implications;
            depth.conflicts += episode.conflicts;
            depth.cdg_nodes += episode.cdg_nodes;
            depth.cdg_edges += episode.cdg_edges;
            depth.num_clauses = depth.num_clauses.max(episode.num_clauses);
            depth.switched_to_vsids |= episode.switched;
            depth.time += episode.time;
            match episode.result {
                SolveResult::Sat => depth.result = SolveResult::Sat,
                SolveResult::Unsat => core_union.extend(episode.core.iter().copied()),
                SolveResult::Unknown => {
                    depth.result = SolveResult::Unknown;
                    resource_out = Some(k);
                }
            }
        }
        core_union.sort_unstable();
        core_union.dedup();
        depth.core_vars = core_union.len();
        // ByDepth already committed the rank per wavefront round; the
        // property-sharded merge commits it here, lowest depth first.
        if by_property && options.strategy.needs_cores() && !core_union.is_empty() {
            engine.rank_mut().update(&core_union, k);
        }
        per_depth.push(depth);
        if resource_out.is_some() {
            break;
        }
        depth_completed = k;
    }

    let first_falsified = groups
        .iter()
        .enumerate()
        .filter_map(|(p, g)| g.prop.falsified.as_ref().map(|(d, _)| (*d, p)))
        .min();
    let mut aggregate = SolverStats::new();
    let mut proof_acc: Option<crate::ProofSummary> = None;
    for group in &groups {
        aggregate.accumulate(&group.stats);
        crate::certify::merge_opt(&mut proof_acc, group.proof.clone());
    }
    // Parallel runs eagerly encode the whole shared prefix, so the cache
    // peak is its full size (bounded prefix mode is sequential-session-only).
    aggregate.prefix_peak_clauses = aggregate
        .prefix_peak_clauses
        .max(unroller.peak_cached_clauses() as u64);
    let outcome = match (resource_out, first_falsified) {
        (_, Some((_, p))) => {
            let (depth, trace) = groups[p]
                .prop
                .falsified
                .clone()
                .expect("falsified recorded");
            BmcOutcome::Counterexample { depth, trace }
        }
        (Some(at_depth), None) => BmcOutcome::ResourceOut { at_depth },
        (None, None) => BmcOutcome::BoundReached { depth_completed },
    };
    BmcRun {
        outcome,
        properties: groups.into_iter().map(|g| g.prop.into_report()).collect(),
        per_depth,
        solver_stats: aggregate,
        workers,
        total_time: run_start.elapsed(),
        proof: proof_acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        OrderingStrategy, ProblemBuilder, PropertyVerdict, SolverReuse, VerificationProblem,
    };
    use rbmc_circuit::{LatchInit, Netlist, Signal};

    fn counter_problem(width: usize, targets: &[u64]) -> VerificationProblem {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let props: Vec<(String, Signal)> = targets
            .iter()
            .map(|&t| (format!("reach_{t}"), n.bus_eq_const(&bits, t)))
            .collect();
        let mut builder = ProblemBuilder::new("multi_counter", n);
        for (name, sig) in props {
            builder = builder.property(&name, sig);
        }
        builder.build()
    }

    fn all_strategies() -> Vec<OrderingStrategy> {
        vec![
            OrderingStrategy::Standard,
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::RefinedDynamic { divisor: 64 },
            OrderingStrategy::Shtrichman,
        ]
    }

    fn run(
        problem: VerificationProblem,
        strategy: OrderingStrategy,
        reuse: SolverReuse,
        parallel: Option<ParallelConfig>,
    ) -> (BmcRun, Vec<u64>) {
        let mut engine = BmcEngine::for_problem(
            problem,
            BmcOptions {
                max_depth: 12,
                strategy,
                reuse,
                parallel,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        (run, engine.rank().snapshot())
    }

    type Signature = Vec<(Vec<SolveResult>, Option<usize>)>;

    fn prop_verdicts(run: &BmcRun) -> Signature {
        run.properties
            .iter()
            .map(|p| (p.depth_results.clone(), p.retirement_depth))
            .collect()
    }

    #[test]
    fn by_property_single_property_matches_sequential_session_exactly() {
        for strategy in all_strategies() {
            let (seq, seq_rank) = run(
                counter_problem(4, &[11]),
                strategy,
                SolverReuse::Session,
                None,
            );
            for jobs in [1, 2, 4] {
                let (par, par_rank) = run(
                    counter_problem(4, &[11]),
                    strategy,
                    SolverReuse::Session,
                    Some(ParallelConfig::by_property(jobs)),
                );
                assert_eq!(
                    prop_verdicts(&par),
                    prop_verdicts(&seq),
                    "{strategy:?} j{jobs}"
                );
                assert_eq!(par_rank, seq_rank, "{strategy:?} j{jobs} rank table");
                let depth = |r: &BmcRun| -> Vec<SolveResult> {
                    r.per_depth.iter().map(|d| d.result).collect()
                };
                assert_eq!(depth(&par), depth(&seq), "{strategy:?} j{jobs}");
                assert!(matches!(
                    par.outcome,
                    BmcOutcome::Counterexample { depth: 11, .. }
                ));
            }
        }
    }

    #[test]
    fn by_depth_single_property_matches_sequential_fresh_exactly() {
        for strategy in all_strategies() {
            let (seq, seq_rank) = run(counter_problem(4, &[9]), strategy, SolverReuse::Fresh, None);
            for jobs in [1, 2, 4] {
                let (par, par_rank) = run(
                    counter_problem(4, &[9]),
                    strategy,
                    SolverReuse::Fresh,
                    Some(ParallelConfig::by_depth(jobs)),
                );
                assert_eq!(
                    prop_verdicts(&par),
                    prop_verdicts(&seq),
                    "{strategy:?} j{jobs}"
                );
                assert_eq!(par_rank, seq_rank, "{strategy:?} j{jobs} rank table");
                assert_eq!(
                    par.total_decisions(),
                    seq.total_decisions(),
                    "{strategy:?} j{jobs}"
                );
            }
        }
    }

    #[test]
    fn multi_property_parallel_verdicts_match_sequential_and_are_jobs_invariant() {
        // 3 and 9 falsified; 14 unreachable within depth 12 of a 4-bit
        // counter (wraps at 16).
        let targets: &[u64] = &[3, 14, 9];
        for strategy in all_strategies() {
            let (seq, _) = run(
                counter_problem(4, targets),
                strategy,
                SolverReuse::Session,
                None,
            );
            for shard in [ShardMode::ByProperty, ShardMode::ByDepth] {
                let mut baseline: Option<(Signature, Vec<u64>)> = None;
                for jobs in [1, 2, 4] {
                    let (par, par_rank) = run(
                        counter_problem(4, targets),
                        strategy,
                        SolverReuse::Session,
                        Some(ParallelConfig { jobs, shard }),
                    );
                    assert_eq!(
                        prop_verdicts(&par),
                        prop_verdicts(&seq),
                        "{strategy:?} {shard:?} j{jobs}"
                    );
                    assert!(
                        matches!(par.outcome, BmcOutcome::Counterexample { depth: 3, .. }),
                        "{strategy:?} {shard:?} j{jobs}"
                    );
                    match &baseline {
                        None => baseline = Some((prop_verdicts(&par), par_rank)),
                        Some((v, r)) => {
                            assert_eq!(&prop_verdicts(&par), v, "{strategy:?} {shard:?} j{jobs}");
                            assert_eq!(&par_rank, r, "{strategy:?} {shard:?} j{jobs} rank");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn multi_property_by_depth_matches_sequential_fresh_rank_table() {
        // The depth-wavefront commits cores in the same order the sequential
        // fresh engine does, so even the multi-property rank table is
        // bit-identical to SolverReuse::Fresh.
        let targets: &[u64] = &[5, 14, 11];
        for strategy in all_strategies() {
            let (seq, seq_rank) = run(
                counter_problem(4, targets),
                strategy,
                SolverReuse::Fresh,
                None,
            );
            let (par, par_rank) = run(
                counter_problem(4, targets),
                strategy,
                SolverReuse::Fresh,
                Some(ParallelConfig::by_depth(3)),
            );
            assert_eq!(prop_verdicts(&par), prop_verdicts(&seq), "{strategy:?}");
            assert_eq!(par_rank, seq_rank, "{strategy:?}");
        }
    }

    #[test]
    fn worker_reports_cover_all_items() {
        let (par, _) = run(
            counter_problem(4, &[3, 14, 9]),
            OrderingStrategy::RefinedStatic,
            SolverReuse::Session,
            Some(ParallelConfig::by_property(2)),
        );
        assert_eq!(par.workers.len(), 2);
        assert_eq!(par.workers.iter().map(|w| w.items).sum::<u64>(), 3);
        let episodes: u64 = par.properties.iter().map(|p| p.episodes).sum();
        assert_eq!(
            par.workers.iter().map(|w| w.episodes).sum::<u64>(),
            episodes
        );
        // Sequential runs never report workers.
        let (seq, _) = run(
            counter_problem(4, &[3]),
            OrderingStrategy::Standard,
            SolverReuse::Session,
            None,
        );
        assert!(seq.workers.is_empty());
    }

    #[test]
    fn parallel_budget_exhaustion_matches_sequential_commit_point() {
        // A zero conflict budget: the session engine reports ResourceOut at
        // depth 0 with the property Unknown; the fresh engine completes the
        // propagation-only UNSAT depths and stops at the SAT depth.
        let mk = |reuse, parallel| {
            let mut engine = BmcEngine::for_problem(
                counter_problem(3, &[5]),
                BmcOptions {
                    max_depth: 12,
                    reuse,
                    parallel,
                    max_conflicts_per_depth: Some(0),
                    ..BmcOptions::default()
                },
            );
            engine.run_collecting()
        };
        let par = mk(SolverReuse::Session, Some(ParallelConfig::by_property(2)));
        assert!(matches!(
            par.outcome,
            BmcOutcome::ResourceOut { at_depth: 0 }
        ));
        assert!(matches!(
            par.properties[0].verdict,
            PropertyVerdict::Unknown
        ));
        let seq = mk(SolverReuse::Fresh, None);
        let par = mk(SolverReuse::Fresh, Some(ParallelConfig::by_depth(4)));
        match (&seq.outcome, &par.outcome) {
            (BmcOutcome::ResourceOut { at_depth: a }, BmcOutcome::ResourceOut { at_depth: b }) => {
                assert_eq!(a, b);
            }
            other => panic!("expected matching resource-out, got {other:?}"),
        }
        assert_eq!(prop_verdicts(&par), prop_verdicts(&seq));
    }
}
