//! UNSAT certification glue: wires the solver's [`ProofLog`] emission into
//! the independent checker of [`rbmc_proof`].
//!
//! The solver emits; [`rbmc_proof`] records and checks; this module owns the
//! plumbing between them — a [`SharedRecorder`] the solver writes through,
//! an [`EpisodeCertifier`] the engines drive once per UNSAT episode, and a
//! [`ProofSummary`] the run reports. Under [`ProofMode::Check`] every UNSAT
//! verdict of a run is re-derived by the checker before it is trusted; a
//! rejection is counted (and described) rather than panicking, so the
//! fail-closed decision stays with the caller (the `rbmc` sweep exits
//! non-zero on any rejection).

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rbmc_proof::ProofRecorder;
use rbmc_solver::{ProofAuditSnapshot, ProofLog, Solver};

/// Whether (and how strictly) a run certifies its UNSAT verdicts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProofMode {
    /// No proof logging (the default; zero overhead).
    #[default]
    Off,
    /// Log every clause derivation and deletion, but do not check: the
    /// in-memory log is available for export and the run reports its size.
    Log,
    /// Log and re-derive every UNSAT episode through the independent
    /// checker; rejections surface in the run's [`ProofSummary`].
    Check,
}

impl ProofMode {
    /// Whether proof logging is enabled at all.
    pub fn is_on(self) -> bool {
        self != ProofMode::Off
    }

    /// Whether UNSAT episodes are checked, not just logged.
    pub fn checks(self) -> bool {
        self == ProofMode::Check
    }

    /// Stable name (CLI vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            ProofMode::Off => "off",
            ProofMode::Log => "log",
            ProofMode::Check => "check",
        }
    }
}

/// What a run's proof logging amounted to, aggregated over every solver the
/// run provisioned (session, fresh-per-depth, parallel workers).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProofSummary {
    /// UNSAT episodes whose certificate the checker accepted.
    pub episodes_certified: u64,
    /// UNSAT episodes whose certificate the checker **rejected**. Always 0
    /// on a healthy run; the `rbmc` sweep fails closed on anything else.
    pub rejections: u64,
    /// Total proof lines logged (axioms + derivations + deletions).
    pub steps_logged: u64,
    /// Wall-clock time spent checking (zero under [`ProofMode::Log`]).
    pub check_time: Duration,
    /// Human-readable description of the first rejection, if any.
    pub first_rejection: Option<String>,
}

impl ProofSummary {
    /// Whether any certificate was rejected.
    pub fn rejected(&self) -> bool {
        self.rejections > 0
    }

    /// Folds another solver's summary into this one (first rejection wins
    /// the description slot).
    pub fn merge(&mut self, other: &ProofSummary) {
        self.episodes_certified += other.episodes_certified;
        self.rejections += other.rejections;
        self.steps_logged += other.steps_logged;
        self.check_time += other.check_time;
        if self.first_rejection.is_none() {
            self.first_rejection.clone_from(&other.first_rejection);
        }
    }
}

/// A [`ProofRecorder`] behind `Arc<Mutex>`: the solver's boxed [`ProofLog`]
/// sink and the certifier's checking handle are clones of the same
/// recorder. The mutex is uncontended — solver emission and certification
/// never overlap (both run on the solver's thread).
#[derive(Clone, Debug, Default)]
pub struct SharedRecorder(Arc<Mutex<ProofRecorder>>);

impl SharedRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> SharedRecorder {
        SharedRecorder::default()
    }

    /// Runs `f` with the locked recorder.
    pub fn with<R>(&self, f: impl FnOnce(&ProofRecorder) -> R) -> R {
        f(&self.0.lock().expect("proof recorder lock"))
    }
}

impl ProofLog for SharedRecorder {
    fn axiom(&mut self, id: u64, lits: &[rbmc_cnf::Lit]) {
        self.0.lock().expect("proof recorder lock").axiom(id, lits);
    }

    fn derived(&mut self, id: u64, lits: &[rbmc_cnf::Lit], hints: &[u64]) {
        self.0
            .lock()
            .expect("proof recorder lock")
            .derived(id, lits, hints);
    }

    fn delete(&mut self, id: u64) {
        self.0.lock().expect("proof recorder lock").delete(id);
    }

    fn finalize(&mut self, lits: &[rbmc_cnf::Lit], hints: &[u64]) {
        self.0
            .lock()
            .expect("proof recorder lock")
            .finalize(lits, hints);
    }

    fn audit_snapshot(&self) -> Option<ProofAuditSnapshot> {
        let rec = self.0.lock().expect("proof recorder lock");
        Some(ProofAuditSnapshot {
            live_derived: rec.live_derived_sorted(),
            num_axioms: rec.num_axioms(),
        })
    }
}

/// Per-solver certification driver: attaches a [`SharedRecorder`] to a
/// freshly provisioned solver and, under [`ProofMode::Check`], replays each
/// UNSAT episode's certificate through the independent checker.
#[derive(Debug)]
pub(crate) struct EpisodeCertifier {
    mode: ProofMode,
    recorder: SharedRecorder,
    summary: ProofSummary,
}

impl EpisodeCertifier {
    /// Attaches a recorder to `solver` (which must be freshly provisioned —
    /// no clauses yet — and configured with `record_cdg`). Returns `None`
    /// under [`ProofMode::Off`].
    pub(crate) fn attach(mode: ProofMode, solver: &mut Solver) -> Option<EpisodeCertifier> {
        if !mode.is_on() {
            return None;
        }
        let recorder = SharedRecorder::new();
        solver.set_proof_log(Box::new(recorder.clone()));
        Some(EpisodeCertifier {
            mode,
            recorder,
            summary: ProofSummary::default(),
        })
    }

    /// Certifies the UNSAT episode that just ended: under
    /// [`ProofMode::Check`], re-derives the episode's final clause through
    /// the checker and books the verdict; under [`ProofMode::Log`] this is
    /// a no-op (the log keeps growing either way).
    pub(crate) fn observe_unsat(&mut self) {
        if !self.mode.checks() {
            return;
        }
        let start = Instant::now();
        let verdict = self.recorder.with(rbmc_proof::ProofRecorder::check_current);
        self.summary.check_time += start.elapsed();
        match verdict {
            Ok(_) => self.summary.episodes_certified += 1,
            Err(e) => {
                self.summary.rejections += 1;
                if self.summary.first_rejection.is_none() {
                    self.summary.first_rejection = Some(e.to_string());
                }
            }
        }
    }

    /// Closes the solver's certification and returns its summary (step
    /// count read off the recorder at its final size).
    pub(crate) fn into_summary(self) -> ProofSummary {
        let mut summary = self.summary;
        summary.steps_logged = self.recorder.with(ProofRecorder::num_steps) as u64;
        summary
    }
}

/// Folds an optional solver summary into an optional run summary in place.
pub(crate) fn merge_opt(into: &mut Option<ProofSummary>, from: Option<ProofSummary>) {
    if let Some(from) = from {
        match into {
            Some(acc) => acc.merge(&from),
            None => *into = Some(from),
        }
    }
}

/// `debug-invariants` coherence audit between a solver and its proof log:
/// the recorder's live derived lines must be exactly the proof ids the
/// solver still holds (live learned clauses and root-level unit facts), and
/// the axiom count must match the originals added. Run from the engines'
/// depth-boundary audit hook.
#[cfg(feature = "debug-invariants")]
pub(crate) fn audit_proof_coherence(solver: &Solver) -> Result<(), ProofAuditError> {
    let Some(log) = solver.proof_log() else {
        return Ok(());
    };
    let Some(snapshot) = log.audit_snapshot() else {
        return Ok(());
    };
    solver.audit_proof(&snapshot).map_err(ProofAuditError)
}

/// Error wrapper for the proof coherence audit (a plain description — the
/// audit is a debug facility, not an API).
#[derive(Clone, Debug)]
pub struct ProofAuditError(pub String);

impl std::fmt::Display for ProofAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proof-log coherence violated: {}", self.0)
    }
}

impl std::error::Error for ProofAuditError {}
