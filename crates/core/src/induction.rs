//! k-induction on top of the same unroller (extension).
//!
//! The paper's conclusion expects the refined ordering to combine with other
//! SAT-based techniques that share the BMC structure. Temporal induction
//! (Eén & Sörensson 2003, cited as \[5\]) is the natural companion: it can
//! *prove* `G P` outright instead of only refuting bounded counterexamples.
//!
//! Depth-`k` induction asks two questions:
//!
//! - **Base**: no initialized path of length ≤ `k` reaches a bad state
//!   (exactly BMC, so the refined engine is reused).
//! - **Step**: no path of `k+1` consecutive good states can end in a bad
//!   state (no initial-state constraint; with the *unique states*
//!   strengthening, the path must not repeat a register state).
//!
//! If the step holds, `G P` holds; otherwise `k` is increased. With unique
//! states the loop is complete: it terminates for every finite model.
//!
//! Two entry points: [`prove`] is the direct single-model call;
//! [`InductionEngine`] wraps the same loop behind the shared
//! [`Engine`] surface (multi-property, cancellable,
//! [`BmcRun`]-reporting) so the portfolio can race it against BMC and IC3.

use std::time::Instant;

use rbmc_circuit::Node;
use rbmc_cnf::{CnfFormula, Lit};
use rbmc_solver::{CancelFlag, SolveResult, Solver, SolverStats};

use crate::engine::{depth_limits, BmcRun, PropertyReport, PropertyVerdict};
use crate::engine_trait::Engine;
use crate::{BmcEngine, BmcOptions, BmcOutcome, Model, Trace, Unroller, VerificationProblem};

/// Outcome of a k-induction proof attempt.
#[derive(Clone, Debug)]
pub enum InductionOutcome {
    /// The invariant holds in all reachable states (proved at this `k`).
    Proved {
        /// Induction depth at which the step case became UNSAT.
        k: usize,
    },
    /// The invariant fails; a counterexample of this length exists.
    Falsified {
        /// Counterexample length.
        depth: usize,
        /// The validated trace.
        trace: Trace,
    },
    /// `max_k` was reached without an answer.
    Unknown {
        /// The bound that was exhausted.
        max_k: usize,
    },
}

/// Proves or refutes `G ¬bad` by k-induction with unique-states
/// strengthening.
///
/// `options.strategy` is used for the base-case BMC runs (the refined
/// ordering applies there); step cases run with the same solver options.
///
/// # Examples
///
/// ```
/// use rbmc_circuit::{LatchInit, Netlist};
/// use rbmc_core::induction::{prove, InductionOutcome};
/// use rbmc_core::{BmcOptions, Model};
///
/// // A 3-bit counter that wraps: it never reaches 9 (> 7), so the property
/// // "counter != 9" is provable.
/// let mut n = Netlist::new();
/// let bits: Vec<_> = (0..3).map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero)).collect();
/// let next = n.bus_increment(&bits);
/// for (&b, &nx) in bits.iter().zip(&next) { n.set_next(b, nx); }
/// let bad = n.bus_eq_const(&bits, 9);
/// let model = Model::new("c3", n, bad);
/// match prove(&model, 10, BmcOptions::default()) {
///     InductionOutcome::Proved { .. } => {}
///     other => panic!("expected a proof, got {other:?}"),
/// }
/// ```
pub fn prove(model: &Model, max_k: usize, options: BmcOptions) -> InductionOutcome {
    prove_with(model, max_k, &options, None).outcome
}

/// What one property's induction loop produced, with the accounting the
/// engine reports: per-depth base-case verdicts and aggregated solver
/// statistics.
struct ProveRun {
    outcome: InductionOutcome,
    /// Base-case verdict per depth, BMC-shaped (entry `k` answers "is there
    /// a counterexample of length `k`").
    depth_results: Vec<SolveResult>,
    stats: SolverStats,
    /// Induction depths attempted (one base + step round each).
    rounds: u64,
}

/// The induction loop with cooperative cancellation and full accounting —
/// the body behind both [`prove`] and [`InductionEngine`].
fn prove_with(
    model: &Model,
    max_k: usize,
    options: &BmcOptions,
    cancel: Option<&CancelFlag>,
) -> ProveRun {
    let limits = depth_limits(options, cancel);
    let mut stats = SolverStats::new();
    let mut depth_results: Vec<SolveResult> = Vec::new();
    let mut rounds = 0;
    for k in 0..=max_k {
        rounds += 1;
        // Base case: BMC up to depth k (re-run per round; the refined
        // ordering applies there).
        let mut engine = BmcEngine::new(
            model.clone(),
            BmcOptions {
                max_depth: k,
                ..*options
            },
        );
        if let Some(cancel) = cancel {
            engine.set_cancel(cancel.clone());
        }
        let run = engine.run_collecting();
        stats.accumulate(&run.solver_stats);
        if let Some(report) = run.properties.first() {
            if report.depth_results.len() > depth_results.len() {
                depth_results = report.depth_results.clone();
            }
        }
        let outcome = match run.outcome {
            BmcOutcome::Counterexample { depth, trace } => {
                Some(InductionOutcome::Falsified { depth, trace })
            }
            BmcOutcome::ResourceOut { .. } => Some(InductionOutcome::Unknown { max_k: k }),
            BmcOutcome::BoundReached { .. } => None,
        };
        if let Some(outcome) = outcome {
            return ProveRun {
                outcome,
                depth_results,
                stats,
                rounds,
            };
        }
        // Step case.
        let step = {
            let formula = build_step_formula(model, k);
            let mut solver = Solver::from_formula_with(&formula, options.solver);
            let result = solver.solve_limited(&limits);
            stats.accumulate(solver.stats());
            result
        };
        let outcome = match step {
            SolveResult::Unsat => Some(InductionOutcome::Proved { k }),
            SolveResult::Unknown => Some(InductionOutcome::Unknown { max_k: k }),
            SolveResult::Sat => None,
        };
        if let Some(outcome) = outcome {
            return ProveRun {
                outcome,
                depth_results,
                stats,
                rounds,
            };
        }
    }
    ProveRun {
        outcome: InductionOutcome::Unknown { max_k },
        depth_results,
        stats,
        rounds,
    }
}

/// Builds the step case at depth `k`: a path of `k+1` good,
/// pairwise-distinct states followed by a bad state. UNSAT ⟹ proved.
fn build_step_formula(model: &Model, k: usize) -> CnfFormula {
    let unroller = Unroller::new(model);
    // Frames 0..=k+1; no initial-state constraint.
    let mut formula = CnfFormula::with_vars(unroller.num_vars_at(k + 1));
    for frame in 0..=k + 1 {
        emit_uninitialized_frame(&unroller, frame, &mut formula);
    }
    // Good states at frames 0..=k, bad at k+1.
    for frame in 0..=k {
        formula.add_clause([!unroller.lit_of(model.bad(), frame)]);
    }
    formula.add_clause([unroller.lit_of(model.bad(), k + 1)]);
    // Unique states: for every pair of frames, some register differs.
    let latches = model.netlist().latches();
    for i in 0..=k + 1 {
        for j in i + 1..=k + 1 {
            add_state_disequality(&unroller, &latches, i, j, &mut formula);
        }
    }
    formula
}

/// The k-induction prover behind the shared [`Engine`]
/// surface: checks every property of a [`VerificationProblem`]
/// independently (each gets its own induction loop over a single-property
/// [`Model`] view), reports [`PropertyVerdict::Proved`] without an
/// extracted invariant (`invariant_clauses: None` — the certificate of
/// k-induction is the pair of UNSAT queries, not a clause set), and
/// truncates cooperatively when cancelled, which is what lets the
/// portfolio race it.
///
/// `options.max_depth` bounds the induction depth `k`.
#[derive(Debug)]
pub struct InductionEngine {
    problem: VerificationProblem,
    options: BmcOptions,
    cancel: Option<CancelFlag>,
}

impl InductionEngine {
    /// Creates an engine for a single-property `model`.
    pub fn new(model: Model, options: BmcOptions) -> InductionEngine {
        InductionEngine::for_problem(model.into_problem(), options)
    }

    /// Creates an engine checking every property of `problem`.
    pub fn for_problem(problem: VerificationProblem, options: BmcOptions) -> InductionEngine {
        InductionEngine {
            problem,
            options,
            cancel: None,
        }
    }

    /// The problem under check.
    pub fn problem(&self) -> &VerificationProblem {
        &self.problem
    }

    /// Attaches a cooperative cancellation flag (portfolio racing).
    pub fn set_cancel(&mut self, cancel: CancelFlag) {
        self.cancel = Some(cancel);
    }

    /// Runs induction and returns only the summary outcome.
    pub fn run(&mut self) -> BmcOutcome {
        self.run_collecting().outcome
    }

    /// Runs the induction loop on every property, collecting per-property
    /// reports in the shared [`BmcRun`] shape.
    pub fn run_collecting(&mut self) -> BmcRun {
        let start = Instant::now();
        let mut aggregate = SolverStats::new();
        let mut reports: Vec<PropertyReport> = Vec::new();
        for prop in self.problem.properties() {
            let model = Model::new(prop.name(), self.problem.netlist().clone(), prop.bad());
            let run = prove_with(
                &model,
                self.options.max_depth,
                &self.options,
                self.cancel.as_ref(),
            );
            aggregate.accumulate(&run.stats);
            let (verdict, retirement_depth) = match run.outcome {
                InductionOutcome::Proved { k } => (
                    PropertyVerdict::Proved {
                        depth: k,
                        invariant_clauses: None,
                    },
                    None,
                ),
                InductionOutcome::Falsified { depth, trace } => {
                    (PropertyVerdict::Falsified { depth, trace }, Some(depth))
                }
                InductionOutcome::Unknown { .. } => {
                    // Distinguish "bound exhausted" (every base case ran to
                    // completion) from a truncated run.
                    if run.depth_results.len() == self.options.max_depth + 1
                        && run.depth_results.iter().all(|r| *r == SolveResult::Unsat)
                    {
                        (
                            PropertyVerdict::OpenAt {
                                depth: self.options.max_depth,
                            },
                            None,
                        )
                    } else {
                        (PropertyVerdict::Unknown, None)
                    }
                }
            };
            reports.push(PropertyReport {
                name: prop.name().to_string(),
                verdict,
                episodes: run.rounds,
                assumption_conflicts: 0,
                decisions: run.stats.decisions,
                conflicts: run.stats.conflicts,
                propagations: run.stats.propagations,
                retirement_depth,
                depth_results: run.depth_results,
            });
        }
        let outcome = crate::ic3::summarize(&reports, self.options.max_depth);
        BmcRun {
            outcome,
            properties: reports,
            per_depth: Vec::new(),
            solver_stats: aggregate,
            workers: Vec::new(),
            total_time: start.elapsed(),
            // Induction's strengthening queries are not proof-logged (only
            // the BMC and IC3 engines certify).
            proof: None,
        }
    }
}

impl Engine for InductionEngine {
    fn name(&self) -> &'static str {
        "induction"
    }

    fn problem(&self) -> &VerificationProblem {
        InductionEngine::problem(self)
    }

    fn set_cancel(&mut self, cancel: CancelFlag) {
        InductionEngine::set_cancel(self, cancel);
    }

    fn run_collecting(&mut self) -> BmcRun {
        InductionEngine::run_collecting(self)
    }
}

/// Same frame constraints as the BMC unroller, but frame 0 registers are
/// unconstrained (no `I(V⁰)`).
fn emit_uninitialized_frame(unroller: &Unroller<'_>, frame: usize, formula: &mut CnfFormula) {
    // Reuse the full encoder through a temporary trick: the unroller's
    // `formula` always constrains frame 0, so re-emit by hand here.
    let netlist = unroller.model().netlist();
    formula.add_clause([unroller
        .var_of(rbmc_circuit::NodeId::CONST, frame)
        .negative()]);
    for id in netlist.node_ids() {
        match netlist.node(id) {
            Node::Latch {
                next: Some(next), ..
            } if frame > 0 => {
                let cur = unroller.var_of(id, frame).positive();
                let prev = unroller.lit_of(*next, frame - 1);
                formula.add_clause([!cur, prev]);
                formula.add_clause([cur, !prev]);
            }
            Node::Gate { .. } => {
                // Delegate gate encoding to the unroller by re-deriving the
                // clauses from a single-frame formula would duplicate code;
                // instead call the shared helper below.
                unroller.emit_gate_for(id, frame, formula);
            }
            _ => {}
        }
    }
}

/// Adds `Vⁱ ≠ Vʲ` via one auxiliary "difference" variable per register pair:
/// `d ↔ (vᵢ ⊕ vⱼ)` …  encoded lazily as a single long clause over XOR-free
/// literals: `⋁_r (vᵢʳ ≠ vⱼʳ)` using one fresh variable per register.
fn add_state_disequality(
    unroller: &Unroller<'_>,
    latches: &[rbmc_circuit::NodeId],
    i: usize,
    j: usize,
    formula: &mut CnfFormula,
) {
    let mut clause: Vec<Lit> = Vec::with_capacity(latches.len());
    for &l in latches {
        let a = unroller.var_of(l, i).positive();
        let b = unroller.var_of(l, j).positive();
        // Fresh variable d with d → (a ⊕ b); one direction suffices for the
        // disjunction "some register differs".
        let d = formula.new_var().positive();
        // d → (a ∨ b), d → (¬a ∨ ¬b): together force a ≠ b when d holds.
        formula.add_clause([!d, a, b]);
        formula.add_clause([!d, !a, !b]);
        clause.push(d);
    }
    if clause.is_empty() {
        // No registers: all states identical, so paths cannot be simple —
        // the step case degenerates; forbid it outright.
        formula.add_clause(Vec::<Lit>::new());
    } else {
        formula.add_clause(clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_circuit::{LatchInit, Netlist, Signal};

    fn counter_model(width: usize, target: u64) -> Model {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let bad = n.bus_eq_const(&bits, target);
        Model::new("counter", n, bad)
    }

    #[test]
    fn proves_unreachable_value() {
        // 3-bit counter: 9 > 7 is syntactically impossible -> bad folds to
        // constant false; use 7 reachable? 7 IS reachable. Use a masked bad:
        // counter == 5 AND counter == 2 simultaneously (contradiction).
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..3)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let e5 = n.bus_eq_const(&bits, 5);
        let e2 = n.bus_eq_const(&bits, 2);
        let bad = n.and2(e5, e2);
        let model = Model::new("contradiction", n, bad);
        match prove(&model, 5, BmcOptions::default()) {
            InductionOutcome::Proved { .. } => {}
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn falsifies_reachable_value() {
        let model = counter_model(3, 6);
        match prove(&model, 10, BmcOptions::default()) {
            InductionOutcome::Falsified { depth, trace } => {
                assert_eq!(depth, 6);
                assert!(trace.validate(&model).is_ok());
            }
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    #[test]
    fn proves_sticky_invariant() {
        // latch := latch (constant 0 forever); bad = latch. Inductive at k=0.
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Zero);
        n.set_next(l, l);
        let model = Model::new("sticky0", n, l);
        match prove(&model, 3, BmcOptions::default()) {
            InductionOutcome::Proved { k } => assert_eq!(k, 0),
            other => panic!("expected proof at k=0, got {other:?}"),
        }
    }

    #[test]
    fn unique_states_gives_completeness_on_counter() {
        // "3-bit counter never equals 12": not plainly inductive (a path of
        // good states 11 -> 12 exists? No — 12 isn't representable in 3 bits;
        // bad folds to FALSE and k=0 suffices). Use a 4-bit counter that
        // wraps at 16 and the unreachable value... all 4-bit values are
        // reachable, so instead check that unique-states terminates on a
        // property that needs deep induction: 4-bit counter stuck at target
        // 12 with a reset-at-10 next function (12 unreachable).
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..4)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let inc = n.bus_increment(&bits);
        let at10 = n.bus_eq_const(&bits, 10);
        // next = at10 ? 0 : inc
        let next: Vec<Signal> = inc.iter().map(|&s| n.mux(at10, Signal::FALSE, s)).collect();
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let bad = n.bus_eq_const(&bits, 12);
        let model = Model::new("reset10", n, bad);
        match prove(&model, 16, BmcOptions::default()) {
            InductionOutcome::Proved { .. } => {}
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn engine_reports_proofs_in_the_shared_verdict_shape() {
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Zero);
        n.set_next(l, l);
        let model = Model::new("sticky0", n, l);
        let mut engine = InductionEngine::new(model, BmcOptions::default());
        assert_eq!(Engine::name(&engine), "induction");
        let run = engine.run_collecting();
        match &run.properties[0].verdict {
            PropertyVerdict::Proved {
                depth,
                invariant_clauses,
            } => {
                assert_eq!(*depth, 0);
                assert!(invariant_clauses.is_none());
            }
            other => panic!("expected proof, got {other}"),
        }
        assert!(matches!(run.outcome, BmcOutcome::BoundReached { .. }));
    }

    #[test]
    fn engine_falsifies_with_a_validated_trace() {
        let model = counter_model(3, 6);
        let mut engine = InductionEngine::new(model, BmcOptions::default());
        let run = engine.run_collecting();
        match &run.properties[0].verdict {
            PropertyVerdict::Falsified { depth, trace } => {
                assert_eq!(*depth, 6);
                assert!(trace
                    .validate_against(
                        engine.problem().netlist(),
                        engine.problem().properties()[0].bad()
                    )
                    .is_ok());
            }
            other => panic!("expected falsification, got {other}"),
        }
    }

    #[test]
    fn engine_cancellation_truncates() {
        let flag = CancelFlag::new();
        flag.cancel();
        let mut engine = InductionEngine::new(counter_model(4, 13), BmcOptions::default());
        engine.set_cancel(flag);
        let run = engine.run_collecting();
        assert!(matches!(
            run.properties[0].verdict,
            PropertyVerdict::Unknown
        ));
    }
}
