//! The model `⟨V, W, I, T⟩` plus the invariant under check.

use rbmc_circuit::{Netlist, Signal};

/// A model-checking instance: a sequential netlist and a *bad-state*
/// predicate (`bad = ¬P` for the invariant `G P`).
///
/// The netlist supplies the registers `V` (latches with initial values,
/// i.e. `I`), the inputs `W`, and the transition relation `T` (the latches'
/// next-state functions). `bad` is a signal over the current frame; a
/// counterexample is an initialized path that makes it true.
///
/// # Examples
///
/// ```
/// use rbmc_circuit::{LatchInit, Netlist};
/// use rbmc_core::Model;
///
/// let mut n = Netlist::new();
/// let t = n.add_latch("t", LatchInit::Zero);
/// n.set_next(t, !t);
/// // Invariant "t is never 1 at an even step" is violated at depth 1.
/// let model = Model::new("toggle", n, t);
/// assert_eq!(model.name(), "toggle");
/// assert_eq!(model.num_registers(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    name: String,
    netlist: Netlist,
    bad: Signal,
}

impl Model {
    /// Creates a model from a netlist and a bad-state signal.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::validate`].
    pub fn new(name: &str, netlist: Netlist, bad: Signal) -> Model {
        netlist
            .validate()
            .expect("model netlist must be well-formed");
        Model {
            name: name.to_string(),
            netlist,
            bad,
        }
    }

    /// Creates a model whose bad signal is a named output of the netlist.
    ///
    /// This is how BLIF/AIGER frontends attach properties: the convention is
    /// an output that is 1 exactly in the bad states.
    ///
    /// # Panics
    ///
    /// Panics if the output does not exist or the netlist is malformed.
    pub fn from_output(name: &str, netlist: Netlist, output: &str) -> Model {
        let bad = netlist
            .output(output)
            .unwrap_or_else(|| panic!("netlist has no output named `{output}`"));
        Model::new(name, netlist, bad)
    }

    /// The instance name (used in benchmark tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The bad-state signal (`¬P`).
    pub fn bad(&self) -> Signal {
        self.bad
    }

    /// Number of registers (`|V|`).
    pub fn num_registers(&self) -> usize {
        self.netlist.num_latches()
    }

    /// Number of primary inputs (`|W|`).
    pub fn num_inputs(&self) -> usize {
        self.netlist.num_inputs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_circuit::LatchInit;

    #[test]
    fn from_output_resolves_bad_signal() {
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Zero);
        n.set_next(l, !l);
        n.add_output("bad", l);
        let m = Model::from_output("m", n, "bad");
        assert_eq!(m.bad(), m.netlist().output("bad").unwrap());
    }

    #[test]
    #[should_panic(expected = "no output named")]
    fn from_missing_output_panics() {
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Zero);
        n.set_next(l, !l);
        let _ = Model::from_output("m", n, "ghost");
    }

    #[test]
    #[should_panic(expected = "well-formed")]
    fn invalid_netlist_rejected() {
        let mut n = Netlist::new();
        let _ = n.add_latch("l", LatchInit::Zero); // never connected
        let _ = Model::new("m", n, rbmc_circuit::Signal::FALSE);
    }
}
