//! The model `⟨V, W, I, T⟩` plus the invariant under check.

use rbmc_circuit::{Netlist, Signal};

use crate::{FromAigerError, ProblemBuilder, Property, VerificationProblem};

/// A single-property view of a [`VerificationProblem`]: a sequential netlist
/// and a *bad-state* predicate (`bad = ¬P` for the invariant `G P`).
///
/// The netlist supplies the registers `V` (latches with initial values,
/// i.e. `I`), the inputs `W`, and the transition relation `T` (the latches'
/// next-state functions). `bad` is a signal over the current frame; a
/// counterexample is an initialized path that makes it true.
///
/// `Model` is the historical front door of the engine and is kept as the
/// entry point of the figure-reproducing binaries (the paper checks one
/// property per run). It is a thin wrapper: constructors build a one-property
/// [`VerificationProblem`], and the accessors expose that problem's *primary*
/// (first) property. Multi-property work goes through [`ProblemBuilder`] and
/// [`BmcEngine::for_problem`](crate::BmcEngine::for_problem) instead.
///
/// # Examples
///
/// ```
/// use rbmc_circuit::{LatchInit, Netlist};
/// use rbmc_core::Model;
///
/// let mut n = Netlist::new();
/// let t = n.add_latch("t", LatchInit::Zero);
/// n.set_next(t, !t);
/// // Invariant "t is never 1 at an even step" is violated at depth 1.
/// let model = Model::new("toggle", n, t);
/// assert_eq!(model.name(), "toggle");
/// assert_eq!(model.num_registers(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    problem: VerificationProblem,
}

impl Model {
    /// Creates a model from a netlist and a bad-state signal.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::validate`].
    pub fn new(name: &str, netlist: Netlist, bad: Signal) -> Model {
        Model {
            problem: ProblemBuilder::new(name, netlist)
                .property("bad", bad)
                .build(),
        }
    }

    /// Creates a model whose bad signal is a named output of the netlist.
    ///
    /// This is how BLIF frontends attach properties: the convention is an
    /// output that is 1 exactly in the bad states.
    ///
    /// # Panics
    ///
    /// Panics if the output does not exist or the netlist is malformed.
    pub fn from_output(name: &str, netlist: Netlist, output: &str) -> Model {
        let bad = netlist
            .output(output)
            .unwrap_or_else(|| panic!("netlist has no output named `{output}`"));
        Model {
            problem: ProblemBuilder::new(name, netlist)
                .property(output, bad)
                .build(),
        }
    }

    /// Parses an AIGER file (either encoding, auto-detected) and takes its
    /// **first** bad-state line — or, for files without a `B` section, its
    /// first output — as the property. Multi-property files lose their other
    /// properties in this view; use [`VerificationProblem::from_aiger`] to
    /// keep them all.
    ///
    /// # Errors
    ///
    /// Returns [`FromAigerError`] if parsing fails or the file declares no
    /// property at all.
    pub fn from_aiger(name: &str, bytes: &[u8]) -> Result<Model, FromAigerError> {
        let problem = VerificationProblem::from_aiger(name, bytes)?;
        Ok(Model::from_problem(problem))
    }

    /// Wraps an existing problem in the single-property view. The wrapped
    /// problem may carry more properties (the engine stores the model it was
    /// given and this is how [`BmcEngine::for_problem`](crate::BmcEngine::for_problem)
    /// threads one through); [`Model::bad`] then exposes the primary one.
    pub fn from_problem(problem: VerificationProblem) -> Model {
        Model { problem }
    }

    /// The underlying (possibly multi-property) problem.
    pub fn problem(&self) -> &VerificationProblem {
        &self.problem
    }

    /// Unwraps into the underlying problem.
    pub fn into_problem(self) -> VerificationProblem {
        self.problem
    }

    /// The instance name (used in benchmark tables).
    pub fn name(&self) -> &str {
        self.problem.name()
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        self.problem.netlist()
    }

    /// The primary property.
    pub fn primary(&self) -> &Property {
        self.problem.primary()
    }

    /// The bad-state signal (`¬P`) of the primary property.
    pub fn bad(&self) -> Signal {
        self.problem.primary().bad()
    }

    /// Number of registers (`|V|`).
    pub fn num_registers(&self) -> usize {
        self.netlist().num_latches()
    }

    /// Number of primary inputs (`|W|`).
    pub fn num_inputs(&self) -> usize {
        self.netlist().num_inputs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_circuit::aiger::write_aag;
    use rbmc_circuit::{Aig, LatchInit};

    #[test]
    fn from_output_resolves_bad_signal() {
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Zero);
        n.set_next(l, !l);
        n.add_output("bad", l);
        let m = Model::from_output("m", n, "bad");
        assert_eq!(m.bad(), m.netlist().output("bad").unwrap());
        assert_eq!(m.primary().name(), "bad");
    }

    #[test]
    #[should_panic(expected = "no output named")]
    fn from_missing_output_panics() {
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Zero);
        n.set_next(l, !l);
        let _ = Model::from_output("m", n, "ghost");
    }

    #[test]
    #[should_panic(expected = "well-formed")]
    fn invalid_netlist_rejected() {
        let mut n = Netlist::new();
        let _ = n.add_latch("l", LatchInit::Zero); // never connected
        let _ = Model::new("m", n, rbmc_circuit::Signal::FALSE);
    }

    #[test]
    fn from_aiger_takes_first_property() {
        let mut aig = Aig::new();
        let l = aig.add_latch(LatchInit::Zero);
        aig.set_next(l, !l);
        aig.add_bad("first", l);
        aig.add_bad("second", !l);
        let m = Model::from_aiger("toggle", write_aag(&aig).as_bytes()).unwrap();
        assert_eq!(m.primary().name(), "first");
        // The full problem is still reachable behind the view.
        assert_eq!(m.problem().num_properties(), 2);
    }
}
