//! VCD (Value Change Dump) export of counterexample traces.
//!
//! Waveform viewers (GTKWave & co.) are how verification engineers actually
//! consume counterexamples; this module renders a [`Trace`] as an IEEE-1364
//! VCD document with one signal per register, input, and the bad flag.

use std::fmt::Write as _;

use rbmc_circuit::sim::{read_signal, Simulator};

use crate::{Model, Trace};

/// Renders the trace as a VCD document.
///
/// One timescale unit corresponds to one clock cycle (frame). Registers are
/// dumped under scope `regs`, inputs under `inputs`, and the bad-state flag
/// as `bad` at top level.
///
/// # Examples
///
/// ```
/// use rbmc_circuit::{LatchInit, Netlist};
/// use rbmc_core::{vcd, Model, Trace};
///
/// let mut n = Netlist::new();
/// let t = n.add_latch("t", LatchInit::Zero);
/// n.set_next(t, !t);
/// let model = Model::new("toggle", n, t);
/// let trace = Trace::from_parts(vec![false], vec![vec![], vec![]]);
/// let doc = vcd::render_vcd(&model, &trace);
/// assert!(doc.contains("$enddefinitions"));
/// assert!(doc.contains("#1"));
/// ```
pub fn render_vcd(model: &Model, trace: &Trace) -> String {
    let netlist = model.netlist();
    let latches = netlist.latches();
    let inputs = netlist.inputs();

    // Identifier codes: VCD allows any printable ASCII; generate !, ", #, …
    let code = |index: usize| -> String {
        let mut s = String::new();
        let mut i = index;
        loop {
            s.push((33 + (i % 94)) as u8 as char);
            i /= 94;
            if i == 0 {
                break;
            }
            i -= 1;
        }
        s
    };
    let latch_code = |i: usize| code(i);
    let input_code = |i: usize| code(latches.len() + i);
    let bad_code = code(latches.len() + inputs.len());

    let mut out = String::new();
    let _ = writeln!(
        out,
        "$comment refined-bmc counterexample for {} $end",
        model.name()
    );
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {} $end", sanitize(model.name()));
    let _ = writeln!(out, "$scope module regs $end");
    for (i, &id) in latches.iter().enumerate() {
        let name = netlist.name(id).unwrap_or("reg");
        let _ = writeln!(out, "$var reg 1 {} {} $end", latch_code(i), sanitize(name));
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$scope module inputs $end");
    for (i, &id) in inputs.iter().enumerate() {
        let name = netlist.name(id).unwrap_or("in");
        let _ = writeln!(out, "$var wire 1 {} {} $end", input_code(i), sanitize(name));
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$var wire 1 {bad_code} bad $end");
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Walk the trace, dumping changes frame by frame.
    let mut sim = Simulator::with_state(netlist, trace.initial_state().to_vec());
    let mut last_regs: Vec<Option<bool>> = vec![None; latches.len()];
    let mut last_inputs: Vec<Option<bool>> = vec![None; inputs.len()];
    let mut last_bad: Option<bool> = None;
    for (frame, frame_inputs) in trace.inputs().iter().enumerate() {
        let _ = writeln!(out, "#{frame}");
        for (i, (&value, last)) in sim
            .state()
            .to_vec()
            .iter()
            .zip(last_regs.iter_mut())
            .enumerate()
        {
            if *last != Some(value) {
                let _ = writeln!(out, "{}{}", value as u8, latch_code(i));
                *last = Some(value);
            }
        }
        for (i, (&value, last)) in frame_inputs.iter().zip(last_inputs.iter_mut()).enumerate() {
            if *last != Some(value) {
                let _ = writeln!(out, "{}{}", value as u8, input_code(i));
                *last = Some(value);
            }
        }
        let values = sim.frame_values(frame_inputs);
        let bad = read_signal(&values, model.bad());
        if last_bad != Some(bad) {
            let _ = writeln!(out, "{}{bad_code}", bad as u8);
            last_bad = Some(bad);
        }
        sim.step(frame_inputs);
    }
    let _ = writeln!(out, "#{}", trace.inputs().len());
    out
}

/// Replaces characters VCD identifiers dislike.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_circuit::{LatchInit, Netlist};

    fn toggle_model() -> Model {
        let mut n = Netlist::new();
        let t = n.add_latch("t", LatchInit::Zero);
        n.set_next(t, !t);
        Model::new("toggle", n, t)
    }

    #[test]
    fn header_declares_all_signals() {
        let mut n = Netlist::new();
        let i = n.add_input("go");
        let l = n.add_latch("state", LatchInit::Zero);
        let nx = n.or2(l, i);
        n.set_next(l, nx);
        let model = Model::new("m", n, l);
        let trace = Trace::from_parts(vec![false], vec![vec![true], vec![false]]);
        let doc = render_vcd(&model, &trace);
        assert!(doc.contains("$var reg 1"));
        assert!(doc.contains("state"));
        assert!(doc.contains("go"));
        assert!(doc.contains("bad"));
        assert!(doc.contains("$enddefinitions"));
    }

    #[test]
    fn value_changes_are_emitted_per_frame() {
        let model = toggle_model();
        let trace = Trace::from_parts(vec![false], vec![vec![], vec![], vec![]]);
        let doc = render_vcd(&model, &trace);
        // The toggle flips every frame: a change line after each timestamp.
        assert!(doc.contains("#0"));
        assert!(doc.contains("#1"));
        assert!(doc.contains("#2"));
        let zeros = doc.matches("\n0!").count();
        let ones = doc.matches("\n1!").count();
        assert!(zeros >= 2 && ones >= 1, "{doc}");
    }

    #[test]
    fn unchanged_values_are_not_repeated() {
        // Constant-zero register: exactly one dump of its value.
        let mut n = Netlist::new();
        let l = n.add_latch("zero", LatchInit::Zero);
        n.set_next(l, l);
        let model = Model::new("m", n, !l);
        let trace = Trace::from_parts(vec![false], vec![vec![], vec![], vec![]]);
        let doc = render_vcd(&model, &trace);
        assert_eq!(doc.matches("\n0!").count(), 1, "{doc}");
    }

    #[test]
    fn identifier_codes_stay_printable_for_many_signals() {
        let mut n = Netlist::new();
        let regs: Vec<_> = (0..200)
            .map(|i| n.add_latch(&format!("r{i}"), LatchInit::Zero))
            .collect();
        for &r in &regs {
            n.set_next(r, r);
        }
        let model = Model::new("wide", n, regs[0]);
        let trace = Trace::from_parts(vec![false; 200], vec![vec![]]);
        let doc = render_vcd(&model, &trace);
        for ch in doc.chars() {
            assert!(ch == '\n' || (' '..='~').contains(&ch), "bad char {ch:?}");
        }
    }
}
