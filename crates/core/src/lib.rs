//! The DAC 2004 contribution: BMC with a successively *refined* SAT decision
//! ordering.
//!
//! Bounded model checking of an invariant `G P` unrolls the model
//! `⟨V, W, I, T⟩` into the satisfiability question of Eq. 1:
//!
//! ```text
//! F_k  =  I(V⁰) ∧ ⋀_{1≤i≤k} T(V^{i-1}, Wⁱ, Vⁱ) ∧ ¬P(V^k)
//! ```
//!
//! `F_k` is satisfiable iff a length-`k` counterexample exists. The paper's
//! observation: the `F_k` are highly correlated and almost all UNSAT, and
//! each UNSAT proof yields an unsatisfiable core whose variables form an
//! abstract model sufficient to refute length-`k` counterexamples. Ranking
//! variables by how often (and how recently) they appeared in previous cores
//! — `bmc_score(x) = Σ_j in_unsat(x, j) · j` — and deciding them first makes
//! the next instance much easier (§3.2, Fig. 5).
//!
//! This crate provides:
//!
//! - [`VerificationProblem`] / [`ProblemBuilder`]: a sequential netlist plus
//!   a *set* of named bad-state properties, built from a netlist, an AIG, an
//!   AIGER file (`VerificationProblem::from_aiger`, both encodings), or a
//!   [`Model`]. All properties share one unrolled transition relation and
//!   one solving session.
//! - [`Model`]: the thin single-property view (netlist + one bad-state
//!   predicate `¬P`) the paper's per-run setup and the figure-reproducing
//!   binaries use.
//! - [`Unroller`]: Tseitin encoding of Eq. 1 with **frame-stable variable
//!   numbering**, so variable identities (and hence `varRank`) transfer
//!   between instances.
//! - [`VarRank`]: the paper's score table with the linear weighting of §3.2
//!   (plus uniform / last-core-only ablations).
//! - [`BmcEngine`]: the `refine_order_bmc` loop of Fig. 5 with the
//!   [`OrderingStrategy`] variants of §3.3 (standard VSIDS, refined static,
//!   refined dynamic, and Shtrichman's time-axis ordering as the related-work
//!   baseline), generalized to property sets: every still-open property is
//!   solved per depth under its own activation literal, retires individually
//!   with a validated witness ([`PropertyVerdict`]), and `varRank` refreshes
//!   from the union of the open properties' cores.
//! - [`Trace`]: counterexample extraction and replay validation on the
//!   circuit simulator.
//! - [`preprocess_problem`] / [`TraceLift`]: engine-path structural
//!   preprocessing — constant sweeping, structural hashing, and restriction
//!   to the union of the properties' cones of influence — with trace lifting
//!   back to original coordinates. On by default
//!   ([`BmcOptions::preprocess`]); every node removed is removed from every
//!   frame of the unrolling.
//! - [`oracle`]: an explicit-state BFS reachability checker used as ground
//!   truth in tests.
//! - [`induction`]: a k-induction prover built on the same unroller (the
//!   "combine with other techniques" extension the paper's conclusion
//!   anticipates).
//! - [`ic3`]: an IC3 engine over the same session solver, with the paper's
//!   core ranking transplanted to per-frame **assumption ordering** (see
//!   the module docs), extracted machine-checked inductive invariants, and
//!   [`PropertyVerdict::Proved`] verdicts.
//! - [`Engine`] / [`EngineKind`]: the shared surface over
//!   [`VerificationProblem`] that [`BmcEngine`], [`Ic3Engine`], and
//!   [`induction::InductionEngine`] implement, so the portfolio
//!   ([`run_portfolio`], [`PortfolioMode::Full`]) can race bug hunters
//!   against provers and the CLI can switch engines with one flag.
//!
//! # Examples
//!
//! ```
//! use rbmc_circuit::{LatchInit, Netlist};
//! use rbmc_core::{BmcEngine, BmcOptions, BmcOutcome, Model, OrderingStrategy};
//!
//! // A 3-bit counter; "counter never reaches 5" fails at depth 5.
//! let mut n = Netlist::new();
//! let bits: Vec<_> = (0..3).map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero)).collect();
//! let next = n.bus_increment(&bits);
//! for (&b, &nx) in bits.iter().zip(&next) { n.set_next(b, nx); }
//! let bad = n.bus_eq_const(&bits, 5);
//! let model = Model::new("counter3", n, bad);
//!
//! let mut engine = BmcEngine::new(model, BmcOptions {
//!     max_depth: 10,
//!     strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
//!     ..BmcOptions::default()
//! });
//! match engine.run() {
//!     BmcOutcome::Counterexample { depth, trace } => {
//!         assert_eq!(depth, 5);
//!         assert!(trace.validate(engine.model()).is_ok());
//!     }
//!     other => panic!("expected a counterexample, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ic3;
pub mod induction;
pub mod oracle;
pub mod vcd;

mod certify;
mod engine;
mod engine_trait;
mod model;
mod parallel;
mod portfolio;
mod preprocess;
mod problem;
mod ranking;
mod relaxed;
mod shtrichman;
mod trace;
mod unroll;

pub use certify::{ProofAuditError, ProofMode, ProofSummary, SharedRecorder};
pub use engine::{
    BmcEngine, BmcOptions, BmcOutcome, BmcRun, DepthStats, OrderingStrategy, PropertyReport,
    PropertyVerdict, SolverReuse,
};
pub use engine_trait::{Engine, EngineKind};
pub use ic3::{check_invariant, Ic3Engine, InvariantClause, InvariantError};
// Re-exported because it appears throughout the engine's public API
// (`DepthStats::result`, per-depth verdict comparisons).
pub use model::Model;
pub use parallel::{striped_map, ParallelConfig, ShardMode, WorkerReport};
pub use portfolio::{
    run_portfolio, MemberReport, MemberState, PortfolioMember, PortfolioMode, PortfolioRun,
};
pub use preprocess::{preprocess_problem, PreprocessedProblem, TraceLift};
pub use problem::{FromAigerError, ProblemBuilder, Property, VerificationProblem};
pub use ranking::{VarRank, Weighting};
pub use rbmc_solver::{CancelFlag, SolveResult};
pub use shtrichman::shtrichman_rank;
pub use trace::{Trace, TraceError};
pub use unroll::{SharedPrefix, Unroller};
