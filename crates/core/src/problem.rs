//! Multi-property verification problems: one netlist, many safety
//! properties, one shared unrolled transition relation.
//!
//! The paper checks one property per run, but its industrial inputs (and
//! the HWMCC benchmarks the AIGER front end ingests) attach *sets* of
//! bad-state signals to one circuit. All properties of a circuit share the
//! initial-state predicate and transition relation, so the incremental
//! solving session can unroll once and solve every still-open property per
//! depth under its own assumption — see
//! [`BmcEngine::for_problem`](crate::BmcEngine::for_problem).

use std::fmt;

use rbmc_circuit::aiger::{parse_aiger, ParseAigerError};
use rbmc_circuit::{Aig, Netlist, Signal};

/// One named safety property: a *bad-state* signal over the current frame
/// (`bad = ¬P` for the invariant `G P`). A counterexample is an initialized
/// path that makes the signal true.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    name: String,
    bad: Signal,
}

impl Property {
    /// Creates a property from its name and bad-state signal.
    pub fn new(name: &str, bad: Signal) -> Property {
        Property {
            name: name.to_string(),
            bad,
        }
    }

    /// The property name (AIGER `b<i>` symbol, output name, or user-given).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bad-state signal (`¬P`).
    pub fn bad(&self) -> Signal {
        self.bad
    }
}

/// A multi-property model-checking instance: a sequential netlist plus a
/// non-empty set of named bad-state properties.
///
/// Build one with [`ProblemBuilder`] (from a [`Netlist`], an [`Aig`], an
/// AIGER file, or a single-property [`Model`](crate::Model)), then hand it
/// to [`BmcEngine::for_problem`](crate::BmcEngine::for_problem), which
/// checks every property in one incremental solving session.
///
/// # Examples
///
/// ```
/// use rbmc_circuit::{LatchInit, Netlist};
/// use rbmc_core::ProblemBuilder;
///
/// let mut n = Netlist::new();
/// let t = n.add_latch("t", LatchInit::Zero);
/// n.set_next(t, !t);
/// let problem = ProblemBuilder::new("toggle", n)
///     .property("reaches_one", t)
///     .property("reaches_zero", !t)
///     .build();
/// assert_eq!(problem.num_properties(), 2);
/// assert_eq!(problem.property(0).name(), "reaches_one");
/// ```
#[derive(Debug, Clone)]
pub struct VerificationProblem {
    name: String,
    netlist: Netlist,
    properties: Vec<Property>,
}

impl VerificationProblem {
    /// The instance name (used in benchmark tables and runner output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared netlist all properties are checked against.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The property set (never empty).
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// Number of properties.
    pub fn num_properties(&self) -> usize {
        self.properties.len()
    }

    /// The property at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn property(&self, index: usize) -> &Property {
        &self.properties[index]
    }

    /// The primary (first) property — what the single-property
    /// [`Model`](crate::Model) view exposes.
    pub fn primary(&self) -> &Property {
        &self.properties[0]
    }

    /// Parses an AIGER file (either encoding, auto-detected) into a problem,
    /// taking the bad-state (`B`) lines as the properties; files without a
    /// `B` section fall back to the pre-1.9 convention of reading every
    /// output as a bad-state property.
    ///
    /// # Errors
    ///
    /// Returns [`FromAigerError`] if parsing fails or the file declares
    /// neither bad-state lines nor outputs.
    pub fn from_aiger(name: &str, bytes: &[u8]) -> Result<VerificationProblem, FromAigerError> {
        let aig = parse_aiger(bytes).map_err(FromAigerError::Parse)?;
        let builder = ProblemBuilder::from_aig(name, &aig);
        if builder.num_properties() == 0 {
            return Err(FromAigerError::NoProperties);
        }
        Ok(builder.build())
    }
}

/// Why an AIGER file could not become a [`VerificationProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromAigerError {
    /// The file does not parse.
    Parse(ParseAigerError),
    /// The file has neither bad-state lines nor outputs to check.
    NoProperties,
}

impl fmt::Display for FromAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromAigerError::Parse(e) => write!(f, "{e}"),
            FromAigerError::NoProperties => {
                write!(f, "aiger file declares no bad-state lines and no outputs")
            }
        }
    }
}

impl std::error::Error for FromAigerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FromAigerError::Parse(e) => Some(e),
            FromAigerError::NoProperties => None,
        }
    }
}

/// Builder for [`VerificationProblem`]s.
///
/// Entry points mirror the front ends: [`ProblemBuilder::new`] for a
/// hand-built [`Netlist`], [`ProblemBuilder::from_aig`] for an [`Aig`]
/// (e.g. freshly parsed AIGER), and
/// [`ProblemBuilder::from_model`] for the single-property
/// [`Model`](crate::Model) the figure-reproducing binaries use.
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    name: String,
    netlist: Netlist,
    properties: Vec<Property>,
}

impl ProblemBuilder {
    /// Starts a problem over a hand-built netlist with no properties yet.
    pub fn new(name: &str, netlist: Netlist) -> ProblemBuilder {
        ProblemBuilder {
            name: name.to_string(),
            netlist,
            properties: Vec::new(),
        }
    }

    /// Starts a problem from an AIG: the netlist is the raised
    /// ([`Aig::to_netlist`]) form, and the property set is pre-populated
    /// from the AIG's bad-state declarations — or, when it has none, from
    /// its outputs (the pre-AIGER-1.9 property convention).
    pub fn from_aig(name: &str, aig: &Aig) -> ProblemBuilder {
        let raised = aig.to_netlist();
        let mut properties = Vec::new();
        let source: &[(String, rbmc_circuit::AigLit)] = if aig.bads().is_empty() {
            aig.outputs()
        } else {
            aig.bads()
        };
        for (prop_name, lit) in source {
            properties.push(Property::new(prop_name, raised.signal_of(*lit)));
        }
        ProblemBuilder {
            name: name.to_string(),
            netlist: raised.netlist,
            properties,
        }
    }

    /// Starts a problem from a single-property [`Model`](crate::Model),
    /// keeping its netlist and its primary property (name included).
    pub fn from_model(model: &crate::Model) -> ProblemBuilder {
        ProblemBuilder {
            name: model.name().to_string(),
            netlist: model.netlist().clone(),
            properties: vec![model.primary().clone()],
        }
    }

    /// Adds a named property over the builder's netlist.
    pub fn property(mut self, name: &str, bad: Signal) -> ProblemBuilder {
        self.properties.push(Property::new(name, bad));
        self
    }

    /// Adds every declared netlist output as a property (the convention
    /// BLIF/pre-1.9-AIGER front ends use: an output is 1 in the bad states).
    pub fn properties_from_outputs(mut self) -> ProblemBuilder {
        let outputs: Vec<(String, Signal)> = self
            .netlist
            .outputs()
            .iter()
            .map(|(n, s)| (n.clone(), *s))
            .collect();
        for (name, signal) in outputs {
            self.properties.push(Property::new(&name, signal));
        }
        self
    }

    /// Number of properties queued so far.
    pub fn num_properties(&self) -> usize {
        self.properties.len()
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::validate`], the property set
    /// is empty, or two properties share a name (per-property reports and
    /// witness files are keyed by name).
    pub fn build(self) -> VerificationProblem {
        self.netlist
            .validate()
            .expect("problem netlist must be well-formed");
        assert!(
            !self.properties.is_empty(),
            "a verification problem needs at least one property"
        );
        for (i, p) in self.properties.iter().enumerate() {
            assert!(
                self.properties[..i].iter().all(|q| q.name() != p.name()),
                "duplicate property name `{}`",
                p.name()
            );
        }
        VerificationProblem {
            name: self.name,
            netlist: self.netlist,
            properties: self.properties,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_circuit::aiger::{write_aag, write_aig};
    use rbmc_circuit::LatchInit;

    fn toggle_netlist() -> (Netlist, Signal) {
        let mut n = Netlist::new();
        let t = n.add_latch("t", LatchInit::Zero);
        n.set_next(t, !t);
        (n, t)
    }

    #[test]
    fn builder_from_netlist() {
        let (n, t) = toggle_netlist();
        let p = ProblemBuilder::new("toggle", n)
            .property("high", t)
            .property("low", !t)
            .build();
        assert_eq!(p.name(), "toggle");
        assert_eq!(p.num_properties(), 2);
        assert_eq!(p.primary().name(), "high");
        assert_eq!(p.property(1).bad(), !t);
    }

    #[test]
    #[should_panic(expected = "at least one property")]
    fn empty_property_set_rejected() {
        let (n, _) = toggle_netlist();
        let _ = ProblemBuilder::new("toggle", n).build();
    }

    #[test]
    #[should_panic(expected = "duplicate property name")]
    fn duplicate_names_rejected() {
        let (n, t) = toggle_netlist();
        let _ = ProblemBuilder::new("toggle", n)
            .property("p", t)
            .property("p", !t)
            .build();
    }

    #[test]
    fn builder_from_outputs() {
        let (mut n, t) = toggle_netlist();
        n.add_output("o_high", t);
        let p = ProblemBuilder::new("toggle", n)
            .properties_from_outputs()
            .build();
        assert_eq!(p.num_properties(), 1);
        assert_eq!(p.primary().name(), "o_high");
    }

    fn two_property_aig() -> Aig {
        let mut aig = Aig::new();
        let l = aig.add_latch(LatchInit::Zero);
        aig.set_next(l, !l);
        aig.add_bad("high", l);
        aig.add_bad("always_low", !l);
        aig
    }

    #[test]
    fn from_aiger_prefers_bad_lines() {
        let aig = two_property_aig();
        for bytes in [write_aag(&aig).into_bytes(), write_aig(&aig)] {
            let p = VerificationProblem::from_aiger("toggle", &bytes).unwrap();
            assert_eq!(p.num_properties(), 2);
            assert_eq!(p.property(0).name(), "high");
            assert_eq!(p.property(1).name(), "always_low");
        }
    }

    #[test]
    fn from_aiger_falls_back_to_outputs() {
        let mut aig = Aig::new();
        let l = aig.add_latch(LatchInit::Zero);
        aig.set_next(l, !l);
        aig.add_output("bad", l);
        let p = VerificationProblem::from_aiger("toggle", write_aag(&aig).as_bytes()).unwrap();
        assert_eq!(p.num_properties(), 1);
        assert_eq!(p.primary().name(), "bad");
    }

    #[test]
    fn from_aiger_rejects_propertyless_files() {
        let aig = {
            let mut aig = Aig::new();
            let l = aig.add_latch(LatchInit::Zero);
            aig.set_next(l, !l);
            aig
        };
        let err = VerificationProblem::from_aiger("x", write_aag(&aig).as_bytes()).unwrap_err();
        assert_eq!(err, FromAigerError::NoProperties);
        assert!(VerificationProblem::from_aiger("x", b"not aiger").is_err());
    }
}
