//! The shared [`Engine`] abstraction over [`VerificationProblem`].
//!
//! Every verification engine in this crate — bounded model checking
//! ([`BmcEngine`]), IC3 ([`Ic3Engine`](crate::Ic3Engine)), and k-induction
//! (via [`induction::InductionEngine`](crate::induction::InductionEngine)) —
//! answers the same question about the same input: given a problem, produce
//! a [`BmcRun`] with one [`PropertyVerdict`](crate::PropertyVerdict) per
//! property. The trait captures exactly that surface, so the portfolio
//! racer, the corpus runner, and the differential harnesses can provision
//! engines by [`EngineKind`] without caring which algorithm answers.
//!
//! The verdict vocabulary is shared too, which is what makes the engines
//! *comparable*: a falsification depth means the same thing everywhere (the
//! shortest counterexample found, bad state at that frame), so an IC3
//! falsification can be differentially checked against the BMC oracle, and
//! `Proved` strictly strengthens `OpenAt`.

use std::fmt;

use rbmc_solver::CancelFlag;

use crate::engine::{BmcEngine, BmcOutcome, BmcRun};
use crate::VerificationProblem;

/// A verification engine over a [`VerificationProblem`]: configured at
/// construction, runs once, reports one verdict per property.
pub trait Engine {
    /// Short engine name used in reports and artifacts ("bmc", "ic3", …).
    fn name(&self) -> &'static str;

    /// The problem under check, as given (traces and verdicts are in its
    /// coordinates even when the engine preprocesses a working copy).
    fn problem(&self) -> &VerificationProblem;

    /// Attaches a cooperative cancellation flag: once raised, the run
    /// truncates through its resource-out path at the next solver
    /// checkpoint. Portfolio racing uses this to cut losers off mid-run.
    fn set_cancel(&mut self, cancel: CancelFlag);

    /// Runs the engine to completion, collecting per-property reports and
    /// per-depth statistics.
    fn run_collecting(&mut self) -> BmcRun;

    /// Runs the engine and returns only the summary outcome.
    fn run(&mut self) -> BmcOutcome {
        self.run_collecting().outcome
    }
}

impl Engine for BmcEngine {
    fn name(&self) -> &'static str {
        "bmc"
    }

    fn problem(&self) -> &VerificationProblem {
        BmcEngine::problem(self)
    }

    fn set_cancel(&mut self, cancel: CancelFlag) {
        BmcEngine::set_cancel(self, cancel);
    }

    fn run_collecting(&mut self) -> BmcRun {
        BmcEngine::run_collecting(self)
    }
}

/// Which algorithm answers a verification problem — the provisioning axis
/// the portfolio roster and the `rbmc --engine` flag select along.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Bounded model checking ([`BmcEngine`]): complete up to the depth
    /// bound, the bug hunter of the roster.
    #[default]
    Bmc,
    /// IC3 ([`Ic3Engine`](crate::Ic3Engine)): unbounded proofs with
    /// extracted inductive invariants, shortest counterexamples otherwise.
    Ic3,
    /// k-induction with unique-states strengthening
    /// ([`induction`](crate::induction)): unbounded proofs without an
    /// extracted invariant.
    Induction,
}

impl EngineKind {
    /// Short name used by the CLI tools and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Bmc => "bmc",
            EngineKind::Ic3 => "ic3",
            EngineKind::Induction => "induction",
        }
    }

    /// Parses an engine label as accepted by the CLI (`--engine`).
    pub fn parse(label: &str) -> Option<EngineKind> {
        match label {
            "bmc" => Some(EngineKind::Bmc),
            "ic3" => Some(EngineKind::Ic3),
            "induction" | "ind" | "kind" => Some(EngineKind::Induction),
            _ => None,
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BmcOptions;
    use crate::Model;
    use rbmc_circuit::{LatchInit, Netlist, Signal};

    #[test]
    fn engine_kind_labels_round_trip() {
        for kind in [EngineKind::Bmc, EngineKind::Ic3, EngineKind::Induction] {
            assert_eq!(EngineKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(EngineKind::parse("nope"), None);
    }

    #[test]
    fn bmc_engine_runs_through_the_trait() {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..3)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let bad = n.bus_eq_const(&bits, 5);
        let model = Model::new("counter", n, bad);
        let mut engine: Box<dyn Engine> = Box::new(BmcEngine::new(
            model,
            BmcOptions {
                max_depth: 10,
                ..BmcOptions::default()
            },
        ));
        assert_eq!(engine.name(), "bmc");
        assert_eq!(engine.problem().num_properties(), 1);
        match engine.run() {
            BmcOutcome::Counterexample { depth, .. } => assert_eq!(depth, 5),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }
}
