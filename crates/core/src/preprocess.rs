//! Problem-level structural preprocessing and trace lifting.
//!
//! [`preprocess_problem`] runs the circuit-level pass
//! ([`rbmc_circuit::preprocess`]) over a whole [`VerificationProblem`],
//! seeding the cone-of-influence with **every** property's bad signal, and
//! rebuilds an equivalent problem over the reduced netlist. Because BMC
//! encodes one netlist copy per frame, every node removed here is removed
//! from every frame of every instance — the space savings multiply by the
//! depth bound.
//!
//! The reduced problem speaks reduced coordinates (fewer latches/inputs,
//! renumbered nodes). [`TraceLift`] maps counterexample traces found on it
//! back to the original problem's coordinates, so callers never see the
//! reduction: dropped latches replay at their declared reset value, dropped
//! inputs at `false` — sound because the pass only drops state the seeds
//! structurally cannot observe. Lifted traces validate on the *original*
//! netlist.

use rbmc_circuit::preprocess::{preprocess, PreprocessReport};
use rbmc_circuit::{LatchInit, Netlist, Node};

use crate::{ProblemBuilder, Trace, VerificationProblem};

/// Maps traces found on a preprocessed (reduced) problem back to the
/// original problem's latch/input coordinates.
#[derive(Clone, Debug)]
pub struct TraceLift {
    /// Reduced latch index → original latch index (strictly increasing).
    kept_latches: Vec<usize>,
    /// Reduced input index → original input index (strictly increasing).
    kept_inputs: Vec<usize>,
    /// Declared reset value per original latch (`Free` → `false`): what a
    /// dropped latch replays as.
    default_latch: Vec<bool>,
    /// Number of original inputs.
    num_inputs: usize,
    /// Per original latch: outside every seed's structural cone, so a
    /// witness may print `x` for it.
    dontcare_latches: Vec<bool>,
    /// Same flag per original input.
    dontcare_inputs: Vec<bool>,
}

impl TraceLift {
    /// Builds the lift from the circuit pass's kept/don't-care maps and the
    /// original netlist's declared resets.
    fn new(original: &Netlist, pp: &rbmc_circuit::preprocess::Preprocessed) -> TraceLift {
        let default_latch = original
            .latches()
            .iter()
            .map(|&id| {
                matches!(
                    original.node(id),
                    Node::Latch {
                        init: LatchInit::One,
                        ..
                    }
                )
            })
            .collect();
        TraceLift {
            kept_latches: pp.kept_latches.clone(),
            kept_inputs: pp.kept_inputs.clone(),
            default_latch,
            num_inputs: original.num_inputs(),
            dontcare_latches: pp.dontcare_latches.clone(),
            dontcare_inputs: pp.dontcare_inputs.clone(),
        }
    }

    /// `true` when preprocessing kept every latch and input: lifted traces
    /// equal their reduced originals, coordinate for coordinate.
    pub fn is_identity(&self) -> bool {
        self.kept_latches.len() == self.default_latch.len()
            && self.kept_inputs.len() == self.num_inputs
    }

    /// Per **original** latch (creation order): `true` when no property's
    /// cone contains it, so its value is irrelevant and a witness may print
    /// `x`. Swept (stuck-at-reset) latches inside a cone are *not*
    /// don't-care.
    pub fn dontcare_latches(&self) -> &[bool] {
        &self.dontcare_latches
    }

    /// Same flag per original input.
    pub fn dontcare_inputs(&self) -> &[bool] {
        &self.dontcare_inputs
    }

    /// Lifts a trace over the reduced problem to original coordinates:
    /// surviving latches/inputs copy their values across, dropped latches
    /// take their declared reset value, dropped inputs `false`. The result
    /// validates against the original netlist and bad signal.
    pub fn lift(&self, trace: &Trace) -> Trace {
        if self.is_identity() {
            return trace.clone();
        }
        let mut initial = self.default_latch.clone();
        for (reduced_idx, &orig_idx) in self.kept_latches.iter().enumerate() {
            initial[orig_idx] = trace.initial_state()[reduced_idx];
        }
        let inputs = trace
            .inputs()
            .iter()
            .map(|frame| {
                let mut full = vec![false; self.num_inputs];
                for (reduced_idx, &orig_idx) in self.kept_inputs.iter().enumerate() {
                    full[orig_idx] = frame[reduced_idx];
                }
                full
            })
            .collect();
        Trace::from_parts(initial, inputs)
    }
}

/// A [`VerificationProblem`] after structural preprocessing: the reduced
/// problem (same name, same property names, equivalent verdicts at every
/// depth), the [`TraceLift`] back to original coordinates, and the shape
/// accounting.
#[derive(Clone, Debug)]
pub struct PreprocessedProblem {
    /// The reduced problem.
    pub problem: VerificationProblem,
    /// Trace map back to the original coordinates.
    pub lift: TraceLift,
    /// Before/after node counts and per-reduction tallies.
    pub report: PreprocessReport,
}

/// Runs constant sweeping, structural hashing, and COI restriction over
/// `problem`'s netlist, seeded by the union of all property bad signals, and
/// rebuilds the problem over the reduced netlist.
///
/// Per-depth BMC verdicts of the reduced problem equal the original's for
/// every property — the cone union keeps everything any property can
/// observe, sweeping only replaces latches provably stuck at their reset
/// value, and hashing merges gates computing identical functions.
pub fn preprocess_problem(problem: &VerificationProblem) -> PreprocessedProblem {
    let seeds: Vec<_> = problem
        .properties()
        .iter()
        .map(super::problem::Property::bad)
        .collect();
    let pp = preprocess(problem.netlist(), &seeds);
    let lift = TraceLift::new(problem.netlist(), &pp);
    let mut builder = ProblemBuilder::new(problem.name(), pp.netlist.clone());
    for (property, &seed) in problem.properties().iter().zip(&pp.seed_signals) {
        builder = builder.property(property.name(), seed);
    }
    PreprocessedProblem {
        problem: builder.build(),
        lift,
        report: pp.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_circuit::{Netlist, Signal};

    /// Stuck latch + two 3-bit counters; `bad = stuck ∨ a₂` ignores counter
    /// b entirely, and a primary input feeds only counter b.
    fn mixed_problem() -> VerificationProblem {
        let mut n = Netlist::new();
        let stuck = n.add_latch("stuck", LatchInit::Zero);
        n.set_next(stuck, stuck);
        let a: Vec<Signal> = (0..3)
            .map(|i| n.add_latch(&format!("a{i}"), LatchInit::Zero))
            .collect();
        let b: Vec<Signal> = (0..3)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let enable = n.add_input("enable");
        let an = n.bus_increment(&a);
        for (&l, &nx) in a.iter().zip(&an) {
            n.set_next(l, nx);
        }
        let bn = n.bus_increment(&b);
        for (&l, &nx) in b.iter().zip(&bn) {
            let gated = n.mux(enable, nx, l);
            n.set_next(l, gated);
        }
        let bad = n.or2(stuck, a[2]);
        ProblemBuilder::new("mixed", n).property("bad", bad).build()
    }

    #[test]
    fn reduces_problem_and_keeps_names() {
        let problem = mixed_problem();
        let pp = preprocess_problem(&problem);
        assert_eq!(pp.problem.name(), "mixed");
        assert_eq!(pp.problem.num_properties(), 1);
        assert_eq!(pp.problem.property(0).name(), "bad");
        // `stuck` swept, counter b and its enable input out of cone.
        assert_eq!(pp.problem.netlist().num_latches(), 3);
        assert_eq!(pp.problem.netlist().num_inputs(), 0);
        assert_eq!(pp.report.swept_latches, 1);
        assert!(!pp.lift.is_identity());
    }

    #[test]
    fn lift_restores_original_coordinates() {
        let problem = mixed_problem();
        let pp = preprocess_problem(&problem);
        // A counterexample of the reduced 3-latch problem: counter a reaches
        // 4 (a₂ set) after four steps from reset.
        let reduced_trace = Trace::from_parts(
            vec![false, false, false],
            vec![vec![]; 5], // reduced problem has no inputs
        );
        reduced_trace
            .validate_against(pp.problem.netlist(), pp.problem.primary().bad())
            .expect("reduced trace is genuine");
        let lifted = pp.lift.lift(&reduced_trace);
        assert_eq!(lifted.initial_state().len(), 7);
        assert_eq!(lifted.inputs()[0].len(), 1);
        lifted
            .validate_against(problem.netlist(), problem.primary().bad())
            .expect("lifted trace replays on the original netlist");
    }

    #[test]
    fn dontcare_masks_cover_dropped_state_only() {
        let problem = mixed_problem();
        let pp = preprocess_problem(&problem);
        // stuck (swept, in cone) and counter a: not don't-care; counter b: is.
        assert_eq!(
            pp.lift.dontcare_latches(),
            &[false, false, false, false, true, true, true]
        );
        assert_eq!(pp.lift.dontcare_inputs(), &[true]);
    }

    #[test]
    fn identity_lift_on_fully_live_problem() {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..4)
            .map(|i| n.add_latch(&format!("c{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&l, &nx) in bits.iter().zip(&next) {
            n.set_next(l, nx);
        }
        let bad = n.bus_eq_const(&bits, 11);
        let problem = ProblemBuilder::new("live", n).property("bad", bad).build();
        let pp = preprocess_problem(&problem);
        assert!(pp.lift.is_identity());
        assert_eq!(pp.problem.netlist().num_latches(), 4);
        let trace = Trace::from_parts(vec![false; 4], vec![vec![]; 3]);
        assert_eq!(pp.lift.lift(&trace), trace);
    }

    #[test]
    fn one_init_latches_lift_to_one() {
        // A dropped latch with One reset must replay as 1, not 0, or the
        // lifted trace fails initial-state validation.
        let mut n = Netlist::new();
        let hi = n.add_latch("hi", LatchInit::One);
        n.set_next(hi, !hi); // live shape, but out of the property cone
        let t = n.add_latch("t", LatchInit::Zero);
        n.set_next(t, !t);
        let problem = ProblemBuilder::new("p", n).property("bad", t).build();
        let pp = preprocess_problem(&problem);
        assert_eq!(pp.problem.netlist().num_latches(), 1);
        let lifted = pp
            .lift
            .lift(&Trace::from_parts(vec![false], vec![vec![], vec![]]));
        assert_eq!(lifted.initial_state(), &[true, false]);
        lifted
            .validate_against(problem.netlist(), problem.primary().bad())
            .expect("lifted trace valid");
    }
}
