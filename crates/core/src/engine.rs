//! `refine_order_bmc` — the main loop of the paper's Fig. 5.
//!
//! ```text
//! refine_order_bmc(M, P) {
//!     initialize varRank;
//!     for each k {
//!         F = gen_cnf_formula(M, P, k);
//!         (isSat, unsatVars) = sat_check(F, varRank);
//!         if (isSat) return FALSE;              // counterexample found
//!         else update_ranking(unsatVars, varRank);
//!     }
//!     return TRUE;                              // bound reached
//! }
//! ```
//!
//! By default the engine runs the loop as one **incremental solving
//! session** ([`SolverReuse::Session`]): a single persistent [`Solver`]
//! serves every depth. Each depth appends only the new frame's clauses
//! (via [`Unroller::with_frame_delta`]), asserts the bad state through a
//! per-depth *activation literal* `a_k` — the clause `a_k → bad_k` is added
//! permanently, `a_k` is assumed for the depth-`k` solve, and a `¬a_k` unit
//! retires it afterwards — and the solver keeps its learned clauses, phase
//! assignments, and heuristic state warm across depths. The paper's
//! per-depth `varRank` refresh becomes a [`Solver::set_var_ranking`] call
//! between solve episodes. The paper's original regime — a fresh solver per
//! depth, loading the whole prefix and discarding everything after the
//! verdict — is preserved as [`SolverReuse::Fresh`] for differential
//! testing and overhead measurements (the method is orthogonal to
//! incremental SAT, so both regimes reach identical verdicts).

use std::fmt;
use std::time::{Duration, Instant};

use rbmc_cnf::Lit;
use rbmc_solver::{Limits, OrderMode, SolveResult, Solver, SolverOptions, SolverStats};

use crate::{shtrichman_rank, Model, Trace, Unroller, VarRank, Weighting};

/// Which decision-ordering scheme `sat_check` uses (§3.3 plus baselines).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum OrderingStrategy {
    /// Plain Chaff: pure VSIDS, no core bookkeeping. The paper's baseline
    /// ("BMC" column of Table 1).
    #[default]
    Standard,
    /// Refined ordering, static configuration: `bmc_score` primary for the
    /// whole solve ("new bmc, sta." column).
    RefinedStatic,
    /// Refined ordering, dynamic configuration: falls back to VSIDS once
    /// `#decisions > #original_literals / divisor` ("new bmc, dyn." column;
    /// the paper uses 64).
    RefinedDynamic {
        /// Denominator of the switch threshold.
        divisor: u32,
    },
    /// Shtrichman's time-axis static ordering (related work; for the
    /// register-axis vs time-axis ablation).
    Shtrichman,
}

impl OrderingStrategy {
    /// Whether this strategy needs unsat cores (and hence CDG recording).
    pub fn needs_cores(self) -> bool {
        matches!(
            self,
            OrderingStrategy::RefinedStatic | OrderingStrategy::RefinedDynamic { .. }
        )
    }

    /// Short name used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            OrderingStrategy::Standard => "bmc",
            OrderingStrategy::RefinedStatic => "sta",
            OrderingStrategy::RefinedDynamic { .. } => "dyn",
            OrderingStrategy::Shtrichman => "sht",
        }
    }
}

/// How [`BmcEngine`] provisions SAT solvers across depths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SolverReuse {
    /// One persistent solver for the whole run: frames are appended
    /// incrementally, bad states are asserted via assumed activation
    /// literals, and learned clauses survive between depths.
    #[default]
    Session,
    /// A fresh solver per depth, loading the full clause prefix and the
    /// bad-state unit — the paper's original (seed-identical) regime, kept
    /// for differential testing against the session path.
    Fresh,
}

impl SolverReuse {
    /// Short name used in benchmark tables and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            SolverReuse::Session => "session",
            SolverReuse::Fresh => "fresh",
        }
    }
}

/// Configuration of a [`BmcEngine`] run.
#[derive(Clone, Copy, Debug)]
pub struct BmcOptions {
    /// Highest unrolling depth to try (the completeness-threshold stand-in).
    pub max_depth: usize,
    /// Decision-ordering scheme.
    pub strategy: OrderingStrategy,
    /// Solver provisioning across depths (persistent session vs fresh per
    /// depth).
    pub reuse: SolverReuse,
    /// How past cores are weighted (§3.2; ablation knob).
    pub weighting: Weighting,
    /// Base solver configuration. `order_mode` and `record_cdg` are
    /// overridden per [`BmcOptions::strategy`]; the rest (restarts, clause
    /// deletion, halving interval) applies as given.
    pub solver: SolverOptions,
    /// Optional conflict budget per depth (deterministic timeout stand-in).
    pub max_conflicts_per_depth: Option<u64>,
    /// Optional wall-clock deadline for the whole run.
    pub deadline: Option<Instant>,
    /// Also record cores under [`OrderingStrategy::Standard`] (for the CDG
    /// overhead measurements of §3.1; off by default to keep the baseline
    /// honest).
    pub force_record_cdg: bool,
}

impl Default for BmcOptions {
    fn default() -> BmcOptions {
        BmcOptions {
            max_depth: 20,
            strategy: OrderingStrategy::Standard,
            reuse: SolverReuse::Session,
            weighting: Weighting::Linear,
            solver: SolverOptions::default(),
            max_conflicts_per_depth: None,
            deadline: None,
            force_record_cdg: false,
        }
    }
}

/// Statistics of one depth's `sat_check` (the per-`k` data behind Fig. 7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepthStats {
    /// The unrolling depth `k`.
    pub depth: usize,
    /// Verdict at this depth.
    pub result: SolveResult,
    /// Number of decisions (Fig. 7 left).
    pub decisions: u64,
    /// Number of implications/propagations (Fig. 7 right).
    pub implications: u64,
    /// Number of conflicts.
    pub conflicts: u64,
    /// CNF size: variables.
    pub num_vars: usize,
    /// CNF size: clauses.
    pub num_clauses: usize,
    /// Variables in this depth's unsatisfiable core (0 if SAT or untracked).
    pub core_vars: usize,
    /// Whether the dynamic configuration fell back to VSIDS at this depth.
    pub switched_to_vsids: bool,
    /// Nodes recorded in the simplified CDG (0 when recording is off).
    pub cdg_nodes: u64,
    /// Antecedent edges recorded in the simplified CDG.
    pub cdg_edges: u64,
    /// Wall-clock time of this depth's solve.
    pub time: Duration,
}

/// The outcome of a BMC run.
#[derive(Clone, Debug)]
pub enum BmcOutcome {
    /// The property fails: a validated counterexample of length `depth`.
    Counterexample {
        /// Length of the counterexample (bad state at this frame).
        depth: usize,
        /// The counterexample itself.
        trace: Trace,
    },
    /// All depths up to `max_depth` are UNSAT: no counterexample of bounded
    /// length exists (the paper's "property proven true up to the
    /// completeness threshold").
    BoundReached {
        /// The last depth proven UNSAT.
        depth_completed: usize,
    },
    /// A per-depth conflict budget or the deadline ran out at `at_depth`.
    ResourceOut {
        /// Depth whose solve did not finish.
        at_depth: usize,
    },
}

impl fmt::Display for BmcOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmcOutcome::Counterexample { depth, .. } => {
                write!(f, "counterexample at depth {depth}")
            }
            BmcOutcome::BoundReached { depth_completed } => {
                write!(f, "no counterexample up to depth {depth_completed}")
            }
            BmcOutcome::ResourceOut { at_depth } => {
                write!(f, "resources exhausted at depth {at_depth}")
            }
        }
    }
}

/// Summary of a finished run: outcome plus all per-depth statistics.
#[derive(Clone, Debug)]
pub struct BmcRun {
    /// The verdict.
    pub outcome: BmcOutcome,
    /// One entry per attempted depth, in order.
    pub per_depth: Vec<DepthStats>,
    /// Aggregate solver statistics over the whole run: the session solver's
    /// final counters under [`SolverReuse::Session`], the per-depth solvers'
    /// counters summed under [`SolverReuse::Fresh`]. Carries the
    /// incremental-session counters (`solve_calls`, `assumption_conflicts`,
    /// `learned_retained`) the per-depth deltas cannot express.
    pub solver_stats: SolverStats,
    /// Total wall-clock time.
    pub total_time: Duration,
}

impl BmcRun {
    /// Sum of decisions over all depths.
    pub fn total_decisions(&self) -> u64 {
        self.per_depth.iter().map(|d| d.decisions).sum()
    }

    /// Sum of implications over all depths.
    pub fn total_implications(&self) -> u64 {
        self.per_depth.iter().map(|d| d.implications).sum()
    }

    /// Sum of conflicts over all depths.
    pub fn total_conflicts(&self) -> u64 {
        self.per_depth.iter().map(|d| d.conflicts).sum()
    }

    /// The deepest depth whose solve completed (SAT or UNSAT).
    pub fn max_completed_depth(&self) -> Option<usize> {
        self.per_depth
            .iter()
            .filter(|d| d.result != SolveResult::Unknown)
            .map(|d| d.depth)
            .max()
    }
}

/// The `refine_order_bmc` engine (Fig. 5).
///
/// See the [crate docs](crate) for a complete example.
pub struct BmcEngine {
    model: Model,
    options: BmcOptions,
    rank: VarRank,
    per_depth: Vec<DepthStats>,
}

impl fmt::Debug for BmcEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BmcEngine")
            .field("model", &self.model.name())
            .field("options", &self.options)
            .field("depths_done", &self.per_depth.len())
            .finish()
    }
}

impl BmcEngine {
    /// Creates an engine for `model` with the given options.
    pub fn new(model: Model, options: BmcOptions) -> BmcEngine {
        BmcEngine {
            model,
            options,
            rank: VarRank::new(options.weighting),
            per_depth: Vec::new(),
        }
    }

    /// The model under check.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The accumulated `varRank` (inspect after a run).
    pub fn rank(&self) -> &VarRank {
        &self.rank
    }

    /// Runs the loop of Fig. 5 and returns only the outcome.
    pub fn run(&mut self) -> BmcOutcome {
        self.run_collecting().outcome
    }

    /// Runs the loop of Fig. 5, collecting per-depth statistics.
    pub fn run_collecting(&mut self) -> BmcRun {
        let run_start = Instant::now();
        let unroller = Unroller::new(&self.model);
        // The persistent solver of a session run (frames appended per depth).
        let mut session: Option<Solver> = match self.options.reuse {
            SolverReuse::Session => Some(Solver::with_options(self.solver_options())),
            SolverReuse::Fresh => None,
        };
        let mut aggregate = SolverStats::new();
        let mut outcome = BmcOutcome::BoundReached { depth_completed: 0 };
        for k in 0..=self.options.max_depth {
            let depth_start = Instant::now();
            let limits = self.depth_limits();
            // gen_cnf_formula(M, P, k): the unroller only ever encodes the
            // one new frame; session solvers consume exactly that delta,
            // fresh solvers replay the cached prefix. sat_check(F, varRank)
            // is one solve episode either way.
            let mut fresh: Option<Solver> = None;
            let (solver, result, base) = match session.as_mut() {
                Some(solver) => {
                    let base = solver.stats().clone();
                    unroller.with_frame_delta(k, |clauses| {
                        for clause in clauses {
                            solver.add_clause(clause.lits());
                        }
                    });
                    // a_k → bad_k; a_k is assumed for this depth only.
                    let act = Self::activation_lit(&unroller, self.options.max_depth, k);
                    solver.add_clause(&[!act, unroller.bad_lit(k)]);
                    self.install_ranking(solver, &unroller, k);
                    let result = solver.solve_under_limited(&[act], &limits);
                    (&mut *solver, result, base)
                }
                None => {
                    let solver = fresh.insert(self.fresh_solver(&unroller, k));
                    let result = solver.solve_limited(&limits);
                    (&mut *solver, result, SolverStats::new())
                }
            };
            let stats = solver.stats();
            // The paper's unsatVars, filtered to the frame-stable model
            // variables (a session core may also cite activation literals).
            let core_vars = match result {
                SolveResult::Unsat => self.core_model_vars(solver, &unroller, k),
                _ => Vec::new(),
            };
            self.per_depth.push(DepthStats {
                depth: k,
                result,
                decisions: stats.decisions - base.decisions,
                implications: stats.propagations - base.propagations,
                conflicts: stats.conflicts - base.conflicts,
                num_vars: unroller.num_vars_at(k),
                num_clauses: solver.num_original_clauses(),
                core_vars: core_vars.len(),
                switched_to_vsids: stats.switched_to_vsids,
                cdg_nodes: stats.cdg_nodes - base.cdg_nodes,
                cdg_edges: stats.cdg_edges - base.cdg_edges,
                time: depth_start.elapsed(),
            });
            match result {
                SolveResult::Sat => {
                    let assignment = solver.model().expect("model after SAT");
                    let trace = Trace::from_assignment(&unroller, assignment, k);
                    debug_assert!(
                        trace.validate(&self.model).is_ok(),
                        "solver returned an invalid counterexample"
                    );
                    if let Some(f) = fresh.as_ref() {
                        aggregate.accumulate(f.stats());
                    }
                    outcome = BmcOutcome::Counterexample { depth: k, trace };
                    break;
                }
                SolveResult::Unsat => {
                    // update_ranking(unsatVars, varRank)
                    if self.options.strategy.needs_cores() && !core_vars.is_empty() {
                        self.rank.update(&core_vars, k);
                    }
                    if let Some(solver) = session.as_mut() {
                        // Retire this depth's activation literal for good:
                        // the a_k → bad_k clause is satisfied forever, and
                        // clause-database reduction reclaims everything
                        // learned against a_k.
                        let act = Self::activation_lit(&unroller, self.options.max_depth, k);
                        solver.add_clause(&[!act]);
                    }
                    if let Some(f) = fresh.as_ref() {
                        aggregate.accumulate(f.stats());
                    }
                    outcome = BmcOutcome::BoundReached { depth_completed: k };
                }
                SolveResult::Unknown => {
                    if let Some(f) = fresh.as_ref() {
                        aggregate.accumulate(f.stats());
                    }
                    outcome = BmcOutcome::ResourceOut { at_depth: k };
                    break;
                }
            }
        }
        if let Some(solver) = session.as_ref() {
            aggregate = solver.stats().clone();
        }
        BmcRun {
            outcome,
            per_depth: std::mem::take(&mut self.per_depth),
            solver_stats: aggregate,
            total_time: run_start.elapsed(),
        }
    }

    /// The solver configuration the strategy dictates: `order_mode` and
    /// `record_cdg` are derived, the rest is taken from
    /// [`BmcOptions::solver`].
    fn solver_options(&self) -> SolverOptions {
        let mut opts = self.options.solver;
        opts.order_mode = match self.options.strategy {
            OrderingStrategy::Standard => OrderMode::Standard,
            OrderingStrategy::RefinedStatic | OrderingStrategy::Shtrichman => OrderMode::Static,
            OrderingStrategy::RefinedDynamic { divisor } => OrderMode::Dynamic { divisor },
        };
        opts.record_cdg = self.options.strategy.needs_cores() || self.options.force_record_cdg;
        opts
    }

    /// The depth-`k` activation literal of a session run. Activation
    /// variables live **above** the whole unrolling's variable range
    /// (`num_vars_at(max_depth)`), so they can never collide with the
    /// frame-stable model variables of any depth the run will reach.
    fn activation_lit(unroller: &Unroller<'_>, max_depth: usize, k: usize) -> Lit {
        rbmc_cnf::Var::new(unroller.num_vars_at(max_depth) + k).positive()
    }

    /// Installs the strategy's ranking for the depth-`k` episode (the
    /// paper's per-depth `varRank` refresh; re-seedable on a live solver).
    fn install_ranking(&self, solver: &mut Solver, unroller: &Unroller<'_>, k: usize) {
        match self.options.strategy {
            OrderingStrategy::Standard => {}
            OrderingStrategy::Shtrichman => {
                solver.set_var_ranking(&shtrichman_rank(unroller, k));
            }
            _ => solver.set_var_ranking(self.rank.as_slice()),
        }
    }

    /// Builds the paper's per-depth solver (the [`SolverReuse::Fresh`]
    /// differential path): loads `F_k` from the unroller's cached clause
    /// prefix plus the depth-`k` bad-state unit — no activation literals, no
    /// assumptions — then installs the strategy's ranking.
    fn fresh_solver(&self, unroller: &Unroller<'_>, k: usize) -> Solver {
        let mut solver = Solver::with_options(self.solver_options());
        solver.reserve_vars(unroller.num_vars_at(k));
        unroller.with_prefix(k, |clauses| {
            for clause in clauses {
                solver.add_clause(clause.lits());
            }
        });
        solver.add_clause(&[unroller.bad_lit(k)]);
        self.install_ranking(&mut solver, unroller, k);
        solver
    }

    /// The model variables (frame-stable, `< num_vars_at(k)`) of the last
    /// UNSAT verdict's core. Activation variables are filtered out: they are
    /// bookkeeping of the session encoding, not part of the paper's
    /// `unsatVars`.
    fn core_model_vars(
        &self,
        solver: &Solver,
        unroller: &Unroller<'_>,
        k: usize,
    ) -> Vec<rbmc_cnf::Var> {
        let bound = unroller.num_vars_at(k);
        solver
            .core_vars()
            .unwrap_or_default()
            .into_iter()
            .filter(|v| v.index() < bound)
            .collect()
    }

    fn depth_limits(&self) -> Limits {
        let mut limits = Limits::new();
        if let Some(n) = self.options.max_conflicts_per_depth {
            limits = limits.with_max_conflicts(n);
        }
        if let Some(deadline) = self.options.deadline {
            limits = limits.with_deadline(deadline);
        }
        limits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{check_reachable, OracleVerdict};
    use rbmc_circuit::{LatchInit, Netlist, Signal};

    fn counter_model(width: usize, target: u64) -> Model {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let bad = n.bus_eq_const(&bits, target);
        Model::new("counter", n, bad)
    }

    fn all_strategies() -> Vec<OrderingStrategy> {
        vec![
            OrderingStrategy::Standard,
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::RefinedDynamic { divisor: 64 },
            OrderingStrategy::Shtrichman,
        ]
    }

    #[test]
    fn finds_counterexample_at_oracle_depth() {
        let model = counter_model(4, 11);
        let expected = check_reachable(&model, 20);
        assert_eq!(expected, OracleVerdict::FailsAt(11));
        for strategy in all_strategies() {
            let mut engine = BmcEngine::new(
                counter_model(4, 11),
                BmcOptions {
                    max_depth: 20,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            match engine.run() {
                BmcOutcome::Counterexample { depth, trace } => {
                    assert_eq!(depth, 11, "{strategy:?}");
                    assert!(trace.validate(engine.model()).is_ok(), "{strategy:?}");
                }
                other => panic!("{strategy:?}: expected cex, got {other:?}"),
            }
        }
    }

    #[test]
    fn passing_property_reaches_bound() {
        // 3-bit counter never equals 12.
        let model = counter_model(3, 12);
        for strategy in all_strategies() {
            let mut engine = BmcEngine::new(
                model.clone(),
                BmcOptions {
                    max_depth: 12,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            match engine.run() {
                BmcOutcome::BoundReached { depth_completed } => {
                    assert_eq!(depth_completed, 12, "{strategy:?}")
                }
                other => panic!("{strategy:?}: expected bound reached, got {other:?}"),
            }
        }
    }

    #[test]
    fn refined_strategies_accumulate_rank() {
        let model = counter_model(4, 9);
        let mut engine = BmcEngine::new(
            model,
            BmcOptions {
                max_depth: 9,
                strategy: OrderingStrategy::RefinedStatic,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        assert!(matches!(
            run.outcome,
            BmcOutcome::Counterexample { depth: 9, .. }
        ));
        // Nine UNSAT instances were consumed (k = 0..8).
        assert_eq!(engine.rank().num_updates(), 9);
        assert!(engine.rank().num_ranked() > 0);
    }

    #[test]
    fn per_depth_stats_are_complete() {
        let model = counter_model(3, 5);
        let mut engine = BmcEngine::new(
            model,
            BmcOptions {
                max_depth: 10,
                strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        // Depths 0..=5 attempted; 5 is SAT.
        assert_eq!(run.per_depth.len(), 6);
        for (i, d) in run.per_depth.iter().enumerate() {
            assert_eq!(d.depth, i);
            assert!(d.num_vars > 0 && d.num_clauses > 0);
            let expected = if i == 5 {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(d.result, expected);
        }
        // An input-free counter is fully determined by propagation, so
        // decisions may legitimately be zero; implications never are.
        assert!(run.total_implications() > 0);
        assert_eq!(run.max_completed_depth(), Some(5));
    }

    #[test]
    fn conflict_budget_reports_resource_out() {
        // Fresh mode: with a zero conflict budget, the UNSAT depths of the
        // input-free counter still complete (level-0 propagation refutes
        // them before the budget is consulted), but the SAT depth hits the
        // budget check in the decision loop and reports ResourceOut there.
        let model = counter_model(3, 5);
        let mut engine = BmcEngine::new(
            model.clone(),
            BmcOptions {
                max_depth: 12,
                strategy: OrderingStrategy::Standard,
                reuse: SolverReuse::Fresh,
                max_conflicts_per_depth: Some(0),
                ..BmcOptions::default()
            },
        );
        match engine.run() {
            BmcOutcome::ResourceOut { at_depth } => assert_eq!(at_depth, 5),
            other => panic!("expected resource-out, got {other:?}"),
        }
        // Session mode asserts the bad state through an assumed activation
        // literal, so even depth 0 needs one pseudo-decision — which a zero
        // budget forbids: ResourceOut immediately.
        let mut engine = BmcEngine::new(
            model,
            BmcOptions {
                max_depth: 12,
                strategy: OrderingStrategy::Standard,
                reuse: SolverReuse::Session,
                max_conflicts_per_depth: Some(0),
                ..BmcOptions::default()
            },
        );
        match engine.run() {
            BmcOutcome::ResourceOut { at_depth } => assert_eq!(at_depth, 0),
            other => panic!("expected resource-out, got {other:?}"),
        }
    }

    #[test]
    fn session_and_fresh_agree_per_depth() {
        // Same model, both reuse modes, every strategy: identical per-depth
        // verdict sequences and identical counterexample depth.
        for target in [5u64, 12] {
            let model = counter_model(4, target);
            for strategy in all_strategies() {
                let mut runs = Vec::new();
                for reuse in [SolverReuse::Fresh, SolverReuse::Session] {
                    let mut engine = BmcEngine::new(
                        model.clone(),
                        BmcOptions {
                            max_depth: 14,
                            strategy,
                            reuse,
                            ..BmcOptions::default()
                        },
                    );
                    runs.push(engine.run_collecting());
                }
                let verdicts = |run: &BmcRun| -> Vec<SolveResult> {
                    run.per_depth.iter().map(|d| d.result).collect()
                };
                assert_eq!(
                    verdicts(&runs[0]),
                    verdicts(&runs[1]),
                    "{strategy:?} target {target}"
                );
            }
        }
    }

    #[test]
    fn session_run_reports_incremental_stats() {
        let model = counter_model(4, 11);
        let mut engine = BmcEngine::new(
            model,
            BmcOptions {
                max_depth: 20,
                strategy: OrderingStrategy::RefinedStatic,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        assert!(matches!(
            run.outcome,
            BmcOutcome::Counterexample { depth: 11, .. }
        ));
        let stats = &run.solver_stats;
        // One solve episode per attempted depth (0..=11).
        assert_eq!(stats.solve_calls, 12);
        // Every UNSAT depth ended as a failed-assumption conflict.
        assert_eq!(stats.assumption_conflicts, 11);
        // Fresh mode never reports incremental counters.
        let mut engine = BmcEngine::new(
            counter_model(4, 11),
            BmcOptions {
                max_depth: 20,
                strategy: OrderingStrategy::RefinedStatic,
                reuse: SolverReuse::Fresh,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        assert_eq!(run.solver_stats.assumption_conflicts, 0);
        assert_eq!(run.solver_stats.learned_retained, 0);
        // Each fresh solver counts its single episode.
        assert_eq!(run.solver_stats.solve_calls, 12);
    }

    #[test]
    fn outcome_display_is_informative() {
        let model = counter_model(3, 5);
        let mut engine = BmcEngine::new(model, BmcOptions::default());
        let outcome = engine.run();
        assert!(outcome.to_string().contains("depth 5"));
    }
}
