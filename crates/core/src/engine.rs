//! `refine_order_bmc` — the main loop of the paper's Fig. 5, generalized to
//! property sets.
//!
//! ```text
//! refine_order_bmc(M, P) {
//!     initialize varRank;
//!     for each k {
//!         F = gen_cnf_formula(M, P, k);
//!         (isSat, unsatVars) = sat_check(F, varRank);
//!         if (isSat) return FALSE;              // counterexample found
//!         else update_ranking(unsatVars, varRank);
//!     }
//!     return TRUE;                              // bound reached
//! }
//! ```
//!
//! By default the engine runs the loop as one **incremental solving
//! session** ([`SolverReuse::Session`]): a single persistent [`Solver`]
//! serves every depth. Each depth appends only the new frame's clauses
//! (via [`Unroller::with_frame_delta`]) and then solves **every still-open
//! property** under its own *activation literal*: for property `p` at depth
//! `k` the clause `a_{p,k} → bad_p^k` is added permanently, `a_{p,k}` is
//! assumed for that property's episode, and a `¬a_{p,k}` unit retires it
//! afterwards. All properties of a [`VerificationProblem`] share the one
//! unrolled transition relation, the solver's learned clauses, and the
//! `varRank` table — which each depth refreshes from the **union** of the
//! open properties' UNSAT cores ([`Solver::set_var_ranking`] between
//! episodes). Properties retire individually: a SAT episode yields a
//! validated [`Trace`] and removes the property from the sweep while the
//! rest continue to the depth bound. The paper's original regime — a fresh
//! solver per property per depth, loading the whole prefix and discarding
//! everything after the verdict — is preserved as [`SolverReuse::Fresh`]
//! for differential testing and overhead measurements (the method is
//! orthogonal to incremental SAT, so both regimes reach identical
//! verdicts).

use std::fmt;
use std::time::{Duration, Instant};

use rbmc_circuit::Signal;
use rbmc_cnf::Lit;
use rbmc_solver::{CancelFlag, Limits, OrderMode, SolveResult, Solver, SolverOptions, SolverStats};

use crate::certify::{self, EpisodeCertifier};
use crate::parallel::{self, ParallelConfig, WorkerReport};
use crate::preprocess::preprocess_problem;
use crate::{
    shtrichman_rank, Model, Trace, TraceLift, Unroller, VarRank, VerificationProblem, Weighting,
};
use rbmc_circuit::preprocess::PreprocessReport;

/// Which decision-ordering scheme `sat_check` uses (§3.3 plus baselines).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum OrderingStrategy {
    /// Plain Chaff: pure VSIDS, no core bookkeeping. The paper's baseline
    /// ("BMC" column of Table 1).
    #[default]
    Standard,
    /// Refined ordering, static configuration: `bmc_score` primary for the
    /// whole solve ("new bmc, sta." column).
    RefinedStatic,
    /// Refined ordering, dynamic configuration: falls back to VSIDS once
    /// `#decisions > #original_literals / divisor` ("new bmc, dyn." column;
    /// the paper uses 64).
    RefinedDynamic {
        /// Denominator of the switch threshold.
        divisor: u32,
    },
    /// Shtrichman's time-axis static ordering (related work; for the
    /// register-axis vs time-axis ablation).
    Shtrichman,
}

impl OrderingStrategy {
    /// Whether this strategy needs unsat cores (and hence CDG recording).
    pub fn needs_cores(self) -> bool {
        matches!(
            self,
            OrderingStrategy::RefinedStatic | OrderingStrategy::RefinedDynamic { .. }
        )
    }

    /// Short name used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            OrderingStrategy::Standard => "bmc",
            OrderingStrategy::RefinedStatic => "sta",
            OrderingStrategy::RefinedDynamic { .. } => "dyn",
            OrderingStrategy::Shtrichman => "sht",
        }
    }
}

/// How [`BmcEngine`] provisions SAT solvers across depths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SolverReuse {
    /// One persistent solver for the whole run: frames are appended
    /// incrementally, bad states are asserted via assumed per-property
    /// activation literals, and learned clauses survive between depths and
    /// between properties.
    #[default]
    Session,
    /// A fresh solver per property per depth, loading the full clause prefix
    /// and the bad-state unit — the paper's original (seed-identical) regime,
    /// kept for differential testing against the session path.
    Fresh,
}

impl SolverReuse {
    /// Short name used in benchmark tables and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            SolverReuse::Session => "session",
            SolverReuse::Fresh => "fresh",
        }
    }
}

/// Configuration of a [`BmcEngine`] run.
#[derive(Clone, Copy, Debug)]
pub struct BmcOptions {
    /// Highest unrolling depth to try (the completeness-threshold stand-in).
    pub max_depth: usize,
    /// Decision-ordering scheme.
    pub strategy: OrderingStrategy,
    /// Solver provisioning across depths (persistent session vs fresh per
    /// depth).
    pub reuse: SolverReuse,
    /// How past cores are weighted (§3.2; ablation knob).
    pub weighting: Weighting,
    /// Base solver configuration. `order_mode` and `record_cdg` are
    /// overridden per [`BmcOptions::strategy`]; the rest (restarts, clause
    /// deletion, halving interval) applies as given.
    pub solver: SolverOptions,
    /// Optional conflict budget per depth (deterministic timeout stand-in).
    /// With several open properties, the budget applies to each property's
    /// episode at that depth.
    pub max_conflicts_per_depth: Option<u64>,
    /// Optional wall-clock deadline for the whole run.
    pub deadline: Option<Instant>,
    /// Also record cores under [`OrderingStrategy::Standard`] (for the CDG
    /// overhead measurements of §3.1; off by default to keep the baseline
    /// honest).
    pub force_record_cdg: bool,
    /// Structurally preprocess the problem before solving (on by default):
    /// constant sweeping, structural hashing, and restriction to the union
    /// of the properties' cones of influence
    /// ([`preprocess_problem`](crate::preprocess_problem)). Verdicts,
    /// retirement depths, and (lifted) traces are identical to the raw
    /// engine's; every removed node shrinks every frame of the unrolling.
    /// Turn off for differential testing against the raw encoding.
    pub preprocess: bool,
    /// Prune the session solver's conflict dependency graph at each depth
    /// boundary ([`Solver::prune_cdg`]), bounding the CDG's growth over a
    /// deep sweep. On by default; the ablation tests turn it off to measure
    /// the unpruned growth. Fresh-per-depth solvers discard their CDG with
    /// the solver and never prune.
    pub cdg_prune: bool,
    /// Run the sweep on a worker pool instead of inline — see
    /// [`ParallelConfig`] for the two sharding grains. `None` (the default)
    /// is the sequential loop. The sharding grain fixes the solver
    /// provisioning ([`ShardMode::ByProperty`](crate::ShardMode) runs one
    /// session per property, [`ShardMode::ByDepth`](crate::ShardMode) a
    /// fresh solver per instance), so [`BmcOptions::reuse`] is not consulted
    /// by parallel runs.
    pub parallel: Option<ParallelConfig>,
    /// Clause-level proof logging of every provisioned solver, and — under
    /// [`ProofMode::Check`](crate::ProofMode) — independent re-derivation of
    /// every UNSAT episode's certificate. Forces `record_cdg` (the proof
    /// hints come from the conflict dependency graph). Results land in
    /// [`BmcRun::proof`].
    pub proof: crate::ProofMode,
}

impl Default for BmcOptions {
    fn default() -> BmcOptions {
        BmcOptions {
            max_depth: 20,
            strategy: OrderingStrategy::Standard,
            reuse: SolverReuse::Session,
            weighting: Weighting::Linear,
            solver: SolverOptions::default(),
            max_conflicts_per_depth: None,
            deadline: None,
            force_record_cdg: false,
            preprocess: true,
            cdg_prune: true,
            parallel: None,
            proof: crate::ProofMode::Off,
        }
    }
}

/// Statistics of one depth's `sat_check` (the per-`k` data behind Fig. 7).
/// With several open properties, counters aggregate over every episode the
/// depth ran (one per open property).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepthStats {
    /// The unrolling depth `k`.
    pub depth: usize,
    /// Verdict at this depth: `Sat` if any property's episode was SAT,
    /// `Unknown` if a budget ran out, `Unsat` otherwise.
    pub result: SolveResult,
    /// Number of decisions (Fig. 7 left).
    pub decisions: u64,
    /// Number of implications/propagations (Fig. 7 right).
    pub implications: u64,
    /// Number of conflicts.
    pub conflicts: u64,
    /// CNF size: variables.
    pub num_vars: usize,
    /// CNF size: clauses.
    pub num_clauses: usize,
    /// Variables in the union of this depth's unsatisfiable cores (0 if SAT
    /// or untracked).
    pub core_vars: usize,
    /// Whether the dynamic configuration fell back to VSIDS at this depth.
    pub switched_to_vsids: bool,
    /// Nodes recorded in the simplified CDG (0 when recording is off).
    pub cdg_nodes: u64,
    /// Antecedent edges recorded in the simplified CDG.
    pub cdg_edges: u64,
    /// Wall-clock time of this depth's solve episodes.
    pub time: Duration,
}

/// The per-property verdict of a BMC run.
#[derive(Clone, Debug)]
pub enum PropertyVerdict {
    /// The property fails: a validated counterexample of length `depth`.
    Falsified {
        /// Length of the counterexample (bad state at this frame).
        depth: usize,
        /// The counterexample itself, validated against this property's
        /// bad-state signal.
        trace: Trace,
    },
    /// Still open: no counterexample of length `≤ depth` exists.
    OpenAt {
        /// The deepest depth this property was proven UNSAT at.
        depth: usize,
    },
    /// The property holds in **all** reachable states — an unbounded proof,
    /// not merely a bound. Produced by the proving engines
    /// ([`Ic3Engine`](crate::Ic3Engine), [`induction`](crate::induction));
    /// plain BMC never returns it.
    Proved {
        /// The frame/induction depth at which the proof converged.
        depth: usize,
        /// The inductive invariant certifying the proof, as clauses over the
        /// **working model's** latches: each inner vector is a disjunction of
        /// "latch `i` has value `b`" literals, and the conjunction of all
        /// clauses contains the initial states, is closed under the
        /// transition relation, and excludes every bad state. `None` means
        /// the proof carries no extracted invariant (k-induction);
        /// `Some(vec![])` is the trivial invariant *true* (the bad state is
        /// combinationally unsatisfiable).
        invariant_clauses: Option<Vec<Vec<(usize, bool)>>>,
    },
    /// No depth completed for this property (a resource budget ran out
    /// before its first verdict).
    Unknown,
}

impl PropertyVerdict {
    /// Whether this verdict is conclusive for the *unbounded* question — a
    /// counterexample or a proof, as opposed to a bounded or truncated
    /// answer. Portfolio racing uses this to decide whether a proving
    /// member's run may claim the race.
    pub fn is_conclusive(&self) -> bool {
        matches!(
            self,
            PropertyVerdict::Falsified { .. } | PropertyVerdict::Proved { .. }
        )
    }
}

impl fmt::Display for PropertyVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyVerdict::Falsified { depth, .. } => {
                write!(f, "falsified at depth {depth}")
            }
            PropertyVerdict::OpenAt { depth } => write!(f, "open at depth {depth}"),
            PropertyVerdict::Proved {
                depth,
                invariant_clauses,
            } => match invariant_clauses {
                Some(clauses) => write!(
                    f,
                    "proved at depth {depth} ({} invariant clauses)",
                    clauses.len()
                ),
                None => write!(f, "proved at depth {depth}"),
            },
            PropertyVerdict::Unknown => write!(f, "unknown"),
        }
    }
}

/// Per-property report of a run: the verdict plus this property's share of
/// the solver work (the per-property analog of [`DepthStats`]).
#[derive(Clone, Debug)]
pub struct PropertyReport {
    /// Property name (from the problem's property set).
    pub name: String,
    /// The verdict.
    pub verdict: PropertyVerdict,
    /// Solve episodes run for this property (one per attempted depth).
    pub episodes: u64,
    /// Episodes that ended UNSAT as a failed-assumption conflict (session
    /// runs only; fresh solvers assert the bad state as a unit instead).
    pub assumption_conflicts: u64,
    /// Decisions over this property's episodes.
    pub decisions: u64,
    /// Conflicts over this property's episodes.
    pub conflicts: u64,
    /// Propagations over this property's episodes.
    pub propagations: u64,
    /// Depth at which the property retired with a counterexample (`None`
    /// while open).
    pub retirement_depth: Option<usize>,
    /// This property's per-depth verdict sequence (index = depth). The
    /// differential gates compare these against fresh single-property runs.
    pub depth_results: Vec<SolveResult>,
}

/// The overall outcome of a BMC run — the summary over the property set.
/// Per-property verdicts live in [`BmcRun::properties`].
#[derive(Clone, Debug)]
pub enum BmcOutcome {
    /// Some property fails; this is the shallowest counterexample found
    /// (ties broken by property order). Other properties may still be open —
    /// see the per-property reports.
    Counterexample {
        /// Length of the counterexample (bad state at this frame).
        depth: usize,
        /// The counterexample itself.
        trace: Trace,
    },
    /// Every depth up to `max_depth` is UNSAT for every (non-falsified)
    /// property: no counterexample of bounded length exists (the paper's
    /// "property proven true up to the completeness threshold").
    BoundReached {
        /// The last depth proven UNSAT.
        depth_completed: usize,
    },
    /// A per-depth conflict budget or the deadline ran out at `at_depth`
    /// before any property was falsified (a found counterexample outranks a
    /// later budget exhaustion in this summary).
    ResourceOut {
        /// Depth whose solve did not finish.
        at_depth: usize,
    },
}

impl fmt::Display for BmcOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmcOutcome::Counterexample { depth, .. } => {
                write!(f, "counterexample at depth {depth}")
            }
            BmcOutcome::BoundReached { depth_completed } => {
                write!(f, "no counterexample up to depth {depth_completed}")
            }
            BmcOutcome::ResourceOut { at_depth } => {
                write!(f, "resources exhausted at depth {at_depth}")
            }
        }
    }
}

/// Summary of a finished run: outcome, per-property reports, and all
/// per-depth statistics.
#[derive(Clone, Debug)]
pub struct BmcRun {
    /// The summary verdict (single-property runs: the property's verdict).
    pub outcome: BmcOutcome,
    /// One report per property of the problem, in property order.
    pub properties: Vec<PropertyReport>,
    /// One entry per attempted depth, in order.
    pub per_depth: Vec<DepthStats>,
    /// Aggregate solver statistics over the whole run: the session solver's
    /// final counters under [`SolverReuse::Session`], the per-episode
    /// solvers' counters summed under [`SolverReuse::Fresh`]. Carries the
    /// incremental-session counters (`solve_calls`, `assumption_conflicts`,
    /// `learned_retained`) the per-depth deltas cannot express. Parallel
    /// runs sum the counters of every worker's solvers.
    pub solver_stats: SolverStats,
    /// Per-worker breakdown of a parallel run ([`BmcOptions::parallel`]), in
    /// worker order. Empty for sequential runs.
    pub workers: Vec<WorkerReport>,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Proof-logging summary, aggregated over every solver the run
    /// provisioned. `None` when [`BmcOptions::proof`] is
    /// [`ProofMode::Off`](crate::ProofMode).
    pub proof: Option<crate::ProofSummary>,
}

impl BmcRun {
    /// Sum of decisions over all depths.
    pub fn total_decisions(&self) -> u64 {
        self.per_depth.iter().map(|d| d.decisions).sum()
    }

    /// Sum of implications over all depths.
    pub fn total_implications(&self) -> u64 {
        self.per_depth.iter().map(|d| d.implications).sum()
    }

    /// Sum of conflicts over all depths.
    pub fn total_conflicts(&self) -> u64 {
        self.per_depth.iter().map(|d| d.conflicts).sum()
    }

    /// The deepest depth whose solve completed (SAT or UNSAT).
    pub fn max_completed_depth(&self) -> Option<usize> {
        self.per_depth
            .iter()
            .filter(|d| d.result != SolveResult::Unknown)
            .map(|d| d.depth)
            .max()
    }

    /// The report of a property, by name.
    pub fn property(&self, name: &str) -> Option<&PropertyReport> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// Number of falsified properties.
    pub fn num_falsified(&self) -> usize {
        self.properties
            .iter()
            .filter(|p| matches!(p.verdict, PropertyVerdict::Falsified { .. }))
            .count()
    }
}

/// Per-property live state during a run (shared with the parallel drivers).
pub(crate) struct PropState {
    pub(crate) name: String,
    pub(crate) bad: Signal,
    pub(crate) open: bool,
    pub(crate) episodes: u64,
    pub(crate) assumption_conflicts: u64,
    pub(crate) decisions: u64,
    pub(crate) conflicts: u64,
    pub(crate) propagations: u64,
    pub(crate) completed: Option<usize>,
    pub(crate) falsified: Option<(usize, Trace)>,
    pub(crate) depth_results: Vec<SolveResult>,
}

impl PropState {
    pub(crate) fn fresh(name: String, bad: Signal) -> PropState {
        PropState {
            name,
            bad,
            open: true,
            episodes: 0,
            assumption_conflicts: 0,
            decisions: 0,
            conflicts: 0,
            propagations: 0,
            completed: None,
            falsified: None,
            depth_results: Vec::new(),
        }
    }

    pub(crate) fn into_report(self) -> PropertyReport {
        let verdict = match (self.falsified, self.completed) {
            (Some((depth, trace)), _) => PropertyVerdict::Falsified { depth, trace },
            (None, Some(depth)) => PropertyVerdict::OpenAt { depth },
            (None, None) => PropertyVerdict::Unknown,
        };
        let retirement_depth = match &verdict {
            PropertyVerdict::Falsified { depth, .. } => Some(*depth),
            _ => None,
        };
        PropertyReport {
            name: self.name,
            verdict,
            episodes: self.episodes,
            assumption_conflicts: self.assumption_conflicts,
            decisions: self.decisions,
            conflicts: self.conflicts,
            propagations: self.propagations,
            retirement_depth,
            depth_results: self.depth_results,
        }
    }
}

/// The `refine_order_bmc` engine (Fig. 5), generalized to property sets.
///
/// Construct it from a single-property [`Model`] ([`BmcEngine::new`] — the
/// paper's setup, used by the figure-reproducing binaries) or from a
/// multi-property [`VerificationProblem`] ([`BmcEngine::for_problem`] — the
/// AIGER/HWMCC front door). See the [crate docs](crate) for a complete
/// example.
pub struct BmcEngine {
    /// The working model the solver sees (preprocessed when
    /// [`BmcOptions::preprocess`] is on).
    model: Model,
    /// The problem as given, when preprocessing rebuilt it (`None` means the
    /// working model *is* the original).
    original: Option<Model>,
    /// Trace map from working to original coordinates.
    lift: Option<TraceLift>,
    /// Shape accounting of the preprocessing pass.
    pp_report: Option<PreprocessReport>,
    options: BmcOptions,
    rank: VarRank,
    per_depth: Vec<DepthStats>,
    cancel: Option<CancelFlag>,
}

impl fmt::Debug for BmcEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BmcEngine")
            .field("problem", &self.model.name())
            .field("properties", &self.model.problem().num_properties())
            .field("options", &self.options)
            .field("depths_done", &self.per_depth.len())
            .finish()
    }
}

impl BmcEngine {
    /// Creates an engine for a single-property `model` with the given
    /// options. With [`BmcOptions::preprocess`] on (the default) the model
    /// is structurally reduced here, once, before any encoding — the
    /// parallel and portfolio dispatch layers all clone the engine's working
    /// model, so they inherit the reduction.
    pub fn new(model: Model, options: BmcOptions) -> BmcEngine {
        let (model, original, lift, pp_report) = if options.preprocess {
            let problem = model.into_problem();
            let pp = preprocess_problem(&problem);
            (
                Model::from_problem(pp.problem),
                Some(Model::from_problem(problem)),
                Some(pp.lift),
                Some(pp.report),
            )
        } else {
            (model, None, None, None)
        };
        BmcEngine {
            model,
            original,
            lift,
            pp_report,
            options,
            rank: VarRank::new(options.weighting),
            per_depth: Vec::new(),
            cancel: None,
        }
    }

    /// Creates an engine checking every property of `problem` in one run
    /// (one persistent session solver, one shared unrolling, per-property
    /// activation literals).
    pub fn for_problem(problem: VerificationProblem, options: BmcOptions) -> BmcEngine {
        BmcEngine::new(Model::from_problem(problem), options)
    }

    /// The model under check **as given** (the single-property view of the
    /// problem; its `bad()` is the primary property). Traces the engine
    /// returns are in this model's coordinates, whether or not
    /// preprocessing reduced the working copy.
    pub fn model(&self) -> &Model {
        self.original.as_ref().unwrap_or(&self.model)
    }

    /// The working model the solver actually encodes: the preprocessed
    /// reduction when [`BmcOptions::preprocess`] is on (and changed
    /// anything), otherwise the model as given. Its netlist sizes are the
    /// ones per-depth CNF statistics refer to.
    pub fn working_model(&self) -> &Model {
        &self.model
    }

    /// The full problem under check, as given.
    pub fn problem(&self) -> &VerificationProblem {
        self.model().problem()
    }

    /// Shape accounting of the preprocessing pass (`None` when
    /// [`BmcOptions::preprocess`] is off).
    pub fn preprocess_report(&self) -> Option<&PreprocessReport> {
        self.pp_report.as_ref()
    }

    /// The trace map from working to original coordinates (`None` when
    /// preprocessing is off). Witness printers use its don't-care masks to
    /// emit `x` for state no property can observe.
    pub fn trace_lift(&self) -> Option<&TraceLift> {
        self.lift.as_ref()
    }

    /// The accumulated `varRank` (inspect after a run).
    pub fn rank(&self) -> &VarRank {
        &self.rank
    }

    /// Attaches a cooperative cancellation flag. Once
    /// [`CancelFlag::cancel`] is raised, every in-flight solve episode
    /// returns [`SolveResult::Unknown`] at its next budget checkpoint and
    /// the run truncates through the [`BmcOutcome::ResourceOut`] path — the
    /// same committed-partial-run semantics a conflict budget produces.
    /// Portfolio racing uses this to cut losers off mid-depth.
    pub fn set_cancel(&mut self, cancel: CancelFlag) {
        self.cancel = Some(cancel);
    }

    /// The attached cancellation flag, if any (the parallel drivers thread
    /// it into every worker's limits).
    pub(crate) fn cancel_flag(&self) -> Option<&CancelFlag> {
        self.cancel.as_ref()
    }

    /// Runs the loop of Fig. 5 and returns only the summary outcome.
    pub fn run(&mut self) -> BmcOutcome {
        self.run_collecting().outcome
    }

    /// Runs the loop of Fig. 5 over every property, collecting per-depth and
    /// per-property statistics. With [`BmcOptions::parallel`] set, the sweep
    /// is dispatched onto a scoped worker pool instead (see
    /// [`ParallelConfig`] for the determinism contract).
    pub fn run_collecting(&mut self) -> BmcRun {
        let mut run = if let Some(config) = self.options.parallel {
            parallel::run_parallel(self, config)
        } else {
            self.run_sequential()
        };
        // Peak varRank storage. The table only ever shrinks on a
        // LastOnly-weighting reset, whose next update immediately refills it
        // with the newest core, so the post-run size is the high-water mark.
        let stats = &mut run.solver_stats;
        stats.rank_peak_entries = stats.rank_peak_entries.max(self.rank.num_entries() as u64);
        stats.rank_peak_bytes = stats.rank_peak_bytes.max(self.rank.approx_bytes() as u64);
        // Lift traces out of the working model's coordinates: callers only
        // ever see the problem they posed.
        if let Some(lift) = self.lift.as_ref().filter(|l| !l.is_identity()) {
            if let BmcOutcome::Counterexample { trace, .. } = &mut run.outcome {
                *trace = lift.lift(trace);
            }
            for prop in &mut run.properties {
                if let PropertyVerdict::Falsified { trace, .. } = &mut prop.verdict {
                    *trace = lift.lift(trace);
                }
            }
        }
        run
    }

    /// The inline (non-parallel) loop of Fig. 5, in working-model
    /// coordinates — [`BmcEngine::run_collecting`] lifts its traces.
    fn run_sequential(&mut self) -> BmcRun {
        let run_start = Instant::now();
        let unroller = Unroller::new(&self.model);
        let mut props: Vec<PropState> = self
            .model
            .problem()
            .properties()
            .iter()
            .map(|p| PropState::fresh(p.name().to_string(), p.bad()))
            .collect();
        let num_props = props.len();
        // The persistent solver of a session run (frames appended per depth).
        let mut session: Option<Solver> = match self.options.reuse {
            SolverReuse::Session => Some(Solver::with_options(self.solver_options())),
            SolverReuse::Fresh => None,
        };
        // Proof sink of the session solver (attached before any clause), and
        // the running aggregate over every solver the run provisions.
        let mut session_certifier = session
            .as_mut()
            .and_then(|s| EpisodeCertifier::attach(self.options.proof, s));
        let mut proof_acc: Option<crate::ProofSummary> = None;
        let mut aggregate = SolverStats::new();
        let mut first_falsified: Option<usize> = None;
        let mut resource_out: Option<usize> = None;
        let mut depth_completed = 0usize;
        'depths: for k in 0..=self.options.max_depth {
            let depth_start = Instant::now();
            let limits = self.depth_limits();
            // gen_cnf_formula(M, P, k): the unroller only ever encodes the
            // one new frame; the session solver consumes exactly that delta
            // once per depth, fresh solvers replay the cached prefix per
            // episode. sat_check(F, varRank) is one solve episode per open
            // property.
            if let Some(solver) = session.as_mut() {
                unroller.with_frame_delta(k, |clauses| {
                    for clause in clauses {
                        solver.add_clause(clause.lits());
                    }
                });
                // Bounded prefix mode: the persistent solver now holds this
                // frame for the rest of the run, so the cache copy is pure
                // duplication — drop it and keep the cache at one frame
                // instead of `max_depth`. (Fresh-per-depth runs reload the
                // whole prefix per episode and never retire.)
                unroller.retire_frames_through(k);
            }
            let mut depth = DepthStats {
                depth: k,
                result: SolveResult::Unsat,
                decisions: 0,
                implications: 0,
                conflicts: 0,
                num_vars: unroller.num_vars_at(k),
                num_clauses: 0,
                core_vars: 0,
                switched_to_vsids: false,
                cdg_nodes: 0,
                cdg_edges: 0,
                time: Duration::ZERO,
            };
            // The paper's unsatVars: union of the open properties' cores at
            // this depth, deduplicated before the ranking update.
            let mut core_union: Vec<rbmc_cnf::Var> = Vec::new();
            let mut ranking_installed = false;
            // Indexing instead of iterating: the episode needs simultaneous
            // `&mut props[p_idx]` mutation and whole-`props` reads while the
            // session solver stays mutably borrowed.
            #[allow(clippy::needless_range_loop)]
            for p_idx in 0..num_props {
                if !props[p_idx].open {
                    continue;
                }
                let bad = props[p_idx].bad;
                let mut fresh: Option<Solver> = None;
                let mut fresh_certifier: Option<EpisodeCertifier> = None;
                let (solver, result, base) = match session.as_mut() {
                    Some(solver) => {
                        let base = solver.stats().clone();
                        // a_{p,k} → bad_p^k; a_{p,k} is assumed for this
                        // episode only.
                        let act =
                            Self::activation_lit(&unroller, &self.options, num_props, k, p_idx);
                        solver.add_clause(&[!act, unroller.lit_of(bad, k)]);
                        if !ranking_installed {
                            self.install_ranking(solver, &unroller, k);
                            ranking_installed = true;
                        }
                        let result = solver.solve_under_limited(&[act], &limits);
                        (&mut *solver, result, base)
                    }
                    None => {
                        let (provisioned, certifier) = self.fresh_solver(&unroller, k, bad);
                        fresh_certifier = certifier;
                        let solver = fresh.insert(provisioned);
                        let result = solver.solve_limited(&limits);
                        (&mut *solver, result, SolverStats::new())
                    }
                };
                let stats = solver.stats();
                let prop = &mut props[p_idx];
                prop.episodes += 1;
                prop.decisions += stats.decisions - base.decisions;
                prop.conflicts += stats.conflicts - base.conflicts;
                prop.propagations += stats.propagations - base.propagations;
                prop.depth_results.push(result);
                depth.decisions += stats.decisions - base.decisions;
                depth.implications += stats.propagations - base.propagations;
                depth.conflicts += stats.conflicts - base.conflicts;
                depth.cdg_nodes += stats.cdg_nodes - base.cdg_nodes;
                depth.cdg_edges += stats.cdg_edges - base.cdg_edges;
                depth.num_clauses = solver.num_original_clauses();
                depth.switched_to_vsids |= stats.switched_to_vsids;
                match result {
                    SolveResult::Sat => {
                        depth.result = SolveResult::Sat;
                        let assignment = solver.model().expect("model after SAT");
                        let trace = Trace::from_assignment(&unroller, assignment, k);
                        debug_assert!(
                            trace.validate_against(self.model.netlist(), bad).is_ok(),
                            "solver returned an invalid counterexample for `{}`",
                            props[p_idx].name
                        );
                        props[p_idx].falsified = Some((k, trace));
                        props[p_idx].open = false;
                        first_falsified = first_falsified.or(Some(p_idx));
                        if let Some(solver) = session.as_mut() {
                            // Retire the activation literal: the property
                            // leaves the sweep, so its bad-state clause must
                            // never constrain later episodes.
                            let act =
                                Self::activation_lit(&unroller, &self.options, num_props, k, p_idx);
                            solver.add_clause(&[!act]);
                        }
                    }
                    SolveResult::Unsat => {
                        // This property's share of the paper's unsatVars,
                        // filtered to the frame-stable model variables (a
                        // session core may also cite activation literals).
                        core_union.extend(self.core_model_vars(solver, &unroller, k));
                        props[p_idx].completed = Some(k);
                        if let Some(solver) = session.as_mut() {
                            // Retire this depth's activation literal for
                            // good: the a_{p,k} → bad_p^k clause is satisfied
                            // forever, and clause-database reduction reclaims
                            // everything learned against a_{p,k}.
                            let act =
                                Self::activation_lit(&unroller, &self.options, num_props, k, p_idx);
                            solver.add_clause(&[!act]);
                            props[p_idx].assumption_conflicts += 1;
                        }
                        // Certify the episode's UNSAT verdict against its
                        // just-recorded final clause.
                        if let Some(cert) = session_certifier.as_mut().or(fresh_certifier.as_mut())
                        {
                            cert.observe_unsat();
                        }
                    }
                    SolveResult::Unknown => {
                        depth.result = SolveResult::Unknown;
                        resource_out = Some(k);
                    }
                }
                if let Some(f) = fresh.as_ref() {
                    aggregate.accumulate(f.stats());
                }
                certify::merge_opt(
                    &mut proof_acc,
                    fresh_certifier.map(EpisodeCertifier::into_summary),
                );
                if resource_out.is_some() {
                    break;
                }
            }
            // update_ranking(unsatVars, varRank) — the union over this
            // depth's UNSAT episodes.
            core_union.sort_unstable();
            core_union.dedup();
            depth.core_vars = core_union.len();
            if self.options.strategy.needs_cores() && !core_union.is_empty() {
                self.rank.update(&core_union, k);
            }
            depth.time = depth_start.elapsed();
            self.per_depth.push(depth);
            // Depth boundary: the ¬a_{p,k} retirements above have just cut a
            // batch of learned clauses loose; drop the CDG nodes nothing
            // live can reach any more (bounds session memory on deep
            // sweeps). IDs are opaque and cores cite input positions, so
            // search behaviour and future cores are unchanged.
            if self.options.cdg_prune {
                if let Some(solver) = session.as_mut() {
                    solver.prune_cdg();
                }
            }
            // Depth boundary, `debug-invariants` builds: full structural
            // audit of the session solver (watches, trail, arena, CDG) and
            // of the rank table's sparse/dense agreement.
            #[cfg(feature = "debug-invariants")]
            {
                if let Some(solver) = session.as_ref() {
                    solver.audit().expect("solver invariants at depth boundary");
                    certify::audit_proof_coherence(solver)
                        .expect("proof-log coherence at depth boundary");
                }
                self.rank
                    .audit()
                    .expect("rank-table invariants at depth boundary");
            }
            if resource_out.is_some() {
                break 'depths;
            }
            depth_completed = k;
            if props.iter().all(|p| !p.open) {
                break 'depths;
            }
        }
        if let Some(solver) = session.as_ref() {
            aggregate = solver.stats().clone();
        }
        certify::merge_opt(
            &mut proof_acc,
            session_certifier.map(EpisodeCertifier::into_summary),
        );
        aggregate.prefix_peak_clauses = unroller.peak_cached_clauses() as u64;
        let outcome = match (resource_out, first_falsified) {
            // A definite counterexample outranks a later budget exhaustion:
            // the summary keeps its documented meaning (some property fails),
            // and the per-property reports still record who ran out.
            (_, Some(p_idx)) => {
                let (depth, trace) = props[p_idx].falsified.clone().expect("falsified recorded");
                BmcOutcome::Counterexample { depth, trace }
            }
            (Some(at_depth), None) => BmcOutcome::ResourceOut { at_depth },
            (None, None) => BmcOutcome::BoundReached { depth_completed },
        };
        BmcRun {
            outcome,
            properties: props.into_iter().map(PropState::into_report).collect(),
            per_depth: std::mem::take(&mut self.per_depth),
            solver_stats: aggregate,
            workers: Vec::new(),
            total_time: run_start.elapsed(),
            proof: proof_acc,
        }
    }

    /// The engine's run configuration (the parallel drivers read it).
    pub(crate) fn opts(&self) -> &BmcOptions {
        &self.options
    }

    /// Mutable access to the accumulated `varRank` (the parallel drivers
    /// install the commit-order merged table through this).
    pub(crate) fn rank_mut(&mut self) -> &mut VarRank {
        &mut self.rank
    }

    /// The solver configuration the strategy dictates: `order_mode` and
    /// `record_cdg` are derived, the rest is taken from
    /// [`BmcOptions::solver`].
    fn solver_options(&self) -> SolverOptions {
        strategy_solver_options(&self.options)
    }

    /// The activation literal of property `p_idx` at depth `k` in a session
    /// run. Activation variables live **above** the whole unrolling's
    /// variable range (`num_vars_at(max_depth)`), so they can never collide
    /// with the frame-stable model variables of any depth the run will
    /// reach; each depth owns one consecutive block of `num_props` of them.
    pub(crate) fn activation_lit(
        unroller: &Unroller<'_>,
        options: &BmcOptions,
        num_props: usize,
        k: usize,
        p_idx: usize,
    ) -> Lit {
        rbmc_cnf::Var::new(unroller.num_vars_at(options.max_depth) + k * num_props + p_idx)
            .positive()
    }

    /// Installs the strategy's ranking for the depth-`k` episodes (the
    /// paper's per-depth `varRank` refresh; re-seedable on a live solver).
    fn install_ranking(&self, solver: &mut Solver, unroller: &Unroller<'_>, k: usize) {
        install_strategy_ranking(
            self.options.strategy,
            &self.rank.snapshot(),
            solver,
            unroller,
            k,
        );
    }

    /// Builds the paper's per-depth solver (the [`SolverReuse::Fresh`]
    /// differential path): loads `F_k` from the unroller's cached clause
    /// prefix plus the depth-`k` bad-state unit of one property — no
    /// activation literals, no assumptions — then installs the strategy's
    /// ranking. The proof certifier (attached before any clause) rides
    /// along when [`BmcOptions::proof`] is on.
    fn fresh_solver(
        &self,
        unroller: &Unroller<'_>,
        k: usize,
        bad: Signal,
    ) -> (Solver, Option<EpisodeCertifier>) {
        let mut solver = Solver::with_options(self.solver_options());
        let certifier = EpisodeCertifier::attach(self.options.proof, &mut solver);
        solver.reserve_vars(unroller.num_vars_at(k));
        unroller.with_prefix(k, |clauses| {
            for clause in clauses {
                solver.add_clause(clause.lits());
            }
        });
        solver.add_clause(&[unroller.lit_of(bad, k)]);
        self.install_ranking(&mut solver, unroller, k);
        (solver, certifier)
    }

    /// The model variables (frame-stable, `< num_vars_at(k)`) of the last
    /// UNSAT verdict's core. Activation variables are filtered out: they are
    /// bookkeeping of the session encoding, not part of the paper's
    /// `unsatVars`.
    fn core_model_vars(
        &self,
        solver: &Solver,
        unroller: &Unroller<'_>,
        k: usize,
    ) -> Vec<rbmc_cnf::Var> {
        core_model_vars(solver, unroller.num_vars_at(k))
    }

    fn depth_limits(&self) -> Limits {
        depth_limits(&self.options, self.cancel.as_ref())
    }
}

/// The solver configuration [`BmcOptions`] dictate: `order_mode` and
/// `record_cdg` are derived from the strategy, the rest is taken from
/// [`BmcOptions::solver`] (shared by the sequential engine and the parallel
/// workers, so every provisioned solver is configured identically).
pub(crate) fn strategy_solver_options(options: &BmcOptions) -> SolverOptions {
    let mut opts = options.solver;
    opts.order_mode = match options.strategy {
        OrderingStrategy::Standard => OrderMode::Standard,
        OrderingStrategy::RefinedStatic | OrderingStrategy::Shtrichman => OrderMode::Static,
        OrderingStrategy::RefinedDynamic { divisor } => OrderMode::Dynamic { divisor },
    };
    opts.record_cdg =
        options.strategy.needs_cores() || options.force_record_cdg || options.proof.is_on();
    opts
}

/// The per-depth resource limits [`BmcOptions`] dictate, with the engine's
/// cancellation flag (if any) attached so mid-depth cancellation surfaces
/// through the same [`SolveResult::Unknown`] truncation path as a budget.
pub(crate) fn depth_limits(options: &BmcOptions, cancel: Option<&CancelFlag>) -> Limits {
    let mut limits = Limits::new();
    if let Some(n) = options.max_conflicts_per_depth {
        limits = limits.with_max_conflicts(n);
    }
    if let Some(deadline) = options.deadline {
        limits = limits.with_deadline(deadline);
    }
    if let Some(cancel) = cancel {
        limits = limits.with_cancel(cancel.clone());
    }
    limits
}

/// Installs the ranking `strategy` dictates for a depth-`k` episode on
/// `solver`: nothing for Chaff's baseline, the time-axis table for
/// Shtrichman, and the supplied `varRank` slice for the refined modes. The
/// sequential engine and the parallel workers share this so a worker's
/// episode sees exactly the ranking its sequential twin would.
pub(crate) fn install_strategy_ranking(
    strategy: OrderingStrategy,
    rank: &[u64],
    solver: &mut Solver,
    unroller: &Unroller<'_>,
    k: usize,
) {
    match strategy {
        OrderingStrategy::Standard => {}
        OrderingStrategy::Shtrichman => {
            solver.set_var_ranking(&shtrichman_rank(unroller, k));
        }
        _ => solver.set_var_ranking(rank),
    }
}

/// The model variables (frame-stable, `< bound`) of the solver's last UNSAT
/// core — the paper's `unsatVars`, with session bookkeeping (activation
/// variables, which live above the unrolling's range) filtered out.
pub(crate) fn core_model_vars(solver: &Solver, bound: usize) -> Vec<rbmc_cnf::Var> {
    solver
        .core_vars()
        .unwrap_or_default()
        .into_iter()
        .filter(|v| v.index() < bound)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{check_reachable, OracleVerdict};
    use crate::ProblemBuilder;
    use rbmc_circuit::{LatchInit, Netlist, Signal};

    fn counter_model(width: usize, target: u64) -> Model {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let bad = n.bus_eq_const(&bits, target);
        Model::new("counter", n, bad)
    }

    /// Counter with one property per target: `reach_t` is falsified exactly
    /// at depth `t` (for a `width`-bit counter starting at zero).
    fn counter_problem(width: usize, targets: &[u64]) -> VerificationProblem {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let props: Vec<(String, Signal)> = targets
            .iter()
            .map(|&t| (format!("reach_{t}"), n.bus_eq_const(&bits, t)))
            .collect();
        let mut builder = ProblemBuilder::new("multi_counter", n);
        for (name, sig) in props {
            builder = builder.property(&name, sig);
        }
        builder.build()
    }

    fn all_strategies() -> Vec<OrderingStrategy> {
        vec![
            OrderingStrategy::Standard,
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::RefinedDynamic { divisor: 64 },
            OrderingStrategy::Shtrichman,
        ]
    }

    #[test]
    fn finds_counterexample_at_oracle_depth() {
        let model = counter_model(4, 11);
        let expected = check_reachable(&model, 20);
        assert_eq!(expected, OracleVerdict::FailsAt(11));
        for strategy in all_strategies() {
            let mut engine = BmcEngine::new(
                counter_model(4, 11),
                BmcOptions {
                    max_depth: 20,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            match engine.run() {
                BmcOutcome::Counterexample { depth, trace } => {
                    assert_eq!(depth, 11, "{strategy:?}");
                    assert!(trace.validate(engine.model()).is_ok(), "{strategy:?}");
                }
                other => panic!("{strategy:?}: expected cex, got {other:?}"),
            }
        }
    }

    #[test]
    fn passing_property_reaches_bound() {
        // 3-bit counter never equals 12.
        let model = counter_model(3, 12);
        for strategy in all_strategies() {
            let mut engine = BmcEngine::new(
                model.clone(),
                BmcOptions {
                    max_depth: 12,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            match engine.run() {
                BmcOutcome::BoundReached { depth_completed } => {
                    assert_eq!(depth_completed, 12, "{strategy:?}");
                }
                other => panic!("{strategy:?}: expected bound reached, got {other:?}"),
            }
        }
    }

    #[test]
    fn refined_strategies_accumulate_rank() {
        let model = counter_model(4, 9);
        let mut engine = BmcEngine::new(
            model,
            BmcOptions {
                max_depth: 9,
                strategy: OrderingStrategy::RefinedStatic,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        assert!(matches!(
            run.outcome,
            BmcOutcome::Counterexample { depth: 9, .. }
        ));
        // Nine UNSAT instances were consumed (k = 0..8).
        assert_eq!(engine.rank().num_updates(), 9);
        assert!(engine.rank().num_ranked() > 0);
    }

    #[test]
    fn per_depth_stats_are_complete() {
        let model = counter_model(3, 5);
        let mut engine = BmcEngine::new(
            model,
            BmcOptions {
                max_depth: 10,
                strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        // Depths 0..=5 attempted; 5 is SAT.
        assert_eq!(run.per_depth.len(), 6);
        for (i, d) in run.per_depth.iter().enumerate() {
            assert_eq!(d.depth, i);
            assert!(d.num_vars > 0 && d.num_clauses > 0);
            let expected = if i == 5 {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(d.result, expected);
        }
        // An input-free counter is fully determined by propagation, so
        // decisions may legitimately be zero; implications never are.
        assert!(run.total_implications() > 0);
        assert_eq!(run.max_completed_depth(), Some(5));
    }

    #[test]
    fn conflict_budget_reports_resource_out() {
        // Fresh mode: with a zero conflict budget, the UNSAT depths of the
        // input-free counter still complete (level-0 propagation refutes
        // them before the budget is consulted), but the SAT depth hits the
        // budget check in the decision loop and reports ResourceOut there.
        let model = counter_model(3, 5);
        let mut engine = BmcEngine::new(
            model.clone(),
            BmcOptions {
                max_depth: 12,
                strategy: OrderingStrategy::Standard,
                reuse: SolverReuse::Fresh,
                max_conflicts_per_depth: Some(0),
                ..BmcOptions::default()
            },
        );
        match engine.run() {
            BmcOutcome::ResourceOut { at_depth } => assert_eq!(at_depth, 5),
            other => panic!("expected resource-out, got {other:?}"),
        }
        // Session mode asserts the bad state through an assumed activation
        // literal, so even depth 0 needs one pseudo-decision — which a zero
        // budget forbids: ResourceOut immediately, and the property reports
        // Unknown (no depth completed).
        let mut engine = BmcEngine::new(
            model,
            BmcOptions {
                max_depth: 12,
                strategy: OrderingStrategy::Standard,
                reuse: SolverReuse::Session,
                max_conflicts_per_depth: Some(0),
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        match &run.outcome {
            BmcOutcome::ResourceOut { at_depth } => assert_eq!(*at_depth, 0),
            other => panic!("expected resource-out, got {other:?}"),
        }
        assert!(matches!(
            run.properties[0].verdict,
            PropertyVerdict::Unknown
        ));
    }

    #[test]
    fn session_and_fresh_agree_per_depth() {
        // Same model, both reuse modes, every strategy: identical per-depth
        // verdict sequences and identical counterexample depth.
        for target in [5u64, 12] {
            let model = counter_model(4, target);
            for strategy in all_strategies() {
                let mut runs = Vec::new();
                for reuse in [SolverReuse::Fresh, SolverReuse::Session] {
                    let mut engine = BmcEngine::new(
                        model.clone(),
                        BmcOptions {
                            max_depth: 14,
                            strategy,
                            reuse,
                            ..BmcOptions::default()
                        },
                    );
                    runs.push(engine.run_collecting());
                }
                let verdicts = |run: &BmcRun| -> Vec<SolveResult> {
                    run.per_depth.iter().map(|d| d.result).collect()
                };
                assert_eq!(
                    verdicts(&runs[0]),
                    verdicts(&runs[1]),
                    "{strategy:?} target {target}"
                );
            }
        }
    }

    #[test]
    fn session_run_reports_incremental_stats() {
        let model = counter_model(4, 11);
        let mut engine = BmcEngine::new(
            model,
            BmcOptions {
                max_depth: 20,
                strategy: OrderingStrategy::RefinedStatic,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        assert!(matches!(
            run.outcome,
            BmcOutcome::Counterexample { depth: 11, .. }
        ));
        let stats = &run.solver_stats;
        // One solve episode per attempted depth (0..=11).
        assert_eq!(stats.solve_calls, 12);
        // Every UNSAT depth ended as a failed-assumption conflict.
        assert_eq!(stats.assumption_conflicts, 11);
        // The per-property report carries the same counters.
        assert_eq!(run.properties.len(), 1);
        assert_eq!(run.properties[0].episodes, 12);
        assert_eq!(run.properties[0].assumption_conflicts, 11);
        assert_eq!(run.properties[0].retirement_depth, Some(11));
        // Fresh mode never reports incremental counters.
        let mut engine = BmcEngine::new(
            counter_model(4, 11),
            BmcOptions {
                max_depth: 20,
                strategy: OrderingStrategy::RefinedStatic,
                reuse: SolverReuse::Fresh,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        assert_eq!(run.solver_stats.assumption_conflicts, 0);
        assert_eq!(run.solver_stats.learned_retained, 0);
        // Each fresh solver counts its single episode.
        assert_eq!(run.solver_stats.solve_calls, 12);
        assert_eq!(run.properties[0].assumption_conflicts, 0);
    }

    #[test]
    fn multi_property_session_retires_individually() {
        // Three targets: falsified at depths 3 and 9; 4-bit counter wraps at
        // 16, so with max_depth 12 target 14 stays open.
        let problem = counter_problem(4, &[3, 14, 9]);
        for strategy in all_strategies() {
            let mut engine = BmcEngine::for_problem(
                counter_problem(4, &[3, 14, 9]),
                BmcOptions {
                    max_depth: 12,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            let run = engine.run_collecting();
            assert_eq!(run.properties.len(), 3, "{strategy:?}");
            match &run.property("reach_3").unwrap().verdict {
                PropertyVerdict::Falsified { depth, trace } => {
                    assert_eq!(*depth, 3, "{strategy:?}");
                    assert!(trace
                        .validate_against(problem.netlist(), problem.property(0).bad())
                        .is_ok());
                }
                other => panic!("{strategy:?}: reach_3 expected falsified, got {other}"),
            }
            match &run.property("reach_9").unwrap().verdict {
                PropertyVerdict::Falsified { depth, .. } => assert_eq!(*depth, 9),
                other => panic!("{strategy:?}: reach_9 expected falsified, got {other}"),
            }
            match &run.property("reach_14").unwrap().verdict {
                PropertyVerdict::OpenAt { depth } => assert_eq!(*depth, 12),
                other => panic!("{strategy:?}: reach_14 expected open, got {other}"),
            }
            // Summary outcome is the shallowest counterexample.
            assert!(
                matches!(run.outcome, BmcOutcome::Counterexample { depth: 3, .. }),
                "{strategy:?}"
            );
            assert_eq!(run.num_falsified(), 2);
            // Retired properties stop consuming episodes: reach_3 ran
            // depths 0..=3 only.
            assert_eq!(run.property("reach_3").unwrap().episodes, 4);
            assert_eq!(run.property("reach_14").unwrap().episodes, 13);
        }
    }

    #[test]
    fn multi_property_session_matches_fresh_single_property_runs() {
        // The acceptance gate: per-depth verdicts of one multi-property
        // session run equal those of per-property fresh-per-depth runs.
        let targets: &[u64] = &[5, 11, 13];
        for strategy in all_strategies() {
            let mut engine = BmcEngine::for_problem(
                counter_problem(4, targets),
                BmcOptions {
                    max_depth: 12,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            let session_run = engine.run_collecting();
            for (i, &t) in targets.iter().enumerate() {
                let mut fresh_engine = BmcEngine::new(
                    counter_model(4, t),
                    BmcOptions {
                        max_depth: 12,
                        strategy,
                        reuse: SolverReuse::Fresh,
                        ..BmcOptions::default()
                    },
                );
                let fresh_run = fresh_engine.run_collecting();
                let fresh_verdicts: Vec<SolveResult> =
                    fresh_run.per_depth.iter().map(|d| d.result).collect();
                assert_eq!(
                    session_run.properties[i].depth_results, fresh_verdicts,
                    "{strategy:?} target {t}"
                );
            }
        }
    }

    #[test]
    fn all_properties_falsified_ends_run_early() {
        let mut engine = BmcEngine::for_problem(
            counter_problem(4, &[2, 4]),
            BmcOptions {
                max_depth: 15,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        // The sweep stops at depth 4 (last property retired), not 15.
        assert_eq!(run.per_depth.len(), 5);
        assert_eq!(run.num_falsified(), 2);
        assert!(matches!(
            run.outcome,
            BmcOutcome::Counterexample { depth: 2, .. }
        ));
    }

    #[test]
    fn outcome_display_is_informative() {
        let model = counter_model(3, 5);
        let mut engine = BmcEngine::new(model, BmcOptions::default());
        let outcome = engine.run();
        assert!(outcome.to_string().contains("depth 5"));
        assert!(PropertyVerdict::OpenAt { depth: 7 }
            .to_string()
            .contains("open at depth 7"));
    }
}
