//! Counterexample traces and their validation.

use std::error::Error;
use std::fmt;

use rbmc_circuit::sim::{read_signal, Simulator};

use crate::{Model, Unroller};

/// A counterexample to an invariant: an initial register state and an input
/// vector per frame, ending in a frame where the bad signal holds.
///
/// # Examples
///
/// ```
/// use rbmc_circuit::{LatchInit, Netlist};
/// use rbmc_core::{BmcEngine, BmcOptions, BmcOutcome, Model};
///
/// let mut n = Netlist::new();
/// let t = n.add_latch("t", LatchInit::Zero);
/// n.set_next(t, !t);
/// let model = Model::new("toggle", n, t);
/// let mut engine = BmcEngine::new(model, BmcOptions { max_depth: 4, ..Default::default() });
/// if let BmcOutcome::Counterexample { trace, .. } = engine.run() {
///     assert_eq!(trace.depth(), 1);
///     assert!(trace.validate(engine.model()).is_ok());
/// } else {
///     panic!("toggle reaches 1 at depth 1");
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    initial_state: Vec<bool>,
    inputs: Vec<Vec<bool>>,
}

/// Why a trace failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The initial state disagrees with a latch's declared reset value.
    BadInitialState {
        /// Index into [`rbmc_circuit::Netlist::latches`].
        latch_index: usize,
    },
    /// Replaying the trace does not make the bad signal true at the final
    /// frame.
    BadNotReached,
    /// The trace's vector sizes do not match the model.
    ShapeMismatch,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadInitialState { latch_index } => {
                write!(
                    f,
                    "initial value of latch {latch_index} contradicts its reset"
                )
            }
            TraceError::BadNotReached => {
                write!(f, "replay does not reach a bad state at the final frame")
            }
            TraceError::ShapeMismatch => write!(f, "trace shape does not match the model"),
        }
    }
}

impl Error for TraceError {}

impl Trace {
    /// Builds a trace from raw parts (mainly for tests; BMC produces traces
    /// via [`Trace::from_assignment`]).
    pub fn from_parts(initial_state: Vec<bool>, inputs: Vec<Vec<bool>>) -> Trace {
        Trace {
            initial_state,
            inputs,
        }
    }

    /// Extracts the trace from a satisfying assignment of `F_k`.
    pub fn from_assignment(unroller: &Unroller<'_>, assignment: &[bool], depth: usize) -> Trace {
        Trace {
            initial_state: unroller.initial_state_from(assignment),
            inputs: (0..=depth)
                .map(|f| unroller.inputs_at_from(assignment, f))
                .collect(),
        }
    }

    /// The counterexample length `k` (bad state reached at frame `k`).
    pub fn depth(&self) -> usize {
        self.inputs.len().saturating_sub(1)
    }

    /// The initial register state (in latch order).
    pub fn initial_state(&self) -> &[bool] {
        &self.initial_state
    }

    /// The input vectors, one per frame `0..=depth` (in input order).
    pub fn inputs(&self) -> &[Vec<bool>] {
        &self.inputs
    }

    /// Replays the trace on the simulator and checks that it is a genuine
    /// counterexample: consistent with the reset values, and driving the
    /// model into a bad state at the final frame.
    ///
    /// For a multi-property [`VerificationProblem`](crate::VerificationProblem),
    /// validate against the falsified property's own signal with
    /// [`Trace::validate_against`]; this method checks the model's primary
    /// property.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] describing the first inconsistency.
    pub fn validate(&self, model: &Model) -> Result<(), TraceError> {
        self.validate_against(model.netlist(), model.bad())
    }

    /// [`Trace::validate`] against an explicit netlist and bad-state signal
    /// (one property of a multi-property problem).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] describing the first inconsistency.
    pub fn validate_against(
        &self,
        netlist: &rbmc_circuit::Netlist,
        bad: rbmc_circuit::Signal,
    ) -> Result<(), TraceError> {
        if self.initial_state.len() != netlist.num_latches() || self.inputs.is_empty() {
            return Err(TraceError::ShapeMismatch);
        }
        for (i, (&id, &value)) in netlist
            .latches()
            .iter()
            .zip(&self.initial_state)
            .enumerate()
        {
            use rbmc_circuit::{LatchInit, Node};
            if let Node::Latch { init, .. } = netlist.node(id) {
                let consistent = match init {
                    LatchInit::Zero => !value,
                    LatchInit::One => value,
                    LatchInit::Free => true,
                };
                if !consistent {
                    return Err(TraceError::BadInitialState { latch_index: i });
                }
            }
        }
        let mut sim = Simulator::with_state(netlist, self.initial_state.clone());
        for (frame, inputs) in self.inputs.iter().enumerate() {
            if inputs.len() != netlist.num_inputs() {
                return Err(TraceError::ShapeMismatch);
            }
            let values = sim.frame_values(inputs);
            let bad_holds = read_signal(&values, bad);
            if frame == self.depth() {
                if !bad_holds {
                    return Err(TraceError::BadNotReached);
                }
            } else {
                sim.step(inputs);
            }
        }
        Ok(())
    }

    /// Pretty-prints the trace as one line per frame (registers then inputs
    /// as 0/1 strings), for the examples and diagnostics.
    pub fn render(&self, model: &Model) -> String {
        let netlist = model.netlist();
        let mut out = String::new();
        let mut sim = Simulator::with_state(netlist, self.initial_state.clone());
        for (frame, inputs) in self.inputs.iter().enumerate() {
            let state: String = sim
                .state()
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect();
            let ins: String = inputs.iter().map(|&b| if b { '1' } else { '0' }).collect();
            let values = sim.frame_values(inputs);
            let bad = read_signal(&values, model.bad());
            out.push_str(&format!(
                "frame {frame:>3}: state={state} inputs={ins}{}\n",
                if bad { "  <- bad" } else { "" }
            ));
            sim.step(inputs);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_circuit::{LatchInit, Netlist};

    /// Toggle latch; bad when it is 1 — fails at depth 1.
    fn toggle_model() -> Model {
        let mut n = Netlist::new();
        let t = n.add_latch("t", LatchInit::Zero);
        n.set_next(t, !t);
        Model::new("toggle", n, t)
    }

    #[test]
    fn valid_trace_accepted() {
        let model = toggle_model();
        let trace = Trace::from_parts(vec![false], vec![vec![], vec![]]);
        assert_eq!(trace.depth(), 1);
        assert!(trace.validate(&model).is_ok());
    }

    #[test]
    fn wrong_initial_state_rejected() {
        let model = toggle_model();
        let trace = Trace::from_parts(vec![true], vec![vec![]]);
        assert_eq!(
            trace.validate(&model),
            Err(TraceError::BadInitialState { latch_index: 0 })
        );
    }

    #[test]
    fn non_failing_trace_rejected() {
        let model = toggle_model();
        // At depth 0 the toggle is still 0: not a counterexample.
        let trace = Trace::from_parts(vec![false], vec![vec![]]);
        assert_eq!(trace.validate(&model), Err(TraceError::BadNotReached));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let model = toggle_model();
        let trace = Trace::from_parts(vec![false, true], vec![vec![]]);
        assert_eq!(trace.validate(&model), Err(TraceError::ShapeMismatch));
        let empty = Trace::from_parts(vec![false], vec![]);
        assert_eq!(empty.validate(&model), Err(TraceError::ShapeMismatch));
    }

    #[test]
    fn render_marks_bad_frame() {
        let model = toggle_model();
        let trace = Trace::from_parts(vec![false], vec![vec![], vec![]]);
        let text = trace.render(&model);
        assert!(text.contains("frame   1"));
        assert!(text.contains("<- bad"));
    }
}
