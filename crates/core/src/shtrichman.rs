//! Shtrichman's time-axis static ordering (related work, CAV 2000).
//!
//! Shtrichman viewed the unrolled BMC instance as a circuit on a plane whose
//! x-axis is the time frames and whose y-axis is the registers, and sorted
//! the decision variables by their position on the *time* axis (a BFS over
//! the variable dependency graph starting from the initial state). The DAC'04
//! paper positions its refinement as sorting along the *register* axis
//! instead. We implement the time-axis ordering as a ranking over the same
//! frame-stable variables, so the two philosophies can be compared head to
//! head (the `ablation_axis` bench).

use crate::Unroller;

/// Builds a per-variable ranking that prefers earlier time frames: all
/// variables of frame 0 outrank all of frame 1, and so on. Within a frame
/// the solver's `cha_score` tiebreaks, as in the static scheme of §3.3.
///
/// `k` is the current unrolling depth (frames `0..=k` exist).
///
/// # Examples
///
/// ```
/// use rbmc_circuit::{LatchInit, Netlist};
/// use rbmc_core::{shtrichman_rank, Model, Unroller};
///
/// let mut n = Netlist::new();
/// let t = n.add_latch("t", LatchInit::Zero);
/// n.set_next(t, !t);
/// let model = Model::new("toggle", n, t);
/// let unroller = Unroller::new(&model);
/// let rank = shtrichman_rank(&unroller, 2);
/// let nodes = model.netlist().num_nodes();
/// // Frame 0 variables outrank frame 2 variables.
/// assert!(rank[0] > rank[2 * nodes]);
/// ```
pub fn shtrichman_rank(unroller: &Unroller<'_>, k: usize) -> Vec<u64> {
    let num_vars = unroller.num_vars_at(k);
    (0..num_vars)
        .map(|v| {
            let frame = v / unroller.model().netlist().num_nodes();
            (k + 1 - frame) as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;
    use rbmc_circuit::{LatchInit, Netlist};

    #[test]
    fn earlier_frames_rank_higher() {
        let mut n = Netlist::new();
        let t = n.add_latch("t", LatchInit::Zero);
        n.set_next(t, !t);
        let model = Model::new("m", n, t);
        let unroller = Unroller::new(&model);
        let rank = shtrichman_rank(&unroller, 3);
        let nodes = model.netlist().num_nodes();
        assert_eq!(rank.len(), 4 * nodes);
        for frame in 0..3 {
            assert!(
                rank[frame * nodes] > rank[(frame + 1) * nodes],
                "frame {frame} must outrank frame {}",
                frame + 1
            );
        }
        // Within a frame all scores are equal.
        assert_eq!(rank[0], rank[nodes - 1]);
    }
}
