//! The frame sequence `F_0 = I, F_1, …, F_K`: blocked-cube storage with
//! syntactic subsumption.
//!
//! A *cube* is a conjunction of register literals, stored as a sorted
//! `Vec<(latch_position, value)>` over the working model's
//! [`latches()`](rbmc_circuit::Netlist::latches) order. Blocking cube `c` at
//! level `j` adds the clause `¬c` to frames `F_1..=F_j`; the solver-side
//! encoding (one activation literal per level, clause asserted under
//! `act_j`) lives in the engine — this module only tracks *which* cubes are
//! blocked *where*, which is what the convergence check, the push phase, and
//! the invariant extraction read.

/// A conjunction of register literals: `(latch position, value)` pairs,
/// sorted by position, at most one literal per latch.
pub(crate) type Cube = Vec<(usize, bool)>;

/// Whether `a ⊆ b` as literal sets (then `¬a` subsumes `¬b`: blocking `a`
/// blocks every state of `b`). Both cubes must be sorted by latch position.
pub(crate) fn cube_subsumes(a: &Cube, b: &Cube) -> bool {
    let mut it = b.iter();
    'outer: for lit in a {
        for other in it.by_ref() {
            if other == lit {
                continue 'outer;
            }
            if other.0 > lit.0 {
                return false;
            }
        }
        return false;
    }
    true
}

/// Blocked cubes per frame level. `levels[j]` holds the cubes blocked at
/// exactly level `j` (i.e. whose clause is part of `F_1..=F_j` but not
/// `F_{j+1}`); level 0 is `I` and never stores cubes.
#[derive(Debug, Default)]
pub(crate) struct Frames {
    levels: Vec<Vec<Cube>>,
}

impl Frames {
    pub(crate) fn new() -> Frames {
        Frames {
            levels: vec![Vec::new()],
        }
    }

    /// Grows the level vector through `level`.
    pub(crate) fn ensure_level(&mut self, level: usize) {
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
    }

    /// The cubes blocked at exactly `level`.
    pub(crate) fn cubes_at(&self, level: usize) -> &[Cube] {
        &self.levels[level]
    }

    /// Whether `cube` (or a generalization of it) is already blocked at
    /// `level` — some stored cube at level `≥ level` subsumes it.
    pub(crate) fn is_blocked(&self, cube: &Cube, level: usize) -> bool {
        self.levels[level..]
            .iter()
            .any(|cubes| cubes.iter().any(|c| cube_subsumes(c, cube)))
    }

    /// Records `cube` as blocked at `level`, dropping every stored cube at
    /// levels `≤ level` the new cube subsumes (their clauses stay in the
    /// solver — harmless, merely redundant — but the bookkeeping forgets
    /// them so pushing and invariant extraction stay small).
    pub(crate) fn add(&mut self, level: usize, cube: Cube) {
        self.ensure_level(level);
        for stored in &mut self.levels[1..=level] {
            stored.retain(|c| !cube_subsumes(&cube, c));
        }
        self.levels[level].push(cube);
    }

    /// Moves `cube` from `level` to `level + 1` (the push phase's UNSAT
    /// case). Returns whether the cube was still present at `level`.
    pub(crate) fn push_up(&mut self, level: usize, cube: &Cube) -> bool {
        let stored = &mut self.levels[level];
        let Some(pos) = stored.iter().position(|c| c == cube) else {
            return false;
        };
        let cube = stored.swap_remove(pos);
        self.add(level + 1, cube);
        true
    }

    /// The union of cubes at every level `≥ level` — the clause set of
    /// `F_level`, which the invariant extractor negates.
    pub(crate) fn cubes_from(&self, level: usize) -> Vec<Cube> {
        self.levels[level..].iter().flatten().cloned().collect()
    }

    /// Total cubes stored across all levels.
    #[cfg(test)]
    pub(crate) fn total_cubes(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsumption_is_subset_of_literals() {
        let small: Cube = vec![(1, true), (3, false)];
        let big: Cube = vec![(0, false), (1, true), (3, false), (4, true)];
        assert!(cube_subsumes(&small, &big));
        assert!(!cube_subsumes(&big, &small));
        // Same latch, different polarity: no subsumption.
        let flipped: Cube = vec![(1, false), (3, false)];
        assert!(!cube_subsumes(&flipped, &big));
        // Every cube subsumes itself; the empty cube subsumes everything.
        assert!(cube_subsumes(&big, &big));
        assert!(cube_subsumes(&Vec::new(), &small));
    }

    #[test]
    fn add_drops_subsumed_cubes_at_lower_levels() {
        let mut frames = Frames::new();
        frames.add(2, vec![(0, true), (1, false)]);
        frames.add(1, vec![(0, true), (1, false), (2, true)]);
        assert_eq!(frames.total_cubes(), 2);
        // A more general cube at a higher level subsumes both.
        frames.add(3, vec![(0, true)]);
        assert_eq!(frames.total_cubes(), 1);
        assert_eq!(frames.cubes_at(3).len(), 1);
    }

    #[test]
    fn is_blocked_looks_at_this_level_and_above() {
        let mut frames = Frames::new();
        frames.add(2, vec![(1, true)]);
        let state: Cube = vec![(0, false), (1, true)];
        assert!(frames.is_blocked(&state, 1));
        assert!(frames.is_blocked(&state, 2));
        frames.ensure_level(3);
        assert!(!frames.is_blocked(&state, 3));
    }

    #[test]
    fn push_up_moves_a_cube_one_level() {
        let mut frames = Frames::new();
        let cube: Cube = vec![(0, true)];
        frames.add(1, cube.clone());
        frames.ensure_level(2);
        assert!(frames.push_up(1, &cube));
        assert!(frames.cubes_at(1).is_empty());
        assert_eq!(frames.cubes_at(2), std::slice::from_ref(&cube));
        // Already moved: a second push finds nothing at the old level.
        assert!(!frames.push_up(1, &cube));
        assert_eq!(frames.cubes_from(2), vec![cube]);
    }
}
