//! IC3 over the incremental session solver, with **core-ordered
//! assumptions** — the paper's varRank idea transplanted to the algorithm
//! where it pays off today.
//!
//! IC3 (Bradley 2011) maintains frames `F_0 = I ⊆ F_1 ⊆ … ⊆ F_K`, each an
//! overapproximation of the states reachable in that many steps, as sets of
//! blocked cubes. Bad states found in the frontier are pushed back as
//! *obligations* and refuted by **relative induction** queries
//! `F_{j-1} ∧ ¬s ∧ T ∧ s'`; each UNSAT answer is generalized from the
//! query's failed-assumption core and blocked as a clause; when some frame
//! equals its successor the clauses at and above it form an inductive
//! invariant and the property is [`Proved`](PropertyVerdict::Proved) —
//! unboundedly, not merely up to a depth.
//!
//! The engine runs over the same session [`Solver`] as BMC, using exactly
//! the incremental surface PR 3 built: the transition relation and the
//! frame clauses are loaded once, frames are *activated* per query by
//! assumption literals (one per level, plus one for `I`), blocked clauses
//! are added live, and cubes are asserted through assumptions so the
//! solver's [`failed_assumptions`](Solver::failed_assumptions) deliver the
//! unsat core that drives generalization.
//!
//! **Where the paper's idea lands.** BMC's varRank orders *decisions* by
//! unsat-core membership across instances. IC3's solver sees thousands of
//! tiny, highly correlated queries per frame instead of one growing
//! instance per depth — and its assumption mechanism gives core feedback
//! per query for free. Under the refined strategies
//! ([`RefinedStatic`](crate::OrderingStrategy::RefinedStatic) /
//! [`RefinedDynamic`](crate::OrderingStrategy::RefinedDynamic)),
//! the engine keeps one [`VarRank`] table **per frame level**, updated from
//! every core of a query against that frame, and uses it two ways:
//!
//! - **assumption ordering**: the primed cube literals of each query are
//!   assumed highest-score first, steering conflict analysis toward
//!   registers that refuted earlier queries at the same frame (and thereby
//!   toward smaller failed-assumption cores);
//! - **decision ordering**: the frame's score table is installed as the
//!   solver's variable ranking for the query, exactly as BMC does per
//!   depth.
//!
//! [`Standard`](crate::OrderingStrategy::Standard) runs both unordered (the
//! ablation baseline); [`Shtrichman`](crate::OrderingStrategy::Shtrichman)
//! has no IC3 analog (there is
//! no time axis inside a 1-step query) and behaves as `Standard`.
//!
//! Falsifications are reported at the exact depth BMC would find: the
//! frontier only advances past `K` once `F_K ∧ bad` is UNSAT (no
//! counterexample of length `≤ K`), and an obligation chain reaching `I`
//! at frontier `K` witnesses a counterexample of exactly `K` transitions —
//! which a fresh BMC-style solve at depth `K` then reconstructs as a
//! validated [`Trace`]. This is what makes the engine differentially
//! testable against the BMC oracle, and race-compatible with it in a
//! portfolio.

mod frames;
mod generalize;
mod invariant;

pub use invariant::{check_invariant, InvariantClause, InvariantError};

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::time::Instant;

use rbmc_circuit::preprocess::PreprocessReport;
use rbmc_circuit::{LatchInit, Node, NodeId, Signal};
use rbmc_cnf::{CnfFormula, Lit, Var};
use rbmc_solver::{CancelFlag, Limits, SolveResult, Solver, SolverOptions, SolverStats};

use crate::certify::EpisodeCertifier;
use crate::engine::{
    depth_limits, strategy_solver_options, BmcOptions, BmcOutcome, BmcRun, DepthStats,
    PropertyReport, PropertyVerdict,
};
use crate::engine_trait::Engine;
use crate::preprocess::preprocess_problem;
use crate::{Model, Trace, TraceLift, Unroller, VarRank, VerificationProblem};

use frames::{Cube, Frames};
use generalize::generalize_from_core;
use invariant::invariant_clauses_from;

/// The IC3 engine: unbounded proofs with extracted inductive invariants,
/// shortest counterexamples otherwise. Configured by the same
/// [`BmcOptions`] as [`BmcEngine`](crate::BmcEngine) — `max_depth` bounds
/// the *frontier* (a property still unresolved there reports
/// [`OpenAt`](PropertyVerdict::OpenAt)), `strategy` selects the
/// core-ordered assumption/decision scheme, `max_conflicts_per_depth`
/// budgets each individual query, and `preprocess` applies the same
/// structural reduction with trace lifting.
///
/// # Examples
///
/// ```
/// use rbmc_core::{BmcOptions, Ic3Engine, Model, PropertyVerdict};
/// use rbmc_circuit::{LatchInit, Netlist};
///
/// // A sticky latch (l' = l, init 0) never becomes 1: IC3 proves it.
/// let mut n = Netlist::new();
/// let l = n.add_latch("l", LatchInit::Zero);
/// n.set_next(l, l);
/// let model = Model::new("sticky", n, l);
/// let mut engine = Ic3Engine::new(model, BmcOptions::default());
/// let run = engine.run_collecting();
/// assert!(matches!(
///     run.properties[0].verdict,
///     PropertyVerdict::Proved { .. }
/// ));
/// ```
pub struct Ic3Engine {
    /// The working model the solver sees (preprocessed when
    /// [`BmcOptions::preprocess`] is on).
    model: Model,
    /// The problem as given, when preprocessing rebuilt it.
    original: Option<Model>,
    /// Trace map from working to original coordinates.
    lift: Option<TraceLift>,
    /// Shape accounting of the preprocessing pass.
    pp_report: Option<PreprocessReport>,
    options: BmcOptions,
    cancel: Option<CancelFlag>,
}

impl fmt::Debug for Ic3Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ic3Engine")
            .field("problem", &self.model.name())
            .field("properties", &self.model.problem().num_properties())
            .field("options", &self.options)
            .finish()
    }
}

impl Ic3Engine {
    /// Creates an engine for a single-property `model` — the same
    /// preprocessing split as [`BmcEngine::new`](crate::BmcEngine::new):
    /// with [`BmcOptions::preprocess`] on, the model is structurally
    /// reduced once here and every verdict is lifted back.
    pub fn new(model: Model, options: BmcOptions) -> Ic3Engine {
        let (model, original, lift, pp_report) = if options.preprocess {
            let problem = model.into_problem();
            let pp = preprocess_problem(&problem);
            (
                Model::from_problem(pp.problem),
                Some(Model::from_problem(problem)),
                Some(pp.lift),
                Some(pp.report),
            )
        } else {
            (model, None, None, None)
        };
        Ic3Engine {
            model,
            original,
            lift,
            pp_report,
            options,
            cancel: None,
        }
    }

    /// Creates an engine checking every property of `problem`, one IC3
    /// instance per property over one shared working model.
    pub fn for_problem(problem: VerificationProblem, options: BmcOptions) -> Ic3Engine {
        Ic3Engine::new(Model::from_problem(problem), options)
    }

    /// The model under check **as given** (traces are in its coordinates).
    pub fn model(&self) -> &Model {
        self.original.as_ref().unwrap_or(&self.model)
    }

    /// The working model the solver actually encodes — the coordinate
    /// system of [`PropertyVerdict::Proved`] invariant clauses.
    pub fn working_model(&self) -> &Model {
        &self.model
    }

    /// The full problem under check, as given.
    pub fn problem(&self) -> &VerificationProblem {
        self.model().problem()
    }

    /// Shape accounting of the preprocessing pass (`None` when off).
    pub fn preprocess_report(&self) -> Option<&PreprocessReport> {
        self.pp_report.as_ref()
    }

    /// The trace map from working to original coordinates (`None` when
    /// preprocessing is off).
    pub fn trace_lift(&self) -> Option<&TraceLift> {
        self.lift.as_ref()
    }

    /// Attaches a cooperative cancellation flag (portfolio racing): every
    /// in-flight query returns [`SolveResult::Unknown`] at its next budget
    /// checkpoint and the run truncates through the resource-out path.
    pub fn set_cancel(&mut self, cancel: CancelFlag) {
        self.cancel = Some(cancel);
    }

    /// Runs IC3 and returns only the summary outcome.
    pub fn run(&mut self) -> BmcOutcome {
        self.run_collecting().outcome
    }

    /// Runs IC3 on every property, collecting per-property reports and
    /// per-frontier statistics (shaped exactly like BMC's per-depth
    /// statistics: entry `k` is the verdict for counterexamples of length
    /// `k`, which is what the differential harnesses compare).
    pub fn run_collecting(&mut self) -> BmcRun {
        let run_start = Instant::now();
        let props: Vec<(String, Signal)> = self
            .model
            .problem()
            .properties()
            .iter()
            .map(|p| (p.name().to_string(), p.bad()))
            .collect();
        let mut aggregate = SolverStats::new();
        let mut reports: Vec<PropertyReport> = Vec::new();
        let mut per_depth: Vec<DepthStats> = Vec::new();
        let mut proof_acc: Option<crate::ProofSummary> = None;
        for (name, bad) in props {
            let mut runner = PropRunner::new(&self.model, bad, &self.options, self.cancel.as_ref());
            let (report, frontier_stats) = runner.run(name);
            aggregate.accumulate(runner.solver.stats());
            crate::certify::merge_opt(
                &mut proof_acc,
                runner.certifier.take().map(EpisodeCertifier::into_summary),
            );
            merge_depth_stats(&mut per_depth, frontier_stats);
            reports.push(report);
        }

        let outcome = summarize(&reports, self.options.max_depth);
        let mut run = BmcRun {
            outcome,
            properties: reports,
            per_depth,
            solver_stats: aggregate,
            workers: Vec::new(),
            total_time: run_start.elapsed(),
            proof: proof_acc,
        };
        // Lift traces out of the working model's coordinates, as BMC does.
        if let Some(lift) = self.lift.as_ref().filter(|l| !l.is_identity()) {
            if let BmcOutcome::Counterexample { trace, .. } = &mut run.outcome {
                *trace = lift.lift(trace);
            }
            for prop in &mut run.properties {
                if let PropertyVerdict::Falsified { trace, .. } = &mut prop.verdict {
                    *trace = lift.lift(trace);
                }
            }
        }
        run
    }
}

impl Engine for Ic3Engine {
    fn name(&self) -> &'static str {
        "ic3"
    }

    fn problem(&self) -> &VerificationProblem {
        Ic3Engine::problem(self)
    }

    fn set_cancel(&mut self, cancel: CancelFlag) {
        Ic3Engine::set_cancel(self, cancel);
    }

    fn run_collecting(&mut self) -> BmcRun {
        Ic3Engine::run_collecting(self)
    }
}

/// The summary outcome over the per-property reports, with BMC's
/// precedence: a counterexample outranks a truncation outranks completion.
/// Shared with the other proving engine (k-induction), whose reports use
/// the same verdict vocabulary.
pub(crate) fn summarize(reports: &[PropertyReport], max_depth: usize) -> BmcOutcome {
    let mut best: Option<(usize, &Trace)> = None;
    for report in reports {
        if let PropertyVerdict::Falsified { depth, trace } = &report.verdict {
            if best.is_none_or(|(d, _)| *depth < d) {
                best = Some((*depth, trace));
            }
        }
    }
    if let Some((depth, trace)) = best {
        return BmcOutcome::Counterexample {
            depth,
            trace: trace.clone(),
        };
    }
    if let Some(at_depth) = reports
        .iter()
        .filter_map(|r| match r.verdict {
            PropertyVerdict::Unknown => Some(r.depth_results.len()),
            _ => None,
        })
        .min()
    {
        return BmcOutcome::ResourceOut { at_depth };
    }
    // Every property proved or open: the depth through which *no*
    // counterexample exists is bounded by the open properties' frontiers
    // (a proof bounds nothing — it holds at every depth).
    let depth_completed = reports
        .iter()
        .filter_map(|r| match r.verdict {
            PropertyVerdict::OpenAt { depth } => Some(depth),
            _ => None,
        })
        .min()
        .unwrap_or_else(|| {
            reports
                .iter()
                .filter_map(|r| match r.verdict {
                    PropertyVerdict::Proved { depth, .. } => Some(depth),
                    _ => None,
                })
                .max()
                .unwrap_or(max_depth)
        });
    BmcOutcome::BoundReached { depth_completed }
}

/// Folds one property's per-frontier statistics into the run-level
/// per-depth table (summed counters, worst result).
fn merge_depth_stats(all: &mut Vec<DepthStats>, prop: Vec<DepthStats>) {
    for (k, stats) in prop.into_iter().enumerate() {
        if k == all.len() {
            all.push(stats);
            continue;
        }
        let slot = &mut all[k];
        slot.decisions += stats.decisions;
        slot.implications += stats.implications;
        slot.conflicts += stats.conflicts;
        slot.core_vars += stats.core_vars;
        slot.num_vars = slot.num_vars.max(stats.num_vars);
        slot.num_clauses = slot.num_clauses.max(stats.num_clauses);
        slot.switched_to_vsids |= stats.switched_to_vsids;
        slot.time += stats.time;
        slot.result = match (slot.result, stats.result) {
            (SolveResult::Sat, _) | (_, SolveResult::Sat) => SolveResult::Sat,
            (SolveResult::Unknown, _) | (_, SolveResult::Unknown) => SolveResult::Unknown,
            _ => SolveResult::Unsat,
        };
    }
}

/// How one property's IC3 run ended (pre-report form).
enum PropOutcome {
    Falsified {
        depth: usize,
        trace: Trace,
    },
    Proved {
        depth: usize,
        invariant: Vec<InvariantClause>,
    },
    Open {
        completed: usize,
    },
    ResourceOut,
}

/// How one obligation-blocking campaign ended.
enum BlockResult {
    /// Every obligation was discharged; re-ask the frontier bad query.
    Blocked,
    /// An obligation chain reached the initial states: counterexample of
    /// exactly the frontier's length.
    Cex,
    /// A query budget or cancellation truncated the campaign.
    ResourceOut,
}

/// One property's IC3 instance: session solver, frames, per-level rank
/// tables, and the query machinery.
struct PropRunner<'a> {
    model: &'a Model,
    unroller: Unroller<'a>,
    solver: Solver,
    bad: Signal,
    latches: Vec<NodeId>,
    inits: Vec<LatchInit>,
    /// node index → latch position (for mapping failed assumptions back).
    latch_pos: Vec<Option<usize>>,
    num_nodes: usize,
    /// Whether the strategy orders assumptions/decisions by core counts.
    ordered: bool,
    /// Next free solver variable (activation literals and query selectors).
    next_var: usize,
    /// Activation literal of the initial-state clauses (`F_0`).
    act_init: Lit,
    /// `level_acts[j-1]` activates the clauses blocked at exactly level `j`.
    level_acts: Vec<Lit>,
    frames: Frames,
    /// `ranks[m]`: core-membership scores from queries against `F_m` (the
    /// frame-local varRank of the refined strategies).
    ranks: Vec<VarRank>,
    limits: Limits,
    options: &'a BmcOptions,
    seq: u64,
    episodes: u64,
    assumption_conflicts: u64,
    /// Distinct latch positions cited by cores, per frontier (DepthStats).
    frontier_core_positions: Vec<usize>,
    /// Proof sink and per-episode checker of the session solver (attached
    /// when [`BmcOptions::proof`] is on).
    certifier: Option<EpisodeCertifier>,
}

impl<'a> PropRunner<'a> {
    fn new(
        model: &'a Model,
        bad: Signal,
        options: &'a BmcOptions,
        cancel: Option<&CancelFlag>,
    ) -> PropRunner<'a> {
        let unroller = Unroller::new(model);
        let num_nodes = model.netlist().num_nodes();
        let latches = model.netlist().latches();
        let mut latch_pos = vec![None; num_nodes];
        let mut inits = Vec::with_capacity(latches.len());
        for (pos, &id) in latches.iter().enumerate() {
            latch_pos[id.index()] = Some(pos);
            if let Node::Latch { init, .. } = model.netlist().node(id) {
                inits.push(*init);
            }
        }
        // Same solver configuration as BMC's strategy mapping, except the
        // CDG is normally not recorded: IC3's cores come from failed
        // assumptions, which the session machinery tracks for free. Proof
        // logging re-enables it — the LRAT hints are CDG antecedents.
        let mut solver_opts: SolverOptions = strategy_solver_options(options);
        solver_opts.record_cdg = options.proof.is_on();
        let mut solver = Solver::with_options(solver_opts);
        let certifier = EpisodeCertifier::attach(options.proof, &mut solver);
        solver.reserve_vars(2 * num_nodes);

        // Load the 1-step transition relation once: frame 0 is the
        // combinational logic with latches and inputs free (no `I`), frame
        // 1 only the latch transition clauses (queries never read frame-1
        // gates — primed cubes and the bad predicate are over latches and
        // frame-0 logic).
        let mut formula = CnfFormula::with_vars(2 * num_nodes);
        formula.add_clause([unroller.var_of(NodeId::CONST, 0).negative()]);
        formula.add_clause([unroller.var_of(NodeId::CONST, 1).negative()]);
        for id in model.netlist().node_ids() {
            match model.netlist().node(id) {
                Node::Gate { .. } => unroller.emit_gate_for(id, 0, &mut formula),
                Node::Latch {
                    next: Some(next), ..
                } => {
                    let cur = unroller.var_of(id, 1).positive();
                    let prev = unroller.lit_of(*next, 0);
                    formula.add_clause([!cur, prev]);
                    formula.add_clause([cur, !prev]);
                }
                _ => {}
            }
        }
        let total = formula.num_clauses();
        for clause in formula.clauses_in(0..total) {
            solver.add_clause(clause.lits());
        }

        let mut runner = PropRunner {
            model,
            unroller,
            solver,
            bad,
            latches,
            inits,
            latch_pos,
            num_nodes,
            ordered: options.strategy.needs_cores(),
            next_var: 2 * num_nodes,
            act_init: Lit::new(Var::new(0), false), // placeholder
            level_acts: Vec::new(),
            frames: Frames::new(),
            ranks: Vec::new(),
            limits: depth_limits(options, cancel),
            options,
            seq: 0,
            episodes: 0,
            assumption_conflicts: 0,
            frontier_core_positions: Vec::new(),
            certifier,
        };
        runner.act_init = runner.alloc_lit();
        // I(V⁰), gated: ¬act_init ∨ (latch at its initial value).
        for (pos, &init) in runner.inits.clone().iter().enumerate() {
            let lit = match init {
                LatchInit::Zero => runner.latch_lit(pos, false, 0),
                LatchInit::One => runner.latch_lit(pos, true, 0),
                LatchInit::Free => continue,
            };
            let act = runner.act_init;
            runner.solver.add_clause(&[!act, lit]);
        }
        runner
    }

    fn alloc_lit(&mut self) -> Lit {
        let var = Var::new(self.next_var);
        self.next_var += 1;
        var.positive()
    }

    /// The literal "latch at `pos` has value `value`" at `frame`.
    fn latch_lit(&self, pos: usize, value: bool, frame: usize) -> Lit {
        let var = self.unroller.var_of(self.latches[pos], frame);
        if value {
            var.positive()
        } else {
            var.negative()
        }
    }

    fn act_of(&self, level: usize) -> Lit {
        self.level_acts[level - 1]
    }

    /// Grows activation literals, frames, and rank tables through frontier
    /// `k`.
    fn ensure_frontier(&mut self, k: usize) {
        while self.level_acts.len() < k {
            let act = self.alloc_lit();
            self.level_acts.push(act);
        }
        self.frames.ensure_level(k);
        while self.ranks.len() <= k {
            self.ranks.push(VarRank::new(self.options.weighting));
        }
    }

    /// The assumptions activating `F_m`: every level's clauses from `m` up
    /// (clause sets are downward-nested), plus the initial-state clauses
    /// for `F_0`.
    fn frame_assumptions(&self, m: usize) -> Vec<Lit> {
        let mut acts = Vec::with_capacity(self.level_acts.len() + 2);
        if m == 0 {
            acts.push(self.act_init);
        }
        for j in m.max(1)..=self.level_acts.len() {
            acts.push(self.act_of(j));
        }
        acts
    }

    /// The primed literals of `cube` (its latches at frame 1), ordered —
    /// under the refined strategies — by descending core-membership score
    /// of the *unprimed* latch variable in frame `m`'s rank table, ties by
    /// latch position. Unordered strategies keep latch order.
    fn primed_lits(&self, cube: &Cube, m: usize) -> Vec<Lit> {
        let mut entries: Vec<(u64, usize, bool)> = cube
            .iter()
            .map(|&(pos, value)| {
                let score = if self.ordered {
                    self.ranks[m].score(self.unroller.var_of(self.latches[pos], 0))
                } else {
                    0
                };
                (score, pos, value)
            })
            .collect();
        if self.ordered {
            entries.sort_by_key(|&(score, pos, _)| (Reverse(score), pos));
        }
        entries
            .into_iter()
            .map(|(_, pos, value)| self.latch_lit(pos, value, 1))
            .collect()
    }

    /// Installs frame `m`'s rank table as the solver's decision ordering
    /// (refined strategies only — the per-query analog of BMC's per-depth
    /// `set_var_ranking` refresh).
    fn install_ranking(&mut self, m: usize) {
        if self.ordered {
            self.solver.set_var_ranking(&self.ranks[m].snapshot());
        }
    }

    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.episodes += 1;
        let result = self.solver.solve_under_limited(assumptions, &self.limits);
        // Every IC3 query funnels through here, so every UNSAT verdict the
        // algorithm acts on (blocked cube, converged frontier) is certified.
        if result == SolveResult::Unsat {
            if let Some(cert) = self.certifier.as_mut() {
                cert.observe_unsat();
            }
        }
        result
    }

    /// The full register cube of the solver's satisfying assignment.
    fn cube_from_model(&self) -> Cube {
        let assignment = self.solver.model().expect("model after SAT");
        self.latches
            .iter()
            .enumerate()
            .map(|(pos, &id)| (pos, assignment[self.unroller.var_of(id, 0).index()]))
            .collect()
    }

    /// The latch positions cited by the last UNSAT core (failed primed
    /// assumption literals mapped back to unprimed latches). Empty when the
    /// refutation closed at decision level 0.
    fn core_positions(&self) -> Vec<usize> {
        self.solver
            .failed_assumptions()
            .iter()
            .filter_map(|lit| {
                let idx = lit.var().index();
                if (self.num_nodes..2 * self.num_nodes).contains(&idx) {
                    self.latch_pos[idx - self.num_nodes]
                } else {
                    None
                }
            })
            .collect()
    }

    /// Records a core in frame `m`'s rank table (weight `m + 1`, so level-0
    /// cores still score) and in the frontier's core accounting.
    fn record_core(&mut self, m: usize, positions: &[usize]) {
        self.frontier_core_positions.extend_from_slice(positions);
        if self.ordered && !positions.is_empty() {
            let vars: Vec<Var> = positions
                .iter()
                .map(|&pos| self.unroller.var_of(self.latches[pos], 0))
                .collect();
            self.ranks[m].update(&vars, m + 1);
        }
    }

    /// Blocks `cube` at `level`: the clause `¬cube` is added under the
    /// level's activation literal and the bookkeeping subsumes.
    fn add_blocked(&mut self, level: usize, cube: Cube) {
        let mut clause = Vec::with_capacity(cube.len() + 1);
        clause.push(!self.act_of(level));
        for &(pos, value) in &cube {
            clause.push(self.latch_lit(pos, !value, 0));
        }
        self.solver.add_clause(&clause);
        self.frames.add(level, cube);
    }

    /// Discharges the obligation queue seeded with the frontier bad cube
    /// `s0`: relative-induction queries, core generalization, predecessor
    /// extraction — the heart of IC3.
    fn block_state(&mut self, s0: Cube, k: usize) -> BlockResult {
        let mut queue: BinaryHeap<Reverse<(usize, u64, Cube)>> = BinaryHeap::new();
        self.seq += 1;
        queue.push(Reverse((k, self.seq, s0)));
        while let Some(Reverse((j, _, s))) = queue.pop() {
            if j == 0 {
                // The chain reached an initial state: counterexample of
                // exactly k transitions (shorter ones were excluded when
                // earlier frontiers passed).
                return BlockResult::Cex;
            }
            if self.frames.is_blocked(&s, j) {
                continue;
            }
            // F_{j-1} ∧ ¬s ∧ T ∧ s': ¬s under a one-shot selector, s'
            // assumed literal by literal (core-ordered), frame acts first.
            let selector = self.alloc_lit();
            let mut not_s = Vec::with_capacity(s.len() + 1);
            not_s.push(!selector);
            for &(pos, value) in &s {
                not_s.push(self.latch_lit(pos, !value, 0));
            }
            self.solver.add_clause(&not_s);
            let mut assumptions = self.frame_assumptions(j - 1);
            assumptions.push(selector);
            assumptions.extend(self.primed_lits(&s, j - 1));
            self.install_ranking(j - 1);
            let result = self.solve(&assumptions);
            match result {
                SolveResult::Unsat => {
                    self.assumption_conflicts += 1;
                    let core = self.core_positions();
                    self.record_core(j - 1, &core);
                    let cube = generalize_from_core(&s, &core, &self.inits);
                    self.solver.add_clause(&[!selector]);
                    self.add_blocked(j, cube);
                }
                SolveResult::Sat => {
                    let predecessor = self.cube_from_model();
                    self.solver.add_clause(&[!selector]);
                    self.seq += 1;
                    queue.push(Reverse((j - 1, self.seq, predecessor)));
                    self.seq += 1;
                    queue.push(Reverse((j, self.seq, s)));
                }
                SolveResult::Unknown => {
                    self.solver.add_clause(&[!selector]);
                    return BlockResult::ResourceOut;
                }
            }
        }
        BlockResult::Blocked
    }

    /// The push phase after frontier `k` passed: every cube at levels
    /// `1..k` that is inductive relative to its own frame moves up one
    /// level. Returns `false` on a truncated query.
    fn push_phase(&mut self, k: usize) -> bool {
        for j in 1..k {
            let cubes: Vec<Cube> = self.frames.cubes_at(j).to_vec();
            for cube in cubes {
                if !self.frames.cubes_at(j).contains(&cube) {
                    continue; // subsumed away earlier in this phase
                }
                let mut assumptions = self.frame_assumptions(j);
                assumptions.extend(self.primed_lits(&cube, j));
                self.install_ranking(j);
                match self.solve(&assumptions) {
                    SolveResult::Unsat => {
                        self.assumption_conflicts += 1;
                        let core = self.core_positions();
                        self.record_core(j, &core);
                        if self.frames.push_up(j, &cube) {
                            let mut clause = Vec::with_capacity(cube.len() + 1);
                            clause.push(!self.act_of(j + 1));
                            for &(pos, value) in &cube {
                                clause.push(self.latch_lit(pos, !value, 0));
                            }
                            self.solver.add_clause(&clause);
                        }
                    }
                    SolveResult::Sat => {}
                    SolveResult::Unknown => return false,
                }
            }
        }
        true
    }

    /// Reconstructs the depth-`k` counterexample as a validated trace via a
    /// fresh BMC-style solve (shares nothing with the IC3 session). `None`
    /// only when cancellation truncated the reconstruction.
    fn extract_trace(&self, k: usize) -> Option<Trace> {
        let unroller = Unroller::new(self.model);
        let mut solver = Solver::with_options(SolverOptions::default());
        solver.reserve_vars(unroller.num_vars_at(k));
        unroller.with_prefix(k, |clauses| {
            for clause in clauses {
                solver.add_clause(clause.lits());
            }
        });
        solver.add_clause(&[unroller.lit_of(self.bad, k)]);
        match solver.solve_limited(&self.limits) {
            SolveResult::Sat => {
                let assignment = solver.model().expect("model after SAT");
                let trace = Trace::from_assignment(&unroller, assignment, k);
                debug_assert!(
                    trace
                        .validate_against(self.model.netlist(), self.bad)
                        .is_ok(),
                    "IC3 counterexample reconstruction produced an invalid trace"
                );
                Some(trace)
            }
            SolveResult::Unknown => None,
            SolveResult::Unsat => unreachable!(
                "IC3 derived a depth-{k} counterexample that BMC refutes — soundness bug"
            ),
        }
    }

    /// The main IC3 loop for one property. Returns the per-property report
    /// and per-frontier statistics (BMC `DepthStats` shape).
    fn run(&mut self, name: String) -> (PropertyReport, Vec<DepthStats>) {
        let mut depth_results: Vec<SolveResult> = Vec::new();
        let mut per_frontier: Vec<DepthStats> = Vec::new();
        let mut completed: Option<usize> = None;
        let mut outcome: Option<PropOutcome> = None;

        'frontiers: for k in 0..=self.options.max_depth {
            self.ensure_frontier(k);
            self.frontier_core_positions.clear();
            let frontier_start = Instant::now();
            let base = self.solver.stats().clone();
            let mut frontier_result = SolveResult::Unsat;
            loop {
                // SAT?[F_k ∧ bad]: a frontier state reaching bad under some
                // input — inputs are free in the frame-0 logic.
                let mut assumptions = self.frame_assumptions(k);
                assumptions.push(self.unroller.lit_of(self.bad, 0));
                self.install_ranking(k);
                match self.solve(&assumptions) {
                    SolveResult::Unsat => {
                        self.assumption_conflicts += 1;
                        break;
                    }
                    SolveResult::Sat => {
                        if self.latches.is_empty() {
                            // Combinational counterexample: depth 0.
                            frontier_result = SolveResult::Sat;
                            outcome = match self.extract_trace(0) {
                                Some(trace) => Some(PropOutcome::Falsified { depth: 0, trace }),
                                None => Some(PropOutcome::ResourceOut),
                            };
                        } else {
                            let s = self.cube_from_model();
                            match self.block_state(s, k) {
                                BlockResult::Blocked => continue,
                                BlockResult::Cex => {
                                    frontier_result = SolveResult::Sat;
                                    outcome = match self.extract_trace(k) {
                                        Some(trace) => {
                                            Some(PropOutcome::Falsified { depth: k, trace })
                                        }
                                        None => Some(PropOutcome::ResourceOut),
                                    };
                                }
                                BlockResult::ResourceOut => {
                                    frontier_result = SolveResult::Unknown;
                                    outcome = Some(PropOutcome::ResourceOut);
                                }
                            }
                        }
                    }
                    SolveResult::Unknown => {
                        frontier_result = SolveResult::Unknown;
                        outcome = Some(PropOutcome::ResourceOut);
                    }
                }
                break;
            }

            // Frontier k decided (or truncated): propagate and check for a
            // fixpoint only on the passing path.
            if frontier_result == SolveResult::Unsat {
                completed = Some(k);
                if self.latches.is_empty() {
                    // No registers and bad unsatisfiable: proved outright
                    // with the trivial invariant.
                    outcome = Some(PropOutcome::Proved {
                        depth: k,
                        invariant: Vec::new(),
                    });
                } else if !self.push_phase(k) {
                    frontier_result = SolveResult::Unknown;
                    outcome = Some(PropOutcome::ResourceOut);
                } else if let Some(fix) = (1..k).find(|&j| self.frames.cubes_at(j).is_empty()) {
                    let invariant = invariant_clauses_from(&self.frames.cubes_from(fix + 1));
                    outcome = Some(PropOutcome::Proved {
                        depth: k,
                        invariant,
                    });
                }
            }

            // Per-frontier statistics, in the shape BMC reports per depth.
            let stats = self.solver.stats();
            let mut cores = std::mem::take(&mut self.frontier_core_positions);
            cores.sort_unstable();
            cores.dedup();
            depth_results.push(frontier_result);
            per_frontier.push(DepthStats {
                depth: k,
                result: frontier_result,
                decisions: stats.decisions - base.decisions,
                implications: stats.propagations - base.propagations,
                conflicts: stats.conflicts - base.conflicts,
                num_vars: self.solver.num_vars(),
                num_clauses: self.solver.num_original_clauses(),
                core_vars: cores.len(),
                switched_to_vsids: stats.switched_to_vsids,
                cdg_nodes: 0,
                cdg_edges: 0,
                time: frontier_start.elapsed(),
            });
            if outcome.is_some() {
                break 'frontiers;
            }
        }

        let outcome = outcome.unwrap_or(PropOutcome::Open {
            completed: completed.unwrap_or(0),
        });
        // An extracted proof is only reported after the independent
        // machine check accepts its invariant — soundness is asserted, not
        // assumed.
        if let PropOutcome::Proved { invariant, .. } = &outcome {
            if let Err(err) = check_invariant(self.model, self.bad, invariant) {
                panic!("IC3 proof of `{name}` failed the invariant check: {err}");
            }
        }

        let stats = self.solver.stats();
        let (verdict, retirement_depth) = match outcome {
            PropOutcome::Falsified { depth, trace } => {
                (PropertyVerdict::Falsified { depth, trace }, Some(depth))
            }
            PropOutcome::Proved { depth, invariant } => (
                PropertyVerdict::Proved {
                    depth,
                    invariant_clauses: Some(invariant),
                },
                None,
            ),
            PropOutcome::Open { completed } => (PropertyVerdict::OpenAt { depth: completed }, None),
            PropOutcome::ResourceOut => match completed {
                Some(depth) => (PropertyVerdict::OpenAt { depth }, None),
                None => (PropertyVerdict::Unknown, None),
            },
        };
        let report = PropertyReport {
            name,
            verdict,
            episodes: self.episodes,
            assumption_conflicts: self.assumption_conflicts,
            decisions: stats.decisions,
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            retirement_depth,
            depth_results,
        };
        (report, per_frontier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{check_reachable, OracleVerdict};
    use crate::{OrderingStrategy, ProblemBuilder};
    use rbmc_circuit::Netlist;

    fn counter_model(width: usize, target: u64) -> Model {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let bad = n.bus_eq_const(&bits, target);
        Model::new("counter", n, bad)
    }

    /// Counter that resets to 0 upon reaching `reset_at`; values above
    /// `reset_at` are unreachable.
    fn reset_counter(width: usize, reset_at: u64, target: u64) -> Model {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let inc = n.bus_increment(&bits);
        let at = n.bus_eq_const(&bits, reset_at);
        let next: Vec<Signal> = inc.iter().map(|&s| n.mux(at, Signal::FALSE, s)).collect();
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let bad = n.bus_eq_const(&bits, target);
        Model::new("reset_counter", n, bad)
    }

    fn strategies() -> Vec<OrderingStrategy> {
        vec![
            OrderingStrategy::Standard,
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::RefinedDynamic { divisor: 64 },
        ]
    }

    #[test]
    fn falsifies_at_the_oracle_depth() {
        let model = counter_model(4, 11);
        assert_eq!(check_reachable(&model, 20), OracleVerdict::FailsAt(11));
        for strategy in strategies() {
            let mut engine = Ic3Engine::new(
                counter_model(4, 11),
                BmcOptions {
                    max_depth: 20,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            match engine.run() {
                BmcOutcome::Counterexample { depth, trace } => {
                    assert_eq!(depth, 11, "{strategy:?}");
                    assert!(trace.validate(engine.model()).is_ok(), "{strategy:?}");
                }
                other => panic!("{strategy:?}: expected cex, got {other:?}"),
            }
        }
    }

    #[test]
    fn proves_an_unreachable_value_with_checked_invariant() {
        // 4-bit counter resetting at 10: values 11..15 unreachable.
        for strategy in strategies() {
            let mut engine = Ic3Engine::new(
                reset_counter(4, 10, 13),
                BmcOptions {
                    max_depth: 30,
                    strategy,
                    ..BmcOptions::default()
                },
            );
            let run = engine.run_collecting();
            match &run.properties[0].verdict {
                PropertyVerdict::Proved {
                    depth,
                    invariant_clauses,
                } => {
                    let clauses = invariant_clauses.as_ref().expect("IC3 extracts invariants");
                    // The engine already asserted the check; re-run it here
                    // against the engine's working model as an independent
                    // witness of the test's own expectation.
                    let working = engine.working_model();
                    let bad = working.bad();
                    assert_eq!(check_invariant(working, bad, clauses), Ok(()));
                    assert!(*depth <= 30);
                }
                other => panic!("{strategy:?}: expected proof, got {other}"),
            }
            assert!(matches!(run.outcome, BmcOutcome::BoundReached { .. }));
        }
    }

    #[test]
    fn depth_results_match_bmc_per_depth_verdicts() {
        // The differential currency: IC3's per-frontier sequence equals
        // BMC's per-depth sequence on the shared prefix.
        for target in [6u64, 13] {
            let mut bmc = crate::BmcEngine::new(
                counter_model(4, target),
                BmcOptions {
                    max_depth: 16,
                    ..BmcOptions::default()
                },
            );
            let bmc_run = bmc.run_collecting();
            let bmc_verdicts: Vec<SolveResult> =
                bmc_run.per_depth.iter().map(|d| d.result).collect();
            let mut ic3 = Ic3Engine::new(
                counter_model(4, target),
                BmcOptions {
                    max_depth: 16,
                    strategy: OrderingStrategy::RefinedStatic,
                    ..BmcOptions::default()
                },
            );
            let ic3_run = ic3.run_collecting();
            let shared = bmc_verdicts
                .len()
                .min(ic3_run.properties[0].depth_results.len());
            assert_eq!(
                ic3_run.properties[0].depth_results[..shared],
                bmc_verdicts[..shared],
                "target {target}"
            );
        }
    }

    #[test]
    fn multi_property_mixes_proofs_and_counterexamples() {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..4)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let inc = n.bus_increment(&bits);
        let at10 = n.bus_eq_const(&bits, 10);
        let next: Vec<Signal> = inc.iter().map(|&s| n.mux(at10, Signal::FALSE, s)).collect();
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let reach7 = n.bus_eq_const(&bits, 7);
        let reach13 = n.bus_eq_const(&bits, 13);
        let problem = ProblemBuilder::new("mixed", n)
            .property("reach_7", reach7)
            .property("reach_13", reach13)
            .build();
        let mut engine = Ic3Engine::for_problem(
            problem,
            BmcOptions {
                max_depth: 30,
                strategy: OrderingStrategy::RefinedStatic,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        match &run.property("reach_7").unwrap().verdict {
            PropertyVerdict::Falsified { depth, .. } => assert_eq!(*depth, 7),
            other => panic!("reach_7: expected falsified, got {other}"),
        }
        assert!(matches!(
            run.property("reach_13").unwrap().verdict,
            PropertyVerdict::Proved { .. }
        ));
        assert!(matches!(
            run.outcome,
            BmcOutcome::Counterexample { depth: 7, .. }
        ));
    }

    #[test]
    fn frontier_bound_reports_open() {
        // Deep counterexample (depth 13) with a frontier bound of 4: the
        // run stays open at the bound, exactly like BMC's OpenAt.
        let mut engine = Ic3Engine::new(
            counter_model(4, 13),
            BmcOptions {
                max_depth: 4,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        match &run.properties[0].verdict {
            PropertyVerdict::OpenAt { depth } => assert_eq!(*depth, 4),
            other => panic!("expected open, got {other}"),
        }
    }

    #[test]
    fn cancellation_truncates_the_run() {
        let flag = CancelFlag::new();
        flag.cancel();
        let mut engine = Ic3Engine::new(counter_model(4, 13), BmcOptions::default());
        engine.set_cancel(flag);
        let run = engine.run_collecting();
        assert!(matches!(run.outcome, BmcOutcome::ResourceOut { .. }));
        assert!(matches!(
            run.properties[0].verdict,
            PropertyVerdict::Unknown
        ));
    }

    #[test]
    fn preprocessing_lifts_traces_to_original_coordinates() {
        // A model with dead logic the preprocessor removes: the returned
        // trace must still validate on the *original* netlist.
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..3)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let dead = n.add_latch("dead", LatchInit::Free);
        n.set_next(dead, dead);
        let bad = n.bus_eq_const(&bits, 5);
        let model = Model::new("with_dead", n, bad);
        let mut engine = Ic3Engine::new(model, BmcOptions::default());
        match engine.run() {
            BmcOutcome::Counterexample { depth, trace } => {
                assert_eq!(depth, 5);
                assert!(trace.validate(engine.model()).is_ok());
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }
}
