//! Inductive-invariant extraction and the independent machine check.
//!
//! When IC3 converges (some frame equals its successor), the clauses at and
//! above the fixpoint level form an inductive invariant certifying the
//! proof. The certificate is only as good as its checker, so this module
//! re-verifies every extracted invariant with **three fresh solver
//! queries** that share nothing with the IC3 session (new [`Unroller`], new
//! [`Solver`]s, direct encoding):
//!
//! 1. **Initiation** — `I ⊆ inv`: for each clause `c`, `I ∧ ¬c` is UNSAT.
//! 2. **Consecution** — `inv ∧ T ⇒ inv'`: one unrolled step from any
//!    `inv`-state lands in `inv` (no initial-state constraint).
//! 3. **Safety** — `inv ⇒ ¬bad`: no `inv`-state is bad under any input.
//!
//! Together these imply `G ¬bad` by induction on reachability.

use std::fmt;

use rbmc_circuit::{Node, NodeId, Signal};
use rbmc_cnf::{CnfFormula, Lit};
use rbmc_solver::{SolveResult, Solver, SolverOptions};

use super::frames::Cube;
use crate::{Model, Unroller};

/// One clause of an inductive invariant: a disjunction of "latch at this
/// position has this value" literals (the working model's
/// [`latches()`](rbmc_circuit::Netlist::latches) order).
pub type InvariantClause = Vec<(usize, bool)>;

/// Negates blocked cubes into invariant clauses: cube `⋀ (latch_i = b_i)`
/// becomes clause `⋁ (latch_i = ¬b_i)`.
pub(crate) fn invariant_clauses_from(cubes: &[Cube]) -> Vec<InvariantClause> {
    cubes
        .iter()
        .map(|cube| cube.iter().map(|&(pos, value)| (pos, !value)).collect())
        .collect()
}

/// Why an invariant candidate failed the machine check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantError {
    /// Some initial state falsifies this clause (0-based index).
    NotInitial(usize),
    /// A transition leads from an invariant state out of the invariant.
    NotInductive,
    /// An invariant state satisfies the bad predicate under some input.
    NotSafe,
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantError::NotInitial(i) => {
                write!(f, "invariant clause {i} excludes an initial state")
            }
            InvariantError::NotInductive => {
                write!(f, "invariant is not closed under the transition relation")
            }
            InvariantError::NotSafe => write!(f, "invariant admits a bad state"),
        }
    }
}

/// The literal asserting "latch at `pos` has value `value`" at `frame`.
fn latch_lit(
    unroller: &Unroller<'_>,
    latches: &[NodeId],
    pos: usize,
    value: bool,
    frame: usize,
) -> Lit {
    let var = unroller.var_of(latches[pos], frame);
    if value {
        var.positive()
    } else {
        var.negative()
    }
}

/// Emits the combinational logic of one frame (constant pinning plus every
/// gate), leaving latches and inputs free, and — for `frame ≥ 1` — the
/// transition clauses tying this frame's latches to the previous frame.
fn emit_step_frame(unroller: &Unroller<'_>, frame: usize, formula: &mut CnfFormula) {
    let netlist = unroller.model().netlist();
    formula.add_clause([unroller.var_of(NodeId::CONST, frame).negative()]);
    for id in netlist.node_ids() {
        match netlist.node(id) {
            Node::Latch {
                next: Some(next), ..
            } if frame > 0 => {
                let cur = unroller.var_of(id, frame).positive();
                let prev = unroller.lit_of(*next, frame - 1);
                formula.add_clause([!cur, prev]);
                formula.add_clause([cur, !prev]);
            }
            Node::Gate { .. } => unroller.emit_gate_for(id, frame, formula),
            _ => {}
        }
    }
}

fn solve(formula: &CnfFormula) -> SolveResult {
    Solver::from_formula_with(formula, SolverOptions::default()).solve()
}

/// Machine-checks an invariant candidate against `model`'s transition
/// system and the `bad` predicate, with three independent solver queries
/// (see the module docs). `clauses` is in the model's latch order; the
/// empty conjunction is the invariant *true*, for which only the safety
/// query is non-vacuous (it then demands `bad` be combinationally
/// unsatisfiable).
///
/// # Errors
///
/// Returns the first failing obligation as an [`InvariantError`].
pub fn check_invariant(
    model: &Model,
    bad: Signal,
    clauses: &[InvariantClause],
) -> Result<(), InvariantError> {
    let unroller = Unroller::new(model);
    let latches = model.netlist().latches().clone();

    // 1. Initiation: I ∧ ¬c is UNSAT for every clause c. ¬c pins each of
    // the clause's latches to the literal's complement; the initial-state
    // predicate is the per-latch init units (free latches unconstrained).
    for (i, clause) in clauses.iter().enumerate() {
        let mut formula = CnfFormula::with_vars(unroller.num_vars_at(0));
        for &id in &latches {
            if let Node::Latch { init, .. } = model.netlist().node(id) {
                match init {
                    rbmc_circuit::LatchInit::Zero => {
                        formula.add_clause([unroller.var_of(id, 0).negative()]);
                    }
                    rbmc_circuit::LatchInit::One => {
                        formula.add_clause([unroller.var_of(id, 0).positive()]);
                    }
                    rbmc_circuit::LatchInit::Free => {}
                }
            }
        }
        for &(pos, value) in clause {
            formula.add_clause([latch_lit(&unroller, &latches, pos, !value, 0)]);
        }
        if solve(&formula) != SolveResult::Unsat {
            return Err(InvariantError::NotInitial(i));
        }
    }

    // 2. Consecution: inv ∧ T ∧ ¬inv' is UNSAT. Frame 0 carries the
    // combinational logic (for the next-state functions), frame 1 the
    // latch transitions; ¬inv' is a disjunction over per-clause selectors.
    if !clauses.is_empty() {
        let mut formula = CnfFormula::with_vars(unroller.num_vars_at(1));
        emit_step_frame(&unroller, 0, &mut formula);
        emit_step_frame(&unroller, 1, &mut formula);
        for clause in clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(pos, value)| latch_lit(&unroller, &latches, pos, value, 0))
                .collect();
            formula.add_clause(lits);
        }
        let mut selectors: Vec<Lit> = Vec::with_capacity(clauses.len());
        for clause in clauses {
            // d → ¬c': when d holds, every literal of c is false at frame 1.
            let d = formula.new_var().positive();
            for &(pos, value) in clause {
                formula.add_clause([!d, latch_lit(&unroller, &latches, pos, !value, 1)]);
            }
            selectors.push(d);
        }
        formula.add_clause(selectors);
        if solve(&formula) != SolveResult::Unsat {
            return Err(InvariantError::NotInductive);
        }
    }

    // 3. Safety: inv ∧ bad is UNSAT, inputs free.
    let mut formula = CnfFormula::with_vars(unroller.num_vars_at(0));
    emit_step_frame(&unroller, 0, &mut formula);
    for clause in clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(pos, value)| latch_lit(&unroller, &latches, pos, value, 0))
            .collect();
        formula.add_clause(lits);
    }
    formula.add_clause([unroller.lit_of(bad, 0)]);
    if solve(&formula) != SolveResult::Unsat {
        return Err(InvariantError::NotSafe);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_circuit::{LatchInit, Netlist};

    /// Sticky latch: l' = l, init 0, bad = l. Invariant "¬l" certifies it.
    fn sticky() -> Model {
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Zero);
        n.set_next(l, l);
        Model::new("sticky", n, l)
    }

    #[test]
    fn accepts_a_valid_invariant() {
        let model = sticky();
        let bad = model.bad();
        // Clause: latch 0 has value false.
        assert_eq!(check_invariant(&model, bad, &[vec![(0, false)]]), Ok(()));
    }

    #[test]
    fn rejects_unsafe_and_noninitial_invariants() {
        let model = sticky();
        let bad = model.bad();
        // The empty invariant (true) admits the bad state l=1.
        assert_eq!(
            check_invariant(&model, bad, &[]),
            Err(InvariantError::NotSafe)
        );
        // "l" excludes the initial state l=0.
        assert_eq!(
            check_invariant(&model, bad, &[vec![(0, true)]]),
            Err(InvariantError::NotInitial(0))
        );
    }

    #[test]
    fn rejects_a_noninductive_invariant() {
        // Toggle: l' = ¬l, init 0, bad never (constant false signal is not
        // expressible here, use a second latch). Candidate "¬l" is initial
        // but not inductive (0 → 1 leaves it).
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Zero);
        n.set_next(l, !l);
        let m = n.add_latch("m", LatchInit::Zero);
        n.set_next(m, m);
        let model = Model::new("toggle", n, m);
        let bad = model.bad();
        assert_eq!(
            check_invariant(&model, bad, &[vec![(0, false)], vec![(1, false)]]),
            Err(InvariantError::NotInductive)
        );
    }

    #[test]
    fn negating_cubes_flips_every_literal() {
        let cubes: Vec<Cube> = vec![vec![(0, true), (2, false)]];
        assert_eq!(
            invariant_clauses_from(&cubes),
            vec![vec![(0, false), (2, true)]]
        );
    }
}
