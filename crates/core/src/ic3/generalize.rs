//! Cube generalization from failed-assumption cores, plus the cube/literal
//! arithmetic the queries share.
//!
//! When a relative-induction query `F_{j-1} ∧ ¬s ∧ T ∧ s'` comes back UNSAT,
//! the solver's [`failed_assumptions`](rbmc_solver::Solver::failed_assumptions)
//! name the subset of the primed cube literals the refutation actually used
//! — the per-query analog of the paper's `unsatVars`. Dropping the unused
//! literals blocks a *set* of states instead of one, which is where IC3's
//! convergence comes from. Two repairs keep the generalization sound:
//!
//! - **Empty-core fallback**: a refutation that closes at decision level 0
//!   reports no failed assumptions at all (the conflict is in the permanent
//!   clauses); the full cube is kept in that case.
//! - **Init repair**: the generalized cube must still exclude every initial
//!   state (otherwise the blocking clause would cut `I` out of `F_j`). If
//!   the core dropped all initial-state-conflicting literals, one is added
//!   back from the original cube.

use rbmc_circuit::LatchInit;

use super::frames::Cube;

/// Whether a cube literal `(position, value)` conflicts with the latch's
/// initial value — the literal alone proves the cube excludes `I`.
/// `Free`-initialized latches can take either value initially, so only
/// `Zero`/`One` latches can conflict.
fn conflicts_init(init: LatchInit, value: bool) -> bool {
    match init {
        LatchInit::Zero => value,
        LatchInit::One => !value,
        LatchInit::Free => false,
    }
}

/// Whether `cube` excludes every initial state: some literal pins a latch to
/// the opposite of its (non-free) initial value. Exact for netlists whose
/// initial states are the product of per-latch `Zero`/`One`/`Free` values —
/// the only initial-state shape the circuit layer has.
pub(crate) fn excludes_init(cube: &Cube, inits: &[LatchInit]) -> bool {
    cube.iter()
        .any(|&(pos, value)| conflicts_init(inits[pos], value))
}

/// Shrinks `cube` to the literals named by the query's failed-assumption
/// core (`core_positions`, as latch positions), then repairs:
///
/// - an empty core keeps the full cube (level-0 refutation — see module
///   docs);
/// - if the shrunken cube no longer excludes the initial states, one
///   initial-state-conflicting literal of the original cube is added back
///   (one always exists: the original cube came from a reachability query
///   whose frame excluded `I`, so it conflicts `I` on at least one
///   `Zero`/`One` latch).
///
/// The result is sorted by latch position (the cube invariant).
pub(crate) fn generalize_from_core(
    cube: &Cube,
    core_positions: &[usize],
    inits: &[LatchInit],
) -> Cube {
    if core_positions.is_empty() {
        return cube.clone();
    }
    let mut generalized: Cube = cube
        .iter()
        .copied()
        .filter(|(pos, _)| core_positions.contains(pos))
        .collect();
    if !excludes_init(&generalized, inits) {
        let repair = cube
            .iter()
            .copied()
            .find(|&(pos, value)| conflicts_init(inits[pos], value));
        debug_assert!(
            repair.is_some(),
            "an IC3 obligation cube must exclude the initial states"
        );
        if let Some(lit) = repair {
            generalized.push(lit);
            generalized.sort_unstable();
        } else {
            // Defensive: without a conflicting literal the cube cannot be
            // soundly generalized at all — keep it whole.
            return cube.clone();
        }
    }
    generalized
}

#[cfg(test)]
mod tests {
    use super::*;

    const INITS: &[LatchInit] = &[
        LatchInit::Zero,
        LatchInit::Zero,
        LatchInit::One,
        LatchInit::Free,
    ];

    #[test]
    fn init_exclusion_is_per_literal() {
        // Latch 0 (init 0) held at 1: conflicts.
        assert!(excludes_init(&vec![(0, true)], INITS));
        // Latch 2 (init 1) held at 0: conflicts.
        assert!(excludes_init(&vec![(2, false)], INITS));
        // Everything at its initial value (free latch either way): no.
        assert!(!excludes_init(
            &vec![(0, false), (1, false), (2, true), (3, true)],
            INITS
        ));
        assert!(!excludes_init(&Vec::new(), INITS));
    }

    #[test]
    fn empty_core_keeps_the_full_cube() {
        let cube: Cube = vec![(0, true), (1, false)];
        assert_eq!(generalize_from_core(&cube, &[], INITS), cube);
    }

    #[test]
    fn core_drops_unused_literals() {
        let cube: Cube = vec![(0, true), (1, false), (3, true)];
        // Core cites only latch 0, which conflicts init — no repair needed.
        assert_eq!(generalize_from_core(&cube, &[0], INITS), vec![(0, true)]);
    }

    #[test]
    fn init_repair_restores_a_conflicting_literal() {
        // Core keeps only the free latch: the result would contain the
        // initial state, so the conflicting literal (0, true) comes back.
        let cube: Cube = vec![(0, true), (3, true)];
        assert_eq!(
            generalize_from_core(&cube, &[3], INITS),
            vec![(0, true), (3, true)]
        );
    }
}
