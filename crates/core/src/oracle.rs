//! Explicit-state breadth-first reachability — the ground-truth oracle.
//!
//! For small models (≲ 20 latches + inputs) the state space can be explored
//! exhaustively. The oracle answers exactly the question BMC answers — "is a
//! bad state reachable within `k` steps, and at which minimal depth?" — so
//! the test suites use it to validate verdicts and counterexample depths of
//! every ordering strategy.

use std::collections::HashSet;

use rbmc_circuit::sim::{eval_frame, read_signal};
use rbmc_circuit::{LatchInit, Node};

use crate::Model;

/// The oracle's answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleVerdict {
    /// A bad state is reachable; the minimal counterexample has this length
    /// (a length-0 counterexample is an initial bad state).
    FailsAt(usize),
    /// No bad state is reachable within the explored bound.
    HoldsUpTo(usize),
}

/// Explores the state space breadth-first up to `max_depth` transitions.
///
/// Initial states enumerate every combination of [`LatchInit::Free`]
/// latches. Each BFS level tries every input combination.
///
/// # Panics
///
/// Panics if `inputs + free latches` exceeds 24 or latches exceed 24 (the
/// enumeration would be impractical).
///
/// # Examples
///
/// ```
/// use rbmc_circuit::{LatchInit, Netlist};
/// use rbmc_core::oracle::{check_reachable, OracleVerdict};
/// use rbmc_core::Model;
///
/// let mut n = Netlist::new();
/// let t = n.add_latch("t", LatchInit::Zero);
/// n.set_next(t, !t);
/// let model = Model::new("toggle", n, t);
/// assert_eq!(check_reachable(&model, 10), OracleVerdict::FailsAt(1));
/// ```
pub fn check_reachable(model: &Model, max_depth: usize) -> OracleVerdict {
    let netlist = model.netlist();
    let latches = netlist.latches();
    let inputs = netlist.inputs();
    assert!(latches.len() <= 24, "too many latches for the oracle");
    assert!(inputs.len() <= 24, "too many inputs for the oracle");

    // Enumerate initial states (free latches vary).
    let free_positions: Vec<usize> = latches
        .iter()
        .enumerate()
        .filter(|&(_, &id)| {
            matches!(
                netlist.node(id),
                Node::Latch {
                    init: LatchInit::Free,
                    ..
                }
            )
        })
        .map(|(i, _)| i)
        .collect();
    assert!(free_positions.len() <= 24, "too many free latches");
    let base_state: Vec<bool> = latches
        .iter()
        .map(|&id| {
            matches!(
                netlist.node(id),
                Node::Latch {
                    init: LatchInit::One,
                    ..
                }
            )
        })
        .collect();

    let encode = |state: &[bool]| -> u32 {
        state
            .iter()
            .enumerate()
            .fold(0u32, |acc, (i, &b)| acc | (b as u32) << i)
    };

    let mut frontier: Vec<Vec<bool>> = Vec::new();
    let mut seen: HashSet<u32> = HashSet::new();
    for bits in 0u32..1 << free_positions.len() {
        let mut state = base_state.clone();
        for (j, &pos) in free_positions.iter().enumerate() {
            state[pos] = bits >> j & 1 == 1;
        }
        if seen.insert(encode(&state)) {
            frontier.push(state);
        }
    }

    let num_inputs = inputs.len();
    for depth in 0..=max_depth {
        let mut next_frontier: Vec<Vec<bool>> = Vec::new();
        for state in &frontier {
            for input_bits in 0u32..1 << num_inputs {
                let input_values: Vec<bool> =
                    (0..num_inputs).map(|i| input_bits >> i & 1 == 1).collect();
                let values = eval_frame(netlist, state, &input_values);
                if read_signal(&values, model.bad()) {
                    return OracleVerdict::FailsAt(depth);
                }
                if depth == max_depth {
                    continue; // no need to expand the last level
                }
                let successor: Vec<bool> = latches
                    .iter()
                    .map(|&id| match netlist.node(id) {
                        Node::Latch { next: Some(nx), .. } => read_signal(&values, *nx),
                        _ => unreachable!("latches are connected"),
                    })
                    .collect();
                if seen.insert(encode(&successor)) {
                    next_frontier.push(successor);
                }
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() && depth < max_depth {
            // Fixed point: nothing new is reachable, the property holds for
            // any bound.
            return OracleVerdict::HoldsUpTo(max_depth);
        }
    }
    OracleVerdict::HoldsUpTo(max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_circuit::{Netlist, Signal};

    fn counter_model(width: usize, target: u64) -> Model {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let bad = n.bus_eq_const(&bits, target);
        Model::new("counter", n, bad)
    }

    #[test]
    fn counter_fails_at_target() {
        let model = counter_model(4, 9);
        assert_eq!(check_reachable(&model, 20), OracleVerdict::FailsAt(9));
    }

    #[test]
    fn unreachable_value_holds() {
        // 3-bit counter wrapping at 8 never equals 9.
        let model = counter_model(3, 9);
        assert_eq!(check_reachable(&model, 30), OracleVerdict::HoldsUpTo(30));
    }

    #[test]
    fn bound_cuts_off_detection() {
        let model = counter_model(4, 9);
        assert_eq!(check_reachable(&model, 5), OracleVerdict::HoldsUpTo(5));
    }

    #[test]
    fn free_latch_initial_states_explored() {
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Free);
        n.set_next(l, l);
        let model = Model::new("free", n, l);
        assert_eq!(check_reachable(&model, 3), OracleVerdict::FailsAt(0));
    }

    #[test]
    fn inputs_are_quantified() {
        // bad := input AND latch; latch := latch OR input (sticky).
        let mut n = Netlist::new();
        let i = n.add_input("i");
        let l = n.add_latch("l", LatchInit::Zero);
        let sticky = n.or2(l, i);
        n.set_next(l, sticky);
        let bad = n.and2(i, l);
        let model = Model::new("sticky", n, bad);
        // Needs i=1 at step 0 (sets latch), then i=1 at step 1 -> bad at 1.
        assert_eq!(check_reachable(&model, 5), OracleVerdict::FailsAt(1));
    }
}
