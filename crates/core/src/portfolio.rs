//! Portfolio racing: independent engine configurations race on the whole
//! problem, first verdict wins, losers are cancelled.
//!
//! Where the sharded parallel modes split *one* configured run across
//! workers, a portfolio exploits a different observation of the paper's
//! Table 1: no single decision-ordering regime dominates every instance
//! (`bmc` wins some rows, `sta`/`dyn` others), and which one wins is hard
//! to predict upfront. Racing the regimes buys the per-instance minimum —
//! at the cost of redundant work on the losers.
//!
//! Soundness is the same argument as the relaxed shard grains: every
//! member is a complete, budget-free engine, so whichever finishes first
//! reports the semantic verdict of the very instances the sequential
//! oracle solves — falsification depths and validated traces match in
//! every race outcome. Reproducibility is weaker still: *which member*
//! wins depends on scheduling, and with a conflict budget the truncation
//! point is the winner's. Member 0 is always the caller's own
//! configuration, so a one-worker portfolio degenerates to exactly the
//! sequential run.
//!
//! Losers are stopped through the same cooperative [`CancelFlag`] the
//! relaxed grains use: the winner flips every other member's flag, their
//! solvers return [`Unknown`](rbmc_solver::SolveResult::Unknown) at the
//! next conflict/decision boundary, and each cancelled run truncates
//! through the ordinary budget machinery — no thread is ever killed.
//!
//! [`PortfolioMode::Full`] also races along the *engine* axis: besides the
//! BMC strategy × reuse grid, the roster carries an [`Ic3Engine`] member
//! (core-ordered assumptions) and a k-induction member. The asymmetry is
//! deliberate — BMC hunts bugs, the provers hunt proofs — and it needs an
//! eligibility rule: a prover may only claim the race when *every* property
//! got a conclusive verdict ([`Falsified`](crate::PropertyVerdict::Falsified)
//! or [`Proved`](crate::PropertyVerdict::Proved)); a prover that merely ran
//! out of frontier reports [`MemberState::Incomplete`] and the race goes
//! on. BMC members stay always-eligible (they are the authority on the
//! bounded question the portfolio was asked), and member 0 is always the
//! base BMC configuration, so a winner still always exists.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rbmc_solver::CancelFlag;

use crate::engine::{BmcEngine, BmcOptions, BmcRun, OrderingStrategy, SolverReuse};
use crate::engine_trait::{Engine, EngineKind};
use crate::ic3::Ic3Engine;
use crate::induction::InductionEngine;
use crate::parallel::striped_map;
use crate::VerificationProblem;

/// One racing configuration: a verification engine, an ordering strategy,
/// and a solver provisioning regime. Everything else is inherited from the
/// base [`BmcOptions`]. The strategy applies to every engine (BMC's
/// per-depth varRank, IC3's per-frame core ordering, induction's base
/// cases); the reuse regime is meaningful for BMC only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PortfolioMember {
    /// The verification engine this member runs.
    pub engine: EngineKind,
    /// The decision-ordering scheme this member runs.
    pub strategy: OrderingStrategy,
    /// The solver provisioning regime this member runs.
    pub reuse: SolverReuse,
}

impl PortfolioMember {
    /// Short name used in reports: `strategy/reuse` for BMC members
    /// ("dyn/session"), `ic3/strategy` for IC3, "induction" for induction.
    pub fn label(self) -> String {
        match self.engine {
            EngineKind::Bmc => format!("{}/{}", self.strategy.label(), self.reuse.label()),
            EngineKind::Ic3 => format!("ic3/{}", self.strategy.label()),
            EngineKind::Induction => "induction".to_string(),
        }
    }
}

/// Which axis of the configuration space a portfolio races along.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PortfolioMode {
    /// Race the ordering strategies of Table 1 (`dyn`, `sta`, `bmc`) under
    /// the base options' solver-reuse regime.
    #[default]
    Strategies,
    /// Race [`SolverReuse::Session`] against [`SolverReuse::Fresh`] under
    /// the base options' strategy.
    ReuseRegimes,
    /// Race the full strategy × reuse product, plus the proving engines:
    /// an IC3 member (core-ordered assumptions) and a k-induction member
    /// race the BMC grid for an unbounded answer.
    Full,
}

impl PortfolioMode {
    /// Short name used by the CLI tools and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            PortfolioMode::Strategies => "strategies",
            PortfolioMode::ReuseRegimes => "reuse",
            PortfolioMode::Full => "full",
        }
    }

    /// Parses a mode label as accepted by the CLI (`--portfolio-mode`).
    pub fn parse(label: &str) -> Option<PortfolioMode> {
        match label {
            "strategies" | "strategy" => Some(PortfolioMode::Strategies),
            "reuse" | "reuse-regimes" => Some(PortfolioMode::ReuseRegimes),
            "full" => Some(PortfolioMode::Full),
            _ => None,
        }
    }

    /// The racing roster for a base configuration. Member 0 is always
    /// `(base.strategy, base.reuse)` itself — so with one worker the
    /// portfolio degenerates to exactly the base sequential run — and the
    /// rest of the roster is deduplicated against it.
    pub fn members_for(self, base: &BmcOptions) -> Vec<PortfolioMember> {
        let strategies = [
            OrderingStrategy::RefinedDynamic { divisor: 64 },
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::Standard,
        ];
        let reuses = [SolverReuse::Session, SolverReuse::Fresh];
        let mut members = vec![PortfolioMember {
            engine: EngineKind::Bmc,
            strategy: base.strategy,
            reuse: base.reuse,
        }];
        let push = |m: PortfolioMember, members: &mut Vec<PortfolioMember>| {
            if !members.contains(&m) {
                members.push(m);
            }
        };
        match self {
            PortfolioMode::Strategies => {
                for strategy in strategies {
                    push(
                        PortfolioMember {
                            engine: EngineKind::Bmc,
                            strategy,
                            reuse: base.reuse,
                        },
                        &mut members,
                    );
                }
            }
            PortfolioMode::ReuseRegimes => {
                for reuse in reuses {
                    push(
                        PortfolioMember {
                            engine: EngineKind::Bmc,
                            strategy: base.strategy,
                            reuse,
                        },
                        &mut members,
                    );
                }
            }
            PortfolioMode::Full => {
                for strategy in strategies {
                    for reuse in reuses {
                        push(
                            PortfolioMember {
                                engine: EngineKind::Bmc,
                                strategy,
                                reuse,
                            },
                            &mut members,
                        );
                    }
                }
                // The provers: IC3 under the core-ordered strategy, and
                // k-induction under the base strategy (its base cases are
                // BMC runs). Reuse is pinned to the base regime — neither
                // prover reads it.
                push(
                    PortfolioMember {
                        engine: EngineKind::Ic3,
                        strategy: OrderingStrategy::RefinedStatic,
                        reuse: base.reuse,
                    },
                    &mut members,
                );
                push(
                    PortfolioMember {
                        engine: EngineKind::Induction,
                        strategy: base.strategy,
                        reuse: base.reuse,
                    },
                    &mut members,
                );
            }
        }
        members
    }
}

/// How one member's race ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// First to finish: its [`BmcRun`] is the portfolio's verdict.
    Won,
    /// Finished complete, but after the winner had already claimed the race.
    Lost,
    /// Stopped early by the winner's cancellation.
    Cancelled,
    /// Finished uncancelled, but without a conclusive verdict
    /// ([`Falsified`](crate::PropertyVerdict::Falsified) or
    /// [`Proved`](crate::PropertyVerdict::Proved)) for every property —
    /// a prover that ran out of frontier. Not eligible to claim the race.
    Incomplete,
    /// Never started: the race was already decided when a worker reached it.
    Skipped,
}

/// One member's entry in the post-race report.
#[derive(Clone, Debug)]
pub struct MemberReport {
    /// The configuration this member raced.
    pub member: PortfolioMember,
    /// How its race ended.
    pub state: MemberState,
    /// Wall-clock time the member ran (zero when skipped).
    pub time: Duration,
}

/// The outcome of a portfolio race.
#[derive(Clone, Debug)]
pub struct PortfolioRun {
    /// Index into [`PortfolioRun::members`] of the winning member.
    pub winner: usize,
    /// The winner's complete run — verdicts, traces, per-depth stats.
    pub run: BmcRun,
    /// Every member's fate, in roster order.
    pub members: Vec<MemberReport>,
    /// Wall clock of the whole race.
    pub total_time: Duration,
}

/// Races `mode`'s roster on `problem` across up to `jobs` workers and
/// returns the first complete verdict. The base `options` supply member 0
/// and everything the roster does not override; `options.parallel` is
/// ignored (each member runs its own sequential engine — the race *is* the
/// parallelism).
pub fn run_portfolio(
    problem: &VerificationProblem,
    options: &BmcOptions,
    mode: PortfolioMode,
    jobs: usize,
) -> PortfolioRun {
    let race_start = Instant::now();
    let members = mode.members_for(options);
    let flags: Vec<CancelFlag> = members.iter().map(|_| CancelFlag::new()).collect();
    let winner = AtomicUsize::new(usize::MAX);

    let mut results = striped_map(members.len(), jobs.max(1), |_, i| {
        let member_start = Instant::now();
        if winner.load(Ordering::Acquire) != usize::MAX {
            return (None, MemberState::Skipped, Duration::ZERO);
        }
        let member_options = BmcOptions {
            strategy: members[i].strategy,
            reuse: members[i].reuse,
            parallel: None,
            ..*options
        };
        let mut engine: Box<dyn Engine> = match members[i].engine {
            EngineKind::Bmc => Box::new(BmcEngine::for_problem(problem.clone(), member_options)),
            EngineKind::Ic3 => Box::new(Ic3Engine::for_problem(problem.clone(), member_options)),
            EngineKind::Induction => Box::new(InductionEngine::for_problem(
                problem.clone(),
                member_options,
            )),
        };
        engine.set_cancel(flags[i].clone());
        let run = engine.run_collecting();
        // Eligibility: BMC answers the bounded question and always may
        // claim; a prover claims only a fully conclusive answer.
        let eligible = members[i].engine == EngineKind::Bmc
            || run.properties.iter().all(|p| p.verdict.is_conclusive());
        let state = if flags[i].is_cancelled() {
            MemberState::Cancelled
        } else if !eligible {
            MemberState::Incomplete
        } else if winner
            .compare_exchange(usize::MAX, i, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            for (j, flag) in flags.iter().enumerate() {
                if j != i {
                    flag.cancel();
                }
            }
            MemberState::Won
        } else {
            MemberState::Lost
        };
        (Some(run), state, member_start.elapsed())
    });

    // A winner always exists: member 0 is always an always-eligible BMC
    // member, and it finishes either uncancelled (its CAS wins or someone
    // else's did first) or cancelled (which only a winner does).
    let winner = winner.load(Ordering::Acquire);
    assert_ne!(winner, usize::MAX, "a portfolio race always has a winner");
    let run = results[winner]
        .0
        .take()
        .expect("the winning member produced a run");
    let members = members
        .into_iter()
        .zip(&results)
        .map(|(member, (_, state, time))| MemberReport {
            member,
            state: *state,
            time: *time,
        })
        .collect();
    PortfolioRun {
        winner,
        run,
        members,
        total_time: race_start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BmcOutcome;
    use crate::ProblemBuilder;
    use rbmc_circuit::{LatchInit, Netlist, Signal};

    fn counter_problem(width: usize, targets: &[u64]) -> VerificationProblem {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let props: Vec<(String, Signal)> = targets
            .iter()
            .map(|&t| (format!("reach_{t}"), n.bus_eq_const(&bits, t)))
            .collect();
        let mut builder = ProblemBuilder::new("portfolio_counter", n);
        for (name, sig) in props {
            builder = builder.property(&name, sig);
        }
        builder.build()
    }

    fn base_options() -> BmcOptions {
        BmcOptions {
            max_depth: 10,
            ..BmcOptions::default()
        }
    }

    #[test]
    fn member_zero_is_the_base_configuration() {
        let base = base_options();
        for mode in [
            PortfolioMode::Strategies,
            PortfolioMode::ReuseRegimes,
            PortfolioMode::Full,
        ] {
            let members = mode.members_for(&base);
            assert_eq!(members[0].strategy, base.strategy, "{mode:?}");
            assert_eq!(members[0].reuse, base.reuse, "{mode:?}");
            // Deduplicated: the base never appears twice.
            let dup = members
                .iter()
                .enumerate()
                .any(|(i, m)| members[..i].contains(m));
            assert!(!dup, "{mode:?} roster has duplicates: {members:?}");
        }
        assert_eq!(PortfolioMode::Full.members_for(&base).len(), 8);
    }

    #[test]
    fn full_roster_races_the_proving_engines_too() {
        let members = PortfolioMode::Full.members_for(&base_options());
        assert!(members
            .iter()
            .any(|m| m.engine == EngineKind::Ic3 && m.label() == "ic3/sta"));
        assert!(members
            .iter()
            .any(|m| m.engine == EngineKind::Induction && m.label() == "induction"));
        // The bounded modes stay pure BMC.
        for mode in [PortfolioMode::Strategies, PortfolioMode::ReuseRegimes] {
            assert!(mode
                .members_for(&base_options())
                .iter()
                .all(|m| m.engine == EngineKind::Bmc));
        }
    }

    #[test]
    fn provers_only_win_with_fully_conclusive_verdicts() {
        // Holding property (reset counter never reaches 13): whoever wins,
        // the race must report no counterexample, and a prover winner must
        // have proved everything it claimed.
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..4)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let inc = n.bus_increment(&bits);
        let at10 = n.bus_eq_const(&bits, 10);
        let next: Vec<Signal> = inc.iter().map(|&s| n.mux(at10, Signal::FALSE, s)).collect();
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let bad = n.bus_eq_const(&bits, 13);
        let problem = ProblemBuilder::new("holds", n)
            .property("reach_13", bad)
            .build();
        for jobs in [1, 4] {
            let race = run_portfolio(&problem, &base_options(), PortfolioMode::Full, jobs);
            assert!(
                matches!(race.run.outcome, BmcOutcome::BoundReached { .. }),
                "j{jobs}: {:?}",
                race.run.outcome
            );
            let winner = &race.members[race.winner];
            if winner.member.engine != EngineKind::Bmc {
                assert!(
                    race.run
                        .properties
                        .iter()
                        .all(|p| p.verdict.is_conclusive()),
                    "j{jobs}: prover winner with inconclusive verdicts"
                );
            }
            // Incomplete is a prover-only state.
            for m in &race.members {
                if m.state == MemberState::Incomplete {
                    assert_ne!(m.member.engine, EngineKind::Bmc, "j{jobs}");
                }
            }
        }
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in [
            PortfolioMode::Strategies,
            PortfolioMode::ReuseRegimes,
            PortfolioMode::Full,
        ] {
            assert_eq!(PortfolioMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(PortfolioMode::parse("nope"), None);
    }

    #[test]
    fn race_verdict_matches_sequential_oracle() {
        let problem = counter_problem(4, &[7, 13]);
        let mut oracle = BmcEngine::for_problem(problem.clone(), base_options());
        let oracle_run = oracle.run_collecting();
        for mode in [
            PortfolioMode::Strategies,
            PortfolioMode::ReuseRegimes,
            PortfolioMode::Full,
        ] {
            for jobs in [1, 2, 4] {
                let race = run_portfolio(&problem, &base_options(), mode, jobs);
                assert!(
                    matches!(
                        race.run.outcome,
                        BmcOutcome::Counterexample { depth: 7, .. }
                    ),
                    "{mode:?} j{jobs}: {:?}",
                    race.run.outcome
                );
                for (p, q) in race.run.properties.iter().zip(&oracle_run.properties) {
                    assert_eq!(
                        p.retirement_depth, q.retirement_depth,
                        "{mode:?} j{jobs} property {}",
                        p.name
                    );
                }
                assert_eq!(
                    race.members[race.winner].state,
                    MemberState::Won,
                    "{mode:?} j{jobs}"
                );
                let won = race
                    .members
                    .iter()
                    .filter(|m| m.state == MemberState::Won)
                    .count();
                assert_eq!(won, 1, "{mode:?} j{jobs}: exactly one winner");
            }
        }
    }

    #[test]
    fn single_worker_race_is_won_by_member_zero() {
        // With one worker the members run in roster order, so member 0 (the
        // base configuration) always finishes — and therefore wins — first,
        // and every later member sees the decided race and is skipped or
        // cancelled.
        let problem = counter_problem(4, &[9]);
        let race = run_portfolio(&problem, &base_options(), PortfolioMode::Full, 1);
        assert_eq!(race.winner, 0);
        assert!(race
            .members
            .iter()
            .skip(1)
            .all(|m| m.state == MemberState::Skipped));
        assert!(matches!(
            race.run.outcome,
            BmcOutcome::Counterexample { depth: 9, .. }
        ));
    }
}
