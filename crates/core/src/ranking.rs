//! The `varRank` score table of §3.2.
//!
//! After instance `j` is proven UNSAT, every variable in its unsatisfiable
//! core receives additional weight. The paper's choice (here
//! [`Weighting::Linear`]) is
//!
//! ```text
//! bmc_score(x) = Σ_{1≤j≤k} in_unsat(x, j) · j
//! ```
//!
//! so recent cores — better correlated with the next instance — weigh more,
//! while no single core is trusted exclusively. The [`Weighting::Uniform`]
//! and [`Weighting::LastOnly`] variants exist for the ablation benches.

use std::collections::HashMap;

use rbmc_cnf::Var;

/// How core membership at each depth contributes to `bmc_score` (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Weighting {
    /// The paper's scheme: instance `j` contributes weight `j` (1-based).
    #[default]
    Linear,
    /// Every past core contributes weight 1.
    Uniform,
    /// Only the most recent core matters (scores reset each instance).
    LastOnly,
}

impl Weighting {
    /// Whether [`VarRank::update`] applications commute under this scheme.
    ///
    /// [`Weighting::Linear`] and [`Weighting::Uniform`] add a weight that
    /// depends only on the update's own depth, so applying a fixed multiset
    /// of `(core, depth)` updates in **any order** yields the same score
    /// table — the property the relaxed parallel modes rely on when workers
    /// commit core unions as they finish instead of in depth order.
    /// [`Weighting::LastOnly`] clears the table on every update, so its
    /// result depends on which update came last; relaxed runs still produce
    /// sound verdicts under it (the ranking is only a decision heuristic),
    /// but the final table is scheduling-dependent.
    pub fn is_commutative(self) -> bool {
        !matches!(self, Weighting::LastOnly)
    }
}

/// How [`VarRank`] physically stores scores.
///
/// Cores cite a small fraction of a deep unrolling's variables, so a dense
/// `Vec<u64>` indexed by variable (linear in `depth × netlist`) wastes most
/// of its length on zeros. The table therefore starts as a hash map of only
/// the non-zero entries and **promotes itself to dense storage** when the
/// occupancy crosses [`DENSE_PROMOTION_DIVISOR`] (at that density the flat
/// array is both smaller and faster). The representation is an internal
/// detail: every observable ([`VarRank::score`], [`VarRank::snapshot`], …)
/// is identical in both forms, and [`Weighting::LastOnly`] — which clears
/// the table on every update — resets to the sparse form each time.
#[derive(Clone, Debug)]
enum RankStore {
    /// Only non-zero entries, keyed by variable index.
    Sparse(HashMap<usize, u64>),
    /// Flat array indexed by variable (the original representation).
    Dense(Vec<u64>),
}

impl Default for RankStore {
    fn default() -> RankStore {
        RankStore::Sparse(HashMap::new())
    }
}

/// Promote sparse → dense when more than `1/DENSE_PROMOTION_DIVISOR` of the
/// index range is occupied: beyond that a flat `u64` array is smaller than
/// the hash map's per-entry overhead.
const DENSE_PROMOTION_DIVISOR: usize = 4;

/// The mutable `varRank` list of Fig. 5.
///
/// Indexed by the frame-stable CNF variables of the
/// [`Unroller`](crate::Unroller); grows on demand as deeper instances add
/// variables. Storage is sparse until the table fills up (see
/// [`VarRank::is_sparse`]), so a deep unrolling whose cores touch few
/// variables costs memory proportional to the cores, not the encoding.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::Var;
/// use rbmc_core::{VarRank, Weighting};
///
/// let mut rank = VarRank::new(Weighting::Linear);
/// rank.update(&[Var::new(0), Var::new(2)], 0); // core of instance k=0
/// rank.update(&[Var::new(2)], 1);              // core of instance k=1
/// // Weights are (k+1): x0 got 1, x2 got 1 + 2 = 3.
/// assert_eq!(rank.score(Var::new(0)), 1);
/// assert_eq!(rank.score(Var::new(2)), 3);
/// assert_eq!(rank.score(Var::new(1)), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarRank {
    store: RankStore,
    /// One past the highest variable index ever credited (the length the
    /// dense form has / would have).
    len: usize,
    weighting: Weighting,
    updates: usize,
}

impl VarRank {
    /// Creates an empty ranking.
    pub fn new(weighting: Weighting) -> VarRank {
        VarRank {
            store: RankStore::default(),
            len: 0,
            weighting,
            updates: 0,
        }
    }

    /// The paper's `update_ranking`: credits every variable of the core of
    /// the depth-`k` instance. In a multi-property run the engine passes the
    /// deduplicated **union** of the open properties' cores at that depth,
    /// so one table serves every property's next episode (each variable is
    /// credited once per depth regardless of how many cores cite it).
    ///
    /// Depths are 0-based here; the contribution is `k + 1` so the first
    /// instance still counts (the paper writes the sum 1-based).
    pub fn update(&mut self, core_vars: &[Var], depth: usize) {
        let weight = match self.weighting {
            Weighting::Linear => depth as u64 + 1,
            Weighting::Uniform => 1,
            Weighting::LastOnly => {
                self.store = RankStore::default();
                self.len = 0;
                1
            }
        };
        for &v in core_vars {
            let index = v.index();
            self.len = self.len.max(index + 1);
            match &mut self.store {
                RankStore::Sparse(map) => {
                    *map.entry(index).or_insert(0) += weight;
                }
                RankStore::Dense(scores) => {
                    if index >= scores.len() {
                        scores.resize(index + 1, 0);
                    }
                    scores[index] += weight;
                }
            }
        }
        if let RankStore::Sparse(map) = &self.store {
            if map.len() * DENSE_PROMOTION_DIVISOR >= self.len && self.len > 0 {
                let mut scores = vec![0u64; self.len];
                for (&index, &score) in map {
                    scores[index] = score;
                }
                self.store = RankStore::Dense(scores);
            }
        }
        self.updates += 1;
    }

    /// Commit-order variant of [`VarRank::update`] for parallel runs: takes
    /// the per-property cores of **one depth** (each already sorted), forms
    /// their deduplicated union, and applies a single depth-`k` update —
    /// exactly the `unsatVars` the sequential engine would have passed. The
    /// parallel dispatch layer calls this once per depth, lowest depth
    /// first, so the final table is independent of worker scheduling.
    /// Returns the union size (0 means no update was applied).
    pub fn update_union<'a>(
        &mut self,
        cores: impl IntoIterator<Item = &'a [Var]>,
        depth: usize,
    ) -> usize {
        let mut union: Vec<Var> = cores.into_iter().flatten().copied().collect();
        union.sort_unstable();
        union.dedup();
        if !union.is_empty() {
            self.update(&union, depth);
        }
        union.len()
    }

    /// The accumulated `bmc_score` of a variable.
    pub fn score(&self, var: Var) -> u64 {
        match &self.store {
            RankStore::Sparse(map) => map.get(&var.index()).copied().unwrap_or(0),
            RankStore::Dense(scores) => scores.get(var.index()).copied().unwrap_or(0),
        }
    }

    /// A dense copy of the score table (what
    /// [`Solver::set_var_ranking`](rbmc_solver::Solver::set_var_ranking)
    /// consumes), of length one past the highest credited variable.
    /// Variables beyond the end score 0.
    pub fn snapshot(&self) -> Vec<u64> {
        match &self.store {
            RankStore::Sparse(map) => {
                let mut scores = vec![0u64; self.len];
                for (&index, &score) in map {
                    scores[index] = score;
                }
                scores
            }
            RankStore::Dense(scores) => {
                let mut scores = scores.clone();
                scores.resize(self.len, 0);
                scores
            }
        }
    }

    /// Number of `update` calls so far (i.e. UNSAT instances consumed).
    pub fn num_updates(&self) -> usize {
        self.updates
    }

    /// Number of variables with a non-zero score.
    pub fn num_ranked(&self) -> usize {
        match &self.store {
            RankStore::Sparse(map) => map.len(),
            RankStore::Dense(scores) => scores.iter().filter(|&&s| s > 0).count(),
        }
    }

    /// Number of score entries physically stored (the space the table
    /// occupies: hash entries when sparse, array length when dense).
    pub fn num_entries(&self) -> usize {
        match &self.store {
            RankStore::Sparse(map) => map.len(),
            RankStore::Dense(scores) => scores.len(),
        }
    }

    /// Approximate heap footprint of the table in bytes (a stats metric,
    /// not an allocator measurement: hash entries are costed at
    /// key + value + bucket overhead, dense entries at one `u64`).
    pub fn approx_bytes(&self) -> usize {
        match &self.store {
            // usize key + u64 value + ~half again for bucket overhead.
            RankStore::Sparse(map) => map.len() * 24,
            RankStore::Dense(scores) => scores.len() * 8,
        }
    }

    /// Whether the table is currently in its sparse (hash) form.
    pub fn is_sparse(&self) -> bool {
        matches!(self.store, RankStore::Sparse(_))
    }

    /// The weighting scheme in use.
    pub fn weighting(&self) -> Weighting {
        self.weighting
    }

    /// Structural self-check of the table: the current representation must
    /// be internally consistent (sparse keys in bounds and non-zero, dense
    /// storage no longer than the advertised length), and every observable
    /// — [`VarRank::score`], [`VarRank::snapshot`], [`VarRank::num_ranked`]
    /// — must agree with a freshly materialized dense view, which is the
    /// sparse/dense equivalence contract the promotion machinery promises.
    ///
    /// O(len); called at depth boundaries by the engine's
    /// `debug-invariants` builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        match &self.store {
            RankStore::Sparse(map) => {
                for (&index, &score) in map {
                    if index >= self.len {
                        return Err(format!(
                            "rank: sparse key {index} beyond advertised length {}",
                            self.len
                        ));
                    }
                    if score == 0 {
                        return Err(format!("rank: sparse entry {index} stores a zero score"));
                    }
                }
            }
            RankStore::Dense(scores) => {
                if scores.len() > self.len {
                    return Err(format!(
                        "rank: dense storage of {} entries exceeds advertised length {}",
                        scores.len(),
                        self.len
                    ));
                }
            }
        }
        let snapshot = self.snapshot();
        if snapshot.len() != self.len {
            return Err(format!(
                "rank: snapshot length {} != advertised length {}",
                snapshot.len(),
                self.len
            ));
        }
        let mut nonzero = 0usize;
        for (index, &score) in snapshot.iter().enumerate() {
            if self.score(Var::new(index)) != score {
                return Err(format!(
                    "rank: score({index}) = {} disagrees with snapshot {score}",
                    self.score(Var::new(index))
                ));
            }
            if score > 0 {
                nonzero += 1;
            }
        }
        if nonzero != self.num_ranked() {
            return Err(format!(
                "rank: num_ranked() = {} but the snapshot has {nonzero} non-zero scores",
                self.num_ranked()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(ids: &[usize]) -> Vec<Var> {
        ids.iter().map(|&i| Var::new(i)).collect()
    }

    #[test]
    fn linear_weights_recent_cores_more() {
        let mut rank = VarRank::new(Weighting::Linear);
        rank.update(&vars(&[0, 1]), 0);
        rank.update(&vars(&[1, 2]), 1);
        rank.update(&vars(&[2]), 2);
        assert_eq!(rank.score(Var::new(0)), 1);
        assert_eq!(rank.score(Var::new(1)), 1 + 2);
        assert_eq!(rank.score(Var::new(2)), 2 + 3);
        assert_eq!(rank.num_updates(), 3);
        assert_eq!(rank.num_ranked(), 3);
    }

    #[test]
    fn uniform_ignores_depth() {
        let mut rank = VarRank::new(Weighting::Uniform);
        rank.update(&vars(&[0]), 0);
        rank.update(&vars(&[0]), 9);
        assert_eq!(rank.score(Var::new(0)), 2);
    }

    #[test]
    fn last_only_resets() {
        let mut rank = VarRank::new(Weighting::LastOnly);
        rank.update(&vars(&[0, 1]), 0);
        rank.update(&vars(&[1]), 1);
        assert_eq!(rank.score(Var::new(0)), 0);
        assert_eq!(rank.score(Var::new(1)), 1);
    }

    #[test]
    fn update_union_is_one_deduplicated_update() {
        let mut merged = VarRank::new(Weighting::Linear);
        let a = vars(&[0, 2]);
        let b = vars(&[2, 3]);
        let n = merged.update_union([a.as_slice(), b.as_slice()], 1);
        assert_eq!(n, 3);
        // One update, each variable credited once, with the depth-1 weight.
        let mut reference = VarRank::new(Weighting::Linear);
        reference.update(&vars(&[0, 2, 3]), 1);
        assert_eq!(merged.snapshot(), reference.snapshot());
        assert_eq!(merged.num_updates(), 1);
        // An empty union applies no update at all.
        assert_eq!(merged.update_union([], 2), 0);
        assert_eq!(merged.num_updates(), 1);
    }

    #[test]
    fn sparse_store_promotes_to_dense_by_density() {
        // A single far-out variable keeps the table sparse…
        let mut rank = VarRank::new(Weighting::Linear);
        rank.update(&vars(&[9999]), 0);
        assert!(rank.is_sparse());
        assert_eq!(rank.num_entries(), 1);
        assert_eq!(rank.snapshot().len(), 10_000);
        // …while a dense block of credits crosses the promotion threshold.
        let mut rank = VarRank::new(Weighting::Linear);
        let block: Vec<Var> = (0..64).map(Var::new).collect();
        rank.update(&block, 0);
        assert!(!rank.is_sparse());
        assert_eq!(rank.num_entries(), 64);
        assert_eq!(rank.num_ranked(), 64);
    }

    #[test]
    fn sparse_and_dense_forms_agree_on_every_observable() {
        // Same update batch; one table driven over the promotion threshold
        // first, the other kept sparse. Scores and snapshots must agree
        // with a plain dense reference regardless of representation.
        let batch = update_batch();
        let mut reference: Vec<u64> = Vec::new();
        let mut rank = VarRank::new(Weighting::Linear);
        for (core, depth) in &batch {
            rank.update(core, *depth);
            for v in core {
                if v.index() >= reference.len() {
                    reference.resize(v.index() + 1, 0);
                }
                reference[v.index()] += *depth as u64 + 1;
            }
        }
        assert_eq!(rank.snapshot(), reference);
        for (i, &score) in reference.iter().enumerate() {
            assert_eq!(rank.score(Var::new(i)), score);
        }
        assert!(rank.approx_bytes() > 0);
    }

    #[test]
    fn last_only_resets_to_sparse() {
        let mut rank = VarRank::new(Weighting::LastOnly);
        let block: Vec<Var> = (0..64).map(Var::new).collect();
        rank.update(&block, 0);
        assert!(!rank.is_sparse(), "dense after a full block");
        rank.update(&vars(&[70_000]), 1);
        assert!(rank.is_sparse(), "cleared table restarts sparse");
        assert_eq!(rank.num_entries(), 1);
        assert_eq!(rank.score(Var::new(3)), 0);
    }

    #[test]
    fn unknown_vars_score_zero() {
        let rank = VarRank::new(Weighting::Linear);
        assert_eq!(rank.score(Var::new(1000)), 0);
        assert_eq!(rank.num_ranked(), 0);
    }

    /// The update multiset the commutativity tests permute: per-depth core
    /// unions with overlapping variables, as a relaxed run would commit them.
    fn update_batch() -> Vec<(Vec<Var>, usize)> {
        vec![
            (vars(&[0, 2, 5]), 0),
            (vars(&[1, 2]), 1),
            (vars(&[2, 3, 5]), 2),
            (vars(&[0, 4]), 3),
            (vars(&[5]), 4),
        ]
    }

    /// Every permutation of a 5-update batch (120 orders — the exhaustive
    /// version of what thread scheduling samples).
    fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
        if items.len() <= 1 {
            return vec![items.to_vec()];
        }
        let mut out = Vec::new();
        for i in 0..items.len() {
            let mut rest = items.to_vec();
            let head = rest.remove(i);
            for mut tail in permutations(&rest) {
                tail.insert(0, head.clone());
                out.push(tail);
            }
        }
        out
    }

    #[test]
    fn commutative_weightings_are_order_invariant() {
        // The soundness lemma the relaxed parallel grains lean on: for the
        // Linear and Uniform schemes, applying a fixed multiset of
        // (core, depth) updates in any order yields the same score table.
        let batch = update_batch();
        for weighting in [Weighting::Linear, Weighting::Uniform] {
            assert!(weighting.is_commutative());
            let mut reference = VarRank::new(weighting);
            for (core, depth) in &batch {
                reference.update(core, *depth);
            }
            for order in permutations(&batch) {
                let mut rank = VarRank::new(weighting);
                for (core, depth) in &order {
                    rank.update(core, *depth);
                }
                assert_eq!(
                    rank.snapshot(),
                    reference.snapshot(),
                    "{weighting:?} diverged under order {order:?}"
                );
            }
        }
    }

    #[test]
    fn permuted_updates_induce_identical_decision_sequences() {
        // Stronger than table equality: the full decision sequence the
        // refined ordering derives from the table (bmc_score primary,
        // deterministic tiebreak) is identical under every update order —
        // so a relaxed run's *next* episode sees the same ordering
        // regardless of which schedule produced its rank snapshot.
        let batch = update_batch();
        let num_vars = 6;
        let mut reference = VarRank::new(Weighting::Linear);
        for (core, depth) in &batch {
            reference.update(core, *depth);
        }
        let reference_seq = rbmc_solver::ranking_decision_order(&reference.snapshot(), num_vars);
        assert_eq!(reference_seq.len(), 2 * num_vars);
        for order in permutations(&batch) {
            let mut rank = VarRank::new(Weighting::Linear);
            for (core, depth) in &order {
                rank.update(core, *depth);
            }
            assert_eq!(
                rbmc_solver::ranking_decision_order(&rank.snapshot(), num_vars),
                reference_seq,
                "decision sequence diverged under order {order:?}"
            );
        }
    }

    #[test]
    fn last_only_is_order_dependent_and_says_so() {
        // The counterexample that justifies gating the relaxed grains'
        // table-reproducibility claim on `is_commutative`: LastOnly keeps
        // only the final update, so two orders of the same batch disagree.
        assert!(!Weighting::LastOnly.is_commutative());
        let mut ab = VarRank::new(Weighting::LastOnly);
        ab.update(&vars(&[0]), 0);
        ab.update(&vars(&[1]), 1);
        let mut ba = VarRank::new(Weighting::LastOnly);
        ba.update(&vars(&[1]), 1);
        ba.update(&vars(&[0]), 0);
        assert_ne!(ab.snapshot(), ba.snapshot());
    }
}
