//! Machine-readable benchmark artifacts (`BENCH_*.json`).
//!
//! Every experiment binary writes one JSON report per run via
//! [`write_json`], so perf PRs can diff runs instead of eyeballing stdout
//! tables. The committed `BENCH_baseline.json` at the repository root records
//! the reference numbers the acceptance criteria compare against.
//!
//! The format is deliberately flat and dependency-free (the workspace builds
//! offline, so no serde): a report is a label plus a list of cases, each case
//! carrying the per-run wall time and the machine-independent counters
//! (conflicts, decisions, propagations), plus free-form numeric extras.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::InstanceResult;

/// One measured case inside a [`BenchReport`].
#[derive(Debug, Clone)]
pub struct BenchCase {
    /// Instance (or micro-benchmark) name.
    pub name: String,
    /// Strategy or configuration label (`bmc`, `sta`, `dyn`, `cdg_on`, …).
    pub strategy: String,
    /// Wall-clock seconds of the run.
    pub wall_s: f64,
    /// Total conflicts over the run.
    pub conflicts: u64,
    /// Total decisions over the run.
    pub decisions: u64,
    /// Total propagations (implications) over the run.
    pub propagations: u64,
    /// Deepest completed unrolling depth.
    pub completed_depth: usize,
    /// Whether the verdict matched the instance's ground truth.
    pub verdict_ok: bool,
    /// Additional numeric metrics (name, value), e.g. CDG sizes.
    pub extra: Vec<(String, f64)>,
}

impl From<&InstanceResult> for BenchCase {
    fn from(r: &InstanceResult) -> BenchCase {
        // The incremental-session counters ride along as extras, so runs in
        // `SolverReuse::Session` mode are distinguishable in the artifact
        // (fresh runs report one solve call per depth and zeros otherwise).
        let stats = &r.run.solver_stats;
        BenchCase {
            name: r.name.clone(),
            strategy: r.strategy.to_string(),
            wall_s: r.time.as_secs_f64(),
            conflicts: r.conflicts,
            decisions: r.decisions,
            propagations: r.implications,
            completed_depth: r.completed_depth,
            verdict_ok: r.verdict_ok,
            extra: vec![
                ("solve_calls".into(), stats.solve_calls as f64),
                (
                    "assumption_conflicts".into(),
                    stats.assumption_conflicts as f64,
                ),
                ("learned_retained".into(), stats.learned_retained as f64),
            ],
        }
    }
}

/// A full benchmark report: a label plus the measured cases.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Which binary (and mode) produced the report.
    pub label: String,
    /// The measured cases, in run order.
    pub cases: Vec<BenchCase>,
}

impl BenchReport {
    /// Creates an empty report with the given label.
    pub fn new(label: impl Into<String>) -> BenchReport {
        BenchReport {
            label: label.into(),
            cases: Vec::new(),
        }
    }

    /// Appends one measured case.
    pub fn push(&mut self, case: BenchCase) {
        self.cases.push(case);
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"rbmc-bench/v1\",");
        let _ = writeln!(out, "  \"label\": {},", json_string(&self.label));
        out.push_str("  \"cases\": [\n");
        for (i, case) in self.cases.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(
                out,
                "\"name\": {}, \"strategy\": {}, \"wall_s\": {}, \
                 \"conflicts\": {}, \"decisions\": {}, \"propagations\": {}, \
                 \"completed_depth\": {}, \"verdict_ok\": {}",
                json_string(&case.name),
                json_string(&case.strategy),
                json_f64(case.wall_s),
                case.conflicts,
                case.decisions,
                case.propagations,
                case.completed_depth,
                case.verdict_ok
            );
            for (key, value) in &case.extra {
                let _ = write!(out, ", {}: {}", json_string(key), json_f64(*value));
            }
            out.push('}');
            out.push_str(if i + 1 < self.cases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (finite; 6 significant decimals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Renders per-file lint findings as the machine-readable `rbmc-lint/v1`
/// artifact (`rbmc --lint-json PATH`): one entry per swept file with its
/// full diagnostic list (code, severity, location, message, hint) and
/// warning/error counts, plus corpus-wide totals. The shape CI annotators
/// and dashboards consume instead of scraping the sweep's stdout.
pub fn lint_json(entries: &[(String, rbmc_circuit::lint::LintReport)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"rbmc-lint/v1\",");
    let _ = writeln!(
        out,
        "  \"total_warnings\": {},",
        entries.iter().map(|(_, r)| r.num_warnings()).sum::<usize>()
    );
    let _ = writeln!(
        out,
        "  \"total_errors\": {},",
        entries.iter().map(|(_, r)| r.num_errors()).sum::<usize>()
    );
    out.push_str("  \"files\": [\n");
    for (i, (file, report)) in entries.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"file\": {},", json_string(file));
        let _ = writeln!(out, "      \"warnings\": {},", report.num_warnings());
        let _ = writeln!(out, "      \"errors\": {},", report.num_errors());
        out.push_str("      \"diagnostics\": [");
        for (j, d) in report.diagnostics().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n        {{\"code\": {}, \"severity\": {}, \"location\": {}, \
                 \"message\": {}, \"hint\": {}}}",
                json_string(d.code.code()),
                json_string(&d.severity.to_string()),
                json_string(&d.location),
                json_string(&d.message),
                json_string(&d.hint),
            );
        }
        if !report.diagnostics().is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n");
        out.push_str(if i + 1 < entries.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the report to `path`, creating parent directories as needed.
pub fn write_json(path: &Path, report: &BenchReport) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, report.to_json())
}

/// Resolves where a binary should write its JSON artifact: `--json-out PATH`
/// overrides, `--no-json` disables, otherwise `BENCH_<default_name>.json` in
/// the current directory.
///
/// A `--json-out` with a missing value (end of args, or followed by another
/// `--flag`) aborts the binary: silently writing to the default path would
/// make a CI step looking for the requested artifact fail much later with no
/// hint of the cause.
pub fn json_out_path(args: &[String], default_name: &str) -> Option<PathBuf> {
    let explicit = args
        .iter()
        .position(|a| a == "--json-out")
        .map(|i| match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => PathBuf::from(path),
            _ => {
                eprintln!("error: --json-out requires a path argument");
                std::process::exit(2);
            }
        });
    if args.iter().any(|a| a == "--no-json") {
        return None;
    }
    Some(explicit.unwrap_or_else(|| PathBuf::from(format!("BENCH_{default_name}.json"))))
}

/// Writes the report (if a path was selected) and prints where it went.
/// Errors are reported to stderr but do not abort the experiment.
pub fn emit(args: &[String], default_name: &str, report: &BenchReport) {
    let Some(path) = json_out_path(args, default_name) else {
        return;
    };
    match write_json(&path, report) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_structure() {
        let mut report = BenchReport::new("test \"quoted\"");
        report.push(BenchCase {
            name: "case\n1".into(),
            strategy: "bmc".into(),
            wall_s: 0.25,
            conflicts: 3,
            decisions: 7,
            propagations: 11,
            completed_depth: 5,
            verdict_ok: true,
            extra: vec![("cdg_nodes".into(), 42.0)],
        });
        let json = report.to_json();
        assert!(json.contains("\"label\": \"test \\\"quoted\\\"\""));
        assert!(json.contains("\"case\\n1\""));
        assert!(json.contains("\"wall_s\": 0.250000"));
        assert!(json.contains("\"cdg_nodes\": 42.000000"));
        assert!(json.contains("\"verdict_ok\": true"));
    }

    #[test]
    fn lint_json_schema() {
        // One file with a constant-property error (doc example of the
        // linter), one clean file: the artifact must carry the schema tag,
        // corpus totals, per-file counts, and fully structured diagnostics.
        let dirty = rbmc_circuit::lint::lint_aiger(b"aag 0 0 0 0 0 1\n1\n");
        assert_eq!(dirty.num_errors(), 1);
        let clean = rbmc_circuit::lint::LintReport::default();
        let json = lint_json(&[("dirty.aag".into(), dirty), ("clean.aag".into(), clean)]);
        assert!(json.contains("\"schema\": \"rbmc-lint/v1\""));
        assert!(json.contains("\"total_warnings\": 0"));
        assert!(json.contains("\"total_errors\": 1"));
        assert!(json.contains("\"file\": \"dirty.aag\""));
        assert!(json.contains("\"code\": \"L001\""));
        assert!(json.contains("\"severity\": \"error\""));
        assert!(json.contains("\"location\":"));
        assert!(json.contains("\"hint\":"));
        // The clean file's diagnostics array is present and empty.
        assert!(json.contains("\"diagnostics\": []"));
        // The artifact is one self-contained JSON object (balanced braces as
        // a cheap structural check, since the workspace has no JSON parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_out_path_flags() {
        let args = |v: &[&str]| {
            v.iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            json_out_path(&args(&[]), "table1"),
            Some(PathBuf::from("BENCH_table1.json"))
        );
        assert_eq!(
            json_out_path(&args(&["--json-out", "out/x.json"]), "table1"),
            Some(PathBuf::from("out/x.json"))
        );
        assert_eq!(json_out_path(&args(&["--no-json"]), "table1"), None);
    }
}
