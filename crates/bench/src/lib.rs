//! Shared harness code for the experiment binaries (`table1`, `fig6`,
//! `fig7`, `overhead`, and the ablations).
//!
//! Every binary regenerates one table or figure of the paper; see
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for recorded
//! results.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use rbmc_core::{
    BmcEngine, BmcOptions, BmcOutcome, BmcRun, OrderingStrategy, SolverReuse, Weighting,
};
use rbmc_gens::{BenchInstance, Expectation};

pub mod report;

pub use report::{BenchCase, BenchReport};

/// Result of running one instance under one strategy.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// Instance name.
    pub name: String,
    /// `T`/`F` ground truth label.
    pub verdict: &'static str,
    /// Strategy label (`bmc`, `sta`, `dyn`, `sht`).
    pub strategy: &'static str,
    /// Wall-clock time of the whole run.
    pub time: Duration,
    /// Total decisions over all depths.
    pub decisions: u64,
    /// Total implications over all depths.
    pub implications: u64,
    /// Total conflicts over all depths.
    pub conflicts: u64,
    /// Deepest completed depth.
    pub completed_depth: usize,
    /// Whether the verdict matched the instance's ground truth.
    pub verdict_ok: bool,
    /// The full run (per-depth statistics).
    pub run: BmcRun,
}

/// Runs one benchmark instance under the given strategy in the paper's
/// fresh-solver-per-depth regime and verifies the verdict against the
/// instance's ground truth. The experiment binaries that regenerate the
/// paper's tables and figures go through this entry point, so their numbers
/// stay comparable with the paper (and with `BENCH_baseline.json`); pass a
/// reuse mode explicitly via [`run_instance_with`] to measure the
/// incremental session instead.
///
/// # Panics
///
/// Panics if the verdict contradicts the ground truth (the harness treats
/// that as a correctness bug, not a data point).
pub fn run_instance(
    instance: &BenchInstance,
    strategy: OrderingStrategy,
    weighting: Weighting,
) -> InstanceResult {
    run_instance_with(instance, strategy, weighting, SolverReuse::Fresh)
}

/// [`run_instance`] with an explicit solver-reuse mode.
///
/// # Panics
///
/// Panics if the verdict contradicts the ground truth.
pub fn run_instance_with(
    instance: &BenchInstance,
    strategy: OrderingStrategy,
    weighting: Weighting,
    reuse: SolverReuse,
) -> InstanceResult {
    let start = Instant::now();
    let mut engine = BmcEngine::new(
        instance.model.clone(),
        BmcOptions {
            max_depth: instance.max_depth,
            strategy,
            weighting,
            reuse,
            ..BmcOptions::default()
        },
    );
    let run = engine.run_collecting();
    let time = start.elapsed();
    let verdict_ok = match (&run.outcome, instance.expectation) {
        (BmcOutcome::Counterexample { depth, trace }, Expectation::FailsAt(d)) => {
            assert!(
                trace.validate(&instance.model).is_ok(),
                "{}: invalid trace",
                instance.name
            );
            *depth == d
        }
        (BmcOutcome::BoundReached { depth_completed }, Expectation::Holds) => {
            *depth_completed == instance.max_depth
        }
        _ => false,
    };
    assert!(
        verdict_ok,
        "{} [{}]: verdict {:?} contradicts ground truth {:?}",
        instance.name,
        strategy.label(),
        run.outcome,
        instance.expectation
    );
    InstanceResult {
        name: instance.name.clone(),
        verdict: instance.verdict_label(),
        strategy: strategy.label(),
        time,
        decisions: run.total_decisions(),
        implications: run.total_implications(),
        conflicts: run.total_conflicts(),
        completed_depth: run.max_completed_depth().unwrap_or(0),
        verdict_ok,
        run,
    }
}

/// Selects the suite a binary runs on: `--smoke` (or `--small`) picks the
/// fast [`rbmc_gens::small_suite`], anything else the full 37-instance
/// [`rbmc_gens::suite_table1`]. Smoke mode exists so CI can exercise the
/// JSON-emitting binaries end-to-end in seconds.
pub fn cli_suite(args: &[String]) -> Vec<BenchInstance> {
    if args.iter().any(|a| a == "--smoke" || a == "--small") {
        rbmc_gens::small_suite()
    } else {
        rbmc_gens::suite_table1()
    }
}

/// Parses `--reuse fresh|session` from a binary's arguments; `default` when
/// the flag is absent. A malformed value aborts the binary (a typo silently
/// measuring the wrong regime would poison the artifact).
pub fn cli_reuse(args: &[String], default: SolverReuse) -> SolverReuse {
    match args
        .iter()
        .position(|a| a == "--reuse")
        .map(|i| args.get(i + 1).map(String::as_str))
    {
        None => default,
        Some(Some("fresh")) => SolverReuse::Fresh,
        Some(Some("session")) => SolverReuse::Session,
        Some(other) => {
            eprintln!(
                "error: --reuse requires `fresh` or `session`, got {:?}",
                other.unwrap_or("<missing>")
            );
            std::process::exit(2);
        }
    }
}

/// The three Table 1 strategies in column order.
pub fn table1_strategies() -> [OrderingStrategy; 3] {
    [
        OrderingStrategy::Standard,
        OrderingStrategy::RefinedStatic,
        OrderingStrategy::RefinedDynamic { divisor: 64 },
    ]
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Percentage of `part` relative to `whole` (100% when `whole` is zero).
pub fn ratio_percent(part: f64, whole: f64) -> f64 {
    if whole == 0.0 {
        100.0
    } else {
        part / whole * 100.0
    }
}
