//! Ablation for the **§1 related-work contrast**: the paper positions its
//! refinement as ordering along the *register axis*, versus Shtrichman's
//! CAV'00 ordering along the *time axis* (earlier frames first). This bench
//! runs both against standard VSIDS on the suite.
//!
//! Usage: `cargo run -p rbmc-bench --release --bin ablation_axis`

use rbmc_bench::{ratio_percent, run_instance};
use rbmc_core::{OrderingStrategy, Weighting};
use rbmc_gens::suite_table1;

fn main() {
    println!("Register-axis (this paper) vs time-axis (Shtrichman) ordering\n");
    println!(
        "{:<20} {:>12} {:>14} {:>14}",
        "model", "vsids", "register-axis", "time-axis"
    );
    let strategies = [
        OrderingStrategy::Standard,
        OrderingStrategy::RefinedStatic,
        OrderingStrategy::Shtrichman,
    ];
    let mut totals = [0u64; 3];
    let mut times = [0.0f64; 3];
    for instance in suite_table1() {
        let mut cells = Vec::new();
        for (i, strategy) in strategies.into_iter().enumerate() {
            let r = run_instance(&instance, strategy, Weighting::Linear);
            totals[i] += r.decisions;
            times[i] += r.time.as_secs_f64();
            cells.push(r.decisions.to_string());
        }
        println!(
            "{:<20} {:>12} {:>14} {:>14}",
            instance.name, cells[0], cells[1], cells[2]
        );
    }
    println!("\ntotals:");
    for (i, name) in ["vsids", "register-axis", "time-axis"].iter().enumerate() {
        println!(
            "  {name:<14} {:>10} decisions, {:>8.3} s  ({:.0}% of vsids)",
            totals[i],
            times[i],
            ratio_percent(totals[i] as f64, totals[0] as f64)
        );
    }
}
