//! Core-ordered vs unordered IC3 assumption sweep (`BENCH_ic3.json`).
//!
//! The IC3 engine transplants the paper's core ranking to the **assumption
//! ordering** of its relative-induction queries: under the refined
//! strategies, each frame's assumption literals are sorted by the varRank
//! score accumulated from that frame's UNSAT cores (and the solver's
//! decision priorities follow the same table). This binary measures that
//! transplant the way `incremental_session` measures solver reuse — an
//! A/B sweep over the UNSAT-heavy instances the proving engines exist to
//! close:
//!
//! - every **holding** instance of the selected suite, plus the dedicated
//!   proving specimens of [`rbmc_gens::proof_suite`] (mutex arbiters, the
//!   saturating counter, the pipelined handshake);
//! - each instance runs under `ic3/std` (solver-default ordering, no core
//!   ranking) and `ic3/sta` (core-ordered assumptions + ranked decisions);
//! - each run must end in `Proved`, and the extracted invariant is
//!   re-checked **in this binary** by [`check_invariant`]'s independent
//!   initiation/consecution/safety queries — a sweep that proved nothing,
//!   or proved it with a bogus invariant, is a harness bug, not a data
//!   point;
//! - wall times are the median of several repetitions; ordered rows carry
//!   a `speedup` extra (unordered median / ordered median), and the footer
//!   prints the per-instance ratios plus their geometric mean.
//!
//! Usage: `cargo run -p rbmc-bench --release --bin ic3_sweep
//! [-- --smoke] [--json-out PATH | --no-json]`

use std::time::Instant;

use rbmc_bench::{secs, BenchCase, BenchReport};
use rbmc_core::{
    check_invariant, BmcOptions, BmcRun, Ic3Engine, OrderingStrategy, PropertyVerdict,
};
use rbmc_gens::{BenchInstance, Expectation};

/// One strategy's measurement on one instance.
struct Sweep {
    median_wall_s: f64,
    run: BmcRun,
    proved_depth: usize,
    invariant_clauses: usize,
}

fn sweep(instance: &BenchInstance, depth: usize, strategy: OrderingStrategy, reps: usize) -> Sweep {
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let mut engine = Ic3Engine::new(
            instance.model.clone(),
            BmcOptions {
                max_depth: depth,
                strategy,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        times.push(start.elapsed().as_secs_f64());
        let report = &run.properties[0];
        let (proved_depth, clauses) = match &report.verdict {
            PropertyVerdict::Proved {
                depth,
                invariant_clauses: Some(clauses),
            } => (*depth, clauses.clone()),
            other => panic!(
                "{} [ic3/{}]: holding instance produced {other} instead of a proof",
                instance.name,
                strategy.label()
            ),
        };
        // The in-binary certificate gate: the invariant must pass the
        // independent initiation/consecution/safety queries against the
        // engine's working model, every repetition.
        let working = engine.working_model();
        if let Err(e) = check_invariant(working, working.bad(), &clauses) {
            panic!(
                "{} [ic3/{}]: extracted invariant fails the inductive check: {e}",
                instance.name,
                strategy.label()
            );
        }
        last = Some((run, proved_depth, clauses.len()));
    }
    let (run, proved_depth, invariant_clauses) = last.expect("at least one repetition ran");
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    Sweep {
        median_wall_s: times[times.len() / 2],
        run,
        proved_depth,
        invariant_clauses,
    }
}

fn case(instance: &BenchInstance, label: &str, s: &Sweep, extra: Vec<(String, f64)>) -> BenchCase {
    let stats = &s.run.solver_stats;
    let mut extras = vec![
        ("proved_depth".into(), s.proved_depth as f64),
        ("invariant_clauses".into(), s.invariant_clauses as f64),
        ("invariant_checked".into(), 1.0),
        ("solve_calls".into(), stats.solve_calls as f64),
        (
            "assumption_conflicts".into(),
            stats.assumption_conflicts as f64,
        ),
    ];
    extras.extend(extra);
    BenchCase {
        name: instance.name.clone(),
        strategy: label.to_string(),
        wall_s: s.median_wall_s,
        conflicts: s.run.total_conflicts(),
        decisions: s.run.total_decisions(),
        propagations: s.run.total_implications(),
        completed_depth: s.proved_depth,
        verdict_ok: true,
        extra: extras,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--small");
    let depth = 20;
    let reps = if smoke { 1 } else { 5 };
    let mut instances: Vec<BenchInstance> = rbmc_bench::cli_suite(&args)
        .into_iter()
        .filter(|i| matches!(i.expectation, Expectation::Holds))
        .collect();
    instances.extend(rbmc_gens::proof_suite());
    let mut report = BenchReport::new(format!(
        "ic3 core-ordered vs unordered assumptions (frontier bound {depth}, median of {reps})"
    ));

    println!("IC3: core-ordered assumptions (sta) vs solver-default order (std)\n");
    println!(
        "{:<20} {:>9} {:>9} {:>8} {:>6} {:>8} {:>11}",
        "model", "std (s)", "sta (s)", "speedup", "depth", "inv. cls", "sta confl"
    );

    let mut ratios: Vec<(String, f64)> = Vec::new();
    let (mut total_std, mut total_sta) = (0.0, 0.0);
    for instance in &instances {
        let std_run = sweep(instance, depth, OrderingStrategy::Standard, reps);
        let sta_run = sweep(instance, depth, OrderingStrategy::RefinedStatic, reps);
        // Both runs must prove (sweep panics otherwise), but the convergence
        // frame may legitimately differ: different cores generalize to
        // different clauses, and clause sets close at different frames.
        let speedup = std_run.median_wall_s / sta_run.median_wall_s.max(1e-12);
        total_std += std_run.median_wall_s;
        total_sta += sta_run.median_wall_s;
        println!(
            "{:<20} {:>9} {:>9} {:>7.2}x {:>6} {:>8} {:>11}",
            instance.name,
            secs(std::time::Duration::from_secs_f64(std_run.median_wall_s)),
            secs(std::time::Duration::from_secs_f64(sta_run.median_wall_s)),
            speedup,
            sta_run.proved_depth,
            sta_run.invariant_clauses,
            sta_run.run.solver_stats.assumption_conflicts,
        );
        ratios.push((instance.name.clone(), speedup));
        report.push(case(instance, "ic3/std", &std_run, Vec::new()));
        report.push(case(
            instance,
            "ic3/sta",
            &sta_run,
            vec![("speedup".into(), speedup)],
        ));
    }

    let geomean = (ratios.iter().map(|(_, r)| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!(
        "\nTOTAL median wall: unordered {:.3} s, ordered {:.3} s ({:.2}x); geomean speedup {:.2}x",
        total_std,
        total_sta,
        total_std / total_sta.max(1e-12),
        geomean
    );
    println!(
        "per-instance ratios: {}",
        ratios
            .iter()
            .map(|(n, r)| format!("{n} {r:.2}x"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    rbmc_bench::report::emit(&args, "ic3", &report);
}
