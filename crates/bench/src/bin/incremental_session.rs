//! Depth-sweep comparison of the two solver regimes: the paper's fresh
//! solver per depth ([`SolverReuse::Fresh`]) vs one persistent incremental
//! session ([`SolverReuse::Session`]).
//!
//! Every **passing** instance of the selected suite is swept to a fixed
//! depth bound (k = 20; 8 in smoke mode) under both regimes — passing
//! properties maximize the work a session can reuse, since every depth is
//! UNSAT and contributes learned clauses to the next. The binary **fails**
//! (exits non-zero via assertion) if the two regimes disagree on any
//! per-depth verdict or on the completed depth, so CI can run it as the
//! fresh-vs-session differential gate; wall times are the median of
//! several repetitions and land in `BENCH_incremental.json`, where the
//! session rows carry a `speedup` extra (fresh median / session median).
//!
//! Usage: `cargo run -p rbmc-bench --release --bin incremental_session
//! [-- --smoke] [--json-out PATH | --no-json]`
//! (The binary cannot be called just `incremental`: cargo reserves that
//! target name for its build directory. The artifact keeps the short name,
//! `BENCH_incremental.json`.)

use std::time::Instant;

use rbmc_bench::{secs, BenchCase, BenchReport};
use rbmc_core::{
    BmcEngine, BmcOptions, BmcOutcome, BmcRun, OrderingStrategy, SolveResult, SolverReuse,
};
use rbmc_gens::{BenchInstance, Expectation};

/// One regime's measurement on one instance.
struct Sweep {
    median_wall_s: f64,
    run: BmcRun,
}

fn sweep(instance: &BenchInstance, depth: usize, reuse: SolverReuse, reps: usize) -> Sweep {
    let mut times = Vec::with_capacity(reps);
    let mut last_run = None;
    for _ in 0..reps {
        let start = Instant::now();
        let mut engine = BmcEngine::new(
            instance.model.clone(),
            BmcOptions {
                max_depth: depth,
                strategy: OrderingStrategy::Standard,
                reuse,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        times.push(start.elapsed().as_secs_f64());
        last_run = Some(run);
    }
    let run = last_run.expect("at least one repetition ran");
    match &run.outcome {
        BmcOutcome::BoundReached { depth_completed } => {
            assert_eq!(
                *depth_completed,
                depth,
                "{} [{}]: sweep did not reach the bound",
                instance.name,
                reuse.label()
            );
        }
        other => panic!(
            "{} [{}]: passing instance produced {other}",
            instance.name,
            reuse.label()
        ),
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    Sweep {
        median_wall_s: times[times.len() / 2],
        run,
    }
}

fn case(
    instance: &BenchInstance,
    reuse: SolverReuse,
    s: &Sweep,
    extra: Vec<(String, f64)>,
) -> BenchCase {
    let stats = &s.run.solver_stats;
    let mut extras = vec![
        ("solve_calls".into(), stats.solve_calls as f64),
        (
            "assumption_conflicts".into(),
            stats.assumption_conflicts as f64,
        ),
        ("learned_retained".into(), stats.learned_retained as f64),
    ];
    extras.extend(extra);
    BenchCase {
        name: instance.name.clone(),
        strategy: reuse.label().to_string(),
        wall_s: s.median_wall_s,
        conflicts: s.run.total_conflicts(),
        decisions: s.run.total_decisions(),
        propagations: s.run.total_implications(),
        completed_depth: s.run.max_completed_depth().unwrap_or(0),
        verdict_ok: true,
        extra: extras,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--small");
    let depth = if smoke { 8 } else { 20 };
    let reps = if smoke { 1 } else { 5 };
    let instances: Vec<BenchInstance> = rbmc_bench::cli_suite(&args)
        .into_iter()
        .filter(|i| matches!(i.expectation, Expectation::Holds))
        .collect();
    let mut report = BenchReport::new(format!(
        "incremental session vs fresh per depth (k={depth}, median of {reps})"
    ));

    println!("Incremental solving session vs fresh solver per depth (k = {depth})\n");
    println!(
        "{:<20} {:>11} {:>11} {:>8} {:>12} {:>10}",
        "model", "fresh (s)", "session (s)", "speedup", "sess. confl", "retained"
    );

    let mut total_fresh = 0.0;
    let mut total_session = 0.0;
    for instance in &instances {
        let fresh = sweep(instance, depth, SolverReuse::Fresh, reps);
        let session = sweep(instance, depth, SolverReuse::Session, reps);
        // The differential gate: identical per-depth verdict sequences.
        let verdicts =
            |run: &BmcRun| -> Vec<SolveResult> { run.per_depth.iter().map(|d| d.result).collect() };
        assert_eq!(
            verdicts(&fresh.run),
            verdicts(&session.run),
            "{}: fresh and session regimes diverged",
            instance.name
        );
        let speedup = fresh.median_wall_s / session.median_wall_s.max(1e-12);
        total_fresh += fresh.median_wall_s;
        total_session += session.median_wall_s;
        println!(
            "{:<20} {:>11} {:>11} {:>7.2}x {:>12} {:>10}",
            instance.name,
            secs(std::time::Duration::from_secs_f64(fresh.median_wall_s)),
            secs(std::time::Duration::from_secs_f64(session.median_wall_s)),
            speedup,
            session.run.solver_stats.assumption_conflicts,
            session.run.solver_stats.learned_retained,
        );
        report.push(case(instance, SolverReuse::Fresh, &fresh, Vec::new()));
        report.push(case(
            instance,
            SolverReuse::Session,
            &session,
            vec![("speedup".into(), speedup)],
        ));
    }

    println!(
        "\nTOTAL median wall: fresh {:.3} s, session {:.3} s ({:.2}x)",
        total_fresh,
        total_session,
        total_fresh / total_session.max(1e-12)
    );
    rbmc_bench::report::emit(&args, "incremental", &report);
}
