//! `memory_sweep` — the space-efficiency artifact (`BENCH_memory.json`).
//!
//! Measures what structural preprocessing ([`rbmc_core::preprocess_problem`])
//! and the sparse rank / bounded-prefix storage buy on COI-reducible
//! multi-property instances: every instance is solved by the **raw** engine
//! (`preprocess: false`) and the **preprocessed** engine (the default), in
//! both solver-reuse regimes, and the run records the space high-water marks
//! of each configuration — peak cached prefix clauses, peak `varRank`
//! entries/bytes, and peak solver arena bytes.
//!
//! The comparison is a differential gate, not just a measurement: for each
//! (instance, reuse regime) pair the raw and preprocessed runs must produce
//! **byte-identical** per-depth verdict sequences, retirement depths, and
//! counterexample traces (the fixtures are deterministic — binary latch
//! inits, no primary inputs — so each falsified property has exactly one
//! counterexample and the lifted trace must equal the raw one bit for bit),
//! and every trace must replay on the *original* netlist. Any divergence
//! exits non-zero.
//!
//! Usage:
//!
//! ```text
//! memory_sweep [--smoke] [--depth N] [--json-out PATH | --no-json]
//! ```
//!
//! The instances are built in-process (no corpus directory): disjoint-cone
//! families where each property observes its own counter — plus stuck
//! latches OR-ed into the properties (swept, not dropped: their constants
//! matter) and an unobserved deadwood latch ring (dropped) — and one fully
//! live instance where no register can be removed (only gate hashing has
//! work) and the pass must cost nothing.
//! `--smoke` keeps only the small instances (CI mode).

use std::process::ExitCode;
use std::time::Instant;

use rbmc_bench::{BenchCase, BenchReport};
use rbmc_circuit::{LatchInit, Netlist, Signal};
use rbmc_core::{
    preprocess_problem, BmcEngine, BmcOptions, BmcRun, OrderingStrategy, ProblemBuilder,
    PropertyVerdict, SolveResult, SolverReuse, Trace, VerificationProblem,
};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// One instance of the sweep: the problem, its depth bound, and whether the
/// fixture is COI-reducible (the reduction claims below only apply to those).
struct MemInstance {
    problem: VerificationProblem,
    depth: usize,
    reducible: bool,
}

/// Disjoint-cone family: `props` properties, each "counter `p` reaches
/// `target_p`" over its own `width`-bit zero-init counter, with one stuck
/// latch OR-ed into each property (in-cone, swept by constant propagation),
/// one stuck latch no property observes, and a `ring` latch ring that is
/// live-shaped (`next` of each is its neighbor, so sweeping cannot touch it)
/// but outside every cone (dropped by COI). Deterministic: no primary
/// inputs, all latch inits binary — each falsified property has exactly one
/// counterexample.
fn disjoint_cones(
    name: &str,
    props: usize,
    width: usize,
    ring: usize,
    depth: usize,
) -> MemInstance {
    let mut n = Netlist::new();
    let stuck: Vec<Signal> = (0..=props)
        .map(|i| {
            let s = n.add_latch(&format!("stuck{i}"), LatchInit::Zero);
            n.set_next(s, s);
            s
        })
        .collect();
    let ring_latches: Vec<Signal> = (0..ring)
        .map(|i| {
            n.add_latch(
                &format!("ring{i}"),
                if i == 0 {
                    LatchInit::One
                } else {
                    LatchInit::Zero
                },
            )
        })
        .collect();
    for (i, &l) in ring_latches.iter().enumerate() {
        let prev = ring_latches[(i + ring - 1) % ring];
        n.set_next(l, prev);
    }
    let mut named: Vec<(String, Signal)> = Vec::new();
    for (p, &stuck_p) in stuck.iter().enumerate().take(props) {
        let bits: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("c{p}_{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        // Spread the targets over the depth range so retirements happen at
        // different depths (the staged-retirement shape of a real sweep).
        let target = (depth - 1 - p) as u64 % (1 << width);
        let eq = n.bus_eq_const(&bits, target);
        named.push((format!("reach_{target}"), n.or2(eq, stuck_p)));
    }
    let mut builder = ProblemBuilder::new(name, n);
    for (prop_name, sig) in named {
        builder = builder.property(&prop_name, sig);
    }
    MemInstance {
        problem: builder.build(),
        depth,
        reducible: true,
    }
}

/// Fully live single-counter instance: the union cone is the whole netlist,
/// so no register is swept or dropped — only structural hashing has work
/// (shared sub-terms of the increment/compare logic). The artifact records
/// that the pass costs nothing when there is almost nothing to reduce.
fn live_counter(name: &str, width: usize, depth: usize) -> MemInstance {
    let mut n = Netlist::new();
    let bits: Vec<Signal> = (0..width)
        .map(|i| n.add_latch(&format!("c{i}"), LatchInit::Zero))
        .collect();
    let next = n.bus_increment(&bits);
    for (&b, &nx) in bits.iter().zip(&next) {
        n.set_next(b, nx);
    }
    let bad = n.bus_eq_const(&bits, (depth - 1) as u64 % (1 << width));
    MemInstance {
        problem: ProblemBuilder::new(name, n).property("reach", bad).build(),
        depth,
        reducible: false,
    }
}

/// The byte-identity currency: per property, the per-depth verdict sequence,
/// the retirement depth, and the counterexample trace (already lifted to
/// original coordinates by the preprocessed engine).
type Signature = Vec<(Vec<SolveResult>, Option<usize>, Option<Trace>)>;

fn signature(run: &BmcRun) -> Signature {
    run.properties
        .iter()
        .map(|p| {
            let trace = match &p.verdict {
                PropertyVerdict::Falsified { trace, .. } => Some(trace.clone()),
                _ => None,
            };
            (p.depth_results.clone(), p.retirement_depth, trace)
        })
        .collect()
}

fn run_once(
    problem: &VerificationProblem,
    preprocess: bool,
    reuse: SolverReuse,
    depth: usize,
) -> (BmcRun, f64) {
    let mut engine = BmcEngine::for_problem(
        problem.clone(),
        BmcOptions {
            max_depth: depth,
            strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
            reuse,
            preprocess,
            ..BmcOptions::default()
        },
    );
    let start = Instant::now();
    let run = engine.run_collecting();
    (run, start.elapsed().as_secs_f64())
}

/// Percentage saved going from `raw` to `reduced` (0 when `raw` is 0).
fn reduction_pct(raw: u64, reduced: u64) -> f64 {
    if raw == 0 {
        0.0
    } else {
        (1.0 - reduced as f64 / raw as f64) * 100.0
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--small");
    let depth_override: Option<usize> = flag_value(&args, "--depth").and_then(|v| v.parse().ok());

    let mut instances = vec![
        disjoint_cones("disjoint_3x4", 3, 4, 8, depth_override.unwrap_or(15)),
        live_counter("live_4bit", 4, depth_override.unwrap_or(14)),
    ];
    if !smoke {
        instances.push(disjoint_cones(
            "disjoint_4x5",
            4,
            5,
            28,
            depth_override.unwrap_or(24),
        ));
        instances.push(disjoint_cones(
            "disjoint_6x4",
            6,
            4,
            24,
            depth_override.unwrap_or(16),
        ));
    }

    let mut report = BenchReport::new(format!(
        "memory sweep: raw vs preprocessed engine space high-water marks \
         ({} instances{})",
        instances.len(),
        if smoke { ", smoke" } else { "" }
    ));
    let mut failures = 0usize;
    // The headline number: worst (smallest) reduction in peak cached prefix
    // clauses over the COI-reducible instances, per reuse regime.
    let mut worst_clause_reduction = f64::INFINITY;
    let mut worst_rank_reduction = f64::INFINITY;

    for inst in &instances {
        let pp = preprocess_problem(&inst.problem);
        println!(
            "{}: {} properties, {} -> {} registers ({} swept, {} dropped), depth {}",
            inst.problem.name(),
            inst.problem.num_properties(),
            pp.report.before.latches,
            pp.report.after.latches,
            pp.report.swept_latches,
            pp.report.dropped_latches,
            inst.depth,
        );
        for reuse in [SolverReuse::Session, SolverReuse::Fresh] {
            let (raw_run, raw_wall) = run_once(&inst.problem, false, reuse, inst.depth);
            let (pp_run, pp_wall) = run_once(&inst.problem, true, reuse, inst.depth);

            // The differential gate: byte-identical verdicts, retirement
            // depths, and (lifted) traces, and every trace replays on the
            // original netlist.
            if signature(&pp_run) != signature(&raw_run) {
                eprintln!(
                    "FAIL {} [{}]: preprocessed run diverges from the raw engine",
                    inst.problem.name(),
                    reuse.label(),
                );
                failures += 1;
                continue;
            }
            for (idx, prop) in pp_run.properties.iter().enumerate() {
                if let PropertyVerdict::Falsified { trace, .. } = &prop.verdict {
                    if let Err(e) = trace
                        .validate_against(inst.problem.netlist(), inst.problem.property(idx).bad())
                    {
                        eprintln!(
                            "FAIL {}::{} [{}]: lifted trace fails original-netlist replay: {e}",
                            inst.problem.name(),
                            prop.name,
                            reuse.label(),
                        );
                        failures += 1;
                    }
                }
            }

            let clause_red = reduction_pct(
                raw_run.solver_stats.prefix_peak_clauses,
                pp_run.solver_stats.prefix_peak_clauses,
            );
            let rank_red = reduction_pct(
                raw_run.solver_stats.rank_peak_entries,
                pp_run.solver_stats.rank_peak_entries,
            );
            let arena_red = reduction_pct(
                raw_run.solver_stats.arena_peak_bytes,
                pp_run.solver_stats.arena_peak_bytes,
            );
            if inst.reducible {
                worst_clause_reduction = worst_clause_reduction.min(clause_red);
                worst_rank_reduction = worst_rank_reduction.min(rank_red);
            }
            println!(
                "  {}: peak prefix clauses {} -> {} (-{clause_red:.1}%), \
                 rank entries {} -> {} (-{rank_red:.1}%), \
                 arena bytes {} -> {} (-{arena_red:.1}%)",
                reuse.label(),
                raw_run.solver_stats.prefix_peak_clauses,
                pp_run.solver_stats.prefix_peak_clauses,
                raw_run.solver_stats.rank_peak_entries,
                pp_run.solver_stats.rank_peak_entries,
                raw_run.solver_stats.arena_peak_bytes,
                pp_run.solver_stats.arena_peak_bytes,
            );

            for (label, run, wall) in [("raw", &raw_run, raw_wall), ("pp", &pp_run, pp_wall)] {
                let stats = &run.solver_stats;
                let mut extra = vec![
                    ("properties".into(), run.properties.len() as f64),
                    ("falsified".into(), run.num_falsified() as f64),
                    ("reducible".into(), if inst.reducible { 1.0 } else { 0.0 }),
                    (
                        "registers_encoded".into(),
                        if label == "pp" {
                            pp.report.after.latches as f64
                        } else {
                            pp.report.before.latches as f64
                        },
                    ),
                    (
                        "prefix_peak_clauses".into(),
                        stats.prefix_peak_clauses as f64,
                    ),
                    ("rank_peak_entries".into(), stats.rank_peak_entries as f64),
                    ("rank_peak_bytes".into(), stats.rank_peak_bytes as f64),
                    ("arena_peak_bytes".into(), stats.arena_peak_bytes as f64),
                ];
                if label == "pp" {
                    extra.push(("clause_reduction_pct".into(), clause_red));
                    extra.push(("rank_reduction_pct".into(), rank_red));
                    extra.push(("arena_reduction_pct".into(), arena_red));
                    extra.push(("swept_latches".into(), pp.report.swept_latches as f64));
                    extra.push(("dropped_latches".into(), pp.report.dropped_latches as f64));
                }
                report.push(BenchCase {
                    name: inst.problem.name().to_string(),
                    strategy: format!("{label}/{}", reuse.label()),
                    wall_s: wall,
                    conflicts: stats.conflicts,
                    decisions: stats.decisions,
                    propagations: stats.propagations,
                    completed_depth: inst.depth,
                    verdict_ok: true,
                    extra,
                });
            }
        }
    }

    if worst_clause_reduction.is_finite() {
        println!(
            "\nreducible instances: worst-case peak clause reduction {worst_clause_reduction:.1}%, \
             worst-case rank entry reduction {worst_rank_reduction:.1}%"
        );
    }
    rbmc_bench::report::emit(&args, "memory", &report);
    if failures > 0 {
        eprintln!("{failures} differential failure(s)");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
