//! Regenerates **Fig. 6**: the scatter plots of standard-BMC time (x-axis)
//! vs refine-order-BMC time (y-axis), one plot for the static and one for
//! the dynamic configuration. Dots below the diagonal are wins for the new
//! method.
//!
//! Output is CSV (`instance,x,y,winner`) for both configurations, followed
//! by an ASCII rendering of the scatter and the win counts.
//!
//! Usage: `cargo run -p rbmc-bench --release --bin fig6 [-- --divisor N] [--smoke]
//! [--json-out PATH | --no-json]`

use rbmc_bench::{run_instance, BenchCase, BenchReport};
use rbmc_core::{OrderingStrategy, Weighting};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let divisor: u32 = args
        .iter()
        .position(|a| a == "--divisor")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let suite = rbmc_bench::cli_suite(&args);
    let mut report = BenchReport::new(format!("fig6 (divisor={divisor})"));

    let configs = [
        ("static", OrderingStrategy::RefinedStatic),
        ("dynamic", OrderingStrategy::RefinedDynamic { divisor }),
    ];
    for (ci, (label, strategy)) in configs.into_iter().enumerate() {
        println!("# Fig 6 ({label}): x = standard BMC seconds, y = refine_order seconds");
        println!("instance,x,y,decisions_bmc,decisions_new,winner");
        let mut points = Vec::new();
        let mut wins = 0usize;
        let mut dec_wins = 0usize;
        let mut nontrivial = 0usize;
        for instance in &suite {
            let base = run_instance(instance, OrderingStrategy::Standard, Weighting::Linear);
            let new = run_instance(instance, strategy, Weighting::Linear);
            // The baseline is (re-)measured for every config's scatter;
            // record it in the artifact only on the first config pass.
            if ci == 0 {
                report.push(BenchCase::from(&base));
            }
            report.push(BenchCase::from(&new));
            let x = base.time.as_secs_f64();
            let y = new.time.as_secs_f64();
            let winner = if y < x { "new" } else { "bmc" };
            if y < x {
                wins += 1;
            }
            // Sub-millisecond rows are overhead-dominated; track the
            // machine-independent decision comparison on non-trivial rows.
            if base.decisions >= 50 {
                nontrivial += 1;
                if new.decisions < base.decisions {
                    dec_wins += 1;
                }
            }
            println!(
                "{},{x:.6},{y:.6},{},{},{winner}",
                instance.name, base.decisions, new.decisions
            );
            points.push((x, y));
        }
        render_scatter(&points);
        println!(
            "# {label}: {wins}/{} dots below the diagonal by wall time; \
             {dec_wins}/{nontrivial} non-trivial rows improve by decisions \
             (paper: 26/37 static, 32/37 dynamic by time)\n",
            suite.len()
        );
    }
    rbmc_bench::report::emit(&args, "fig6", &report);
}

/// ASCII scatter with a log-log grid, mirroring the paper's log-scale plot.
fn render_scatter(points: &[(f64, f64)]) {
    const SIZE: usize = 30;
    let min = points
        .iter()
        .flat_map(|&(x, y)| [x, y])
        .filter(|v| *v > 0.0)
        .fold(f64::INFINITY, f64::min)
        .max(1e-6);
    let max = points
        .iter()
        .flat_map(|&(x, y)| [x, y])
        .fold(0.0f64, f64::max)
        .max(min * 10.0);
    let scale = |v: f64| -> usize {
        let v = v.max(min);
        let t = (v.ln() - min.ln()) / (max.ln() - min.ln());
        ((t * (SIZE - 1) as f64).round() as usize).min(SIZE - 1)
    };
    let mut grid = vec![vec![' '; SIZE]; SIZE];
    for i in 0..SIZE {
        // The y axis is drawn top-down, so x = y is the anti-diagonal.
        grid[SIZE - 1 - i][i] = '.';
    }
    for &(x, y) in points {
        let (cx, cy) = (scale(x), scale(y));
        grid[SIZE - 1 - cy][cx] = 'o';
    }
    println!("# log-log scatter ({min:.1e} s .. {max:.1e} s), 'o' = instance, '.' = diagonal");
    for row in grid {
        println!("# |{}|", row.into_iter().collect::<String>());
    }
}
