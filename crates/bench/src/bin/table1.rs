//! Regenerates **Table 1**: CPU time of standard BMC vs refine-order BMC
//! (static and dynamic) on the 37-instance suite, plus the TOTAL and RATIO
//! footer rows and the paper's §4 summary lines (win counts, average
//! speedup).
//!
//! The paper reports wall-clock seconds on a 400 MHz Pentium II with a
//! two-hour timeout; our instances are scaled so every run completes, and we
//! additionally report decision counts (machine-independent; the quantity
//! Fig. 7 uses to explain the speedup).
//!
//! Usage: `cargo run -p rbmc-bench --release --bin table1 [-- --small] [--divisor N]
//! [--reuse fresh|session] [--json-out PATH | --no-json]`
//!
//! `--divisor N` sets the dynamic switch denominator (`#decisions >
//! #literals / N` falls back to VSIDS). The paper's value is 64, tuned for
//! industrial formulas of 10⁵–10⁶ literals; at this suite's scale the
//! matching threshold needs a smaller divisor (see EXPERIMENTS.md and the
//! `ablation_switch` bench). `--reuse` selects the solver regime: `fresh`
//! (default — the paper's fresh-solver-per-depth setup, comparable with
//! `BENCH_baseline.json`) or `session` (one incremental solver across all
//! depths; the ground-truth assertion inside `run_instance_with` guarantees
//! both regimes reach identical verdicts and completed depths, and CI runs
//! the smoke suite in both). Besides the stdout table, the run is recorded
//! as a machine-readable `BENCH_table1.json` artifact (see `rbmc_bench::report`).

use rbmc_bench::{ratio_percent, run_instance_with, secs, BenchCase, BenchReport};
use rbmc_core::{OrderingStrategy, SolverReuse, Weighting};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let divisor: u32 = args
        .iter()
        .position(|a| a == "--divisor")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let reuse = rbmc_bench::cli_reuse(&args, SolverReuse::Fresh);
    let suite = rbmc_bench::cli_suite(&args);
    let mut report = BenchReport::new(format!(
        "table1 (divisor={divisor}, reuse={})",
        reuse.label()
    ));
    let table1_strategies = || {
        [
            OrderingStrategy::Standard,
            OrderingStrategy::RefinedStatic,
            OrderingStrategy::RefinedDynamic { divisor },
        ]
    };

    println!(
        "Table 1: BMC vs refine_order BMC (static and dynamic, divisor={divisor}, \
         reuse={})",
        reuse.label()
    );
    println!("(times in seconds; decisions in parentheses; (k) = depth bound)\n");
    println!(
        "{:<20} {:>3} {:>5}  {:>12} {:>14} {:>14}",
        "model", "T/F", "(k)", "bmc", "new bmc (sta)", "new bmc (dyn)"
    );

    let mut totals_time = [0.0f64; 3];
    let mut totals_dec = [0u64; 3];
    let mut wins = [0usize; 3];
    let mut speedup_sum = [0.0f64; 3];
    let mut rows = 0usize;

    for instance in &suite {
        let mut cells = Vec::new();
        let mut times = [0.0f64; 3];
        let mut decisions = [0u64; 3];
        for (i, strategy) in table1_strategies().into_iter().enumerate() {
            let result = run_instance_with(instance, strategy, Weighting::Linear, reuse);
            times[i] = result.time.as_secs_f64();
            decisions[i] = result.decisions;
            totals_time[i] += times[i];
            totals_dec[i] += result.decisions;
            cells.push(format!("{} ({})", secs(result.time), result.decisions));
            report.push(BenchCase::from(&result));
        }
        // Like the paper, exclude trivial rows from the win/speedup summary
        // (the paper dropped experiments finishing under 10 s everywhere; we
        // drop rows the baseline solves with fewer than 50 decisions, where
        // only constant overhead remains to compare).
        if decisions[0] >= 50 {
            for i in 1..3 {
                if decisions[i] < decisions[0] {
                    wins[i] += 1;
                }
                speedup_sum[i] += (times[0] - times[i]) / times[0].max(1e-9) * 100.0;
            }
            rows += 1;
        }
        println!(
            "{:<20} {:>3} {:>5}  {:>12} {:>14} {:>14}",
            instance.name,
            instance.verdict_label(),
            format!("({})", instance.max_depth),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    println!();
    println!(
        "{:<20} {:>3} {:>5}  {:>12} {:>14} {:>14}",
        "TOTAL time (s)",
        "",
        "",
        format!("{:.2}", totals_time[0]),
        format!("{:.2}", totals_time[1]),
        format!("{:.2}", totals_time[2])
    );
    println!(
        "{:<20} {:>3} {:>5}  {:>12} {:>14} {:>14}",
        "RATIO (time)",
        "",
        "",
        "100%",
        format!("{:.0}%", ratio_percent(totals_time[1], totals_time[0])),
        format!("{:.0}%", ratio_percent(totals_time[2], totals_time[0]))
    );
    println!(
        "{:<20} {:>3} {:>5}  {:>12} {:>14} {:>14}",
        "TOTAL decisions",
        "",
        "",
        totals_dec[0].to_string(),
        totals_dec[1].to_string(),
        totals_dec[2].to_string()
    );
    println!(
        "{:<20} {:>3} {:>5}  {:>12} {:>14} {:>14}",
        "RATIO (decisions)",
        "",
        "",
        "100%",
        format!(
            "{:.0}%",
            ratio_percent(totals_dec[1] as f64, totals_dec[0] as f64)
        ),
        format!(
            "{:.0}%",
            ratio_percent(totals_dec[2] as f64, totals_dec[0] as f64)
        )
    );
    println!();
    println!(
        "paper §4 summary analog (over the {rows} non-trivial rows): \
         static wins {}/{rows}, dynamic wins {}/{rows} (by decisions)",
        wins[1], wins[2]
    );
    println!(
        "average per-instance time speedup: static {:.0}%, dynamic {:.0}% (paper: 38%, 42%)",
        speedup_sum[1] / rows.max(1) as f64,
        speedup_sum[2] / rows.max(1) as f64
    );
    println!(
        "paper's totals for reference: 138k s / 86k s (62%) / 79k s (57%) on 37 IBM instances"
    );
    rbmc_bench::report::emit(&args, "table1", &report);
}
