//! `rbmc` — the HWMCC-style corpus runner.
//!
//! Sweeps a directory of AIGER benchmarks (`.aag` ASCII and `.aig` binary),
//! checks **every** bad-state property of each file in one incremental
//! solving session ([`BmcEngine::for_problem`]), and reports per property in
//! the HWMCC output convention: status `1` plus an AIGER witness
//! (initial-state line, one input line per frame, terminated by `.`) for a
//! falsified property, status `2` for a property still open at the depth
//! bound. Every witness is soundness-gated before it is printed: the trace
//! is validated on the netlist ([`Trace::validate_against`]) *and* replayed
//! through the original AIG ([`rbmc_circuit::Aig::eval_frame`]); a failure
//! of either aborts the run with a non-zero exit code.
//!
//! Usage:
//!
//! ```text
//! rbmc [DIR] [--export-corpus DIR] [--depth N] [--reuse fresh|session]
//!      [--engine bmc|ic3|induction|portfolio]
//!      [--strategy bmc|sta|dyn|sht] [--divisor N] [--jobs N]
//!      [--shard by-property|by-depth|striped|work-stealing]
//!      [--relaxed] [--deterministic] [--no-preprocess]
//!      [--lint off|warn|deny] [--lint-json PATH]
//!      [--proof off|log|check]
//!      [--portfolio] [--portfolio-mode strategies|reuse|full]
//!      [--selfcheck] [--smoke]
//!      [--witness-dir DIR] [--json-out PATH | --no-json]
//! ```
//!
//! - `--export-corpus DIR` first writes the gens suite as a fallback corpus
//!   (`rbmc_gens::corpus`) into DIR; when no positional corpus directory is
//!   given, the exported directory is then swept.
//! - `--jobs N` parallelizes the sweep. The worker budget is *split*, not
//!   multiplied: benchmark files are striped across up to `N` workers
//!   first, and any remaining per-worker budget (`N / file-workers`) runs
//!   each file's engine with [`ParallelConfig`] — so a single-file corpus
//!   gets full engine-level parallelism while a many-file sweep never
//!   spawns more than ~`N` solver threads. An explicit `--shard` flips the
//!   split: the whole budget goes to each file's engine (even with
//!   `--jobs 1`, which runs the parallel decomposition on one worker) and
//!   the file sweep itself runs sequentially — by-property pairs with the
//!   session regime, by-depth with fresh; the default follows `--reuse`.
//!   Verdicts, witnesses, and rank tables are independent of `N`; the
//!   per-file output is buffered and printed in file order, so the whole
//!   report is byte-stable too.
//! - `--relaxed` runs each file's engine in a relaxed parallel grain
//!   (default [`ShardMode::Striped`]; `--shard striped|work-stealing`
//!   picks): verdict-equivalent to the deterministic run but with
//!   scheduling-dependent rank tables. `--deterministic` asserts the
//!   opposite — it is an error to combine it with `--relaxed`,
//!   `--portfolio`, or a relaxed `--shard`.
//! - `--engine` picks the verification algorithm: `bmc` (default), `ic3`
//!   (unbounded proofs — a holding property reports HWMCC status `0` with
//!   the extracted invariant machine-checked before it is claimed, a
//!   failing one the same depth-exact witness as BMC), `induction`
//!   (k-induction proofs, no extracted invariant), or `portfolio` (the
//!   full-mode race: the BMC grid plus the IC3 and induction provers, first
//!   conclusive verdict wins).
//! - `--portfolio` races independent engine configurations per file
//!   (first verdict wins, losers cancelled); `--portfolio-mode` picks the
//!   roster axis (strategies, reuse regimes, or the full product —
//!   `full` also races the IC3 and k-induction provers).
//! - `--selfcheck` is the differential harness: the main run, the
//!   *opposite* solver-reuse regime, the *opposite* preprocessing regime,
//!   both deterministic parallel grains,
//!   and both relaxed grains must agree on every property's per-depth
//!   verdict sequence, and every property is additionally re-checked with
//!   fresh-per-depth single-property runs ([`SolverReuse::Fresh`]). **All**
//!   mismatching properties across all modes are reported before the
//!   non-zero exit — a failure names every offender, not just the first.
//!   Under a proving engine (`--engine ic3|induction`) the harness is
//!   differential against BMC instead: the prover's per-frontier verdict
//!   sequence must equal the BMC oracle's per-depth sequence on their
//!   shared prefix — falsification depths match exactly, and a proof
//!   implies BMC finds no counterexample within its whole bound.
//! - `--no-preprocess` turns off the engine's structural preprocessing
//!   ([`rbmc_core::preprocess_problem`]) and solves the netlist as given.
//!   Verdicts are identical either way (the selfcheck harness cross-checks
//!   the two regimes against each other); the flag exists to measure the
//!   reduction and to reproduce raw-engine behavior. With preprocessing on,
//!   witness positions for latches/inputs outside every property's cone
//!   print as `x` (their value is irrelevant; the validated trace replays
//!   them at the declared reset value / `false`).
//! - `--lint {off,warn,deny}` (default `warn`) runs the static linter
//!   ([`rbmc_circuit::lint`]) over every file's raw AIGER bytes before
//!   solving. `warn` prints diagnostics per file and counts them in the
//!   report extras (`lint_warnings`/`lint_errors`); `deny` additionally
//!   fails any file with an error-severity diagnostic (the fail-closed CI
//!   shape); `off` stays silent. Verdicts and witnesses are byte-identical
//!   across all three modes. Independently of the mode, a file the pipeline
//!   cannot check at all — unparseable bytes, unsupported `C`/`J`/`F`
//!   sections, no properties, duplicate property names — is recorded as a
//!   *skipped* entry (strategy `skipped` in `BENCH_corpus.json`, with its
//!   diagnostic) and the sweep continues with a clean exit code.
//! - `--lint-json PATH` additionally writes the full lint findings of every
//!   swept file as a machine-readable artifact (`rbmc-lint/v1`: per-file
//!   diagnostics with code, severity, location, message, hint, plus
//!   warning/error totals) — the shape CI annotators and dashboards consume
//!   instead of scraping stdout. Independent of `--lint` mode.
//! - `--proof {off,log,check}` (default `off`) turns on clause-level
//!   DRAT/LRAT proof logging in the solver. `log` records every axiom,
//!   derivation (with CDG-sourced antecedent hints), and deletion, and
//!   reports certificate sizes in the `BENCH_corpus.json` extras
//!   (`proof_steps`); `check` additionally re-derives **every UNSAT
//!   episode** through the independent checker of `rbmc-proof` — a
//!   rejected certificate fails the file and the sweep exits non-zero (the
//!   fail-closed CI shape, symmetric to the witness and invariant gates).
//!   Under `--selfcheck`, the differential cross-runs inherit the proof
//!   mode, so the relaxed/parallel grains are certified too.
//! - `--smoke` shrinks the export to the small suite and the default depth
//!   bound to 10 (CI mode).
//!
//! The run is recorded as a machine-readable `BENCH_corpus.json` artifact
//! with one case per (file, property), carrying the per-property session
//! counters (episodes, assumption conflicts, retirement depth) and, for
//! parallel runs, the per-worker dispatch stats.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use rbmc_bench::{BenchCase, BenchReport};
use rbmc_circuit::aiger::parse_aiger;
use rbmc_circuit::coi::registers_in_cone;
use rbmc_circuit::lint::{lint_aiger, LintCode, LintReport};
use rbmc_circuit::Aig;
use rbmc_core::induction::InductionEngine;
use rbmc_core::{
    check_invariant, preprocess_problem, BmcEngine, BmcOptions, BmcRun, EngineKind, Ic3Engine,
    Model, OrderingStrategy, ParallelConfig, PortfolioMode, PreprocessedProblem, ProblemBuilder,
    ProofMode, PropertyVerdict, ShardMode, SolveResult, SolverReuse, Trace, VerificationProblem,
};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// How `--lint` diagnostics gate the sweep (`rbmc_circuit::lint`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LintMode {
    /// Lint runs (its structural facts still guard the skip path) but
    /// reports nothing.
    Off,
    /// Diagnostics are printed per file and counted in the report extras;
    /// nothing fails. The default.
    Warn,
    /// Like `warn`, but any error-severity diagnostic fails the file — the
    /// fail-closed CI shape. Warnings stay non-fatal.
    Deny,
}

fn parse_lint_mode(args: &[String]) -> LintMode {
    match flag_value(args, "--lint") {
        None | Some("warn") => LintMode::Warn,
        Some("off") => LintMode::Off,
        Some("deny") => LintMode::Deny,
        Some(other) => {
            eprintln!("error: --lint requires off|warn|deny, got `{other}`");
            std::process::exit(2);
        }
    }
}

fn parse_proof_mode(args: &[String]) -> ProofMode {
    match flag_value(args, "--proof") {
        None | Some("off") => ProofMode::Off,
        Some("log") => ProofMode::Log,
        Some("check") => ProofMode::Check,
        Some(other) => {
            eprintln!("error: --proof requires off|log|check, got `{other}`");
            std::process::exit(2);
        }
    }
}

/// How a swept file ended: fully checked, or set aside with a diagnostic
/// (unparseable, unsupported sections, no properties, or a structural defect
/// the engine cannot represent). Skips keep the sweep going and the exit
/// code clean; under `--lint deny` the same files fail instead.
enum FileDisposition {
    /// The file was solved and all its gates passed.
    Checked,
    /// The file was recorded as skipped, with this reason.
    Skipped(String),
}

/// Records a skipped file: a diagnostic line in the per-file output and one
/// `BENCH_corpus.json` case with the distinct `skipped` strategy label, so a
/// sweep over a corpus with defective members still reports every file.
fn skip_file(
    stem: &str,
    reason: String,
    lint: &LintReport,
    lint_lines: &str,
    out: &mut String,
    cases: &mut Vec<BenchCase>,
) -> FileDisposition {
    let _ = writeln!(out, "{stem}: skipped ({reason})");
    let _ = write!(out, "{lint_lines}");
    cases.push(BenchCase {
        name: format!("{stem}::file"),
        strategy: "skipped".into(),
        wall_s: 0.0,
        conflicts: 0,
        decisions: 0,
        propagations: 0,
        completed_depth: 0,
        verdict_ok: true,
        extra: vec![
            ("skipped".into(), 1.0),
            ("lint_warnings".into(), lint.num_warnings() as f64),
            ("lint_errors".into(), lint.num_errors() as f64),
        ],
    });
    FileDisposition::Skipped(format!("{stem}: {reason}"))
}

fn parse_strategy(args: &[String], divisor: u32) -> OrderingStrategy {
    match flag_value(args, "--strategy") {
        None | Some("dyn") => OrderingStrategy::RefinedDynamic { divisor },
        Some("bmc") => OrderingStrategy::Standard,
        Some("sta") => OrderingStrategy::RefinedStatic,
        Some("sht") => OrderingStrategy::Shtrichman,
        Some(other) => {
            eprintln!("error: --strategy requires bmc|sta|dyn|sht, got `{other}`");
            std::process::exit(2);
        }
    }
}

/// Renders one property's HWMCC-style result block: `1` + witness + `.` for
/// a counterexample, `0` for a proved property (unbounded engines), `2` for
/// a property the bounded sweep leaves open.
///
/// `dontcare` (latch mask, input mask) marks positions outside every
/// property's structural cone: they print as `x` in the AIGER witness
/// convention. The trace itself — the one the soundness gates replayed —
/// carries concrete defaults at exactly those positions (declared reset for
/// latches, `false` for inputs), so any reader resolving `x` to those
/// defaults reproduces the validated replay.
fn witness_text(
    prop_index: usize,
    verdict: &PropertyVerdict,
    trace: Option<&Trace>,
    dontcare: Option<(&[bool], &[bool])>,
) -> String {
    let mut out = String::new();
    match verdict {
        PropertyVerdict::Falsified { .. } => {
            let trace = trace.expect("falsified verdict carries a trace");
            out.push_str("1\n");
            out.push_str(&format!("b{prop_index}\n"));
            let bits = |v: &[bool], mask: Option<&[bool]>| -> String {
                v.iter()
                    .enumerate()
                    .map(|(i, &b)| {
                        if mask.is_some_and(|m| m.get(i).copied().unwrap_or(false)) {
                            'x'
                        } else if b {
                            '1'
                        } else {
                            '0'
                        }
                    })
                    .collect()
            };
            let (latch_mask, input_mask) = match dontcare {
                Some((latches, inputs)) => (Some(latches), Some(inputs)),
                None => (None, None),
            };
            out.push_str(&format!("{}\n", bits(trace.initial_state(), latch_mask)));
            for frame in trace.inputs() {
                out.push_str(&format!("{}\n", bits(frame, input_mask)));
            }
            out.push_str(".\n");
        }
        PropertyVerdict::Proved { .. } => {
            out.push_str("0\n");
            out.push_str(&format!("b{prop_index}\n"));
            out.push_str(".\n");
        }
        PropertyVerdict::OpenAt { .. } | PropertyVerdict::Unknown => {
            out.push_str("2\n");
            out.push_str(&format!("b{prop_index}\n"));
            out.push_str(".\n");
        }
    }
    out
}

/// Replays a trace through the *original AIG* (not the raised netlist the
/// engine solved) and checks that the property's bad literal holds at the
/// final frame — the second half of the witness soundness gate.
fn replay_on_aig(aig: &Aig, prop_index: usize, trace: &Trace) -> Result<(), String> {
    let props = if aig.bads().is_empty() {
        aig.outputs()
    } else {
        aig.bads()
    };
    let (_, bad_lit) = &props[prop_index];
    if trace.initial_state().len() != aig.latches().len() {
        return Err("trace initial state does not match the AIG's latch count".into());
    }
    let mut state = trace.initial_state().to_vec();
    for (frame, inputs) in trace.inputs().iter().enumerate() {
        if inputs.len() != aig.inputs().len() {
            return Err(format!(
                "frame {frame} inputs do not match the AIG's input count"
            ));
        }
        let values = aig.eval_frame(&state, inputs);
        let bad = bad_lit.apply(values[bad_lit.node()]);
        if frame == trace.depth() {
            return if bad {
                Ok(())
            } else {
                Err(format!("bad literal is false at final frame {frame}"))
            };
        }
        if frame + 1 < trace.inputs().len() {
            state = aig
                .latches()
                .iter()
                .map(|&l| {
                    let nx = aig.next_of(l).expect("latch connected");
                    nx.apply(values[nx.node()])
                })
                .collect();
        }
    }
    Err("trace has no frames".into())
}

/// Per-property per-depth verdict sequences of a run — the cross-check
/// currency of `--selfcheck` (verdicts are semantic, so every regime and
/// every dispatch mode must produce the same sequences).
fn verdict_sequences(run: &BmcRun) -> Vec<Vec<SolveResult>> {
    run.properties
        .iter()
        .map(|p| p.depth_results.clone())
        .collect()
}

/// The pure comparison at the heart of `--selfcheck`: every property whose
/// per-depth verdict sequence differs between the main run and a
/// cross-check run yields one diagnostic naming the property and the
/// cross-check mode. Returns **all** offenders, not just the first, so a
/// failing selfcheck reports the complete mismatch set before exiting.
fn verdict_mismatches(
    stem: &str,
    names: &[&str],
    main: &[Vec<SolveResult>],
    other: &[Vec<SolveResult>],
    mode_label: &str,
) -> Vec<String> {
    names
        .iter()
        .enumerate()
        .filter_map(|(idx, name)| {
            let a = main.get(idx);
            let b = other.get(idx);
            if a != b {
                Some(format!(
                    "{stem}::{name}: {mode_label} verdicts {:?} != main run verdicts {:?}",
                    b.map_or(&[][..], Vec::as_slice),
                    a.map_or(&[][..], Vec::as_slice),
                ))
            } else {
                None
            }
        })
        .collect()
}

/// The prover differential (`--selfcheck` under `--engine ic3|induction`
/// or a full-mode portfolio): a BMC oracle run must agree with the
/// prover's per-frontier verdict sequence on their shared prefix, a
/// falsification must land at the exact same depth, and a proof must stay
/// counterexample-free for BMC's whole bound.
fn prover_cross_check(
    stem: &str,
    problem: &VerificationProblem,
    run: &BmcRun,
    options: &BmcOptions,
    label: &str,
) -> Vec<String> {
    let mut engine = BmcEngine::for_problem(
        problem.clone(),
        BmcOptions {
            parallel: None,
            ..*options
        },
    );
    let oracle = engine.run_collecting();
    let mut mismatches = Vec::new();
    for (p, o) in run.properties.iter().zip(&oracle.properties) {
        let shared = p.depth_results.len().min(o.depth_results.len());
        if p.depth_results[..shared] != o.depth_results[..shared] {
            mismatches.push(format!(
                "{stem}::{}: {label} frontier verdicts {:?} != bmc oracle verdicts {:?}",
                p.name,
                &p.depth_results[..shared],
                &o.depth_results[..shared]
            ));
        }
        match (&p.verdict, &o.verdict) {
            (
                PropertyVerdict::Falsified { depth: a, .. },
                PropertyVerdict::Falsified { depth: b, .. },
            ) if a != b => {
                mismatches.push(format!(
                    "{stem}::{}: {label} counterexample depth {a} != bmc oracle depth {b}",
                    p.name
                ));
            }
            (PropertyVerdict::Falsified { .. }, PropertyVerdict::Falsified { .. }) => {}
            (PropertyVerdict::Falsified { depth, .. }, other) => {
                mismatches.push(format!(
                    "{stem}::{}: {label} finds a depth-{depth} counterexample \
                     but the bmc oracle reports: {other}",
                    p.name
                ));
            }
            (PropertyVerdict::Proved { .. }, PropertyVerdict::Falsified { depth, .. }) => {
                mismatches.push(format!(
                    "{stem}::{}: {label} claims a proof but the bmc oracle finds a \
                     counterexample at depth {depth}",
                    p.name
                ));
            }
            _ => {}
        }
    }
    mismatches.extend(proof_mismatch(stem, &oracle, "bmc oracle"));
    mismatches
}

/// One diagnostic when a differential cross-run's own proof check rejected
/// a certificate (the cross-runs inherit the main run's `--proof` mode, so
/// the relaxed and parallel grains are certified too, not just the
/// configuration the sweep reports).
fn proof_mismatch(stem: &str, run: &BmcRun, mode_label: &str) -> Option<String> {
    let proof = run.proof.as_ref().filter(|p| p.rejected())?;
    Some(format!(
        "{stem}: {mode_label} proof check rejected {} certificate{}: {}",
        proof.rejections,
        if proof.rejections == 1 { "" } else { "s" },
        proof
            .first_rejection
            .as_deref()
            .unwrap_or("(no description)"),
    ))
}

/// Re-runs the whole problem under an alternative configuration and returns
/// one diagnostic per property whose per-depth verdict sequence differs
/// from the main run's.
fn cross_check(
    stem: &str,
    problem: &VerificationProblem,
    run: &BmcRun,
    options: &BmcOptions,
    mode_label: &str,
) -> Vec<String> {
    let mut engine = BmcEngine::for_problem(problem.clone(), *options);
    let other = engine.run_collecting();
    let names: Vec<&str> = (0..problem.num_properties())
        .map(|idx| problem.property(idx).name())
        .collect();
    let mut mismatches = verdict_mismatches(
        stem,
        &names,
        &verdict_sequences(run),
        &verdict_sequences(&other),
        mode_label,
    );
    mismatches.extend(proof_mismatch(stem, &other, mode_label));
    mismatches
}

/// A checked file's buffered stdout block, its report cases, and whether
/// the check succeeded — output and cases survive a failure, so the
/// diagnostics printed for a failing file are no poorer than an eager
/// sequential sweep's.
type FileOutcome = (String, Vec<BenchCase>, Result<FileDisposition, String>);

/// The per-file check: one run over all properties (sequential or parallel
/// per `options.parallel`), witness gates, optional differential
/// cross-checks, report cases. Output is written to `out` so a parallel
/// sweep can print per-file blocks in deterministic file order; whatever
/// was produced before an error is kept by the caller.
#[allow(clippy::too_many_arguments)]
fn check_file(
    path: &Path,
    options: &BmcOptions,
    engine_kind: EngineKind,
    portfolio: Option<(PortfolioMode, usize)>,
    selfcheck: bool,
    witness_dir: Option<&Path>,
    reuse_label: &str,
    strategy_label: &str,
    quiet_witnesses: bool,
    lint_mode: LintMode,
    out: &mut String,
    cases: &mut Vec<BenchCase>,
) -> Result<FileDisposition, String> {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("benchmark")
        .to_string();
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    // The lint pass runs on the raw bytes regardless of mode — its
    // structural facts also guard the skip path below — but only `warn` and
    // `deny` report it. Verdicts and traces never depend on the mode.
    let lint = lint_aiger(&bytes);
    let mut lint_lines = String::new();
    if lint_mode != LintMode::Off {
        for diagnostic in lint.diagnostics() {
            let _ = writeln!(lint_lines, "  lint: {diagnostic}");
        }
    }
    if lint_mode == LintMode::Deny && lint.num_errors() > 0 {
        let _ = writeln!(out, "{stem}: lint errors:");
        let _ = write!(out, "{lint_lines}");
        return Err(format!(
            "{}: lint denied: {} error{} (rerun with --lint warn to triage)",
            path.display(),
            lint.num_errors(),
            if lint.num_errors() == 1 { "" } else { "s" },
        ));
    }
    // Input defects stop this file, not the sweep: unparseable bytes and
    // unsupported sections become a skipped entry with a diagnostic.
    let aig = match parse_aiger(&bytes) {
        Ok(aig) => aig,
        Err(e) => {
            let reason = format!("unparseable: {e}");
            return Ok(skip_file(&stem, reason, &lint, &lint_lines, out, cases));
        }
    };
    // One decode serves both the problem construction and the witness
    // replay gate (VerificationProblem::from_aiger would re-parse).
    let builder = ProblemBuilder::from_aig(&stem, &aig);
    if builder.num_properties() == 0 {
        return Ok(skip_file(
            &stem,
            "aiger file declares no bad-state lines and no outputs".into(),
            &lint,
            &lint_lines,
            out,
            cases,
        ));
    }
    if lint.codes().contains(&LintCode::DuplicateProperty) {
        // `ProblemBuilder::build` rejects duplicate names outright; surface
        // the lint diagnostic instead of dying inside the builder.
        return Ok(skip_file(
            &stem,
            "duplicate property names (lint L005)".into(),
            &lint,
            &lint_lines,
            out,
            cases,
        ));
    }
    let problem = builder.build();
    // The preprocessing view of the file: shape report for the log line and
    // BENCH extras, don't-care masks for witness `x` positions. Computed
    // here (the pass is deterministic, so this matches what the engine does
    // internally) because the portfolio path never exposes its engines.
    let pp: Option<PreprocessedProblem> = options.preprocess.then(|| preprocess_problem(&problem));
    let wall = Instant::now();
    // `working` is the IC3 engine's (possibly preprocessed) model — the
    // coordinate system its invariant clauses live in, kept around for the
    // invariant machine-check gate below.
    let (run, race, working): (BmcRun, _, Option<Model>) = match portfolio {
        Some((mode, jobs)) => {
            let race = rbmc_core::run_portfolio(&problem, options, mode, jobs);
            (race.run.clone(), Some(race), None)
        }
        None => match engine_kind {
            EngineKind::Bmc => {
                let mut engine = BmcEngine::for_problem(problem.clone(), *options);
                (engine.run_collecting(), None, None)
            }
            EngineKind::Ic3 => {
                let mut engine = Ic3Engine::for_problem(problem.clone(), *options);
                let run = engine.run_collecting();
                let working = engine.working_model().clone();
                (run, None, Some(working))
            }
            EngineKind::Induction => {
                let mut engine = InductionEngine::for_problem(problem.clone(), *options);
                (engine.run_collecting(), None, None)
            }
        },
    };
    let wall = wall.elapsed();

    let _ = writeln!(
        out,
        "{}: {} propert{} to depth {} ({} vars, {} ands)",
        stem,
        problem.num_properties(),
        if problem.num_properties() == 1 {
            "y"
        } else {
            "ies"
        },
        options.max_depth,
        problem.netlist().num_nodes(),
        aig.num_ands(),
    );
    let _ = write!(out, "{lint_lines}");
    if let Some(race) = &race {
        let _ = writeln!(
            out,
            "  portfolio: {} won in {:.3}s ({} member{} raced)",
            race.members[race.winner].member.label(),
            race.members[race.winner].time.as_secs_f64(),
            race.members.len(),
            if race.members.len() == 1 { "" } else { "s" },
        );
    }
    // The netlist-vs-cone shape line: how much of the file the union of the
    // property cones actually uses, and what the engine encoded after
    // sweeping/hashing when preprocessing is on.
    let cone_registers = registers_in_cone(
        problem.netlist(),
        &problem
            .properties()
            .iter()
            .map(rbmc_core::Property::bad)
            .collect::<Vec<_>>(),
    );
    if let Some(pp) = &pp {
        let _ = writeln!(
            out,
            "  cone: {cone_registers}/{} registers; encoded {} registers / {} gates \
             ({} swept, {} dropped, {} inputs dropped, {} gates hashed)",
            problem.netlist().num_latches(),
            pp.report.after.latches,
            pp.report.after.gates,
            pp.report.swept_latches,
            pp.report.dropped_latches,
            pp.report.dropped_inputs,
            pp.report.hashed_gates,
        );
    } else {
        let _ = writeln!(
            out,
            "  cone: {cone_registers}/{} registers (preprocessing off)",
            problem.netlist().num_latches(),
        );
    }
    // The UNSAT certification gate, symmetric to the witness and invariant
    // gates below: under `--proof check` every UNSAT episode of the run was
    // re-derived by the independent checker as it closed; any rejection
    // fails the file (and with it the sweep).
    if let Some(proof) = &run.proof {
        if options.proof.checks() {
            let _ = writeln!(
                out,
                "  proof: {} UNSAT episode{} certified, {} steps logged ({:.1} ms check)",
                proof.episodes_certified,
                if proof.episodes_certified == 1 {
                    ""
                } else {
                    "s"
                },
                proof.steps_logged,
                proof.check_time.as_secs_f64() * 1e3,
            );
        } else {
            let _ = writeln!(out, "  proof: {} steps logged", proof.steps_logged);
        }
        if proof.rejected() {
            return Err(format!(
                "{}: proof check rejected {} certificate{}: {}",
                path.display(),
                proof.rejections,
                if proof.rejections == 1 { "" } else { "s" },
                proof
                    .first_rejection
                    .as_deref()
                    .unwrap_or("(no description)"),
            ));
        }
    }
    for (idx, prop_report) in run.properties.iter().enumerate() {
        let (status, detail) = match &prop_report.verdict {
            PropertyVerdict::Falsified { depth, .. } => {
                ("1", format!("counterexample at depth {depth}"))
            }
            PropertyVerdict::Proved {
                depth,
                invariant_clauses,
            } => (
                "0",
                match invariant_clauses {
                    Some(clauses) => format!(
                        "proved at depth {depth}, {} invariant clause{}",
                        clauses.len(),
                        if clauses.len() == 1 { "" } else { "s" }
                    ),
                    None => format!("proved at depth {depth}"),
                },
            ),
            PropertyVerdict::OpenAt { depth } => ("2", format!("open at depth {depth}")),
            PropertyVerdict::Unknown => ("2", "unknown (budget exhausted)".to_string()),
        };
        let _ = writeln!(
            out,
            "  b{idx} {}: {} ({})",
            prop_report.name, status, detail
        );

        // Witness soundness gate: netlist replay and AIG replay must both
        // accept every counterexample before it is emitted.
        let trace = match &prop_report.verdict {
            PropertyVerdict::Falsified { trace, .. } => {
                trace
                    .validate_against(problem.netlist(), problem.property(idx).bad())
                    .map_err(|e| {
                        format!(
                            "{stem}::{}: witness fails netlist replay: {e}",
                            prop_report.name
                        )
                    })?;
                replay_on_aig(&aig, idx, trace).map_err(|e| {
                    format!(
                        "{stem}::{}: witness fails AIG replay: {e}",
                        prop_report.name
                    )
                })?;
                Some(trace)
            }
            _ => None,
        };
        // Proof soundness gate, symmetric to the witness gate: an IC3
        // invariant must pass the independent inductive check (init ⊆ inv,
        // inv ∧ T ⇒ inv', inv ⇒ ¬bad) against the engine's working model
        // before the proved status is emitted.
        if let PropertyVerdict::Proved {
            invariant_clauses: Some(clauses),
            ..
        } = &prop_report.verdict
        {
            let working = working.as_ref().ok_or_else(|| {
                format!(
                    "{stem}::{}: proved verdict with invariant outside the ic3 engine",
                    prop_report.name
                )
            })?;
            let bad = working.problem().property(idx).bad();
            check_invariant(working, bad, clauses).map_err(|e| {
                format!(
                    "{stem}::{}: invariant fails the inductive check: {e}",
                    prop_report.name
                )
            })?;
        }
        let dontcare = pp
            .as_ref()
            .filter(|pp| !pp.lift.is_identity())
            .map(|pp| (pp.lift.dontcare_latches(), pp.lift.dontcare_inputs()));
        let text = witness_text(idx, &prop_report.verdict, trace, dontcare);
        if let Some(dir) = witness_dir {
            let wpath = dir.join(format!("{stem}.b{idx}.wit"));
            std::fs::write(&wpath, &text).map_err(|e| format!("{}: {e}", wpath.display()))?;
        } else if !quiet_witnesses {
            let _ = write!(out, "{text}");
        }

        let (completed_depth, verdict_ok) = match &prop_report.verdict {
            PropertyVerdict::Falsified { depth, .. } => (*depth, true),
            PropertyVerdict::Proved { depth, .. } => (*depth, true),
            PropertyVerdict::OpenAt { depth } => (*depth, true),
            PropertyVerdict::Unknown => (0, false),
        };
        let mut extra = vec![
            (
                "proved".into(),
                matches!(prop_report.verdict, PropertyVerdict::Proved { .. }) as u8 as f64,
            ),
            (
                "invariant_clauses".into(),
                match &prop_report.verdict {
                    PropertyVerdict::Proved {
                        invariant_clauses: Some(clauses),
                        ..
                    } => clauses.len() as f64,
                    _ => -1.0,
                },
            ),
            ("properties".into(), run.properties.len() as f64),
            ("file_wall_s".into(), wall.as_secs_f64()),
            ("episodes".into(), prop_report.episodes as f64),
            (
                "assumption_conflicts".into(),
                prop_report.assumption_conflicts as f64,
            ),
            (
                "retirement_depth".into(),
                prop_report.retirement_depth.map_or(-1.0, |d| d as f64),
            ),
            ("solve_calls".into(), run.solver_stats.solve_calls as f64),
            (
                "learned_retained".into(),
                run.solver_stats.learned_retained as f64,
            ),
            // Netlist-vs-cone sizes: this property's own cone against the
            // file's register total, plus the space high-water marks of the
            // run (shared by all of the file's properties).
            (
                "registers_in_cone".into(),
                registers_in_cone(problem.netlist(), &[problem.property(idx).bad()]) as f64,
            ),
            (
                "registers_netlist".into(),
                problem.netlist().num_latches() as f64,
            ),
            (
                "arena_peak_bytes".into(),
                run.solver_stats.arena_peak_bytes as f64,
            ),
            (
                "prefix_peak_clauses".into(),
                run.solver_stats.prefix_peak_clauses as f64,
            ),
            (
                "rank_peak_entries".into(),
                run.solver_stats.rank_peak_entries as f64,
            ),
            // Lint counts of the containing file (shared by its properties).
            ("lint_warnings".into(), lint.num_warnings() as f64),
            ("lint_errors".into(), lint.num_errors() as f64),
        ];
        if let Some(pp) = &pp {
            extra.push(("registers_encoded".into(), pp.report.after.latches as f64));
            extra.push(("gates_encoded".into(), pp.report.after.gates as f64));
            extra.push(("swept_latches".into(), pp.report.swept_latches as f64));
            extra.push(("dropped_latches".into(), pp.report.dropped_latches as f64));
        }
        if let Some(proof) = &run.proof {
            // Certificate sizes and check cost (shared by the file's
            // properties, like the lint counts above).
            extra.push(("proof_steps".into(), proof.steps_logged as f64));
            extra.push(("proof_certified".into(), proof.episodes_certified as f64));
            extra.push(("proof_rejections".into(), proof.rejections as f64));
            extra.push((
                "proof_check_ms".into(),
                proof.check_time.as_secs_f64() * 1e3,
            ));
        }
        if !run.workers.is_empty() {
            // Per-worker dispatch stats of the engine-level parallel run.
            extra.push(("par_workers".into(), run.workers.len() as f64));
            extra.push((
                "par_items".into(),
                run.workers.iter().map(|w| w.items).sum::<u64>() as f64,
            ));
            extra.push((
                "par_episodes_max".into(),
                run.workers.iter().map(|w| w.episodes).max().unwrap_or(0) as f64,
            ));
            extra.push((
                "par_busy_max_s".into(),
                run.workers
                    .iter()
                    .map(|w| w.time.as_secs_f64())
                    .fold(0.0, f64::max),
            ));
        }
        if let Some(race) = &race {
            extra.push(("portfolio_winner".into(), race.winner as f64));
            extra.push(("portfolio_members".into(), race.members.len() as f64));
        }
        cases.push(BenchCase {
            name: format!("{stem}::{}", prop_report.name),
            strategy: match engine_kind {
                EngineKind::Bmc => format!("{strategy_label}/{reuse_label}"),
                _ => format!("{}/{strategy_label}", engine_kind.label()),
            },
            // The session run is shared by all of the file's properties, so
            // the per-case wall time is the file's share — summing the cases
            // of a file (or the whole artifact) yields real wall time. The
            // undivided figure rides along as `file_wall_s`.
            wall_s: wall.as_secs_f64() / run.properties.len() as f64,
            conflicts: prop_report.conflicts,
            decisions: prop_report.decisions,
            propagations: prop_report.propagations,
            completed_depth,
            verdict_ok,
            extra,
        });
    }

    if selfcheck
        && (engine_kind != EngineKind::Bmc || matches!(portfolio, Some((PortfolioMode::Full, _))))
    {
        // A run that may carry prover verdicts (a proving engine, or a
        // full-mode portfolio whose winner may be one): the differential is
        // against a BMC oracle on the shared frontier prefix instead of
        // the BMC-shaped regime cross-checks below.
        let label = if portfolio.is_some() {
            "portfolio".to_string()
        } else {
            engine_kind.label().to_string()
        };
        let mismatches = prover_cross_check(&stem, &problem, &run, options, &label);
        if !mismatches.is_empty() {
            return Err(format!(
                "selfcheck found {} mismatch{}:\n  {}",
                mismatches.len(),
                if mismatches.len() == 1 { "" } else { "es" },
                mismatches.join("\n  ")
            ));
        }
        let _ = writeln!(
            out,
            "  selfcheck: {label} verdicts match the bmc oracle on the shared \
             frontier prefix (falsification depths exact, proofs counterexample-free)"
        );
    } else if selfcheck {
        // The differential harness: the opposite solver-reuse regime, both
        // deterministic parallel grains, and both relaxed grains must all
        // reproduce the main run's per-depth verdicts property for
        // property. All mismatches across all modes are collected before
        // failing, so one bad file reports its complete offender set. The
        // cross-checks inherit the main run's engine worker budget (relaxed
        // verdicts are worker-count-independent too — that is the contract
        // under test) — hard-coding a larger count here would quietly break
        // the sweep's no-more-than-~jobs-threads guarantee inside each file
        // worker.
        let cross_jobs = options.parallel.map_or(1, |c| c.jobs);
        let other_reuse = match options.reuse {
            SolverReuse::Session => SolverReuse::Fresh,
            SolverReuse::Fresh => SolverReuse::Session,
        };
        let mut mismatches = cross_check(
            &stem,
            &problem,
            &run,
            &BmcOptions {
                reuse: other_reuse,
                parallel: None,
                ..*options
            },
            other_reuse.label(),
        );
        // The preprocessing differential: the opposite regime (raw netlist
        // vs structurally reduced) must reproduce the per-depth verdicts
        // exactly — the reduction is behavior-preserving for every
        // property's bad signal, so a divergence is an engine bug.
        mismatches.extend(cross_check(
            &stem,
            &problem,
            &run,
            &BmcOptions {
                preprocess: !options.preprocess,
                parallel: None,
                ..*options
            },
            if options.preprocess {
                "preprocessing off"
            } else {
                "preprocessing on"
            },
        ));
        for shard in [
            ShardMode::ByProperty,
            ShardMode::ByDepth,
            ShardMode::Striped,
            ShardMode::WorkStealing,
        ] {
            mismatches.extend(cross_check(
                &stem,
                &problem,
                &run,
                &BmcOptions {
                    parallel: Some(ParallelConfig {
                        jobs: cross_jobs,
                        shard,
                    }),
                    ..*options
                },
                &format!("parallel {}", shard.label()),
            ));
        }
        // The per-property differential gate: each property re-checked
        // alone, with a fresh solver per depth; per-depth verdicts must be
        // identical.
        for (idx, prop_report) in run.properties.iter().enumerate() {
            let single = ProblemBuilder::new(&stem, problem.netlist().clone())
                .property(&prop_report.name, problem.property(idx).bad())
                .build();
            let mut fresh_engine = BmcEngine::for_problem(
                single,
                BmcOptions {
                    reuse: SolverReuse::Fresh,
                    parallel: None,
                    ..*options
                },
            );
            let fresh_run = fresh_engine.run_collecting();
            let fresh_verdicts: Vec<SolveResult> =
                fresh_run.per_depth.iter().map(|d| d.result).collect();
            if prop_report.depth_results != fresh_verdicts {
                mismatches.push(format!(
                    "{stem}::{}: session verdicts {:?} != fresh verdicts {:?}",
                    prop_report.name, prop_report.depth_results, fresh_verdicts
                ));
            }
            mismatches.extend(proof_mismatch(
                &stem,
                &fresh_run,
                &format!("fresh single-property ({})", prop_report.name),
            ));
        }
        if !mismatches.is_empty() {
            return Err(format!(
                "selfcheck found {} mismatch{}:\n  {}",
                mismatches.len(),
                if mismatches.len() == 1 { "" } else { "es" },
                mismatches.join("\n  ")
            ));
        }
        let _ = writeln!(
            out,
            "  selfcheck: verdicts match across fresh/session/parallel/relaxed runs \
             and both preprocessing regimes"
        );
    }
    Ok(FileDisposition::Checked)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--small");
    let selfcheck = args.iter().any(|a| a == "--selfcheck");
    let quiet_witnesses = args.iter().any(|a| a == "--quiet-witnesses");
    let depth: usize = flag_value(&args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 10 } else { 20 });
    let divisor: u32 = flag_value(&args, "--divisor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let strategy = parse_strategy(&args, divisor);
    let reuse = rbmc_bench::cli_reuse(&args, SolverReuse::Session);
    let jobs: usize = flag_value(&args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let relaxed = args.iter().any(|a| a == "--relaxed");
    let deterministic = args.iter().any(|a| a == "--deterministic");
    let no_preprocess = args.iter().any(|a| a == "--no-preprocess");
    let lint_mode = parse_lint_mode(&args);
    let lint_json = flag_value(&args, "--lint-json").map(PathBuf::from);
    let proof_mode = parse_proof_mode(&args);
    // `--engine portfolio` is sugar for `--portfolio` with the full-mode
    // roster (BMC grid + IC3 + induction racing for the first conclusive
    // verdict); the other labels pick a single engine for every file.
    let engine_arg = flag_value(&args, "--engine");
    let engine_portfolio = engine_arg == Some("portfolio");
    let engine_kind = match engine_arg {
        None => EngineKind::Bmc,
        Some("portfolio") => EngineKind::Bmc,
        Some(label) => match EngineKind::parse(label) {
            Some(kind) => kind,
            None => {
                eprintln!("error: --engine requires bmc|ic3|induction|portfolio, got `{label}`");
                return ExitCode::from(2);
            }
        },
    };
    let portfolio_flag = args.iter().any(|a| a == "--portfolio") || engine_portfolio;
    if engine_kind != EngineKind::Bmc && portfolio_flag {
        eprintln!(
            "error: --engine {} cannot be combined with --portfolio \
             (use --engine portfolio to race the engines)",
            engine_kind.label()
        );
        return ExitCode::from(2);
    }
    let portfolio_mode = match flag_value(&args, "--portfolio-mode") {
        None if engine_portfolio => PortfolioMode::Full,
        None => PortfolioMode::default(),
        Some(label) => match PortfolioMode::parse(label) {
            Some(mode) => mode,
            None => {
                eprintln!("error: --portfolio-mode requires strategies|reuse|full, got `{label}`");
                return ExitCode::from(2);
            }
        },
    };
    // The engine-level sharding grain mirrors the solver-reuse regime unless
    // forced: sessions shard by property, the fresh regime by depth.
    // `--relaxed` flips the default to the striped relaxed grain.
    let shard = match flag_value(&args, "--shard") {
        None if relaxed => ShardMode::Striped,
        None => match reuse {
            SolverReuse::Session => ShardMode::ByProperty,
            SolverReuse::Fresh => ShardMode::ByDepth,
        },
        Some(label) => match ShardMode::parse(label) {
            Some(mode) => mode,
            None => {
                eprintln!(
                    "error: --shard requires by-property|by-depth|striped|work-stealing, \
                     got `{label}`"
                );
                return ExitCode::from(2);
            }
        },
    };
    // `--deterministic` asserts the full reproducibility contract; the
    // relaxed grains and portfolio racing guarantee only verdict
    // equivalence, so combining them is a contradiction, not a preference.
    if deterministic && (relaxed || portfolio_flag || !shard.is_deterministic()) {
        eprintln!(
            "error: --deterministic cannot be combined with --relaxed, --portfolio, \
             or --shard {}",
            shard.label()
        );
        return ExitCode::from(2);
    }
    let witness_dir = flag_value(&args, "--witness-dir").map(PathBuf::from);
    if let Some(dir) = &witness_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create witness dir {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }

    let export_dir = match args.iter().position(|a| a == "--export-corpus") {
        Some(i) => match args.get(i + 1) {
            Some(dir) if !dir.starts_with("--") => Some(PathBuf::from(dir)),
            _ => {
                eprintln!("error: --export-corpus requires a directory argument");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    if let Some(dir) = &export_dir {
        let mut suite = if smoke {
            rbmc_gens::small_suite()
        } else {
            rbmc_gens::suite_table1()
        };
        // The proving-engine specimens ride along in both flavors: they are
        // small, they all hold, and they are the instances `--engine ic3`
        // exists to close.
        suite.extend(rbmc_gens::proof_suite());
        match rbmc_gens::corpus::export_corpus(dir, &suite) {
            Ok(written) => eprintln!(
                "exported {} corpus files to {}",
                written.len(),
                dir.display()
            ),
            Err(e) => {
                eprintln!("error: corpus export failed: {e}");
                return ExitCode::from(1);
            }
        }
    }

    // The corpus directory: first positional (non-flag) argument, falling
    // back to a directory just exported.
    let value_flags = [
        "--depth",
        "--divisor",
        "--strategy",
        "--engine",
        "--reuse",
        "--jobs",
        "--shard",
        "--portfolio-mode",
        "--witness-dir",
        "--json-out",
        "--export-corpus",
        "--lint",
        "--lint-json",
        "--proof",
    ];
    let mut positional: Option<PathBuf> = None;
    let mut skip = false;
    for arg in &args[1..] {
        if skip {
            skip = false;
            continue;
        }
        if value_flags.contains(&arg.as_str()) {
            skip = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        positional = Some(PathBuf::from(arg));
        break;
    }
    let Some(corpus_dir) = positional.or(export_dir) else {
        eprintln!(
            "usage: rbmc [DIR] [--export-corpus DIR] [--depth N] \
             [--engine bmc|ic3|induction|portfolio] \
             [--reuse fresh|session] [--strategy bmc|sta|dyn|sht] [--divisor N] \
             [--jobs N] [--shard by-property|by-depth|striped|work-stealing] \
             [--relaxed] [--deterministic] [--no-preprocess] [--lint off|warn|deny] \
             [--lint-json PATH] [--proof off|log|check] \
             [--portfolio] [--portfolio-mode strategies|reuse|full] \
             [--selfcheck] [--smoke] [--witness-dir DIR] [--json-out PATH | --no-json]"
        );
        return ExitCode::from(2);
    };

    let mut files: Vec<PathBuf> = match std::fs::read_dir(&corpus_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("aag") | Some("aig")
                )
            })
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", corpus_dir.display());
            return ExitCode::from(1);
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!(
            "error: no .aag/.aig benchmarks in {} (try --export-corpus)",
            corpus_dir.display()
        );
        return ExitCode::from(1);
    }

    // `--lint-json`: the machine-readable lint artifact, written before the
    // sweep (the lint pass is a cheap static analysis over raw bytes, and
    // the artifact should exist even when the sweep itself fails).
    if let Some(path) = &lint_json {
        let entries: Vec<(String, LintReport)> = files
            .iter()
            .map(|p| {
                let name = p
                    .file_name()
                    .and_then(|s| s.to_str())
                    .unwrap_or("benchmark")
                    .to_string();
                let report = match std::fs::read(p) {
                    Ok(bytes) => lint_aiger(&bytes),
                    Err(_) => LintReport::default(),
                };
                (name, report)
            })
            .collect();
        if let Err(e) = std::fs::write(path, rbmc_bench::report::lint_json(&entries)) {
            eprintln!("error: cannot write lint artifact {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote {}", path.display());
    }

    // Split the worker budget between the two grains instead of multiplying
    // them: `jobs` file workers each running a `jobs`-worker engine would
    // oversubscribe to jobs² threads. By default file striping gets first
    // claim (it parallelizes everything, single-property files included)
    // and whatever budget remains per file worker goes to the engine. An
    // explicit `--shard` flips the split: the user is asking for
    // engine-grain sharding, so the whole budget goes to each file's engine
    // (even `jobs = 1` — the parallel decomposition with one worker) and
    // the file sweep runs sequentially.
    // `--relaxed` and `--portfolio` are engine-grain requests just like an
    // explicit `--shard`: the whole budget goes to each file's engine (or
    // race) and the file sweep runs sequentially.
    let engine_forced = flag_value(&args, "--shard").is_some() || relaxed || portfolio_flag;
    let file_workers = if engine_forced {
        1
    } else {
        jobs.min(files.len()).max(1)
    };
    let engine_jobs = if engine_forced {
        jobs
    } else {
        (jobs / file_workers).max(1)
    };
    let portfolio = portfolio_flag.then_some((portfolio_mode, engine_jobs));
    let options = BmcOptions {
        max_depth: depth,
        strategy,
        reuse,
        preprocess: !no_preprocess,
        proof: proof_mode,
        // A portfolio race runs each member sequentially — the race is the
        // parallelism.
        parallel: (!portfolio_flag && (engine_jobs > 1 || engine_forced)).then_some(
            ParallelConfig {
                jobs: engine_jobs,
                shard,
            },
        ),
        ..BmcOptions::default()
    };
    let grain_label = if portfolio_flag {
        format!("portfolio-{}", portfolio_mode.label())
    } else {
        shard.label().to_string()
    };
    let engine_label = if portfolio_flag {
        "portfolio"
    } else {
        engine_kind.label()
    };
    let mut report = BenchReport::new(format!(
        "rbmc corpus ({}, depth={depth}, engine={engine_label}, strategy={}, reuse={}, \
         jobs={jobs}/{grain_label}{})",
        corpus_dir.display(),
        strategy.label(),
        reuse.label(),
        if selfcheck { ", selfcheck" } else { "" }
    ));
    let start = Instant::now();
    let mut failures = 0usize;
    // The sweep itself is striped across the worker budget too: files are
    // claimed off a shared queue, and each file's output block is buffered
    // so stdout comes out in file order no matter who solved what.
    let outcomes: Vec<FileOutcome> = rbmc_core::striped_map(files.len(), file_workers, |_w, i| {
        let mut out = String::new();
        let mut cases = Vec::new();
        let result = check_file(
            &files[i],
            &options,
            engine_kind,
            portfolio,
            selfcheck,
            witness_dir.as_deref(),
            reuse.label(),
            strategy.label(),
            quiet_witnesses,
            lint_mode,
            &mut out,
            &mut cases,
        );
        (out, cases, result)
    });
    let mut skipped = 0usize;
    for (out, cases, result) in outcomes {
        print!("{out}");
        for case in cases {
            report.push(case);
        }
        match result {
            Ok(FileDisposition::Checked) => {}
            Ok(FileDisposition::Skipped(reason)) => {
                eprintln!("SKIP {reason}");
                skipped += 1;
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                failures += 1;
            }
        }
    }
    let falsified = report
        .cases
        .iter()
        .filter(|c| {
            c.extra
                .iter()
                .any(|(k, v)| k == "retirement_depth" && *v >= 0.0)
        })
        .count();
    let proved = report
        .cases
        .iter()
        .filter(|c| c.extra.iter().any(|(k, v)| k == "proved" && *v > 0.0))
        .count();
    // Lint totals, one contribution per file (every property of a file
    // carries the same counts; skipped files contribute via their one case).
    let (mut lint_warnings, mut lint_errors) = (0u64, 0u64);
    let mut seen_stems = std::collections::HashSet::new();
    for case in &report.cases {
        let stem = case.name.split("::").next().unwrap_or(&case.name);
        if seen_stems.insert(stem.to_string()) {
            for (k, v) in &case.extra {
                match k.as_str() {
                    "lint_warnings" => lint_warnings += *v as u64,
                    "lint_errors" => lint_errors += *v as u64,
                    _ => {}
                }
            }
        }
    }
    let properties = report.cases.len() - skipped;
    println!(
        "\nchecked {} files / {} properties in {:.3}s: {} falsified (witnesses validated), \
         {} proved (invariants checked), {} open, {} skipped, {} failures; \
         lint: {} warning{}, {} error{}",
        files.len() - skipped,
        properties,
        start.elapsed().as_secs_f64(),
        falsified,
        proved,
        properties - falsified - proved,
        skipped,
        failures,
        lint_warnings,
        if lint_warnings == 1 { "" } else { "s" },
        lint_errors,
        if lint_errors == 1 { "" } else { "s" },
    );
    rbmc_bench::report::emit(&args, "corpus", &report);
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::{verdict_mismatches, witness_text};
    use rbmc_core::SolveResult::{Sat, Unsat};
    use rbmc_core::{PropertyVerdict, Trace};

    #[test]
    fn witness_text_prints_x_at_dontcare_positions_only() {
        let trace = Trace::from_parts(vec![false, true], vec![vec![true], vec![false]]);
        let verdict = PropertyVerdict::Falsified {
            depth: 1,
            trace: trace.clone(),
        };
        let masked = witness_text(0, &verdict, Some(&trace), Some((&[false, true], &[true])));
        assert_eq!(masked, "1\nb0\n0x\nx\nx\n.\n");
        let plain = witness_text(0, &verdict, Some(&trace), None);
        assert_eq!(plain, "1\nb0\n01\n1\n0\n.\n");
    }

    #[test]
    fn proved_properties_print_hwmcc_status_zero() {
        let verdict = PropertyVerdict::Proved {
            depth: 3,
            invariant_clauses: Some(vec![vec![(0, false)]]),
        };
        assert_eq!(witness_text(2, &verdict, None, None), "0\nb2\n.\n");
    }

    #[test]
    fn verdict_mismatches_reports_every_offender_not_just_the_first() {
        let main = vec![vec![Unsat, Sat], vec![Unsat, Unsat], vec![Unsat]];
        let other = vec![vec![Unsat, Unsat], vec![Unsat, Unsat], vec![Sat]];
        let found = verdict_mismatches(
            "file",
            &["p0", "p1", "p2"],
            &main,
            &other,
            "parallel striped",
        );
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].contains("file::p0") && found[0].contains("parallel striped"));
        assert!(found[1].contains("file::p2"));
    }

    #[test]
    fn verdict_mismatches_is_empty_on_agreement() {
        let seqs = vec![vec![Unsat, Sat]];
        assert!(verdict_mismatches("file", &["p0"], &seqs, &seqs, "mode").is_empty());
    }

    #[test]
    fn verdict_mismatches_flags_missing_properties() {
        let main = vec![vec![Unsat], vec![Unsat]];
        let other = vec![vec![Unsat]];
        let found = verdict_mismatches("file", &["p0", "p1"], &main, &other, "mode");
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("file::p1"));
    }
}
