//! `rbmc` — the HWMCC-style corpus runner.
//!
//! Sweeps a directory of AIGER benchmarks (`.aag` ASCII and `.aig` binary),
//! checks **every** bad-state property of each file in one incremental
//! solving session ([`BmcEngine::for_problem`]), and reports per property in
//! the HWMCC output convention: status `1` plus an AIGER witness
//! (initial-state line, one input line per frame, terminated by `.`) for a
//! falsified property, status `2` for a property still open at the depth
//! bound. Every witness is soundness-gated before it is printed: the trace
//! is validated on the netlist ([`Trace::validate_against`]) *and* replayed
//! through the original AIG ([`rbmc_circuit::Aig::eval_frame`]); a failure
//! of either aborts the run with a non-zero exit code.
//!
//! Usage:
//!
//! ```text
//! rbmc [DIR] [--export-corpus DIR] [--depth N] [--reuse fresh|session]
//!      [--strategy bmc|sta|dyn|sht] [--divisor N] [--selfcheck] [--smoke]
//!      [--witness-dir DIR] [--json-out PATH | --no-json]
//! ```
//!
//! - `--export-corpus DIR` first writes the gens suite as a fallback corpus
//!   (`rbmc_gens::corpus`) into DIR; when no positional corpus directory is
//!   given, the exported directory is then swept.
//! - `--selfcheck` additionally re-checks every property with
//!   fresh-per-depth single-property runs ([`SolverReuse::Fresh`]) and
//!   fails if any per-depth verdict differs from the session run — the
//!   multi-property differential gate, run per file.
//! - `--smoke` shrinks the export to the small suite and the default depth
//!   bound to 10 (CI mode).
//!
//! The run is recorded as a machine-readable `BENCH_corpus.json` artifact
//! with one case per (file, property), carrying the per-property session
//! counters (episodes, assumption conflicts, retirement depth).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use rbmc_bench::{BenchCase, BenchReport};
use rbmc_circuit::aiger::parse_aiger;
use rbmc_circuit::Aig;
use rbmc_core::{
    BmcEngine, BmcOptions, OrderingStrategy, ProblemBuilder, PropertyVerdict, SolveResult,
    SolverReuse, Trace,
};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_strategy(args: &[String], divisor: u32) -> OrderingStrategy {
    match flag_value(args, "--strategy") {
        None | Some("dyn") => OrderingStrategy::RefinedDynamic { divisor },
        Some("bmc") => OrderingStrategy::Standard,
        Some("sta") => OrderingStrategy::RefinedStatic,
        Some("sht") => OrderingStrategy::Shtrichman,
        Some(other) => {
            eprintln!("error: --strategy requires bmc|sta|dyn|sht, got `{other}`");
            std::process::exit(2);
        }
    }
}

/// Renders one property's HWMCC-style result block: `1` + witness + `.` for
/// a counterexample, `2` for a property the bounded sweep leaves open.
fn witness_text(prop_index: usize, verdict: &PropertyVerdict, trace: Option<&Trace>) -> String {
    let mut out = String::new();
    match verdict {
        PropertyVerdict::Falsified { .. } => {
            let trace = trace.expect("falsified verdict carries a trace");
            out.push_str("1\n");
            out.push_str(&format!("b{prop_index}\n"));
            let bits =
                |v: &[bool]| -> String { v.iter().map(|&b| if b { '1' } else { '0' }).collect() };
            out.push_str(&format!("{}\n", bits(trace.initial_state())));
            for frame in trace.inputs() {
                out.push_str(&format!("{}\n", bits(frame)));
            }
            out.push_str(".\n");
        }
        PropertyVerdict::OpenAt { .. } | PropertyVerdict::Unknown => {
            out.push_str("2\n");
            out.push_str(&format!("b{prop_index}\n"));
            out.push_str(".\n");
        }
    }
    out
}

/// Replays a trace through the *original AIG* (not the raised netlist the
/// engine solved) and checks that the property's bad literal holds at the
/// final frame — the second half of the witness soundness gate.
fn replay_on_aig(aig: &Aig, prop_index: usize, trace: &Trace) -> Result<(), String> {
    let props = if aig.bads().is_empty() {
        aig.outputs()
    } else {
        aig.bads()
    };
    let (_, bad_lit) = &props[prop_index];
    if trace.initial_state().len() != aig.latches().len() {
        return Err("trace initial state does not match the AIG's latch count".into());
    }
    let mut state = trace.initial_state().to_vec();
    for (frame, inputs) in trace.inputs().iter().enumerate() {
        if inputs.len() != aig.inputs().len() {
            return Err(format!(
                "frame {frame} inputs do not match the AIG's input count"
            ));
        }
        let values = aig.eval_frame(&state, inputs);
        let bad = bad_lit.apply(values[bad_lit.node()]);
        if frame == trace.depth() {
            return if bad {
                Ok(())
            } else {
                Err(format!("bad literal is false at final frame {frame}"))
            };
        }
        if frame + 1 < trace.inputs().len() {
            state = aig
                .latches()
                .iter()
                .map(|&l| {
                    let nx = aig.next_of(l).expect("latch connected");
                    nx.apply(values[nx.node()])
                })
                .collect();
        }
    }
    Err("trace has no frames".into())
}

/// The per-file check: one session run over all properties, witness gates,
/// optional fresh-per-depth differential, report cases.
#[allow(clippy::too_many_arguments)]
fn check_file(
    path: &Path,
    options: &BmcOptions,
    selfcheck: bool,
    witness_dir: Option<&Path>,
    report: &mut BenchReport,
    reuse_label: &str,
    strategy_label: &str,
    quiet_witnesses: bool,
) -> Result<(), String> {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("benchmark")
        .to_string();
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let aig = parse_aiger(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    // One decode serves both the problem construction and the witness
    // replay gate (VerificationProblem::from_aiger would re-parse).
    let builder = ProblemBuilder::from_aig(&stem, &aig);
    if builder.num_properties() == 0 {
        return Err(format!(
            "{}: aiger file declares no bad-state lines and no outputs",
            path.display()
        ));
    }
    let problem = builder.build();
    let wall = Instant::now();
    let mut engine = BmcEngine::for_problem(problem.clone(), *options);
    let run = engine.run_collecting();
    let wall = wall.elapsed();

    println!(
        "{}: {} propert{} to depth {} ({} vars, {} ands)",
        stem,
        problem.num_properties(),
        if problem.num_properties() == 1 {
            "y"
        } else {
            "ies"
        },
        options.max_depth,
        problem.netlist().num_nodes(),
        aig.num_ands(),
    );
    for (idx, prop_report) in run.properties.iter().enumerate() {
        let (status, detail) = match &prop_report.verdict {
            PropertyVerdict::Falsified { depth, .. } => {
                ("1", format!("counterexample at depth {depth}"))
            }
            PropertyVerdict::OpenAt { depth } => ("2", format!("open at depth {depth}")),
            PropertyVerdict::Unknown => ("2", "unknown (budget exhausted)".to_string()),
        };
        println!("  b{idx} {}: {} ({})", prop_report.name, status, detail);

        // Witness soundness gate: netlist replay and AIG replay must both
        // accept every counterexample before it is emitted.
        let trace = match &prop_report.verdict {
            PropertyVerdict::Falsified { trace, .. } => {
                trace
                    .validate_against(problem.netlist(), problem.property(idx).bad())
                    .map_err(|e| {
                        format!(
                            "{stem}::{}: witness fails netlist replay: {e}",
                            prop_report.name
                        )
                    })?;
                replay_on_aig(&aig, idx, trace).map_err(|e| {
                    format!(
                        "{stem}::{}: witness fails AIG replay: {e}",
                        prop_report.name
                    )
                })?;
                Some(trace)
            }
            _ => None,
        };
        let text = witness_text(idx, &prop_report.verdict, trace);
        if let Some(dir) = witness_dir {
            let wpath = dir.join(format!("{stem}.b{idx}.wit"));
            std::fs::write(&wpath, &text).map_err(|e| format!("{}: {e}", wpath.display()))?;
        } else if !quiet_witnesses {
            print!("{text}");
        }

        let (completed_depth, verdict_ok) = match &prop_report.verdict {
            PropertyVerdict::Falsified { depth, .. } => (*depth, true),
            PropertyVerdict::OpenAt { depth } => (*depth, true),
            PropertyVerdict::Unknown => (0, false),
        };
        report.push(BenchCase {
            name: format!("{stem}::{}", prop_report.name),
            strategy: format!("{strategy_label}/{reuse_label}"),
            // The session run is shared by all of the file's properties, so
            // the per-case wall time is the file's share — summing the cases
            // of a file (or the whole artifact) yields real wall time. The
            // undivided figure rides along as `file_wall_s`.
            wall_s: wall.as_secs_f64() / run.properties.len() as f64,
            conflicts: prop_report.conflicts,
            decisions: prop_report.decisions,
            propagations: prop_report.propagations,
            completed_depth,
            verdict_ok,
            extra: vec![
                ("properties".into(), run.properties.len() as f64),
                ("file_wall_s".into(), wall.as_secs_f64()),
                ("episodes".into(), prop_report.episodes as f64),
                (
                    "assumption_conflicts".into(),
                    prop_report.assumption_conflicts as f64,
                ),
                (
                    "retirement_depth".into(),
                    prop_report.retirement_depth.map_or(-1.0, |d| d as f64),
                ),
                ("solve_calls".into(), run.solver_stats.solve_calls as f64),
                (
                    "learned_retained".into(),
                    run.solver_stats.learned_retained as f64,
                ),
            ],
        });
    }

    if selfcheck {
        // The differential gate: each property re-checked alone, with a
        // fresh solver per depth; per-depth verdicts must be identical.
        for (idx, prop_report) in run.properties.iter().enumerate() {
            let single = ProblemBuilder::new(&stem, problem.netlist().clone())
                .property(&prop_report.name, problem.property(idx).bad())
                .build();
            let mut fresh_engine = BmcEngine::for_problem(
                single,
                BmcOptions {
                    reuse: SolverReuse::Fresh,
                    ..*options
                },
            );
            let fresh_run = fresh_engine.run_collecting();
            let fresh_verdicts: Vec<SolveResult> =
                fresh_run.per_depth.iter().map(|d| d.result).collect();
            if prop_report.depth_results != fresh_verdicts {
                return Err(format!(
                    "{stem}::{}: session verdicts {:?} != fresh verdicts {:?}",
                    prop_report.name, prop_report.depth_results, fresh_verdicts
                ));
            }
        }
        println!("  selfcheck: per-depth verdicts match fresh-per-depth runs");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--small");
    let selfcheck = args.iter().any(|a| a == "--selfcheck");
    let quiet_witnesses = args.iter().any(|a| a == "--quiet-witnesses");
    let depth: usize = flag_value(&args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 10 } else { 20 });
    let divisor: u32 = flag_value(&args, "--divisor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let strategy = parse_strategy(&args, divisor);
    let reuse = rbmc_bench::cli_reuse(&args, SolverReuse::Session);
    let witness_dir = flag_value(&args, "--witness-dir").map(PathBuf::from);
    if let Some(dir) = &witness_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create witness dir {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }

    let export_dir = match args.iter().position(|a| a == "--export-corpus") {
        Some(i) => match args.get(i + 1) {
            Some(dir) if !dir.starts_with("--") => Some(PathBuf::from(dir)),
            _ => {
                eprintln!("error: --export-corpus requires a directory argument");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    if let Some(dir) = &export_dir {
        let suite = if smoke {
            rbmc_gens::small_suite()
        } else {
            rbmc_gens::suite_table1()
        };
        match rbmc_gens::corpus::export_corpus(dir, &suite) {
            Ok(written) => eprintln!(
                "exported {} corpus files to {}",
                written.len(),
                dir.display()
            ),
            Err(e) => {
                eprintln!("error: corpus export failed: {e}");
                return ExitCode::from(1);
            }
        }
    }

    // The corpus directory: first positional (non-flag) argument, falling
    // back to a directory just exported.
    let value_flags = [
        "--depth",
        "--divisor",
        "--strategy",
        "--reuse",
        "--witness-dir",
        "--json-out",
        "--export-corpus",
    ];
    let mut positional: Option<PathBuf> = None;
    let mut skip = false;
    for arg in &args[1..] {
        if skip {
            skip = false;
            continue;
        }
        if value_flags.contains(&arg.as_str()) {
            skip = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        positional = Some(PathBuf::from(arg));
        break;
    }
    let Some(corpus_dir) = positional.or(export_dir) else {
        eprintln!(
            "usage: rbmc [DIR] [--export-corpus DIR] [--depth N] \
             [--reuse fresh|session] [--strategy bmc|sta|dyn|sht] [--divisor N] \
             [--selfcheck] [--smoke] [--witness-dir DIR] [--json-out PATH | --no-json]"
        );
        return ExitCode::from(2);
    };

    let mut files: Vec<PathBuf> = match std::fs::read_dir(&corpus_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("aag") | Some("aig")
                )
            })
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", corpus_dir.display());
            return ExitCode::from(1);
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!(
            "error: no .aag/.aig benchmarks in {} (try --export-corpus)",
            corpus_dir.display()
        );
        return ExitCode::from(1);
    }

    let options = BmcOptions {
        max_depth: depth,
        strategy,
        reuse,
        ..BmcOptions::default()
    };
    let mut report = BenchReport::new(format!(
        "rbmc corpus ({}, depth={depth}, strategy={}, reuse={}{})",
        corpus_dir.display(),
        strategy.label(),
        reuse.label(),
        if selfcheck { ", selfcheck" } else { "" }
    ));
    let start = Instant::now();
    let mut failures = 0usize;
    for path in &files {
        if let Err(e) = check_file(
            path,
            &options,
            selfcheck,
            witness_dir.as_deref(),
            &mut report,
            reuse.label(),
            strategy.label(),
            quiet_witnesses,
        ) {
            eprintln!("FAIL {e}");
            failures += 1;
        }
    }
    let falsified = report
        .cases
        .iter()
        .filter(|c| {
            c.extra
                .iter()
                .any(|(k, v)| k == "retirement_depth" && *v >= 0.0)
        })
        .count();
    println!(
        "\nchecked {} files / {} properties in {:.3}s: {} falsified (witnesses validated), \
         {} open, {} failures",
        files.len(),
        report.cases.len(),
        start.elapsed().as_secs_f64(),
        falsified,
        report.cases.len() - falsified,
        failures,
    );
    rbmc_bench::report::emit(&args, "corpus", &report);
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
