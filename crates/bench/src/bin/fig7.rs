//! Regenerates **Fig. 7**: per-depth statistics on one circuit — the number
//! of decisions (left plot) and the number of implications (right plot) at
//! each unrolling depth, for standard BMC vs refine-order BMC.
//!
//! The paper uses circuit `02_3_b2` (its slowest lock-style instance); our
//! analog is the deepest search-heavy passing instance, `11_1_shift10_twin`
//! (pass `--instance NAME` to pick another suite member). Smaller values
//! mean smaller search trees — the paper's explanation for the speedup.
//!
//! Usage: `cargo run -p rbmc-bench --release --bin fig7 [-- --instance NAME] [--smoke]
//! [--json-out PATH | --no-json]`

use rbmc_bench::{run_instance, BenchCase, BenchReport};
use rbmc_core::{OrderingStrategy, Weighting};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let suite = rbmc_bench::cli_suite(&args);
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--small");
    let wanted = args
        .iter()
        .position(|a| a == "--instance")
        .and_then(|i| args.get(i + 1))
        .map_or(
            if smoke {
                "s6_twin4"
            } else {
                "11_1_shift10_twin"
            },
            String::as_str,
        )
        .to_string();
    let instance = suite
        .iter()
        .find(|b| b.name == wanted)
        .unwrap_or_else(|| panic!("no suite instance named `{wanted}`"));

    let base = run_instance(instance, OrderingStrategy::Standard, Weighting::Linear);
    let refined = run_instance(instance, OrderingStrategy::RefinedStatic, Weighting::Linear);
    let mut report = BenchReport::new(format!("fig7 ({})", instance.name));
    report.push(BenchCase::from(&base));
    report.push(BenchCase::from(&refined));

    println!("# Fig 7 analog on {} (paper: 02_3_b2)", instance.name);
    println!("# x-axis: unrolling depth; series: BMC vs ref_ord_BMC");
    println!("k,decisions_bmc,decisions_ref,implications_bmc,implications_ref");
    let depths = base.run.per_depth.len().min(refined.run.per_depth.len());
    for i in 0..depths {
        let b = &base.run.per_depth[i];
        let r = &refined.run.per_depth[i];
        println!(
            "{},{},{},{},{}",
            b.depth, b.decisions, r.decisions, b.implications, r.implications
        );
    }
    let total = |xs: &[u64]| xs.iter().sum::<u64>();
    let b_dec: Vec<u64> = base.run.per_depth.iter().map(|d| d.decisions).collect();
    let r_dec: Vec<u64> = refined.run.per_depth.iter().map(|d| d.decisions).collect();
    let b_imp: Vec<u64> = base.run.per_depth.iter().map(|d| d.implications).collect();
    let r_imp: Vec<u64> = refined
        .run
        .per_depth
        .iter()
        .map(|d| d.implications)
        .collect();
    println!(
        "# totals: decisions {} -> {}, implications {} -> {}",
        total(&b_dec),
        total(&r_dec),
        total(&b_imp),
        total(&r_imp)
    );
    println!(
        "# shape check: refined decisions smaller at {} of {} depths",
        b_dec.iter().zip(&r_dec).filter(|&(b, r)| r < b).count(),
        depths
    );
    rbmc_bench::report::emit(&args, "fig7", &report);
}
