//! Measures the **§3.1 claim**: maintaining the simplified conflict
//! dependency graph costs about 5% runtime and negligible memory.
//!
//! Runs standard BMC (pure VSIDS) on the suite twice — CDG recording off
//! (plain Chaff) and on (`force_record_cdg`) — and reports the per-instance
//! and aggregate overhead, plus the CDG sizes (nodes/edges are the memory
//! proxy: each node stores only integer pseudo-IDs).
//!
//! Usage: `cargo run -p rbmc-bench --release --bin overhead [-- --smoke]
//! [--json-out PATH | --no-json]`

use std::time::Instant;

use rbmc_bench::{BenchCase, BenchReport};
use rbmc_core::{BmcEngine, BmcOptions, BmcOutcome, OrderingStrategy, SolverReuse};
use rbmc_gens::Expectation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--small");
    // Average over repetitions to stabilize sub-millisecond rows (once in
    // smoke mode, where only the artifact plumbing is under test).
    let reps: usize = if smoke { 1 } else { 5 };
    let mut report = BenchReport::new("overhead (cdg recording off vs on)");
    println!("CDG bookkeeping overhead (paper §3.1: ~5% runtime, negligible memory)\n");
    println!(
        "{:<20} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "model", "off (s)", "on (s)", "overhead", "cdg nodes", "cdg edges"
    );
    let mut total_off = 0.0;
    let mut total_on = 0.0;
    for instance in rbmc_bench::cli_suite(&args) {
        let mut time = [0.0f64; 2];
        let mut nodes = 0u64;
        let mut edges = 0u64;
        for (i, record) in [false, true].into_iter().enumerate() {
            let start = Instant::now();
            let mut last_run = None;
            for _ in 0..reps {
                let mut engine = BmcEngine::new(
                    instance.model.clone(),
                    BmcOptions {
                        max_depth: instance.max_depth,
                        strategy: OrderingStrategy::Standard,
                        // The §3.1 overhead claim is about the paper's
                        // fresh-per-depth regime.
                        reuse: SolverReuse::Fresh,
                        force_record_cdg: record,
                        ..BmcOptions::default()
                    },
                );
                last_run = Some(engine.run_collecting());
            }
            time[i] = start.elapsed().as_secs_f64() / reps as f64;
            let run = last_run.expect("at least one repetition ran");
            if record {
                nodes = run.per_depth.iter().map(|d| d.cdg_nodes).sum();
                edges = run.per_depth.iter().map(|d| d.cdg_edges).sum();
            }
            // The ground-truth check run_instance does for the other
            // binaries: a verdict regression must not hide in the artifact.
            let verdict_ok = match (&run.outcome, instance.expectation) {
                (BmcOutcome::Counterexample { depth, .. }, Expectation::FailsAt(d)) => *depth == d,
                (BmcOutcome::BoundReached { depth_completed }, Expectation::Holds) => {
                    *depth_completed == instance.max_depth
                }
                _ => false,
            };
            assert!(
                verdict_ok,
                "{}: verdict {:?} contradicts ground truth {:?}",
                instance.name, run.outcome, instance.expectation
            );
            report.push(BenchCase {
                name: instance.name.clone(),
                strategy: if record { "cdg_on" } else { "cdg_off" }.to_string(),
                wall_s: time[i],
                conflicts: run.total_conflicts(),
                decisions: run.total_decisions(),
                propagations: run.total_implications(),
                completed_depth: run.max_completed_depth().unwrap_or(0),
                verdict_ok,
                extra: if record {
                    vec![
                        ("cdg_nodes".to_string(), nodes as f64),
                        ("cdg_edges".to_string(), edges as f64),
                    ]
                } else {
                    Vec::new()
                },
            });
        }
        total_off += time[0];
        total_on += time[1];
        println!(
            "{:<20} {:>10.4} {:>10.4} {:>8.1}% {:>12} {:>12}",
            instance.name,
            time[0],
            time[1],
            (time[1] - time[0]) / time[0].max(1e-9) * 100.0,
            nodes,
            edges
        );
    }
    println!(
        "\nTOTAL: off {total_off:.3} s, on {total_on:.3} s -> overhead {:.1}% (paper: ~5%)",
        (total_on - total_off) / total_off.max(1e-9) * 100.0
    );
    rbmc_bench::report::emit(&args, "overhead", &report);
}
