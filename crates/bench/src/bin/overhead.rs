//! Measures the **§3.1 claim**: maintaining the simplified conflict
//! dependency graph costs about 5% runtime and negligible memory.
//!
//! Runs standard BMC (pure VSIDS) on the suite twice — CDG recording off
//! (plain Chaff) and on (`force_record_cdg`) — and reports the per-instance
//! and aggregate overhead, plus the CDG sizes (nodes/edges are the memory
//! proxy: each node stores only integer pseudo-IDs).
//!
//! Usage: `cargo run -p rbmc-bench --release --bin overhead`

use std::time::Instant;

use rbmc_core::{BmcEngine, BmcOptions, OrderingStrategy};
use rbmc_gens::suite_table1;

fn main() {
    println!("CDG bookkeeping overhead (paper §3.1: ~5% runtime, negligible memory)\n");
    println!(
        "{:<20} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "model", "off (s)", "on (s)", "overhead", "cdg nodes", "cdg edges"
    );
    let mut total_off = 0.0;
    let mut total_on = 0.0;
    for instance in suite_table1() {
        let mut time = [0.0f64; 2];
        let mut nodes = 0u64;
        let mut edges = 0u64;
        for (i, record) in [false, true].into_iter().enumerate() {
            // Average over repetitions to stabilize sub-millisecond rows.
            const REPS: usize = 5;
            let start = Instant::now();
            for _ in 0..REPS {
                let mut engine = BmcEngine::new(
                    instance.model.clone(),
                    BmcOptions {
                        max_depth: instance.max_depth,
                        strategy: OrderingStrategy::Standard,
                        force_record_cdg: record,
                        ..BmcOptions::default()
                    },
                );
                let run = engine.run_collecting();
                if record {
                    nodes = run.per_depth.iter().map(|d| d.cdg_nodes).sum();
                    edges = run.per_depth.iter().map(|d| d.cdg_edges).sum();
                }
            }
            time[i] = start.elapsed().as_secs_f64() / REPS as f64;
        }
        total_off += time[0];
        total_on += time[1];
        println!(
            "{:<20} {:>10.4} {:>10.4} {:>8.1}% {:>12} {:>12}",
            instance.name,
            time[0],
            time[1],
            (time[1] - time[0]) / time[0].max(1e-9) * 100.0,
            nodes,
            edges
        );
    }
    println!(
        "\nTOTAL: off {total_off:.3} s, on {total_on:.3} s -> overhead {:.1}% (paper: ~5%)",
        (total_on - total_off) / total_off.max(1e-9) * 100.0
    );
}
