//! Ablation for the **§3.3 dynamic-switch threshold**: the paper falls back
//! to plain VSIDS once `#decisions > #original_literals / 64`. This bench
//! sweeps the divisor: small divisors keep the refined ordering longer
//! (approaching the static configuration), large divisors give up earlier
//! (approaching standard BMC).
//!
//! Also prints the two fixed references (standard, static) so the sweep can
//! be read as an interpolation — and shows where the paper's 64 lands at
//! this formula scale (see EXPERIMENTS.md for the scale discussion).
//!
//! Usage: `cargo run -p rbmc-bench --release --bin ablation_switch`

use rbmc_bench::{ratio_percent, run_instance};
use rbmc_core::{OrderingStrategy, Weighting};
use rbmc_gens::suite_table1;

fn main() {
    println!("Dynamic-switch divisor sweep (§3.3; threshold = #literals / divisor)\n");
    let suite = suite_table1();

    let run_total = |strategy: OrderingStrategy| -> (f64, u64) {
        let mut time = 0.0;
        let mut decisions = 0;
        for instance in &suite {
            let r = run_instance(instance, strategy, Weighting::Linear);
            time += r.time.as_secs_f64();
            decisions += r.decisions;
        }
        (time, decisions)
    };

    let (base_time, base_dec) = run_total(OrderingStrategy::Standard);
    println!(
        "{:<22} {:>10.3} s {:>12} decisions  (100%)",
        "standard (VSIDS)", base_time, base_dec
    );
    let (sta_time, sta_dec) = run_total(OrderingStrategy::RefinedStatic);
    println!(
        "{:<22} {:>10.3} s {:>12} decisions  ({:.0}%)",
        "refined static",
        sta_time,
        sta_dec,
        ratio_percent(sta_dec as f64, base_dec as f64)
    );
    for divisor in [2u32, 8, 16, 64, 256, 1024] {
        let label = if divisor == 64 {
            format!("dynamic /{divisor} (paper)")
        } else {
            format!("dynamic /{divisor}")
        };
        let (time, dec) = run_total(OrderingStrategy::RefinedDynamic { divisor });
        println!(
            "{:<22} {:>10.3} s {:>12} decisions  ({:.0}%)",
            label,
            time,
            dec,
            ratio_percent(dec as f64, base_dec as f64)
        );
    }
    println!(
        "\nreading: divisor -> 0 approaches the static configuration; divisor -> inf\n\
         approaches standard BMC. The paper's 64 is calibrated to industrial\n\
         formulas (1e5-1e6 literals); at this suite's ~1e3-1e4 literals the same\n\
         divisor switches too early and forfeits an accurate ordering."
    );
}
