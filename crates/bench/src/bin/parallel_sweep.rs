//! `parallel_sweep` — sequential vs `--jobs` sweep over the exported
//! corpus, recorded as `BENCH_parallel.json`.
//!
//! For each worker budget in the jobs list (default `1,2,4`) the binary
//! sweeps every AIGER benchmark of the corpus the way `rbmc --jobs N` does:
//! files striped across `N` workers, each file's engine running with
//! [`ParallelConfig`] (property-sharded sessions for multi-property files —
//! single-property files simply occupy one worker). The `jobs=1`
//! configuration is the plain sequential engine and serves as the baseline;
//! every configuration's verdicts are cross-checked against it, so the
//! artifact doubles as a determinism gate.
//!
//! One report case per configuration: total wall time, summed solver
//! counters, and the speedup over the sequential baseline — plus
//! `host_cpus`, because a wall-clock win needs hardware parallelism (on a
//! single-core host every configuration degenerates to ~1×; the CI artifact
//! records what the runner hardware actually delivers).
//!
//! Usage:
//!
//! ```text
//! parallel_sweep [DIR] [--smoke] [--depth N] [--jobs-list 1,2,4]
//!                [--shard by-property|by-depth] [--no-preprocess]
//!                [--modes deterministic,striped,work-stealing,portfolio]
//!                [--jobs N] [--repeat N]
//!                [--json-out PATH | --no-json]
//! ```
//!
//! `--no-preprocess` turns off the engine's structural preprocessing in
//! every configuration of the sweep (the cross-checks then compare raw
//! engines against raw engines); by default all configurations run the
//! reduced model, like `rbmc` does.
//!
//! With `--modes`, the binary switches from the jobs sweep to the **relaxed
//! mode comparison** (`BENCH_relaxed.json`): every listed dispatch mode
//! sweeps the corpus at one worker budget (`--jobs`, default 4), each
//! file's wall time is the minimum over `--repeat` runs (default 2, to damp
//! scheduler noise), verdicts are cross-checked against the deterministic
//! mode, and each relaxed/portfolio mode records its total speedup over the
//! deterministic sweep plus its worst per-file regression ratio
//! (`worst_file_ratio_vs_det`).
//!
//! Without a positional corpus directory, the gens suite is exported to
//! `target/parallel-corpus` and swept from there.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rbmc_bench::{BenchCase, BenchReport};
use rbmc_core::{
    run_portfolio, BmcEngine, BmcOptions, BmcRun, OrderingStrategy, ParallelConfig, PortfolioMode,
    ProblemBuilder, ShardMode, SolveResult,
};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// One configuration's sweep over the whole corpus: returns the per-file
/// runs (in file order) and the aggregate wall time.
fn sweep(
    problems: &[rbmc_core::VerificationProblem],
    options: &BmcOptions,
    file_workers: usize,
) -> (Vec<BmcRun>, f64) {
    let start = Instant::now();
    let runs = rbmc_core::striped_map(problems.len(), file_workers, |_w, i| {
        let mut engine = BmcEngine::for_problem(problems[i].clone(), *options);
        engine.run_collecting()
    });
    (runs, start.elapsed().as_secs_f64())
}

/// The cross-check currency: every property's per-depth verdict sequence,
/// flattened over the corpus in file order.
fn all_verdicts(runs: &[BmcRun]) -> Vec<Vec<SolveResult>> {
    runs.iter()
        .flat_map(|r| r.properties.iter().map(|p| p.depth_results.clone()))
        .collect()
}

/// One dispatch mode of the relaxed comparison sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SweepMode {
    /// The deterministic commit-order baseline ([`ShardMode::ByProperty`]).
    Deterministic,
    /// A relaxed engine grain.
    Relaxed(ShardMode),
    /// Strategy-portfolio racing.
    Portfolio,
}

impl SweepMode {
    fn label(self) -> &'static str {
        match self {
            SweepMode::Deterministic => "deterministic",
            SweepMode::Relaxed(shard) => shard.label(),
            SweepMode::Portfolio => "portfolio",
        }
    }

    fn parse(label: &str) -> Option<SweepMode> {
        match label {
            "deterministic" | "det" => Some(SweepMode::Deterministic),
            "portfolio" => Some(SweepMode::Portfolio),
            other => ShardMode::parse(other).map(SweepMode::Relaxed),
        }
    }
}

/// One mode's sweep for the relaxed comparison: every file's engine (or
/// race) gets the full worker budget, files run sequentially (the engine
/// grain is what is being measured), and each file's wall time is the
/// minimum over `repeat` runs. Returns the last repeat's runs (for the
/// verdict cross-check) and the per-file minimum walls.
fn mode_sweep(
    problems: &[rbmc_core::VerificationProblem],
    base: &BmcOptions,
    mode: SweepMode,
    jobs: usize,
    repeat: usize,
) -> (Vec<BmcRun>, Vec<f64>) {
    let options = BmcOptions {
        parallel: match mode {
            SweepMode::Deterministic => Some(ParallelConfig::by_property(jobs)),
            SweepMode::Relaxed(shard) => Some(ParallelConfig { jobs, shard }),
            SweepMode::Portfolio => None,
        },
        ..*base
    };
    let mut walls = vec![f64::INFINITY; problems.len()];
    let mut runs = Vec::new();
    for _ in 0..repeat.max(1) {
        runs = problems
            .iter()
            .enumerate()
            .map(|(i, problem)| {
                let start = Instant::now();
                let run = match mode {
                    SweepMode::Portfolio => {
                        run_portfolio(problem, &options, PortfolioMode::Strategies, jobs).run
                    }
                    _ => {
                        let mut engine = BmcEngine::for_problem(problem.clone(), options);
                        engine.run_collecting()
                    }
                };
                walls[i] = walls[i].min(start.elapsed().as_secs_f64());
                run
            })
            .collect();
    }
    (runs, walls)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--small");
    let preprocess = !args.iter().any(|a| a == "--no-preprocess");
    let depth: usize = flag_value(&args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 10 } else { 20 });
    let mut jobs_list: Vec<usize> = flag_value(&args, "--jobs-list").map_or_else(
        || vec![1, 2, 4],
        |v| {
            v.split(',')
                .filter_map(|j| j.parse().ok())
                .filter(|&j| j > 0)
                .collect()
        },
    );
    if jobs_list.is_empty() {
        eprintln!("error: --jobs-list requires a comma-separated list of positive integers");
        return ExitCode::from(2);
    }
    // The first configuration is the speedup baseline and the verdict
    // reference; it must be the genuinely sequential sweep.
    if jobs_list[0] != 1 {
        jobs_list.insert(0, 1);
    }
    let shard = match flag_value(&args, "--shard") {
        None | Some("by-property") => ShardMode::ByProperty,
        Some("by-depth") => ShardMode::ByDepth,
        Some(other) => {
            eprintln!("error: --shard requires by-property|by-depth, got `{other}`");
            return ExitCode::from(2);
        }
    };

    // Corpus: the positional directory, or a fresh export of the gens suite.
    let value_flags = [
        "--depth",
        "--jobs-list",
        "--shard",
        "--modes",
        "--jobs",
        "--repeat",
        "--json-out",
    ];
    let mut positional: Option<PathBuf> = None;
    let mut skip = false;
    for arg in &args[1..] {
        if skip {
            skip = false;
            continue;
        }
        if value_flags.contains(&arg.as_str()) {
            skip = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        positional = Some(PathBuf::from(arg));
        break;
    }
    let corpus_dir = match positional {
        Some(dir) => dir,
        None => {
            let dir = PathBuf::from("target/parallel-corpus");
            // A stale mix of earlier exports would silently change the
            // sweep's workload; start from a clean directory.
            let _ = std::fs::remove_dir_all(&dir);
            let suite = if smoke {
                rbmc_gens::small_suite()
            } else {
                rbmc_gens::suite_table1()
            };
            if let Err(e) = rbmc_gens::corpus::export_corpus(&dir, &suite) {
                eprintln!("error: corpus export failed: {e}");
                return ExitCode::from(1);
            }
            dir
        }
    };

    let mut files: Vec<PathBuf> = match std::fs::read_dir(&corpus_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("aag") | Some("aig")
                )
            })
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", corpus_dir.display());
            return ExitCode::from(1);
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("error: no .aag/.aig benchmarks in {}", corpus_dir.display());
        return ExitCode::from(1);
    }
    let problems: Vec<rbmc_core::VerificationProblem> = match files
        .iter()
        .map(|path| {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("benchmark")
                .to_string();
            let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let aig = rbmc_circuit::aiger::parse_aiger(&bytes)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            let builder = ProblemBuilder::from_aig(&stem, &aig);
            if builder.num_properties() == 0 {
                return Err(format!("{}: no properties", path.display()));
            }
            Ok(builder.build())
        })
        .collect()
    {
        Ok(problems) => problems,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };

    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let num_properties: usize = problems
        .iter()
        .map(rbmc_core::VerificationProblem::num_properties)
        .sum();

    // --modes switches to the relaxed mode comparison (BENCH_relaxed.json).
    if let Some(modes_arg) = flag_value(&args, "--modes") {
        let mut modes: Vec<SweepMode> = Vec::new();
        for label in modes_arg.split(',') {
            match SweepMode::parse(label.trim()) {
                Some(mode) => {
                    if !modes.contains(&mode) {
                        modes.push(mode);
                    }
                }
                None => {
                    eprintln!(
                        "error: --modes accepts deterministic|by-property|by-depth|striped|\
                         work-stealing|portfolio, got `{label}`"
                    );
                    return ExitCode::from(2);
                }
            }
        }
        // The deterministic sweep is the verdict reference and the wall-time
        // denominator; it always runs, and always first.
        modes.retain(|m| *m != SweepMode::Deterministic);
        modes.insert(0, SweepMode::Deterministic);
        let jobs: usize = flag_value(&args, "--jobs")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4)
            .max(1);
        let repeat: usize = flag_value(&args, "--repeat")
            .and_then(|v| v.parse().ok())
            .unwrap_or(2)
            .max(1);
        let base = BmcOptions {
            max_depth: depth,
            strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
            preprocess,
            ..BmcOptions::default()
        };
        println!(
            "relaxed mode comparison: {} files / {num_properties} properties to depth {depth} \
             (jobs {jobs}, min of {repeat} runs, host cpus {host_cpus})",
            problems.len(),
        );
        let mut report = BenchReport::new(format!(
            "relaxed mode comparison ({}, depth={depth}, jobs={jobs}, repeat={repeat}, \
             host_cpus={host_cpus})",
            corpus_dir.display(),
        ));
        let mut det: Option<(Vec<Vec<SolveResult>>, Vec<f64>)> = None;
        for &mode in &modes {
            let (runs, walls) = mode_sweep(&problems, &base, mode, jobs, repeat);
            let verdicts = all_verdicts(&runs);
            let wall_s: f64 = walls.iter().sum();
            let (speedup, worst_ratio) = match &det {
                None => {
                    det = Some((verdicts, walls.clone()));
                    (1.0, 1.0)
                }
                Some((expected, det_walls)) => {
                    if &verdicts != expected {
                        eprintln!(
                            "error: mode {} verdicts diverge from the deterministic sweep",
                            mode.label()
                        );
                        return ExitCode::from(1);
                    }
                    let det_wall: f64 = det_walls.iter().sum();
                    // Per-file regression guard. Walls are clamped to a noise
                    // floor before dividing: most corpus files solve in well
                    // under 10ms, where scheduler jitter swamps any real
                    // difference and a raw ratio would report phantom
                    // regressions.
                    const NOISE_FLOOR_S: f64 = 0.01;
                    let worst = walls
                        .iter()
                        .zip(det_walls)
                        .map(|(w, d)| w.max(NOISE_FLOOR_S) / d.max(NOISE_FLOOR_S))
                        .fold(0.0_f64, f64::max);
                    (det_wall / wall_s, worst)
                }
            };
            let conflicts: u64 = runs.iter().map(rbmc_core::BmcRun::total_conflicts).sum();
            let decisions: u64 = runs.iter().map(rbmc_core::BmcRun::total_decisions).sum();
            let propagations: u64 = runs.iter().map(rbmc_core::BmcRun::total_implications).sum();
            let falsified: usize = runs.iter().map(rbmc_core::BmcRun::num_falsified).sum();
            println!(
                "  {}: {wall_s:.3}s wall, {falsified} falsified, speedup {speedup:.2}x vs \
                 deterministic, worst file ratio {worst_ratio:.2}",
                mode.label(),
            );
            report.push(BenchCase {
                name: "corpus_sweep".into(),
                strategy: mode.label().into(),
                wall_s,
                conflicts,
                decisions,
                propagations,
                completed_depth: depth,
                verdict_ok: true,
                extra: vec![
                    ("jobs".into(), jobs as f64),
                    ("repeat".into(), repeat as f64),
                    ("host_cpus".into(), host_cpus as f64),
                    ("files".into(), problems.len() as f64),
                    ("properties".into(), num_properties as f64),
                    ("falsified".into(), falsified as f64),
                    ("speedup_vs_det".into(), speedup),
                    ("worst_file_ratio_vs_det".into(), worst_ratio),
                ],
            });
        }
        rbmc_bench::report::emit(&args, "relaxed", &report);
        return ExitCode::SUCCESS;
    }

    println!(
        "parallel sweep: {} files / {num_properties} properties to depth {depth} \
         (shard {}, host cpus {host_cpus})",
        problems.len(),
        shard.label(),
    );

    let mut report = BenchReport::new(format!(
        "parallel corpus sweep ({}, depth={depth}, shard={}, host_cpus={host_cpus})",
        corpus_dir.display(),
        shard.label(),
    ));
    let mut baseline: Option<(Vec<Vec<SolveResult>>, f64)> = None;
    for &jobs in &jobs_list {
        // Same budget split as `rbmc --jobs`: file striping first, leftover
        // budget to each file's engine (never jobs² threads).
        let file_workers = jobs.min(problems.len()).max(1);
        let engine_jobs = (jobs / file_workers).max(1);
        let options = BmcOptions {
            max_depth: depth,
            strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
            preprocess,
            parallel: (engine_jobs > 1).then_some(ParallelConfig {
                jobs: engine_jobs,
                shard,
            }),
            ..BmcOptions::default()
        };
        let (runs, wall_s) = sweep(&problems, &options, file_workers);
        let verdicts = all_verdicts(&runs);
        let speedup = match &baseline {
            None => {
                baseline = Some((verdicts, wall_s));
                1.0
            }
            Some((expected, base_wall)) => {
                if &verdicts != expected {
                    eprintln!("error: jobs={jobs} verdicts diverge from the sequential sweep");
                    return ExitCode::from(1);
                }
                base_wall / wall_s
            }
        };
        let conflicts: u64 = runs.iter().map(rbmc_core::BmcRun::total_conflicts).sum();
        let decisions: u64 = runs.iter().map(rbmc_core::BmcRun::total_decisions).sum();
        let propagations: u64 = runs.iter().map(rbmc_core::BmcRun::total_implications).sum();
        let falsified: usize = runs.iter().map(rbmc_core::BmcRun::num_falsified).sum();
        println!("  jobs={jobs}: {wall_s:.3}s wall, {falsified} falsified, speedup {speedup:.2}x");
        report.push(BenchCase {
            name: "corpus_sweep".into(),
            strategy: format!("jobs={jobs}"),
            wall_s,
            conflicts,
            decisions,
            propagations,
            completed_depth: depth,
            verdict_ok: true,
            extra: vec![
                ("jobs".into(), jobs as f64),
                ("host_cpus".into(), host_cpus as f64),
                ("files".into(), problems.len() as f64),
                ("properties".into(), num_properties as f64),
                ("falsified".into(), falsified as f64),
                ("speedup_vs_seq".into(), speedup),
            ],
        });
    }
    rbmc_bench::report::emit(&args, "parallel", &report);
    ExitCode::SUCCESS
}
