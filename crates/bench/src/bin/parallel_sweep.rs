//! `parallel_sweep` — sequential vs `--jobs` sweep over the exported
//! corpus, recorded as `BENCH_parallel.json`.
//!
//! For each worker budget in the jobs list (default `1,2,4`) the binary
//! sweeps every AIGER benchmark of the corpus the way `rbmc --jobs N` does:
//! files striped across `N` workers, each file's engine running with
//! [`ParallelConfig`] (property-sharded sessions for multi-property files —
//! single-property files simply occupy one worker). The `jobs=1`
//! configuration is the plain sequential engine and serves as the baseline;
//! every configuration's verdicts are cross-checked against it, so the
//! artifact doubles as a determinism gate.
//!
//! One report case per configuration: total wall time, summed solver
//! counters, and the speedup over the sequential baseline — plus
//! `host_cpus`, because a wall-clock win needs hardware parallelism (on a
//! single-core host every configuration degenerates to ~1×; the CI artifact
//! records what the runner hardware actually delivers).
//!
//! Usage:
//!
//! ```text
//! parallel_sweep [DIR] [--smoke] [--depth N] [--jobs-list 1,2,4]
//!                [--shard by-property|by-depth]
//!                [--json-out PATH | --no-json]
//! ```
//!
//! Without a positional corpus directory, the gens suite is exported to
//! `target/parallel-corpus` and swept from there.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rbmc_bench::{BenchCase, BenchReport};
use rbmc_core::{
    BmcEngine, BmcOptions, BmcRun, OrderingStrategy, ParallelConfig, ProblemBuilder, ShardMode,
    SolveResult,
};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// One configuration's sweep over the whole corpus: returns the per-file
/// runs (in file order) and the aggregate wall time.
fn sweep(
    problems: &[rbmc_core::VerificationProblem],
    options: &BmcOptions,
    file_workers: usize,
) -> (Vec<BmcRun>, f64) {
    let start = Instant::now();
    let runs = rbmc_core::striped_map(problems.len(), file_workers, |_w, i| {
        let mut engine = BmcEngine::for_problem(problems[i].clone(), *options);
        engine.run_collecting()
    });
    (runs, start.elapsed().as_secs_f64())
}

/// The cross-check currency: every property's per-depth verdict sequence,
/// flattened over the corpus in file order.
fn all_verdicts(runs: &[BmcRun]) -> Vec<Vec<SolveResult>> {
    runs.iter()
        .flat_map(|r| r.properties.iter().map(|p| p.depth_results.clone()))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--small");
    let depth: usize = flag_value(&args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 10 } else { 20 });
    let mut jobs_list: Vec<usize> = flag_value(&args, "--jobs-list")
        .map(|v| {
            v.split(',')
                .filter_map(|j| j.parse().ok())
                .filter(|&j| j > 0)
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4]);
    if jobs_list.is_empty() {
        eprintln!("error: --jobs-list requires a comma-separated list of positive integers");
        return ExitCode::from(2);
    }
    // The first configuration is the speedup baseline and the verdict
    // reference; it must be the genuinely sequential sweep.
    if jobs_list[0] != 1 {
        jobs_list.insert(0, 1);
    }
    let shard = match flag_value(&args, "--shard") {
        None | Some("by-property") => ShardMode::ByProperty,
        Some("by-depth") => ShardMode::ByDepth,
        Some(other) => {
            eprintln!("error: --shard requires by-property|by-depth, got `{other}`");
            return ExitCode::from(2);
        }
    };

    // Corpus: the positional directory, or a fresh export of the gens suite.
    let value_flags = ["--depth", "--jobs-list", "--shard", "--json-out"];
    let mut positional: Option<PathBuf> = None;
    let mut skip = false;
    for arg in &args[1..] {
        if skip {
            skip = false;
            continue;
        }
        if value_flags.contains(&arg.as_str()) {
            skip = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        positional = Some(PathBuf::from(arg));
        break;
    }
    let corpus_dir = match positional {
        Some(dir) => dir,
        None => {
            let dir = PathBuf::from("target/parallel-corpus");
            // A stale mix of earlier exports would silently change the
            // sweep's workload; start from a clean directory.
            let _ = std::fs::remove_dir_all(&dir);
            let suite = if smoke {
                rbmc_gens::small_suite()
            } else {
                rbmc_gens::suite_table1()
            };
            if let Err(e) = rbmc_gens::corpus::export_corpus(&dir, &suite) {
                eprintln!("error: corpus export failed: {e}");
                return ExitCode::from(1);
            }
            dir
        }
    };

    let mut files: Vec<PathBuf> = match std::fs::read_dir(&corpus_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("aag") | Some("aig")
                )
            })
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", corpus_dir.display());
            return ExitCode::from(1);
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("error: no .aag/.aig benchmarks in {}", corpus_dir.display());
        return ExitCode::from(1);
    }
    let problems: Vec<rbmc_core::VerificationProblem> = match files
        .iter()
        .map(|path| {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("benchmark")
                .to_string();
            let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let aig = rbmc_circuit::aiger::parse_aiger(&bytes)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            let builder = ProblemBuilder::from_aig(&stem, &aig);
            if builder.num_properties() == 0 {
                return Err(format!("{}: no properties", path.display()));
            }
            Ok(builder.build())
        })
        .collect()
    {
        Ok(problems) => problems,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let num_properties: usize = problems.iter().map(|p| p.num_properties()).sum();
    println!(
        "parallel sweep: {} files / {num_properties} properties to depth {depth} \
         (shard {}, host cpus {host_cpus})",
        problems.len(),
        shard.label(),
    );

    let mut report = BenchReport::new(format!(
        "parallel corpus sweep ({}, depth={depth}, shard={}, host_cpus={host_cpus})",
        corpus_dir.display(),
        shard.label(),
    ));
    let mut baseline: Option<(Vec<Vec<SolveResult>>, f64)> = None;
    for &jobs in &jobs_list {
        // Same budget split as `rbmc --jobs`: file striping first, leftover
        // budget to each file's engine (never jobs² threads).
        let file_workers = jobs.min(problems.len()).max(1);
        let engine_jobs = (jobs / file_workers).max(1);
        let options = BmcOptions {
            max_depth: depth,
            strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
            parallel: (engine_jobs > 1).then_some(ParallelConfig {
                jobs: engine_jobs,
                shard,
            }),
            ..BmcOptions::default()
        };
        let (runs, wall_s) = sweep(&problems, &options, file_workers);
        let verdicts = all_verdicts(&runs);
        let speedup = match &baseline {
            None => {
                baseline = Some((verdicts, wall_s));
                1.0
            }
            Some((expected, base_wall)) => {
                if &verdicts != expected {
                    eprintln!("error: jobs={jobs} verdicts diverge from the sequential sweep");
                    return ExitCode::from(1);
                }
                base_wall / wall_s
            }
        };
        let conflicts: u64 = runs.iter().map(|r| r.total_conflicts()).sum();
        let decisions: u64 = runs.iter().map(|r| r.total_decisions()).sum();
        let propagations: u64 = runs.iter().map(|r| r.total_implications()).sum();
        let falsified: usize = runs.iter().map(|r| r.num_falsified()).sum();
        println!("  jobs={jobs}: {wall_s:.3}s wall, {falsified} falsified, speedup {speedup:.2}x");
        report.push(BenchCase {
            name: "corpus_sweep".into(),
            strategy: format!("jobs={jobs}"),
            wall_s,
            conflicts,
            decisions,
            propagations,
            completed_depth: depth,
            verdict_ok: true,
            extra: vec![
                ("jobs".into(), jobs as f64),
                ("host_cpus".into(), host_cpus as f64),
                ("files".into(), problems.len() as f64),
                ("properties".into(), num_properties as f64),
                ("falsified".into(), falsified as f64),
                ("speedup_vs_seq".into(), speedup),
            ],
        });
    }
    rbmc_bench::report::emit(&args, "parallel", &report);
    ExitCode::SUCCESS
}
