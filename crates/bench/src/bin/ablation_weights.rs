//! Ablation for the **§3.2 weighting choice**: the paper weights the core of
//! instance `j` by `j` (recent cores matter more, but none exclusively).
//! This bench compares that linear weighting against uniform weights and
//! against trusting only the most recent core, under the static strategy.
//!
//! Usage: `cargo run -p rbmc-bench --release --bin ablation_weights`

use rbmc_bench::{ratio_percent, run_instance};
use rbmc_core::{OrderingStrategy, Weighting};
use rbmc_gens::suite_table1;

fn main() {
    println!("Score-weighting ablation (static strategy; §3.2)\n");
    let schemes = [
        ("linear (paper)", Weighting::Linear),
        ("uniform", Weighting::Uniform),
        ("last-core-only", Weighting::LastOnly),
    ];
    println!(
        "{:<20} {:>14} {:>14} {:>14}",
        "model", "linear", "uniform", "last-only"
    );
    let mut totals_dec = [0u64; 3];
    let mut totals_time = [0.0f64; 3];
    for instance in suite_table1() {
        let mut cells = Vec::new();
        for (i, (_, weighting)) in schemes.iter().enumerate() {
            let r = run_instance(&instance, OrderingStrategy::RefinedStatic, *weighting);
            totals_dec[i] += r.decisions;
            totals_time[i] += r.time.as_secs_f64();
            cells.push(format!("{}", r.decisions));
        }
        println!(
            "{:<20} {:>14} {:>14} {:>14}",
            instance.name, cells[0], cells[1], cells[2]
        );
    }
    println!("\ntotals (decisions):");
    for (i, (name, _)) in schemes.iter().enumerate() {
        println!(
            "  {name:<16} {:>10} decisions, {:>8.3} s  ({:.0}% of linear)",
            totals_dec[i],
            totals_time[i],
            ratio_percent(totals_dec[i] as f64, totals_dec[0] as f64)
        );
    }
    println!(
        "\npaper's position: all previous cores with recency weighting — no single\n\
         core is trusted exclusively (§3.2's two justifications)."
    );
}
