//! Criterion benchmarks of whole BMC runs per ordering strategy on
//! representative suite members — the statistically rigorous companion to
//! the `table1` binary (which reports single-shot wall times like the
//! paper's table).

use criterion::{criterion_group, criterion_main, Criterion};
use rbmc_core::{BmcEngine, BmcOptions, OrderingStrategy};
use rbmc_gens::families;

type MakeModel = Box<dyn Fn() -> rbmc_core::Model>;

fn bench_strategies(c: &mut Criterion) {
    // Representative search-heavy instances (one passing, one failing).
    let cases: Vec<(&str, MakeModel, usize)> = vec![
        ("twin10", Box::new(|| families::shift_twin(10)), 14),
        ("fifo16_over", Box::new(|| families::fifo_unguarded(4)), 18),
        ("drift8x6", Box::new(|| families::drifting_twin(8, 6)), 12),
    ];
    for (name, make, depth) in cases {
        let mut group = c.benchmark_group(format!("bmc/{name}"));
        group.sample_size(10);
        for (label, strategy) in [
            ("standard", OrderingStrategy::Standard),
            ("static", OrderingStrategy::RefinedStatic),
            (
                "dynamic64",
                OrderingStrategy::RefinedDynamic { divisor: 64 },
            ),
            ("shtrichman", OrderingStrategy::Shtrichman),
        ] {
            group.bench_function(label, |b| {
                b.iter(|| {
                    let mut engine = BmcEngine::new(
                        make(),
                        BmcOptions {
                            max_depth: depth,
                            strategy,
                            // Compare orderings in the paper's regime; the
                            // session's clause reuse would mask the gap.
                            reuse: rbmc_core::SolverReuse::Fresh,
                            ..BmcOptions::default()
                        },
                    );
                    engine.run()
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
