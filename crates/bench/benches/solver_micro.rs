//! Criterion micro-benchmarks of the SAT solver substrate: BCP throughput,
//! full solves of random 3-SAT near the phase transition, and the cost of
//! CDG recording at the solver level (the §3.1 overhead, isolated).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbmc_cnf::{CnfFormula, Lit, Var};
use rbmc_solver::{Solver, SolverOptions};

fn random_3sat(seed: u64, num_vars: usize, num_clauses: usize) -> CnfFormula {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = CnfFormula::with_vars(num_vars);
    for _ in 0..num_clauses {
        let lits: Vec<Lit> = (0..3)
            .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
            .collect();
        f.add_clause(lits);
    }
    f
}

/// A long implication chain: x1, x1->x2, ..., x_{n-1}->x_n, forcing one BCP
/// sweep across the whole formula.
fn implication_chain(n: usize) -> CnfFormula {
    let mut f = CnfFormula::with_vars(n);
    f.add_clause([Var::new(0).positive()]);
    for i in 0..n - 1 {
        f.add_clause([Var::new(i).negative(), Var::new(i + 1).positive()]);
    }
    f
}

fn bench_bcp(c: &mut Criterion) {
    let chain = implication_chain(20_000);
    c.bench_function("bcp/chain_20k", |b| {
        b.iter_batched(
            || Solver::from_formula(&chain),
            |mut s| s.solve(),
            BatchSize::SmallInput,
        );
    });
    // Random 3-SAT at the phase transition: a long conflict-driven search
    // whose learned-clause database grows to thousands of clauses, so the
    // solve is dominated by watched-literal BCP sweeps over a cache-hostile
    // clause DB — the number the arena layout and tombstone-free reduction
    // are meant to move.
    let f = random_3sat(11, 170, (170.0 * 4.26) as usize);
    c.bench_function("bcp/random3sat_n170", |b| {
        b.iter_batched(
            || Solver::from_formula(&f),
            |mut s| s.solve(),
            BatchSize::SmallInput,
        );
    });
    // Random 3-SAT below the phase transition: few conflicts, so this
    // isolates one propagation-and-decision sweep over a large (multi-MB)
    // original clause DB.
    let f = random_3sat(11, 8_000, (8_000.0 * 3.3) as usize);
    c.bench_function("bcp/random3sat_n8000", |b| {
        b.iter_batched(
            || Solver::from_formula(&f),
            |mut s| s.solve(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_random_3sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve/random_3sat");
    for &n in &[50usize, 100, 150] {
        let clauses = (n as f64 * 4.26) as usize;
        let f = random_3sat(7 + n as u64, n, clauses);
        group.bench_function(format!("n{n}"), |b| {
            b.iter_batched(
                || Solver::from_formula(&f),
                |mut s| s.solve(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_cdg_overhead(c: &mut Criterion) {
    // UNSAT instance with real conflict work: all clauses over few vars.
    let f = random_3sat(99, 30, 350);
    let mut group = c.benchmark_group("solve/cdg_overhead");
    for (label, record) in [("off", false), ("on", true)] {
        let opts = SolverOptions {
            record_cdg: record,
            ..SolverOptions::default()
        };
        group.bench_function(label, |b| {
            b.iter_batched(
                || Solver::from_formula_with(&f, opts),
                |mut s| s.solve(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bcp, bench_random_3sat, bench_cdg_overhead);
criterion_main!(benches);
