//! Criterion benchmarks of the Eq. 1 encoder (`Unroller`): fresh
//! single-instance encoding, the cache-hit path of a long-lived unroller,
//! and — the number that matters for BMC runs — the per-depth sweep pattern
//! `BmcEngine` drives (one instance per depth `0..=K`), whose total cost the
//! incremental prefix cache turns from quadratic to linear in `K`.

use criterion::{criterion_group, criterion_main, Criterion};
use rbmc_core::Unroller;
use rbmc_gens::families;

fn bench_fresh(c: &mut Criterion) {
    // One cold encode of the deepest instance: a fresh unroller per
    // iteration, so the prefix cache never helps. The floor every other
    // number is compared against.
    let model = families::fifo_guarded(4);
    c.bench_function("unroll/fresh_k20", |b| {
        b.iter(|| {
            let unroller = Unroller::new(&model);
            unroller.formula(20)
        });
    });
}

fn bench_engine_sweep(c: &mut Criterion) {
    // The BmcEngine pattern: one instance per depth k = 0..=K from a single
    // unroller, consumed the way `make_solver` consumes it (every clause of
    // the prefix visited, plus the bad-state unit). With the prefix cache
    // each frame is encoded once, so the whole sweep is linear in K where a
    // fresh `formula(k)` per depth is quadratic.
    let model = families::fifo_guarded(4);
    for k in [15usize, 20] {
        c.bench_function(format!("unroll/sweep_k{k}"), |b| {
            b.iter(|| {
                let unroller = Unroller::new(&model);
                let mut literals = 0usize;
                for depth in 0..=k {
                    literals += unroller.with_prefix(depth, |clauses| {
                        clauses.iter().map(|c| c.len()).sum::<usize>()
                    });
                    literals += 1; // the ¬P(V^k) unit of `bad_lit`
                }
                literals
            });
        });
    }
}

fn bench_cached_instance(c: &mut Criterion) {
    // Repeated deepest-instance builds on one long-lived unroller. `formula`
    // materializes an owned CnfFormula (one allocation per clause), which is
    // why the engine consumes `with_prefix` instead; this pins the cost of
    // the owned path so the gap stays visible.
    let model = families::fifo_guarded(4);
    c.bench_function("unroll/fifo16_k20", |b| {
        let unroller = Unroller::new(&model);
        b.iter(|| unroller.formula(20));
    });
}

criterion_group!(
    benches,
    bench_fresh,
    bench_engine_sweep,
    bench_cached_instance
);
criterion_main!(benches);
