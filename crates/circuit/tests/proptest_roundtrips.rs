//! Property-based tests: random netlists survive BLIF and AIGER roundtrips
//! and AIG lowering with identical sequential behaviour.

use proptest::prelude::*;
use rbmc_circuit::aiger::{parse_aag, parse_aig, parse_aiger, write_aag, write_aig};
use rbmc_circuit::blif::{parse_blif, write_blif};
use rbmc_circuit::sim::{read_signal, Simulator};
use rbmc_circuit::{Aig, LatchInit, Netlist, Signal};

/// A recipe for one random netlist: a list of gate-construction steps over a
/// pool of existing signals.
#[derive(Debug, Clone)]
enum Step {
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
    NotOf(usize),
}

#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    latch_inits: Vec<bool>,
    steps: Vec<Step>,
    /// For each latch: which pool signal drives its next state.
    nexts: Vec<usize>,
    /// Which pool signals become outputs.
    outputs: Vec<usize>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (1usize..4, 1usize..4).prop_flat_map(|(num_inputs, num_latches)| {
        let pool0 = num_inputs + num_latches + 1; // +1 for constant TRUE
        let steps = prop::collection::vec(
            prop_oneof![
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::And(a, b)),
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::Or(a, b)),
                (0usize..64, 0usize..64).prop_map(|(a, b)| Step::Xor(a, b)),
                (0usize..64, 0usize..64, 0usize..64).prop_map(|(s, a, b)| Step::Mux(s, a, b)),
                (0usize..64).prop_map(Step::NotOf),
            ],
            1..12,
        );
        let inits = prop::collection::vec(any::<bool>(), num_latches);
        (steps, inits).prop_flat_map(move |(steps, latch_inits)| {
            let pool_size = pool0 + steps.len();
            let nexts = prop::collection::vec(0usize..pool_size, num_latches);
            let outputs = prop::collection::vec(0usize..pool_size, 1..3);
            (nexts, outputs).prop_map({
                let steps = steps.clone();
                let latch_inits = latch_inits.clone();
                move |(nexts, outputs)| Recipe {
                    num_inputs,
                    latch_inits: latch_inits.clone(),
                    steps: steps.clone(),
                    nexts,
                    outputs,
                }
            })
        })
    })
}

/// Materializes the recipe into a netlist.
fn build(recipe: &Recipe) -> Netlist {
    let mut n = Netlist::new();
    let mut pool: Vec<Signal> = vec![Signal::TRUE];
    for i in 0..recipe.num_inputs {
        pool.push(n.add_input(&format!("in{i}")));
    }
    let mut latch_sigs = Vec::new();
    for (i, &one) in recipe.latch_inits.iter().enumerate() {
        let init = if one { LatchInit::One } else { LatchInit::Zero };
        let l = n.add_latch(&format!("r{i}"), init);
        latch_sigs.push(l);
        pool.push(l);
    }
    for step in &recipe.steps {
        let pick = |i: usize, pool: &Vec<Signal>| pool[i % pool.len()];
        let s = match *step {
            Step::And(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.and2(x, y)
            }
            Step::Or(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.or2(x, y)
            }
            Step::Xor(a, b) => {
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                n.xor2(x, y)
            }
            Step::Mux(s, a, b) => {
                let (c, x, y) = (pick(s, &pool), pick(a, &pool), pick(b, &pool));
                n.mux(c, x, y)
            }
            Step::NotOf(a) => !pick(a, &pool),
        };
        pool.push(s);
    }
    for (latch, &nx) in latch_sigs.iter().zip(&recipe.nexts) {
        n.set_next(*latch, pool[nx % pool.len()]);
    }
    for (i, &o) in recipe.outputs.iter().enumerate() {
        n.add_output(&format!("y{i}"), pool[o % pool.len()]);
    }
    n
}

/// Deterministic pseudo-random input sequence.
fn input_at(step: usize, k: usize) -> bool {
    (step * 7 + k * 13) % 5 < 2
}

fn behaviour(netlist: &Netlist, steps: usize) -> Vec<Vec<bool>> {
    let mut sim = Simulator::new(netlist);
    let ni = netlist.num_inputs();
    (0..steps)
        .map(|s| {
            let inputs: Vec<bool> = (0..ni).map(|k| input_at(s, k)).collect();
            let out = sim.output_values(&inputs);
            sim.step(&inputs);
            out
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn netlist_validates(recipe in arb_recipe()) {
        let n = build(&recipe);
        prop_assert!(n.validate().is_ok());
    }

    #[test]
    fn blif_roundtrip_preserves_behaviour(recipe in arb_recipe()) {
        let n = build(&recipe);
        let text = write_blif(&n, "rand");
        let back = parse_blif(&text).unwrap();
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(behaviour(&n, 12), behaviour(&back, 12));
    }

    #[test]
    fn aig_lowering_preserves_behaviour(recipe in arb_recipe()) {
        let n = build(&recipe);
        let lowered = Aig::from_netlist(&n);
        let aig = &lowered.aig;
        // Step both side by side.
        let mut sim = Simulator::new(&n);
        let mut aig_state: Vec<bool> = aig
            .latches()
            .iter()
            .map(|&l| matches!(aig.init_of(l), Some(LatchInit::One)))
            .collect();
        for s in 0..12 {
            let inputs: Vec<bool> = (0..n.num_inputs()).map(|k| input_at(s, k)).collect();
            let net_vals = sim.frame_values(&inputs);
            let aig_vals = aig.eval_frame(&aig_state, &inputs);
            for ((_, sig), (_, lit)) in n.outputs().iter().zip(aig.outputs()) {
                prop_assert_eq!(
                    read_signal(&net_vals, *sig),
                    lit.apply(aig_vals[lit.node()]),
                    "output diverged at step {}", s
                );
            }
            sim.step(&inputs);
            aig_state = aig
                .latches()
                .iter()
                .map(|&l| {
                    let nx = aig.next_of(l).unwrap();
                    nx.apply(aig_vals[nx.node()])
                })
                .collect();
        }
    }

    #[test]
    fn binary_and_ascii_aiger_roundtrips_agree(recipe in arb_recipe()) {
        // Lower a random netlist, promote its outputs to bad-state
        // properties (the multi-property ingestion path), and round-trip
        // through BOTH encodings: the canonical ASCII re-serialization of
        // either parse must be byte-identical, and behaviour (outputs and
        // bads) must be preserved through the binary format.
        let n = build(&recipe);
        let lowered = Aig::from_netlist(&n);
        let mut aig = lowered.aig;
        let outs: Vec<(String, rbmc_circuit::AigLit)> = aig.outputs().to_vec();
        for (name, lit) in &outs {
            aig.add_bad(&format!("bad_{name}"), *lit);
        }
        let ascii = write_aag(&aig);
        let binary = write_aig(&aig);
        let via_ascii = parse_aag(&ascii).unwrap();
        let via_binary = parse_aig(&binary).unwrap();
        prop_assert_eq!(write_aag(&via_ascii), write_aag(&via_binary));
        prop_assert_eq!(via_binary.bads().len(), outs.len());
        // The auto-detecting entry point picks the right parser for both.
        prop_assert_eq!(
            write_aag(&parse_aiger(ascii.as_bytes()).unwrap()),
            write_aag(&parse_aiger(&binary).unwrap())
        );
        // Behaviour of outputs and bads through the binary roundtrip.
        let init_state = |aig: &Aig| -> Vec<bool> {
            aig.latches()
                .iter()
                .map(|&l| matches!(aig.init_of(l), Some(LatchInit::One)))
                .collect()
        };
        let mut sa = init_state(&aig);
        let mut sb = init_state(&via_binary);
        for s in 0..12 {
            let inputs: Vec<bool> = (0..n.num_inputs()).map(|k| input_at(s, k)).collect();
            let va = aig.eval_frame(&sa, &inputs);
            let vb = via_binary.eval_frame(&sb, &inputs);
            for ((_, la), (_, lb)) in aig.outputs().iter().zip(via_binary.outputs()) {
                prop_assert_eq!(la.apply(va[la.node()]), lb.apply(vb[lb.node()]));
            }
            for ((_, la), (_, lb)) in aig.bads().iter().zip(via_binary.bads()) {
                prop_assert_eq!(la.apply(va[la.node()]), lb.apply(vb[lb.node()]));
            }
            sa = aig
                .latches()
                .iter()
                .map(|&l| {
                    let nx = aig.next_of(l).unwrap();
                    nx.apply(va[nx.node()])
                })
                .collect();
            sb = via_binary
                .latches()
                .iter()
                .map(|&l| {
                    let nx = via_binary.next_of(l).unwrap();
                    nx.apply(vb[nx.node()])
                })
                .collect();
        }
    }

    #[test]
    fn aiger_roundtrip_preserves_behaviour(recipe in arb_recipe()) {
        let n = build(&recipe);
        let lowered = Aig::from_netlist(&n);
        let text = write_aag(&lowered.aig);
        let back = parse_aag(&text).unwrap();
        // Compare the AIGs against each other over 12 steps.
        let init_state = |aig: &Aig| -> Vec<bool> {
            aig.latches()
                .iter()
                .map(|&l| matches!(aig.init_of(l), Some(LatchInit::One)))
                .collect()
        };
        let mut sa = init_state(&lowered.aig);
        let mut sb = init_state(&back);
        for s in 0..12 {
            let inputs: Vec<bool> = (0..n.num_inputs()).map(|k| input_at(s, k)).collect();
            let va = lowered.aig.eval_frame(&sa, &inputs);
            let vb = back.eval_frame(&sb, &inputs);
            for ((_, la), (_, lb)) in lowered.aig.outputs().iter().zip(back.outputs()) {
                prop_assert_eq!(la.apply(va[la.node()]), lb.apply(vb[lb.node()]));
            }
            sa = lowered
                .aig
                .latches()
                .iter()
                .map(|&l| {
                    let nx = lowered.aig.next_of(l).unwrap();
                    nx.apply(va[nx.node()])
                })
                .collect();
            sb = back
                .latches()
                .iter()
                .map(|&l| {
                    let nx = back.next_of(l).unwrap();
                    nx.apply(vb[nx.node()])
                })
                .collect();
        }
    }
}
