//! Cone-of-influence analysis and reduction.
//!
//! The cone of influence of a signal is everything that can affect it:
//! transitively, the fanins of its node, and — through latches — the fanins
//! of their next-state functions. Nodes outside the cone cannot influence a
//! property and can be dropped before encoding. (The paper's abstractions of
//! §3 are *subsets of the COI* discovered semantically via unsatisfiable
//! cores; COI is the coarser, purely structural bound.)

use std::collections::HashMap;

use crate::{LatchInit, Netlist, Node, NodeId, Signal};

/// Computes the set of node ids in the cone of influence of `seeds`.
///
/// The returned vector is sorted by node index and always contains the
/// constant node.
///
/// # Examples
///
/// ```
/// use rbmc_circuit::coi::cone_of_influence;
/// use rbmc_circuit::{LatchInit, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_latch("a", LatchInit::Zero);
/// let b = n.add_latch("b", LatchInit::Zero); // irrelevant to `a`
/// n.set_next(a, !a);
/// n.set_next(b, !b);
/// let cone = cone_of_influence(&n, &[a]);
/// assert!(cone.contains(&a.node()));
/// assert!(!cone.contains(&b.node()));
/// ```
pub fn cone_of_influence(netlist: &Netlist, seeds: &[Signal]) -> Vec<NodeId> {
    let mut in_cone = vec![false; netlist.num_nodes()];
    in_cone[NodeId::CONST.index()] = true;
    let mut stack: Vec<NodeId> = seeds.iter().map(|s| s.node()).collect();
    while let Some(id) = stack.pop() {
        if in_cone[id.index()] {
            continue;
        }
        in_cone[id.index()] = true;
        match netlist.node(id) {
            Node::Gate { fanins, .. } => {
                stack.extend(fanins.iter().map(|s| s.node()));
            }
            Node::Latch {
                next: Some(next), ..
            } => stack.push(next.node()),
            _ => {}
        }
    }
    (0..netlist.num_nodes())
        .filter(|&i| in_cone[i])
        .map(NodeId::new)
        .collect()
}

/// The result of [`reduce_to_cone`]: the reduced netlist plus the signal
/// mapping for the seeds.
#[derive(Debug, Clone)]
pub struct CoiReduction {
    /// The reduced netlist (only nodes inside the cone).
    pub netlist: Netlist,
    /// For each seed passed to [`reduce_to_cone`], the corresponding signal
    /// in the reduced netlist.
    pub seed_signals: Vec<Signal>,
}

/// Builds a new netlist containing only the cone of influence of `seeds`.
///
/// Node names are preserved; outputs are re-declared for the seeds only
/// (named `coi0`, `coi1`, … in seed order) on top of the mapping returned in
/// [`CoiReduction::seed_signals`].
///
/// # Panics
///
/// Panics if the netlist fails [`Netlist::validate`] (unconnected latches).
pub fn reduce_to_cone(netlist: &Netlist, seeds: &[Signal]) -> CoiReduction {
    netlist.validate().expect("netlist must be well-formed");
    let cone = cone_of_influence(netlist, seeds);
    let mut reduced = Netlist::new();
    let mut map: HashMap<NodeId, Signal> = HashMap::new();
    map.insert(NodeId::CONST, Signal::FALSE);

    // First pass: create inputs and latches (so cycles through latches work).
    for &id in &cone {
        match netlist.node(id) {
            Node::Input => {
                let name = netlist.name(id).unwrap_or("in");
                map.insert(id, reduced.add_input(name));
            }
            Node::Latch { init, .. } => {
                let name = netlist.name(id).unwrap_or("latch");
                map.insert(id, reduced.add_latch(name, *init));
            }
            _ => {}
        }
    }
    // Second pass: gates in topological order.
    let translate = |map: &HashMap<NodeId, Signal>, s: Signal| -> Signal {
        let base = map[&s.node()];
        if s.is_inverted() {
            !base
        } else {
            base
        }
    };
    for id in netlist.topo_order() {
        if cone.binary_search(&id).is_err() {
            continue;
        }
        if let Node::Gate { op, fanins } = netlist.node(id) {
            let new_fanins: Vec<Signal> = fanins.iter().map(|&s| translate(&map, s)).collect();
            use crate::GateOp;
            let new_sig = match op {
                GateOp::And => reduced.and_many(&new_fanins),
                GateOp::Or => reduced.or_many(&new_fanins),
                GateOp::Xor => reduced.xor_many(&new_fanins),
                GateOp::Mux => reduced.mux(new_fanins[0], new_fanins[1], new_fanins[2]),
            };
            map.insert(id, new_sig);
        }
    }
    // Third pass: connect latches.
    for &id in &cone {
        if let Node::Latch {
            next: Some(next), ..
        } = netlist.node(id)
        {
            let latch_sig = map[&id];
            reduced.set_next(latch_sig, translate(&map, *next));
        }
    }
    let seed_signals: Vec<Signal> = seeds.iter().map(|&s| translate(&map, s)).collect();
    for (i, &s) in seed_signals.iter().enumerate() {
        reduced.add_output(&format!("coi{i}"), s);
    }
    CoiReduction {
        netlist: reduced,
        seed_signals,
    }
}

/// Counts the registers inside the cone of influence of `seeds` (the paper
/// plots circuits on a "register axis"; this is the model-size metric BMC
/// reports).
pub fn registers_in_cone(netlist: &Netlist, seeds: &[Signal]) -> usize {
    cone_of_influence(netlist, seeds)
        .iter()
        .filter(|&&id| matches!(netlist.node(id), Node::Latch { .. }))
        .count()
}

/// Convenience: latch initial value as a `bool` (Free defaults to 0).
pub fn init_value(init: LatchInit) -> bool {
    matches!(init, LatchInit::One)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    /// Two independent counters; a property about one should drop the other.
    fn two_counters(width: usize) -> (Netlist, Vec<Signal>, Vec<Signal>) {
        let mut n = Netlist::new();
        let a: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("a{i}"), LatchInit::Zero))
            .collect();
        let b: Vec<Signal> = (0..width)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let an = n.bus_increment(&a);
        let bn = n.bus_increment(&b);
        for (&l, &nx) in a.iter().zip(&an) {
            n.set_next(l, nx);
        }
        for (&l, &nx) in b.iter().zip(&bn) {
            n.set_next(l, nx);
        }
        (n, a, b)
    }

    #[test]
    fn cone_excludes_independent_logic() {
        let (n, a, b) = two_counters(4);
        let target = a[3];
        let cone = cone_of_influence(&n, &[target]);
        for &sig in &a {
            assert!(cone.contains(&sig.node()), "own counter in cone");
        }
        for &sig in &b {
            assert!(!cone.contains(&sig.node()), "other counter out of cone");
        }
    }

    #[test]
    fn register_count_in_cone() {
        let (n, a, _) = two_counters(5);
        assert_eq!(registers_in_cone(&n, &[a[4]]), 5);
        assert_eq!(n.num_latches(), 10);
    }

    #[test]
    fn reduction_preserves_behaviour() {
        let (n, a, _) = two_counters(3);
        // Seed: MSB of counter a.
        let reduction = reduce_to_cone(&n, &[a[2]]);
        let reduced = &reduction.netlist;
        reduced.validate().unwrap();
        assert_eq!(reduced.num_latches(), 3);
        // Compare the seed signal over 20 steps.
        let mut sim_full = Simulator::new(&n);
        let mut sim_red = Simulator::new(reduced);
        for step in 0..20 {
            let full_vals = sim_full.frame_values(&[]);
            let red_vals = sim_red.frame_values(&[]);
            let full_bit = crate::sim::read_signal(&full_vals, a[2]);
            let red_bit = crate::sim::read_signal(&red_vals, reduction.seed_signals[0]);
            assert_eq!(full_bit, red_bit, "diverged at step {step}");
            sim_full.step(&[]);
            sim_red.step(&[]);
        }
    }

    #[test]
    fn constant_seed_reduces_to_trivial_netlist() {
        let (n, _, _) = two_counters(2);
        let reduction = reduce_to_cone(&n, &[Signal::TRUE]);
        assert_eq!(reduction.seed_signals[0], Signal::TRUE);
        assert_eq!(reduction.netlist.num_latches(), 0);
    }
}
