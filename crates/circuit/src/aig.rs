//! And-inverter graphs with structural hashing.
//!
//! The AIG is the normalized two-input form of a netlist: every gate becomes
//! a tree of AND nodes with complemented edges. Structural hashing merges
//! identical nodes, which keeps unrolled BMC formulas small. The AIGER
//! reader/writer ([`crate::aiger`]) works on this form.

use std::collections::HashMap;
use std::fmt;
use std::ops::Not;

use crate::{GateOp, LatchInit, Netlist, Node, Signal};

/// An AIG edge: a node index with a complement bit (node 0 is constant
/// false, so code 0 = FALSE and code 1 = TRUE — the AIGER convention).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false (AIGER literal 0).
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true (AIGER literal 1).
    pub const TRUE: AigLit = AigLit(1);

    /// Builds an edge to `node`, complemented if `inverted`.
    pub fn new(node: usize, inverted: bool) -> AigLit {
        AigLit((node as u32) << 1 | inverted as u32)
    }

    /// Reconstructs an edge from its AIGER integer code.
    pub fn from_code(code: usize) -> AigLit {
        AigLit(code as u32)
    }

    /// The AIGER integer code (`2·node + complement`).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// The node index.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge is complemented.
    pub fn is_inverted(self) -> bool {
        self.0 & 1 != 0
    }

    /// Applies the complement bit to a node value.
    pub fn apply(self, node_value: bool) -> bool {
        node_value ^ self.is_inverted()
    }
}

impl Not for AigLit {
    type Output = AigLit;

    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Debug for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{}{}",
            if self.is_inverted() { "!" } else { "" },
            self.node()
        )
    }
}

/// Kind of an AIG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AigNodeKind {
    Const,
    Input,
    Latch,
    And(AigLit, AigLit),
}

/// An and-inverter graph.
///
/// # Examples
///
/// ```
/// use rbmc_circuit::{Aig, AigLit};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.and2(a, b);
/// // Structural hashing: the same AND is not duplicated.
/// assert_eq!(aig.and2(a, b), f);
/// assert_eq!(aig.and2(b, a), f); // commutativity normalized
/// assert_eq!(aig.num_ands(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<AigNodeKind>,
    strash: HashMap<(AigLit, AigLit), usize>,
    inputs: Vec<usize>,
    latches: Vec<usize>,
    latch_next: HashMap<usize, AigLit>,
    latch_init: HashMap<usize, LatchInit>,
    outputs: Vec<(String, AigLit)>,
    bads: Vec<(String, AigLit)>,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![AigNodeKind::Const],
            ..Aig::default()
        }
    }

    /// Adds a primary input.
    pub fn add_input(&mut self) -> AigLit {
        let id = self.nodes.len();
        self.nodes.push(AigNodeKind::Input);
        self.inputs.push(id);
        AigLit::new(id, false)
    }

    /// Adds a latch with the given reset value.
    pub fn add_latch(&mut self, init: LatchInit) -> AigLit {
        let id = self.nodes.len();
        self.nodes.push(AigNodeKind::Latch);
        self.latches.push(id);
        self.latch_init.insert(id, init);
        AigLit::new(id, false)
    }

    /// Connects the next-state function of a latch.
    ///
    /// # Panics
    ///
    /// Panics if `latch` is complemented, is not a latch, or is already
    /// connected.
    pub fn set_next(&mut self, latch: AigLit, next: AigLit) {
        assert!(!latch.is_inverted(), "latch reference must be plain");
        assert!(
            matches!(self.nodes[latch.node()], AigNodeKind::Latch),
            "set_next on a non-latch"
        );
        let prev = self.latch_next.insert(latch.node(), next);
        assert!(prev.is_none(), "latch already connected");
    }

    /// Two-input AND with constant folding and structural hashing.
    pub fn and2(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Folding.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE || a == b {
            return b;
        }
        if b == AigLit::TRUE {
            return a;
        }
        // Normalize operand order for hashing.
        let key = if a.code() <= b.code() { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&key) {
            return AigLit::new(id, false);
        }
        let id = self.nodes.len();
        self.nodes.push(AigNodeKind::And(key.0, key.1));
        self.strash.insert(key, id);
        AigLit::new(id, false)
    }

    /// Two-input OR (`¬(¬a ∧ ¬b)`).
    pub fn or2(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and2(!a, !b)
    }

    /// Two-input XOR (two ANDs plus an OR).
    pub fn xor2(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let l = self.and2(a, !b);
        let r = self.and2(!a, b);
        self.or2(l, r)
    }

    /// Multiplexer `if s then a else b`.
    pub fn mux(&mut self, s: AigLit, a: AigLit, b: AigLit) -> AigLit {
        let t = self.and2(s, a);
        let e = self.and2(!s, b);
        self.or2(t, e)
    }

    /// Declares a named output.
    pub fn add_output(&mut self, name: &str, lit: AigLit) {
        self.outputs.push((name.to_string(), lit));
    }

    /// Number of nodes (constant included).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNodeKind::And(..)))
            .count()
    }

    /// Input node indices in creation order.
    pub fn inputs(&self) -> &[usize] {
        &self.inputs
    }

    /// Latch node indices in creation order.
    pub fn latches(&self) -> &[usize] {
        &self.latches
    }

    /// Next-state function of a latch node.
    pub fn next_of(&self, latch_node: usize) -> Option<AigLit> {
        self.latch_next.get(&latch_node).copied()
    }

    /// Reset value of a latch node.
    pub fn init_of(&self, latch_node: usize) -> Option<LatchInit> {
        self.latch_init.get(&latch_node).copied()
    }

    /// The fanins of an AND node (`None` for other nodes).
    pub fn and_fanins(&self, node: usize) -> Option<(AigLit, AigLit)> {
        match self.nodes[node] {
            AigNodeKind::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Declared outputs.
    pub fn outputs(&self) -> &[(String, AigLit)] {
        &self.outputs
    }

    /// Declares a named bad-state property (an AIGER 1.9 `B` line): the
    /// literal is 1 exactly in the bad states of one safety property.
    pub fn add_bad(&mut self, name: &str, lit: AigLit) {
        self.bads.push((name.to_string(), lit));
    }

    /// Declared bad-state properties, in declaration order.
    pub fn bads(&self) -> &[(String, AigLit)] {
        &self.bads
    }

    /// Evaluates one frame: node values from latch and input values (both in
    /// creation order).
    ///
    /// # Panics
    ///
    /// Panics if the value slices do not match the latch/input counts.
    pub fn eval_frame(&self, latch_values: &[bool], input_values: &[bool]) -> Vec<bool> {
        assert_eq!(latch_values.len(), self.latches.len());
        assert_eq!(input_values.len(), self.inputs.len());
        let mut values = vec![false; self.nodes.len()];
        for (&id, &v) in self.inputs.iter().zip(input_values) {
            values[id] = v;
        }
        for (&id, &v) in self.latches.iter().zip(latch_values) {
            values[id] = v;
        }
        // Nodes are created fanin-first, so index order is topological.
        for id in 0..self.nodes.len() {
            if let AigNodeKind::And(a, b) = self.nodes[id] {
                values[id] = a.apply(values[a.node()]) && b.apply(values[b.node()]);
            }
        }
        values
    }
}

/// The result of lowering a [`Netlist`] to an [`Aig`].
#[derive(Debug, Clone)]
pub struct NetlistToAig {
    /// The lowered AIG.
    pub aig: Aig,
    /// For each netlist node index, the corresponding AIG literal.
    pub map: Vec<AigLit>,
}

impl Aig {
    /// Lowers a netlist to AIG form (n-ary gates become balanced AND trees;
    /// XOR and MUX expand to their AND/OR decompositions). Outputs and latch
    /// connectivity are carried over.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation.
    pub fn from_netlist(netlist: &Netlist) -> NetlistToAig {
        netlist.validate().expect("netlist must be well-formed");
        let mut aig = Aig::new();
        let mut map: Vec<AigLit> = vec![AigLit::FALSE; netlist.num_nodes()];
        // Inputs and latches first (stable order).
        for id in netlist.node_ids() {
            match netlist.node(id) {
                Node::Input => map[id.index()] = aig.add_input(),
                Node::Latch { init, .. } => map[id.index()] = aig.add_latch(*init),
                _ => {}
            }
        }
        let read = |map: &Vec<AigLit>, s: Signal| -> AigLit {
            let lit = map[s.node().index()];
            if s.is_inverted() {
                !lit
            } else {
                lit
            }
        };
        for id in netlist.topo_order() {
            if let Node::Gate { op, fanins } = netlist.node(id) {
                let lits: Vec<AigLit> = fanins.iter().map(|&s| read(&map, s)).collect();
                let result = match op {
                    GateOp::And => balanced_tree(&mut aig, &lits, Aig::and2),
                    GateOp::Or => balanced_tree(&mut aig, &lits, Aig::or2),
                    GateOp::Xor => balanced_tree(&mut aig, &lits, Aig::xor2),
                    GateOp::Mux => aig.mux(lits[0], lits[1], lits[2]),
                };
                map[id.index()] = result;
            }
        }
        for id in netlist.node_ids() {
            if let Node::Latch {
                next: Some(next), ..
            } = netlist.node(id)
            {
                let latch_lit = map[id.index()];
                let next_lit = read(&map, *next);
                aig.set_next(latch_lit, next_lit);
            }
        }
        for (name, sig) in netlist.outputs() {
            let lit = read(&map, *sig);
            aig.add_output(name, lit);
        }
        NetlistToAig { aig, map }
    }
}

/// The result of raising an [`Aig`] back to a [`Netlist`].
#[derive(Debug, Clone)]
pub struct AigToNetlist {
    /// The resulting netlist (one binary AND gate per AIG AND node).
    pub netlist: Netlist,
    /// For each AIG node index, the corresponding netlist signal. Read an
    /// [`AigLit`] through it with [`AigToNetlist::signal_of`].
    pub map: Vec<Signal>,
}

impl AigToNetlist {
    /// The netlist signal an AIG literal corresponds to.
    pub fn signal_of(&self, lit: AigLit) -> Signal {
        let s = self.map[lit.node()];
        if lit.is_inverted() {
            !s
        } else {
            s
        }
    }
}

impl Aig {
    /// Raises the AIG to a [`Netlist`] (the form the BMC pipeline consumes):
    /// inputs, latches, and AND nodes are recreated in index order, so latch
    /// and input *positions* are preserved — a trace extracted from the
    /// netlist replays directly on [`Aig::eval_frame`]. Outputs are carried
    /// over; bad-state properties are *not* netlist outputs — resolve them
    /// through the returned map ([`AigToNetlist::signal_of`]).
    ///
    /// Nodes are generated fanin-first, so the netlist's folding may alias a
    /// gate to a constant or an existing signal; the map always holds the
    /// semantically equal signal.
    ///
    /// # Panics
    ///
    /// Panics if some latch has no next-state function.
    pub fn to_netlist(&self) -> AigToNetlist {
        fn read(map: &[Signal], lit: AigLit) -> Signal {
            let s = map[lit.node()];
            if lit.is_inverted() {
                !s
            } else {
                s
            }
        }
        let mut netlist = Netlist::new();
        let mut map: Vec<Signal> = vec![Signal::FALSE; self.nodes.len()];
        let mut next_input = 0usize;
        let mut next_latch = 0usize;
        for (id, node) in self.nodes.iter().enumerate() {
            map[id] = match node {
                AigNodeKind::Const => Signal::FALSE,
                AigNodeKind::Input => {
                    let s = netlist.add_input(&format!("i{next_input}"));
                    next_input += 1;
                    s
                }
                AigNodeKind::Latch => {
                    let init = self.init_of(id).unwrap_or(LatchInit::Zero);
                    let s = netlist.add_latch(&format!("l{next_latch}"), init);
                    next_latch += 1;
                    s
                }
                AigNodeKind::And(a, b) => {
                    let (sa, sb) = (read(&map, *a), read(&map, *b));
                    netlist.and2(sa, sb)
                }
            };
        }
        for &latch in &self.latches {
            let next = self.next_of(latch).expect("latch connected");
            netlist.set_next(map[latch], read(&map, next));
        }
        for (name, lit) in &self.outputs {
            let s = read(&map, *lit);
            netlist.add_output(name, s);
        }
        AigToNetlist { netlist, map }
    }
}

/// Reduces a literal list with `op` as a balanced tree (keeps depth
/// logarithmic).
fn balanced_tree(
    aig: &mut Aig,
    lits: &[AigLit],
    op: fn(&mut Aig, AigLit, AigLit) -> AigLit,
) -> AigLit {
    match lits.len() {
        0 => AigLit::TRUE, // AND identity; callers with empty OR/XOR are folded earlier
        1 => lits[0],
        n => {
            let (l, r) = lits.split_at(n / 2);
            let left = balanced_tree(aig, l, op);
            let right = balanced_tree(aig, r, op);
            op(aig, left, right)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{eval_frame, read_signal};
    use crate::LatchInit;

    #[test]
    fn constant_folding() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        assert_eq!(aig.and2(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(aig.and2(a, AigLit::TRUE), a);
        assert_eq!(aig.and2(a, a), a);
        assert_eq!(aig.and2(a, !a), AigLit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn strashing_shares_structure() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab1 = aig.and2(a, b);
        let ab2 = aig.and2(b, a);
        assert_eq!(ab1, ab2);
        let abc1 = aig.and2(ab1, c);
        let abc2 = aig.and2(c, ab2);
        assert_eq!(abc1, abc2);
        assert_eq!(aig.num_ands(), 2);
    }

    #[test]
    fn xor_and_mux_semantics() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let s = aig.add_input();
        let x = aig.xor2(a, b);
        let m = aig.mux(s, a, b);
        for bits in 0..8 {
            let inputs = [bits & 1 == 1, bits & 2 != 0, bits & 4 != 0];
            let values = aig.eval_frame(&[], &inputs);
            let (av, bv, sv) = (inputs[0], inputs[1], inputs[2]);
            assert_eq!(x.apply(values[x.node()]), av ^ bv);
            assert_eq!(m.apply(values[m.node()]), if sv { av } else { bv });
        }
    }

    #[test]
    fn lowering_preserves_combinational_semantics() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.and_many(&[a, b, c]);
        let g2 = n.xor_many(&[a, b, c]);
        let g3 = n.mux(a, g1, g2);
        n.add_output("o", g3);
        let lowered = Aig::from_netlist(&n);
        for bits in 0..8u8 {
            let inputs = [bits & 1 == 1, bits & 2 != 0, bits & 4 != 0];
            let net_vals = eval_frame(&n, &[], &inputs);
            let aig_vals = lowered.aig.eval_frame(&[], &inputs);
            let (_, out_lit) = &lowered.aig.outputs()[0];
            assert_eq!(
                out_lit.apply(aig_vals[out_lit.node()]),
                read_signal(&net_vals, g3),
                "inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn lowering_preserves_sequential_semantics() {
        // 3-bit counter; compare netlist and AIG state evolution.
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..3)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        let lowered = Aig::from_netlist(&n);
        let aig = &lowered.aig;
        let mut net_state = vec![false; 3];
        let mut aig_state = vec![false; 3];
        for _ in 0..10 {
            assert_eq!(net_state, aig_state);
            let net_vals = eval_frame(&n, &net_state, &[]);
            let aig_vals = aig.eval_frame(&aig_state, &[]);
            net_state = n
                .latches()
                .iter()
                .map(|&id| match n.node(id) {
                    Node::Latch { next: Some(nx), .. } => read_signal(&net_vals, *nx),
                    _ => unreachable!(),
                })
                .collect();
            aig_state = aig
                .latches()
                .iter()
                .map(|&id| {
                    let nx = aig.next_of(id).unwrap();
                    nx.apply(aig_vals[nx.node()])
                })
                .collect();
        }
    }

    #[test]
    fn to_netlist_preserves_behaviour_and_positions() {
        // AIG with an input, two latches, shared AND structure, and an
        // inverted output; raise it to a netlist and co-simulate.
        let mut aig = Aig::new();
        let x = aig.add_input();
        let l0 = aig.add_latch(LatchInit::Zero);
        let l1 = aig.add_latch(LatchInit::One);
        let g = aig.xor2(x, l0);
        let h = aig.mux(g, l1, !l0);
        aig.set_next(l0, g);
        aig.set_next(l1, !h);
        aig.add_output("h", h);
        let raised = aig.to_netlist();
        let n = &raised.netlist;
        assert!(n.validate().is_ok());
        // Latch and input positions line up one-to-one.
        assert_eq!(n.num_inputs(), aig.inputs().len());
        assert_eq!(n.num_latches(), aig.latches().len());
        let mut aig_state = vec![false, true];
        let mut net_state = vec![false, true];
        for step in 0..12 {
            let inputs = [step % 3 == 1];
            let av = aig.eval_frame(&aig_state, &inputs);
            let nv = crate::sim::eval_frame(n, &net_state, &inputs);
            let (_, out_lit) = &aig.outputs()[0];
            let (_, out_sig) = &n.outputs()[0];
            assert_eq!(
                out_lit.apply(av[out_lit.node()]),
                read_signal(&nv, *out_sig),
                "step {step}"
            );
            aig_state = aig
                .latches()
                .iter()
                .map(|&l| {
                    let nx = aig.next_of(l).unwrap();
                    nx.apply(av[nx.node()])
                })
                .collect();
            net_state = n
                .latches()
                .iter()
                .map(|&id| match n.node(id) {
                    Node::Latch { next: Some(nx), .. } => read_signal(&nv, *nx),
                    _ => unreachable!(),
                })
                .collect();
        }
    }

    #[test]
    fn to_netlist_maps_bad_literals() {
        let mut aig = Aig::new();
        let l = aig.add_latch(LatchInit::Zero);
        aig.set_next(l, !l);
        aig.add_bad("high", l);
        let raised = aig.to_netlist();
        let bad = raised.signal_of(aig.bads()[0].1);
        // The bad literal is the latch itself: frame 0 value is the reset.
        let vals = crate::sim::eval_frame(&raised.netlist, &[false], &[]);
        assert!(!read_signal(&vals, bad));
        let vals = crate::sim::eval_frame(&raised.netlist, &[true], &[]);
        assert!(read_signal(&vals, bad));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_rejected() {
        let mut aig = Aig::new();
        let l = aig.add_latch(LatchInit::Zero);
        aig.set_next(l, AigLit::TRUE);
        aig.set_next(l, AigLit::FALSE);
    }
}
