//! BLIF reading and writing (the subset VIS-era tools exchange).
//!
//! Supported constructs: `.model`, `.inputs`, `.outputs`, `.latch`
//! (with optional type/control and an initial value), single-output `.names`
//! covers, and `.end`. Unsupported: hierarchies (`.subckt`), don't-care
//! covers (`.exdc`), and multiple models per file.
//!
//! # Examples
//!
//! ```
//! use rbmc_circuit::blif::parse_blif;
//!
//! let text = "\
//! .model toggle
//! .outputs q
//! .latch nq q 0
//! .names q nq
//! 0 1
//! .end
//! ";
//! let netlist = parse_blif(text)?;
//! assert_eq!(netlist.num_latches(), 1);
//! # Ok::<(), rbmc_circuit::blif::ParseBlifError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{GateOp, LatchInit, Netlist, Node, NodeId, Signal};

/// Error produced when parsing BLIF fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBlifError {
    line: usize,
    message: String,
}

impl ParseBlifError {
    fn new(line: usize, message: impl Into<String>) -> ParseBlifError {
        ParseBlifError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line number where the error was detected (0 when the error
    /// is about the file as a whole).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "blif error: {}", self.message)
        } else {
            write!(f, "blif error on line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseBlifError {}

#[derive(Debug)]
struct NamesBlock {
    line: usize,
    inputs: Vec<String>,
    output: String,
    cover: Vec<(String, char)>,
}

#[derive(Debug)]
struct LatchDecl {
    line: usize,
    next: String,
    output: String,
    init: LatchInit,
}

/// Parses BLIF text into a [`Netlist`].
///
/// `.names` functions become OR-of-AND gate trees; latches keep their
/// declared initial value (`2`/`3` map to [`LatchInit::Free`]).
///
/// # Errors
///
/// Returns [`ParseBlifError`] on syntax errors, undefined signals, duplicate
/// definitions, or combinational cycles among `.names` blocks.
pub fn parse_blif(text: &str) -> Result<Netlist, ParseBlifError> {
    // Join continuation lines (trailing backslash).
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let without_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let trimmed = without_comment.trim_end();
        let (content, continues) = match trimmed.strip_suffix('\\') {
            Some(head) => (head, true),
            None => (trimmed, false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(content);
                if continues {
                    pending = Some((start, acc));
                } else {
                    lines.push((start, acc));
                }
            }
            None => {
                if continues {
                    pending = Some((lineno, content.to_string()));
                } else if !content.trim().is_empty() {
                    lines.push((lineno, content.to_string()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        lines.push((start, acc));
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut latches: Vec<LatchDecl> = Vec::new();
    let mut names: Vec<NamesBlock> = Vec::new();
    let mut current_names: Option<NamesBlock> = None;
    let mut saw_model = false;

    for (lineno, line) in &lines {
        let lineno = *lineno;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        if tokens[0].starts_with('.') {
            if let Some(block) = current_names.take() {
                names.push(block);
            }
            match tokens[0] {
                ".model" => {
                    if saw_model {
                        return Err(ParseBlifError::new(lineno, "multiple .model sections"));
                    }
                    saw_model = true;
                }
                ".inputs" => {
                    inputs.extend(tokens[1..].iter().map(std::string::ToString::to_string));
                }
                ".outputs" => {
                    outputs.extend(tokens[1..].iter().map(std::string::ToString::to_string));
                }
                ".latch" => {
                    // .latch input output [type control] [init]
                    let (next, output, init_tok) = match tokens.len() {
                        3 => (tokens[1], tokens[2], None),
                        4 => (tokens[1], tokens[2], Some(tokens[3])),
                        5 => (tokens[1], tokens[2], None),
                        6 => (tokens[1], tokens[2], Some(tokens[5])),
                        _ => {
                            return Err(ParseBlifError::new(lineno, "malformed .latch"));
                        }
                    };
                    let init = match init_tok {
                        None | Some("2") | Some("3") => LatchInit::Free,
                        Some("0") => LatchInit::Zero,
                        Some("1") => LatchInit::One,
                        Some(other) => {
                            return Err(ParseBlifError::new(
                                lineno,
                                format!("bad latch init `{other}`"),
                            ));
                        }
                    };
                    latches.push(LatchDecl {
                        line: lineno,
                        next: next.to_string(),
                        output: output.to_string(),
                        init,
                    });
                }
                ".names" => {
                    if tokens.len() < 2 {
                        return Err(ParseBlifError::new(lineno, ".names needs an output"));
                    }
                    let output = tokens[tokens.len() - 1].to_string();
                    let ins = tokens[1..tokens.len() - 1]
                        .iter()
                        .map(std::string::ToString::to_string)
                        .collect();
                    current_names = Some(NamesBlock {
                        line: lineno,
                        inputs: ins,
                        output,
                        cover: Vec::new(),
                    });
                }
                ".end" => break,
                other => {
                    return Err(ParseBlifError::new(
                        lineno,
                        format!("unsupported construct `{other}`"),
                    ));
                }
            }
        } else {
            // A cover line of the current .names block.
            let block = current_names
                .as_mut()
                .ok_or_else(|| ParseBlifError::new(lineno, "cover line outside .names"))?;
            let (plane, out) = if block.inputs.is_empty() {
                if tokens.len() != 1 || tokens[0].len() != 1 {
                    return Err(ParseBlifError::new(lineno, "malformed constant cover"));
                }
                (String::new(), tokens[0].chars().next().unwrap())
            } else {
                if tokens.len() != 2 || tokens[1].len() != 1 {
                    return Err(ParseBlifError::new(lineno, "malformed cover line"));
                }
                (tokens[0].to_string(), tokens[1].chars().next().unwrap())
            };
            if plane.len() != block.inputs.len() {
                return Err(ParseBlifError::new(lineno, "cover width mismatch"));
            }
            if !plane.chars().all(|c| matches!(c, '0' | '1' | '-')) {
                return Err(ParseBlifError::new(lineno, "bad cover character"));
            }
            if !matches!(out, '0' | '1') {
                return Err(ParseBlifError::new(lineno, "bad cover output"));
            }
            block.cover.push((plane, out));
        }
    }
    if let Some(block) = current_names.take() {
        names.push(block);
    }

    // Build the netlist: inputs and latches first.
    let mut netlist = Netlist::new();
    let mut signals: HashMap<String, Signal> = HashMap::new();
    for name in &inputs {
        if signals.contains_key(name) {
            return Err(ParseBlifError::new(0, format!("duplicate signal `{name}`")));
        }
        let s = netlist.add_input(name);
        signals.insert(name.clone(), s);
    }
    for decl in &latches {
        if signals.contains_key(&decl.output) {
            return Err(ParseBlifError::new(
                decl.line,
                format!("duplicate signal `{}`", decl.output),
            ));
        }
        let s = netlist.add_latch(&decl.output, decl.init);
        signals.insert(decl.output.clone(), s);
    }

    // Resolve .names blocks in dependency order.
    let mut by_output: HashMap<&str, usize> = HashMap::new();
    for (i, block) in names.iter().enumerate() {
        if signals.contains_key(&block.output) || by_output.contains_key(block.output.as_str()) {
            return Err(ParseBlifError::new(
                block.line,
                format!("duplicate signal `{}`", block.output),
            ));
        }
        by_output.insert(&block.output, i);
    }
    // DFS with cycle detection.
    let mut state = vec![0u8; names.len()]; // 0 new, 1 open, 2 done
    let mut order: Vec<usize> = Vec::new();
    for start in 0..names.len() {
        if state[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        state[start] = 1;
        while let Some(&mut (idx, ref mut pos)) = stack.last_mut() {
            let block = &names[idx];
            if *pos < block.inputs.len() {
                let dep = &block.inputs[*pos];
                *pos += 1;
                if signals.contains_key(dep) {
                    continue;
                }
                match by_output.get(dep.as_str()) {
                    None => {
                        return Err(ParseBlifError::new(
                            block.line,
                            format!("undefined signal `{dep}`"),
                        ));
                    }
                    Some(&j) => match state[j] {
                        0 => {
                            state[j] = 1;
                            stack.push((j, 0));
                        }
                        1 => {
                            return Err(ParseBlifError::new(
                                block.line,
                                format!("combinational cycle through `{dep}`"),
                            ));
                        }
                        _ => {}
                    },
                }
            } else {
                state[idx] = 2;
                order.push(idx);
                stack.pop();
            }
        }
    }

    for idx in order {
        let block = &names[idx];
        let fanins: Vec<Signal> = block
            .inputs
            .iter()
            .map(|name| signals[name.as_str()])
            .collect();
        let signal = build_cover(&mut netlist, &fanins, &block.cover, block.line)?;
        signals.insert(block.output.clone(), signal);
    }

    // Connect latches.
    for decl in &latches {
        let next = *signals.get(&decl.next).ok_or_else(|| {
            ParseBlifError::new(decl.line, format!("undefined signal `{}`", decl.next))
        })?;
        netlist.set_next(signals[&decl.output], next);
    }
    // Declare outputs.
    for name in &outputs {
        let s = *signals
            .get(name)
            .ok_or_else(|| ParseBlifError::new(0, format!("undefined output `{name}`")))?;
        netlist.add_output(name, s);
    }
    Ok(netlist)
}

/// Builds the function of a single-output cover.
fn build_cover(
    netlist: &mut Netlist,
    fanins: &[Signal],
    cover: &[(String, char)],
    line: usize,
) -> Result<Signal, ParseBlifError> {
    if cover.is_empty() {
        return Ok(Signal::FALSE);
    }
    let polarity = cover[0].1;
    if cover.iter().any(|&(_, o)| o != polarity) {
        return Err(ParseBlifError::new(
            line,
            "mixed on-set/off-set cover not supported",
        ));
    }
    let mut cubes = Vec::with_capacity(cover.len());
    for (plane, _) in cover {
        let lits: Vec<Signal> = plane
            .chars()
            .zip(fanins)
            .filter_map(|(c, &s)| match c {
                '1' => Some(s),
                '0' => Some(!s),
                _ => None,
            })
            .collect();
        cubes.push(netlist.and_many(&lits));
    }
    let on = netlist.or_many(&cubes);
    Ok(if polarity == '1' { on } else { !on })
}

/// Writes a netlist in BLIF format.
///
/// Gates are emitted as `.names` covers; XOR gates are enumerated
/// exhaustively and are therefore limited to 16 fanins.
///
/// # Panics
///
/// Panics if an XOR gate has more than 16 fanins or the netlist fails
/// validation.
pub fn write_blif(netlist: &Netlist, model_name: &str) -> String {
    netlist.validate().expect("netlist must be well-formed");
    let mut out = String::new();
    out.push_str(&format!(".model {model_name}\n"));

    let signal_name = |id: NodeId| -> String {
        if id == NodeId::CONST {
            "const0".to_string()
        } else {
            match netlist.name(id) {
                Some(name) => name.to_string(),
                None => format!("n{}", id.index()),
            }
        }
    };
    // A referenced signal: plain name, or a derived inverter wire.
    let mut inverters: Vec<NodeId> = Vec::new();
    let reference = |s: Signal, inverters: &mut Vec<NodeId>| -> String {
        if s == Signal::FALSE {
            "const0".to_string()
        } else if s == Signal::TRUE {
            "const1".to_string()
        } else if s.is_inverted() {
            if !inverters.contains(&s.node()) {
                inverters.push(s.node());
            }
            format!("{}_bar", signal_name(s.node()))
        } else {
            signal_name(s.node())
        }
    };

    let input_ids = netlist.inputs();
    if !input_ids.is_empty() {
        out.push_str(".inputs");
        for &id in &input_ids {
            out.push_str(&format!(" {}", signal_name(id)));
        }
        out.push('\n');
    }
    if !netlist.outputs().is_empty() {
        out.push_str(".outputs");
        for (name, _) in netlist.outputs() {
            out.push_str(&format!(" {name}"));
        }
        out.push('\n');
    }

    let mut body = String::new();
    // Latches.
    for &id in &netlist.latches() {
        if let Node::Latch {
            init,
            next: Some(next),
        } = netlist.node(id)
        {
            let init_code = match init {
                LatchInit::Zero => 0,
                LatchInit::One => 1,
                LatchInit::Free => 2,
            };
            let next_name = reference(*next, &mut inverters);
            body.push_str(&format!(
                ".latch {next_name} {} {init_code}\n",
                signal_name(id)
            ));
        }
    }
    // Gates.
    for id in netlist.topo_order() {
        if let Node::Gate { op, fanins } = netlist.node(id) {
            let in_names: Vec<String> = fanins
                .iter()
                .map(|&s| reference(s, &mut inverters))
                .collect();
            body.push_str(&format!(
                ".names {} {}\n",
                in_names.join(" "),
                signal_name(id)
            ));
            match op {
                GateOp::And => {
                    body.push_str(&"1".repeat(fanins.len()));
                    body.push_str(" 1\n");
                }
                GateOp::Or => {
                    for i in 0..fanins.len() {
                        let mut cube = vec!['-'; fanins.len()];
                        cube[i] = '1';
                        body.push_str(&cube.iter().collect::<String>());
                        body.push_str(" 1\n");
                    }
                }
                GateOp::Xor => {
                    assert!(fanins.len() <= 16, "XOR too wide for BLIF enumeration");
                    for bits in 0u32..1 << fanins.len() {
                        if bits.count_ones() % 2 == 1 {
                            let cube: String = (0..fanins.len())
                                .map(|i| if bits >> i & 1 == 1 { '1' } else { '0' })
                                .collect();
                            body.push_str(&format!("{cube} 1\n"));
                        }
                    }
                }
                GateOp::Mux => {
                    body.push_str("11- 1\n0-1 1\n");
                }
            }
        }
    }
    // Output drivers that are inverted, constant, or renamed.
    for (name, sig) in netlist.outputs() {
        let driver = reference(*sig, &mut inverters);
        if *name != driver {
            body.push_str(&format!(".names {driver} {name}\n1 1\n"));
        }
    }
    // Emit inverter wires and constants used anywhere.
    let needs_const0 = body.contains("const0") || out.contains("const0");
    let needs_const1 = body.contains("const1");
    for id in inverters {
        body.push_str(&format!(".names {0} {0}_bar\n0 1\n", signal_name(id)));
    }
    if needs_const0 {
        body.push_str(".names const0\n");
    }
    if needs_const1 {
        body.push_str(".names const1\n1\n");
    }

    out.push_str(&body);
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{eval_frame, read_signal};

    #[test]
    fn parses_combinational_gate() {
        let text = ".model and2\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n";
        let n = parse_blif(text).unwrap();
        assert_eq!(n.num_inputs(), 2);
        let f = n.output("f").unwrap();
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            let vals = eval_frame(&n, &[], &[a, b]);
            assert_eq!(read_signal(&vals, f), a && b);
        }
    }

    #[test]
    fn parses_multi_cube_cover() {
        // f = a XOR b as a 2-cube cover.
        let text = ".model x\n.inputs a b\n.outputs f\n.names a b f\n10 1\n01 1\n.end\n";
        let n = parse_blif(text).unwrap();
        let f = n.output("f").unwrap();
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            let vals = eval_frame(&n, &[], &[a, b]);
            assert_eq!(read_signal(&vals, f), a ^ b);
        }
    }

    #[test]
    fn parses_offset_cover() {
        // f = NOT(a AND b) via off-set.
        let text = ".model nand\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n";
        let n = parse_blif(text).unwrap();
        let f = n.output("f").unwrap();
        let vals = eval_frame(&n, &[], &[true, true]);
        assert!(!read_signal(&vals, f));
        let vals = eval_frame(&n, &[], &[true, false]);
        assert!(read_signal(&vals, f));
    }

    #[test]
    fn parses_toggle_latch() {
        let text = ".model t\n.outputs q\n.latch nq q 0\n.names q nq\n0 1\n.end\n";
        let n = parse_blif(text).unwrap();
        n.validate().unwrap();
        let mut sim = crate::sim::Simulator::new(&n);
        let seq: Vec<bool> = (0..4)
            .map(|_| {
                let v = sim.output_values(&[])[0];
                sim.step(&[]);
                v
            })
            .collect();
        assert_eq!(seq, vec![false, true, false, true]);
    }

    #[test]
    fn parses_constant_cover() {
        let text = ".model c\n.outputs f g\n.names f\n1\n.names g\n.end\n";
        let n = parse_blif(text).unwrap();
        assert_eq!(n.output("f"), Some(Signal::TRUE));
        assert_eq!(n.output("g"), Some(Signal::FALSE));
    }

    #[test]
    fn rejects_undefined_signal() {
        let text = ".model m\n.outputs f\n.names ghost f\n1 1\n.end\n";
        let err = parse_blif(text).unwrap_err();
        assert!(err.to_string().contains("undefined"));
    }

    #[test]
    fn rejects_combinational_cycle() {
        let text = ".model m\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n";
        let err = parse_blif(text).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn rejects_mixed_cover() {
        let text = ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n0 0\n.end\n";
        let err = parse_blif(text).unwrap_err();
        assert!(err.to_string().contains("mixed"));
    }

    #[test]
    fn write_then_parse_roundtrips_behaviour() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let l = n.add_latch("q", LatchInit::One);
        let g1 = n.and2(a, !b);
        let g2 = n.xor2(g1, l);
        let g3 = n.mux(a, g2, !l);
        n.set_next(l, g3);
        n.add_output("f", g2);
        n.validate().unwrap();

        let text = write_blif(&n, "round");
        let back = parse_blif(&text).unwrap();
        back.validate().unwrap();
        assert_eq!(back.num_latches(), 1);

        // Compare 16 steps of behaviour under a fixed input sequence.
        let mut sim1 = crate::sim::Simulator::new(&n);
        let mut sim2 = crate::sim::Simulator::new(&back);
        for step in 0..16 {
            let inputs = [step % 3 == 0, step % 2 == 0];
            assert_eq!(
                sim1.output_values(&inputs),
                sim2.output_values(&inputs),
                "diverged at step {step}"
            );
            sim1.step(&inputs);
            sim2.step(&inputs);
        }
    }

    #[test]
    fn continuation_lines_are_joined() {
        let text = ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let n = parse_blif(text).unwrap();
        assert_eq!(n.num_inputs(), 2);
    }
}
