//! Structural preprocessing: constant sweeping + structural hashing + COI.
//!
//! BMC encodes one copy of the netlist per frame, so every node removed
//! here is removed from *every* frame of the unrolling — the Intel
//! "space-efficient BMC" recipe of shrinking the model before the solver
//! ever sees it. Three reductions run together, to a fixpoint:
//!
//! - **Constant sweeping**: a latch whose next-state function can never
//!   change its (binary) initial value — `next = self`, or `next` a constant
//!   equal to the initial value — is *stuck*; every use is replaced by the
//!   constant, which the gate constructors then fold through the fanout.
//! - **Structural hashing**: two gates with the same operator and the same
//!   (canonicalized) fanins are merged into one node.
//! - **Cone of influence**: only nodes that can reach a seed survive (see
//!   [`crate::coi`]); sweeping makes the cone strictly smaller because
//!   traversal stops at stuck latches.
//!
//! The pass is *behavior-preserving for the seeds*: the reduced netlist's
//! seed signals take exactly the value sequence of the originals on every
//! input sequence (tested against the simulator). The returned maps say
//! which original latches/inputs survived, so counterexample traces found
//! on the reduced netlist can be lifted back to original coordinates.

use std::collections::HashMap;

use crate::coi::init_value;
use crate::stats::NetlistStats;
use crate::{GateOp, Netlist, Node, NodeId, Signal};

/// Shape delta of a [`preprocess`] run, for logs and BENCH extras.
#[derive(Clone, Debug)]
pub struct PreprocessReport {
    /// Statistics of the netlist as given.
    pub before: NetlistStats,
    /// Statistics of the reduced netlist.
    pub after: NetlistStats,
    /// Latches replaced by constants (stuck at their initial value).
    pub swept_latches: usize,
    /// Gate constructions answered by the structural hash table instead of
    /// creating a new node.
    pub hashed_gates: usize,
    /// Latches dropped because no seed depends on them.
    pub dropped_latches: usize,
    /// Inputs dropped because no seed depends on them.
    pub dropped_inputs: usize,
    /// Rebuild rounds until the fixpoint (≥ 1).
    pub rounds: usize,
}

/// Result of [`preprocess`]: the reduced netlist plus every map needed to
/// relate it back to the original.
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// The reduced netlist (validated; latches all connected).
    pub netlist: Netlist,
    /// For each seed passed in, the equivalent signal over the reduced
    /// netlist (possibly a constant if the seed swept away entirely).
    pub seed_signals: Vec<Signal>,
    /// For each latch of the reduced netlist, in creation order, the
    /// creation-order index of the original latch it came from
    /// (strictly increasing).
    pub kept_latches: Vec<usize>,
    /// Same map for primary inputs.
    pub kept_inputs: Vec<usize>,
    /// For each *original* latch (creation order): `true` when the latch is
    /// outside the structural cone of every seed, so its value is
    /// irrelevant to all seeds and a witness may print `x` for it. Swept
    /// (stuck) latches inside a cone are **not** don't-care — their constant
    /// value matters.
    pub dontcare_latches: Vec<bool>,
    /// Same flag for original inputs.
    pub dontcare_inputs: Vec<bool>,
    /// Shape accounting.
    pub report: PreprocessReport,
}

/// One rebuild round: sweep + hash + cone-restrict `current` for `seeds`.
struct Round {
    netlist: Netlist,
    seed_signals: Vec<Signal>,
    /// reduced latch index → `current` latch index (creation order).
    kept_latches: Vec<usize>,
    kept_inputs: Vec<usize>,
    /// Per `current` latch/input index: visited by the cone traversal.
    visited_latches: Vec<bool>,
    visited_inputs: Vec<bool>,
    swept: usize,
    hashed: usize,
}

/// Latches of `n` that are stuck at their initial value, with that value.
fn stuck_latches(n: &Netlist) -> HashMap<NodeId, bool> {
    let mut stuck = HashMap::new();
    for id in n.latches() {
        if let Node::Latch {
            init,
            next: Some(next),
        } = n.node(id)
        {
            let Some(value) = (match init {
                crate::LatchInit::Free => None,
                other => Some(init_value(*other)),
            }) else {
                continue;
            };
            // next = self (same polarity): holds its initial value forever.
            let holds = *next == id.signal();
            // next = constant equal to the initial value.
            let const_same = next.is_const() && next.apply(false) == value;
            if holds || const_same {
                stuck.insert(id, value);
            }
        }
    }
    stuck
}

fn canonical_key(op: GateOp, fanins: &[Signal]) -> (GateOp, Vec<usize>) {
    let mut codes: Vec<usize> = fanins.iter().map(|s| s.code()).collect();
    // AND/OR/XOR are commutative; MUX operands are positional.
    if op != GateOp::Mux {
        codes.sort_unstable();
    }
    (op, codes)
}

fn rebuild_round(current: &Netlist, seeds: &[Signal]) -> Round {
    let stuck = stuck_latches(current);

    // Cone traversal from the seeds; stuck latches are visited (their
    // constant matters) but not traversed (nothing upstream matters).
    let mut visited = vec![false; current.num_nodes()];
    visited[NodeId::CONST.index()] = true;
    let mut stack: Vec<NodeId> = seeds.iter().map(|s| s.node()).collect();
    while let Some(id) = stack.pop() {
        if visited[id.index()] {
            continue;
        }
        visited[id.index()] = true;
        if stuck.contains_key(&id) {
            continue;
        }
        match current.node(id) {
            Node::Gate { fanins, .. } => stack.extend(fanins.iter().map(|s| s.node())),
            Node::Latch {
                next: Some(next), ..
            } => stack.push(next.node()),
            _ => {}
        }
    }

    let mut reduced = Netlist::new();
    let mut map: HashMap<NodeId, Signal> = HashMap::new();
    map.insert(NodeId::CONST, Signal::FALSE);
    let mut kept_latches = Vec::new();
    let mut kept_inputs = Vec::new();
    let mut visited_latches = Vec::new();
    let mut visited_inputs = Vec::new();
    let mut swept = 0usize;

    // Pass 1: surviving inputs and latches, in original creation order so
    // the kept maps are strictly increasing.
    for id in current.node_ids() {
        match current.node(id) {
            Node::Input => {
                let keep = visited[id.index()];
                if keep {
                    kept_inputs.push(visited_inputs.len());
                    let name = current.name(id).unwrap_or("in");
                    map.insert(id, reduced.add_input(name));
                }
                visited_inputs.push(keep);
            }
            Node::Latch { init, .. } => {
                let in_cone = visited[id.index()];
                if let Some(&value) = stuck.get(&id) {
                    if in_cone {
                        swept += 1;
                    }
                    map.insert(id, if value { Signal::TRUE } else { Signal::FALSE });
                } else if in_cone {
                    kept_latches.push(visited_latches.len());
                    let name = current.name(id).unwrap_or("latch");
                    map.insert(id, reduced.add_latch(name, *init));
                }
                visited_latches.push(in_cone);
            }
            _ => {}
        }
    }

    let translate = |map: &HashMap<NodeId, Signal>, s: Signal| -> Signal {
        let base = map[&s.node()];
        if s.is_inverted() {
            !base
        } else {
            base
        }
    };

    // Pass 2: gates in topological order, consulting the structural hash
    // table before constructing (the constructors additionally fold
    // constants, so substituted stuck latches evaporate here).
    let mut hash: HashMap<(GateOp, Vec<usize>), Signal> = HashMap::new();
    let mut hashed = 0usize;
    for id in current.topo_order() {
        if !visited[id.index()] {
            continue;
        }
        if let Node::Gate { op, fanins } = current.node(id) {
            let new_fanins: Vec<Signal> = fanins.iter().map(|&s| translate(&map, s)).collect();
            let key = canonical_key(*op, &new_fanins);
            let new_sig = match hash.get(&key) {
                Some(&sig) => {
                    hashed += 1;
                    sig
                }
                None => {
                    let sig = match op {
                        GateOp::And => reduced.and_many(&new_fanins),
                        GateOp::Or => reduced.or_many(&new_fanins),
                        GateOp::Xor => reduced.xor_many(&new_fanins),
                        GateOp::Mux => reduced.mux(new_fanins[0], new_fanins[1], new_fanins[2]),
                    };
                    hash.insert(key, sig);
                    sig
                }
            };
            map.insert(id, new_sig);
        }
    }

    // Pass 3: connect surviving latches.
    for id in current.node_ids() {
        if let Node::Latch {
            next: Some(next), ..
        } = current.node(id)
        {
            if visited[id.index()] && !stuck.contains_key(&id) {
                let latch_sig = map[&id];
                reduced.set_next(latch_sig, translate(&map, *next));
            }
        }
    }

    let seed_signals: Vec<Signal> = seeds.iter().map(|&s| translate(&map, s)).collect();
    Round {
        netlist: reduced,
        seed_signals,
        kept_latches,
        kept_inputs,
        visited_latches,
        visited_inputs,
        swept,
        hashed,
    }
}

/// Runs the full pass — constant sweeping, structural hashing, and COI
/// restriction — to a fixpoint, seeded by `seeds` (typically the bad-state
/// signals of every property over the netlist).
///
/// # Panics
///
/// Panics if the netlist fails [`Netlist::validate`] (unconnected latches).
///
/// # Examples
///
/// ```
/// use rbmc_circuit::preprocess::preprocess;
/// use rbmc_circuit::{LatchInit, Netlist};
///
/// let mut n = Netlist::new();
/// let stuck = n.add_latch("stuck", LatchInit::Zero);
/// n.set_next(stuck, stuck); // can never leave 0
/// let live = n.add_latch("live", LatchInit::Zero);
/// n.set_next(live, !live);
/// let bad = n.or2(stuck, live);
/// let pp = preprocess(&n, &[bad]);
/// assert_eq!(pp.netlist.num_latches(), 1); // `stuck` swept away
/// assert_eq!(pp.report.swept_latches, 1);
/// ```
pub fn preprocess(netlist: &Netlist, seeds: &[Signal]) -> Preprocessed {
    netlist.validate().expect("netlist must be well-formed");
    let before = NetlistStats::of(netlist);

    let mut current = netlist.clone();
    let mut cur_seeds = seeds.to_vec();
    // Composition of the per-round kept maps, in original indices.
    let mut latch_back: Vec<usize> = (0..netlist.num_latches()).collect();
    let mut input_back: Vec<usize> = (0..netlist.num_inputs()).collect();
    let mut dontcare_latches = vec![false; netlist.num_latches()];
    let mut dontcare_inputs = vec![false; netlist.num_inputs()];
    let mut swept = 0usize;
    let mut hashed = 0usize;
    let mut rounds = 0usize;

    loop {
        rounds += 1;
        let round = rebuild_round(&current, &cur_seeds);
        if rounds == 1 {
            // Round 1 traverses the *original* netlist, so its visited sets
            // are the exact structural cones: anything unvisited can take
            // any value without affecting a seed (witnesses may print `x`).
            for (i, &v) in round.visited_latches.iter().enumerate() {
                dontcare_latches[i] = !v;
            }
            for (i, &v) in round.visited_inputs.iter().enumerate() {
                dontcare_inputs[i] = !v;
            }
        }
        swept += round.swept;
        hashed += round.hashed;
        latch_back = round.kept_latches.iter().map(|&i| latch_back[i]).collect();
        input_back = round.kept_inputs.iter().map(|&i| input_back[i]).collect();
        let changed = round.swept > 0 || round.netlist.num_nodes() != current.num_nodes();
        current = round.netlist;
        cur_seeds = round.seed_signals;
        // Each shrinking round removes at least one node, so this always
        // terminates; the cap is a belt-and-braces guard.
        if !changed || rounds > netlist.num_nodes() {
            break;
        }
    }

    for (i, &s) in cur_seeds.iter().enumerate() {
        current.add_output(&format!("pp{i}"), s);
    }
    let after = NetlistStats::of(&current);
    let report = PreprocessReport {
        dropped_latches: before.latches - after.latches - swept,
        dropped_inputs: before.inputs - after.inputs,
        before,
        after,
        swept_latches: swept,
        hashed_gates: hashed,
        rounds,
    };
    Preprocessed {
        netlist: current,
        seed_signals: cur_seeds,
        kept_latches: latch_back,
        kept_inputs: input_back,
        dontcare_latches,
        dontcare_inputs,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{read_signal, Simulator};
    use crate::LatchInit;

    /// Two independent counters plus a stuck latch OR-ed into the property.
    fn mixed_netlist() -> (Netlist, Signal) {
        let mut n = Netlist::new();
        let stuck = n.add_latch("stuck", LatchInit::Zero);
        n.set_next(stuck, stuck);
        let a: Vec<Signal> = (0..3)
            .map(|i| n.add_latch(&format!("a{i}"), LatchInit::Zero))
            .collect();
        let b: Vec<Signal> = (0..3)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let an = n.bus_increment(&a);
        let bn = n.bus_increment(&b);
        for (&l, &nx) in a.iter().zip(&an) {
            n.set_next(l, nx);
        }
        for (&l, &nx) in b.iter().zip(&bn) {
            n.set_next(l, nx);
        }
        let bad = n.or2(stuck, a[2]);
        (n, bad)
    }

    #[test]
    fn sweeps_stuck_and_drops_out_of_cone() {
        let (n, bad) = mixed_netlist();
        let pp = preprocess(&n, &[bad]);
        pp.netlist.validate().unwrap();
        // `stuck` swept, counter b out of cone: 3 latches survive.
        assert_eq!(pp.netlist.num_latches(), 3);
        assert_eq!(pp.report.swept_latches, 1);
        assert_eq!(pp.report.dropped_latches, 3);
        // `stuck` is latch 0, counter a is 1..=3: kept map skips 0.
        assert_eq!(pp.kept_latches, vec![1, 2, 3]);
        // `stuck` is in the cone (its constant matters); b is don't-care.
        assert_eq!(
            pp.dontcare_latches,
            vec![false, false, false, false, true, true, true]
        );
    }

    #[test]
    fn stuck_at_one_and_const_next_forms() {
        let mut n = Netlist::new();
        let one = n.add_latch("one", LatchInit::One);
        n.set_next(one, one);
        let zero = n.add_latch("zero", LatchInit::Zero);
        n.set_next(zero, Signal::FALSE);
        let toggling = n.add_latch("toggling", LatchInit::Zero);
        n.set_next(toggling, !toggling); // NOT stuck
        let free = n.add_latch("free", LatchInit::Free);
        n.set_next(free, free); // NOT stuck: initial value is unconstrained
        let g1 = n.and2(one, toggling);
        let g2 = n.or2(zero, free);
        let bad = n.and2(g1, g2);
        let pp = preprocess(&n, &[bad]);
        assert_eq!(pp.report.swept_latches, 2);
        assert_eq!(pp.netlist.num_latches(), 2);
        assert_eq!(pp.kept_latches, vec![2, 3]);
    }

    #[test]
    fn sweeping_cascades_to_fixpoint() {
        let mut n = Netlist::new();
        let a = n.add_latch("a", LatchInit::Zero);
        n.set_next(a, a); // stuck at 0
        let x = n.add_input("x");
        let b = n.add_latch("b", LatchInit::Zero);
        let bn = n.and2(a, x); // folds to 0 once a sweeps
        n.set_next(b, bn);
        let pp = preprocess(&n, &[b]);
        // Round 1 sweeps `a`; round 2 then finds b's next constant-0.
        assert_eq!(pp.seed_signals[0], Signal::FALSE);
        assert_eq!(pp.netlist.num_latches(), 0);
        assert_eq!(pp.report.swept_latches, 2);
        assert!(pp.report.rounds >= 2);
    }

    #[test]
    fn structural_hashing_merges_duplicate_gates() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        // Two identical ANDs, built separately (commuted operands too).
        let g1 = n.and2(a, b);
        let g2 = n.and2(b, a);
        let bad = n.xor2(g1, !g2); // xor(g, !g) would fold if merged
        let pp = preprocess(&n, &[bad]);
        assert!(pp.report.hashed_gates >= 1);
        // After merging, xor(g, !g) folds to constant true.
        assert_eq!(pp.seed_signals[0], Signal::TRUE);
    }

    #[test]
    fn preserves_seed_behaviour() {
        let (n, bad) = mixed_netlist();
        let pp = preprocess(&n, &[bad]);
        let mut sim_full = Simulator::new(&n);
        let mut sim_red = Simulator::new(&pp.netlist);
        for step in 0..20 {
            let full = read_signal(&sim_full.frame_values(&[]), bad);
            let red = read_signal(&sim_red.frame_values(&[]), pp.seed_signals[0]);
            assert_eq!(full, red, "diverged at step {step}");
            sim_full.step(&[]);
            sim_red.step(&[]);
        }
    }

    #[test]
    fn identity_on_fully_live_netlist() {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..4)
            .map(|i| n.add_latch(&format!("c{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&l, &nx) in bits.iter().zip(&next) {
            n.set_next(l, nx);
        }
        let bad = n.bus_eq_const(&bits, 11);
        let pp = preprocess(&n, &[bad]);
        assert_eq!(pp.netlist.num_latches(), 4);
        assert_eq!(pp.kept_latches, vec![0, 1, 2, 3]);
        assert_eq!(pp.report.swept_latches, 0);
        assert!(pp.dontcare_latches.iter().all(|&d| !d));
    }

    #[test]
    fn multi_seed_union_keeps_both_cones() {
        let (n, bad) = mixed_netlist();
        // Second seed over counter b's MSB keeps b's cone alive as well
        // (b2's next depends on every b bit through the ripple carry).
        let b2 = n.latches()[6].signal();
        let pp = preprocess(&n, &[bad, b2]);
        assert_eq!(pp.netlist.num_latches(), 6);
        assert_eq!(pp.seed_signals.len(), 2);
        assert!(pp.dontcare_latches[4..7].iter().all(|&d| !d));
    }
}
