//! The sequential gate-level netlist.

use std::error::Error;
use std::fmt;
use std::ops::Not;

/// Index of a node in a [`Netlist`].
///
/// Node 0 is always the constant-false node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant-false node present in every netlist.
    pub const CONST: NodeId = NodeId(0);

    /// Creates a node id from a dense index.
    pub fn new(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }

    /// The dense 0-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive (non-inverted) signal of this node.
    pub fn signal(self) -> Signal {
        Signal(self.0 << 1)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A signal: a reference to a node, possibly inverted.
///
/// Signals are the wires of the netlist. Negation is free (an inversion bit,
/// like an AIG edge), so there is no NOT gate.
///
/// # Examples
///
/// ```
/// use rbmc_circuit::Signal;
///
/// let t = Signal::TRUE;
/// assert_eq!(!t, Signal::FALSE);
/// assert_eq!(t.node(), Signal::FALSE.node()); // both refer to the const node
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal(u32);

impl Signal {
    /// The constant-false signal.
    pub const FALSE: Signal = Signal(0);
    /// The constant-true signal.
    pub const TRUE: Signal = Signal(1);

    /// Creates a signal referring to `node`, inverted if `inverted`.
    pub fn new(node: NodeId, inverted: bool) -> Signal {
        Signal(node.0 << 1 | inverted as u32)
    }

    /// The node this signal refers to.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the signal is inverted.
    pub fn is_inverted(self) -> bool {
        self.0 & 1 != 0
    }

    /// True if this signal is one of the two constants.
    pub fn is_const(self) -> bool {
        self.node() == NodeId::CONST
    }

    /// Applies the inversion bit to a node value.
    pub fn apply(self, node_value: bool) -> bool {
        node_value ^ self.is_inverted()
    }

    /// A dense code (`2·node + inverted`), usable as a table index.
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl Not for Signal {
    type Output = Signal;

    fn not(self) -> Signal {
        Signal(self.0 ^ 1)
    }
}

impl From<NodeId> for Signal {
    fn from(node: NodeId) -> Signal {
        node.signal()
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Signal::FALSE {
            write!(f, "0")
        } else if *self == Signal::TRUE {
            write!(f, "1")
        } else if self.is_inverted() {
            write!(f, "!n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

/// Initial value of a latch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum LatchInit {
    /// Starts at 0 (the common reset value).
    #[default]
    Zero,
    /// Starts at 1.
    One,
    /// Unconstrained: BMC leaves the initial value free; the simulator
    /// defaults it to 0.
    Free,
}

/// Operator of a logic gate.
///
/// `And`, `Or`, and `Xor` are n-ary (at least one fanin); `Mux` has exactly
/// three fanins `[sel, then, else]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Conjunction of all fanins.
    And,
    /// Disjunction of all fanins.
    Or,
    /// Parity (odd number of true fanins).
    Xor,
    /// `if fanin0 then fanin1 else fanin2`.
    Mux,
}

/// A node of the netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// The constant-false node (only node 0).
    Const,
    /// A primary input.
    Input,
    /// A register with an initial value and (once connected) a next-state
    /// function.
    Latch {
        /// Reset value.
        init: LatchInit,
        /// Next-state signal; `None` until [`Netlist::set_next`] is called.
        next: Option<Signal>,
    },
    /// A logic gate.
    Gate {
        /// The operator.
        op: GateOp,
        /// The operands.
        fanins: Vec<Signal>,
    },
}

/// Validation error for a [`Netlist`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A latch was never connected to a next-state signal.
    UnconnectedLatch(NodeId),
    /// Combinational logic forms a cycle through the given node.
    CombinationalCycle(NodeId),
    /// A gate has the wrong number of fanins for its operator.
    BadArity(NodeId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnconnectedLatch(n) => {
                write!(f, "latch {n:?} has no next-state function")
            }
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through {n:?}")
            }
            NetlistError::BadArity(n) => write!(f, "gate {n:?} has invalid fanin arity"),
        }
    }
}

impl Error for NetlistError {}

/// A sequential gate-level netlist.
///
/// See the [crate docs](crate) for an example. Gate constructors perform
/// light constant folding (`x ∧ 0 = 0`, `x ⊕ x = 0`, …), so generated
/// circuits stay lean without a separate optimization pass.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    nodes: Vec<Node>,
    names: Vec<Option<String>>,
    outputs: Vec<(String, Signal)>,
}

impl Netlist {
    /// Creates a netlist containing only the constant node.
    pub fn new() -> Netlist {
        Netlist {
            nodes: vec![Node::Const],
            names: vec![Some("false".to_string())],
            outputs: Vec::new(),
        }
    }

    fn push(&mut self, node: Node, name: Option<String>) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(node);
        self.names.push(name);
        id
    }

    /// Adds a primary input and returns its signal.
    pub fn add_input(&mut self, name: &str) -> Signal {
        self.push(Node::Input, Some(name.to_string())).signal()
    }

    /// Adds a latch (register) with the given initial value; connect its
    /// next-state function later with [`Netlist::set_next`].
    pub fn add_latch(&mut self, name: &str, init: LatchInit) -> Signal {
        self.push(Node::Latch { init, next: None }, Some(name.to_string()))
            .signal()
    }

    /// Connects the next-state function of `latch`.
    ///
    /// # Panics
    ///
    /// Panics if `latch` is inverted, does not refer to a latch, or was
    /// already connected.
    pub fn set_next(&mut self, latch: Signal, next: Signal) {
        assert!(!latch.is_inverted(), "latch reference must be plain");
        match &mut self.nodes[latch.node().index()] {
            Node::Latch { next: slot, .. } => {
                assert!(slot.is_none(), "latch already connected");
                *slot = Some(next);
            }
            other => panic!("set_next on non-latch node {other:?}"),
        }
    }

    /// Declares a named primary output.
    pub fn add_output(&mut self, name: &str, signal: Signal) {
        self.outputs.push((name.to_string(), signal));
    }

    // ----- gate constructors (with light folding) --------------------------

    fn gate(&mut self, op: GateOp, fanins: Vec<Signal>) -> Signal {
        self.push(Node::Gate { op, fanins }, None).signal()
    }

    /// Binary AND.
    pub fn and2(&mut self, a: Signal, b: Signal) -> Signal {
        if a == Signal::FALSE || b == Signal::FALSE || a == !b {
            return Signal::FALSE;
        }
        if a == Signal::TRUE || a == b {
            return b;
        }
        if b == Signal::TRUE {
            return a;
        }
        self.gate(GateOp::And, vec![a, b])
    }

    /// Binary OR.
    pub fn or2(&mut self, a: Signal, b: Signal) -> Signal {
        !self.and2(!a, !b)
    }

    /// Binary XOR.
    pub fn xor2(&mut self, a: Signal, b: Signal) -> Signal {
        if a == Signal::FALSE {
            return b;
        }
        if b == Signal::FALSE {
            return a;
        }
        if a == Signal::TRUE {
            return !b;
        }
        if b == Signal::TRUE {
            return !a;
        }
        if a == b {
            return Signal::FALSE;
        }
        if a == !b {
            return Signal::TRUE;
        }
        self.gate(GateOp::Xor, vec![a, b])
    }

    /// Exclusive-nor (equality).
    pub fn xnor2(&mut self, a: Signal, b: Signal) -> Signal {
        !self.xor2(a, b)
    }

    /// `if sel then a else b`.
    pub fn mux(&mut self, sel: Signal, a: Signal, b: Signal) -> Signal {
        if sel == Signal::TRUE || a == b {
            return a;
        }
        if sel == Signal::FALSE {
            return b;
        }
        self.gate(GateOp::Mux, vec![sel, a, b])
    }

    /// `a → b` (implication).
    pub fn implies(&mut self, a: Signal, b: Signal) -> Signal {
        !self.and2(a, !b)
    }

    /// N-ary AND (`AND()` of an empty list is true).
    pub fn and_many(&mut self, signals: &[Signal]) -> Signal {
        let mut fanins: Vec<Signal> = Vec::with_capacity(signals.len());
        for &s in signals {
            if s == Signal::FALSE {
                return Signal::FALSE;
            }
            if s == Signal::TRUE || fanins.contains(&s) {
                continue;
            }
            if fanins.contains(&!s) {
                return Signal::FALSE;
            }
            fanins.push(s);
        }
        match fanins.len() {
            0 => Signal::TRUE,
            1 => fanins[0],
            _ => self.gate(GateOp::And, fanins),
        }
    }

    /// N-ary OR (`OR()` of an empty list is false).
    pub fn or_many(&mut self, signals: &[Signal]) -> Signal {
        let negated: Vec<Signal> = signals.iter().map(|&s| !s).collect();
        !self.and_many(&negated)
    }

    /// N-ary XOR (parity; empty list is false).
    pub fn xor_many(&mut self, signals: &[Signal]) -> Signal {
        let mut acc = Signal::FALSE;
        for &s in signals {
            acc = self.xor2(acc, s);
        }
        acc
    }

    /// Equality of two equally wide buses: `⋀ (aᵢ ↔ bᵢ)`.
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width.
    pub fn bus_eq(&mut self, a: &[Signal], b: &[Signal]) -> Signal {
        assert_eq!(a.len(), b.len(), "bus widths differ");
        let bits: Vec<Signal> = a.iter().zip(b).map(|(&x, &y)| self.xnor2(x, y)).collect();
        self.and_many(&bits)
    }

    /// Compares a bus (LSB first) against a constant. A value that does not
    /// fit in the bus width yields [`Signal::FALSE`] (the comparison can
    /// never hold).
    pub fn bus_eq_const(&mut self, bus: &[Signal], value: u64) -> Signal {
        if bus.len() < 64 && value >> bus.len() != 0 {
            return Signal::FALSE;
        }
        let bits: Vec<Signal> = bus
            .iter()
            .enumerate()
            .map(|(i, &s)| if value >> i & 1 == 1 { s } else { !s })
            .collect();
        self.and_many(&bits)
    }

    /// Ripple-carry incrementer: returns `bus + 1` (LSB first), dropping the
    /// final carry (wrap-around).
    pub fn bus_increment(&mut self, bus: &[Signal]) -> Vec<Signal> {
        let mut carry = Signal::TRUE;
        let mut out = Vec::with_capacity(bus.len());
        for &b in bus {
            out.push(self.xor2(b, carry));
            carry = self.and2(b, carry);
        }
        out
    }

    /// Ripple-carry adder: returns `a + b` (LSB first, wrap-around).
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width.
    pub fn bus_add(&mut self, a: &[Signal], b: &[Signal]) -> Vec<Signal> {
        assert_eq!(a.len(), b.len(), "bus widths differ");
        let mut carry = Signal::FALSE;
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor2(x, y);
            out.push(self.xor2(xy, carry));
            let c1 = self.and2(x, y);
            let c2 = self.and2(xy, carry);
            carry = self.or2(c1, c2);
        }
        out
    }

    // ----- accessors --------------------------------------------------------

    /// Number of nodes (including the constant node).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The declared name of a node, if any.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        self.names[id.index()].as_deref()
    }

    /// The named outputs in declaration order.
    pub fn outputs(&self) -> &[(String, Signal)] {
        &self.outputs
    }

    /// Looks up an output by name.
    pub fn output(&self, name: &str) -> Option<Signal> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// The ids of all primary inputs, in creation order.
    pub fn inputs(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| matches!(self.node(id), Node::Input))
            .collect()
    }

    /// The ids of all latches, in creation order.
    pub fn latches(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| matches!(self.node(id), Node::Latch { .. }))
            .collect()
    }

    /// Number of latches (the model's registers).
    pub fn num_latches(&self) -> usize {
        self.latches().len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs().len()
    }

    /// Checks well-formedness: every latch connected, gate arities valid, and
    /// no combinational cycles (paths through gates only; latches break
    /// cycles by construction).
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for id in self.node_ids() {
            match self.node(id) {
                Node::Latch { next: None, .. } => {
                    return Err(NetlistError::UnconnectedLatch(id));
                }
                Node::Gate { op, fanins } => {
                    let ok = match op {
                        GateOp::And | GateOp::Or | GateOp::Xor => !fanins.is_empty(),
                        GateOp::Mux => fanins.len() == 3,
                    };
                    if !ok {
                        return Err(NetlistError::BadArity(id));
                    }
                }
                _ => {}
            }
        }
        // Cycle check over combinational edges (gate -> fanin).
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; self.nodes.len()];
        for start in self.node_ids() {
            if color[start.index()] != WHITE {
                continue;
            }
            // Iterative DFS with an explicit stack of (node, fanin position).
            let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
            color[start.index()] = GRAY;
            while let Some(&mut (id, ref mut pos)) = stack.last_mut() {
                let fanins: &[Signal] = match self.node(id) {
                    Node::Gate { fanins, .. } => fanins,
                    _ => &[],
                };
                if *pos < fanins.len() {
                    let child = fanins[*pos].node();
                    *pos += 1;
                    match color[child.index()] {
                        WHITE => {
                            // Only gates propagate combinational paths.
                            if matches!(self.node(child), Node::Gate { .. }) {
                                color[child.index()] = GRAY;
                                stack.push((child, 0));
                            } else {
                                color[child.index()] = BLACK;
                            }
                        }
                        GRAY => return Err(NetlistError::CombinationalCycle(child)),
                        _ => {}
                    }
                } else {
                    color[id.index()] = BLACK;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Returns the nodes in a topological order of the combinational logic:
    /// every gate appears after all of its fanins. Inputs, latches, and the
    /// constant come first.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has combinational cycles (call
    /// [`Netlist::validate`] first).
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut state = vec![0u8; self.nodes.len()]; // 0 new, 1 open, 2 done
        for start in self.node_ids() {
            if state[start.index()] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            state[start.index()] = 1;
            while let Some(&mut (id, ref mut pos)) = stack.last_mut() {
                let fanins: &[Signal] = match self.node(id) {
                    Node::Gate { fanins, .. } => fanins,
                    _ => &[],
                };
                if *pos < fanins.len() {
                    let child = fanins[*pos].node();
                    *pos += 1;
                    if state[child.index()] == 0 {
                        if matches!(self.node(child), Node::Gate { .. }) {
                            state[child.index()] = 1;
                            stack.push((child, 0));
                        } else {
                            state[child.index()] = 2;
                            order.push(child);
                        }
                    } else {
                        assert_ne!(state[child.index()], 1, "combinational cycle");
                    }
                } else {
                    state[id.index()] = 2;
                    order.push(id);
                    stack.pop();
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Signal::TRUE, !Signal::FALSE);
        assert!(Signal::TRUE.is_const());
        assert_eq!(Signal::TRUE.node(), NodeId::CONST);
    }

    #[test]
    fn building_a_counter_validates() {
        let mut n = Netlist::new();
        let b0 = n.add_latch("b0", LatchInit::Zero);
        let b1 = n.add_latch("b1", LatchInit::Zero);
        n.set_next(b0, !b0);
        let s = n.xor2(b1, b0);
        n.set_next(b1, s);
        assert_eq!(n.num_latches(), 2);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn unconnected_latch_rejected() {
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Zero);
        assert_eq!(n.validate(), Err(NetlistError::UnconnectedLatch(l.node())));
    }

    #[test]
    fn and_folding() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        assert_eq!(n.and2(a, Signal::FALSE), Signal::FALSE);
        assert_eq!(n.and2(Signal::TRUE, a), a);
        assert_eq!(n.and2(a, a), a);
        assert_eq!(n.and2(a, !a), Signal::FALSE);
        let b = n.add_input("b");
        let g = n.and2(a, b);
        assert!(matches!(
            n.node(g.node()),
            Node::Gate {
                op: GateOp::And,
                ..
            }
        ));
    }

    #[test]
    fn xor_folding() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        assert_eq!(n.xor2(a, Signal::FALSE), a);
        assert_eq!(n.xor2(a, Signal::TRUE), !a);
        assert_eq!(n.xor2(a, a), Signal::FALSE);
        assert_eq!(n.xor2(a, !a), Signal::TRUE);
    }

    #[test]
    fn mux_folding() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.add_input("s");
        assert_eq!(n.mux(Signal::TRUE, a, b), a);
        assert_eq!(n.mux(Signal::FALSE, a, b), b);
        assert_eq!(n.mux(s, a, a), a);
        let g = n.mux(s, a, b);
        assert!(matches!(
            n.node(g.node()),
            Node::Gate {
                op: GateOp::Mux,
                ..
            }
        ));
    }

    #[test]
    fn and_many_edge_cases() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        assert_eq!(n.and_many(&[]), Signal::TRUE);
        assert_eq!(n.and_many(&[a]), a);
        assert_eq!(n.and_many(&[a, Signal::TRUE, a]), a);
        assert_eq!(n.and_many(&[a, !a, b]), Signal::FALSE);
    }

    #[test]
    fn or_many_dual() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        assert_eq!(n.or_many(&[]), Signal::FALSE);
        assert_eq!(n.or_many(&[a, Signal::FALSE]), a);
        assert_eq!(n.or_many(&[a, Signal::TRUE]), Signal::TRUE);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        // Build a gate, then force a self-referential fanin by hand.
        let g = n.and2(a, a.node().signal()); // folded: a == a -> a
        assert_eq!(g, a);
        // Construct an actual cycle: g1 = AND(a, g2), g2 = AND(a, g1).
        let g1 = n.gate(GateOp::And, vec![a, Signal::FALSE]); // placeholder fanin
        let g2 = n.gate(GateOp::And, vec![a, g1]);
        if let Node::Gate { fanins, .. } = &mut n.nodes[g1.node().index()] {
            fanins[1] = g2;
        }
        assert!(matches!(
            n.validate(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn topo_order_respects_fanins() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.and2(a, b);
        let g2 = n.xor2(g1, a);
        let order = n.topo_order();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a.node()) < pos(g1.node()));
        assert!(pos(b.node()) < pos(g1.node()));
        assert!(pos(g1.node()) < pos(g2.node()));
        assert_eq!(order.len(), n.num_nodes());
    }

    #[test]
    fn bus_increment_semantics() {
        let mut n = Netlist::new();
        // Constant bus 0b011 (LSB first: [1,1,0]).
        let bus = [Signal::TRUE, Signal::TRUE, Signal::FALSE];
        let inc = n.bus_increment(&bus);
        // 3 + 1 = 4 = 0b100 (LSB first: [0,0,1]) — fully folded to constants.
        assert_eq!(inc, vec![Signal::FALSE, Signal::FALSE, Signal::TRUE]);
    }

    #[test]
    fn bus_eq_const_on_constants() {
        let mut n = Netlist::new();
        let bus = [Signal::TRUE, Signal::FALSE, Signal::TRUE]; // 0b101 = 5
        assert_eq!(n.bus_eq_const(&bus, 5), Signal::TRUE);
        assert_eq!(n.bus_eq_const(&bus, 4), Signal::FALSE);
    }

    #[test]
    fn outputs_lookup() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        n.add_output("out", !a);
        assert_eq!(n.output("out"), Some(!a));
        assert_eq!(n.output("missing"), None);
        assert_eq!(n.outputs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-latch")]
    fn set_next_on_input_panics() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        n.set_next(a, Signal::TRUE);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::Zero);
        n.set_next(l, Signal::TRUE);
        n.set_next(l, Signal::FALSE);
    }
}
