//! Netlist statistics and Graphviz export.
//!
//! `report` gives the numbers a BMC frontend prints when loading a design
//! (gate counts by type, logic depth, fanout); `to_dot` renders the netlist
//! for inspection.

use std::collections::HashMap;
use std::fmt;

use crate::{GateOp, Netlist, Node, NodeId};

/// Aggregate statistics of a netlist.
///
/// # Examples
///
/// ```
/// use rbmc_circuit::stats::NetlistStats;
/// use rbmc_circuit::{LatchInit, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let l = n.add_latch("l", LatchInit::Zero);
/// let g = n.and2(a, l);
/// n.set_next(l, g);
/// let stats = NetlistStats::of(&n);
/// assert_eq!(stats.inputs, 1);
/// assert_eq!(stats.latches, 1);
/// assert_eq!(stats.gates, 1);
/// assert_eq!(stats.logic_depth, 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetlistStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Registers.
    pub latches: usize,
    /// Logic gates (all operators).
    pub gates: usize,
    /// Gate count per operator.
    pub gates_by_op: HashMap<&'static str, usize>,
    /// Longest combinational path, in gates.
    pub logic_depth: usize,
    /// Maximum fanout of any node.
    pub max_fanout: usize,
    /// Total fanin edges.
    pub edges: usize,
}

impl NetlistStats {
    /// Computes the statistics of a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has combinational cycles.
    pub fn of(netlist: &Netlist) -> NetlistStats {
        let mut gates_by_op: HashMap<&'static str, usize> = HashMap::new();
        let mut fanout = vec![0usize; netlist.num_nodes()];
        let mut edges = 0usize;
        let mut depth = vec![0usize; netlist.num_nodes()];
        let mut logic_depth = 0usize;
        for id in netlist.topo_order() {
            if let Node::Gate { op, fanins } = netlist.node(id) {
                let name = match op {
                    GateOp::And => "and",
                    GateOp::Or => "or",
                    GateOp::Xor => "xor",
                    GateOp::Mux => "mux",
                };
                *gates_by_op.entry(name).or_insert(0) += 1;
                let mut d = 0;
                for s in fanins {
                    fanout[s.node().index()] += 1;
                    edges += 1;
                    d = d.max(depth[s.node().index()]);
                }
                depth[id.index()] = d + 1;
                logic_depth = logic_depth.max(d + 1);
            } else if let Node::Latch {
                next: Some(next), ..
            } = netlist.node(id)
            {
                fanout[next.node().index()] += 1;
                edges += 1;
            }
        }
        NetlistStats {
            inputs: netlist.num_inputs(),
            latches: netlist.num_latches(),
            gates: gates_by_op.values().sum(),
            gates_by_op,
            logic_depth,
            max_fanout: fanout.into_iter().max().unwrap_or(0),
            edges,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "inputs={} latches={} gates={} depth={} max_fanout={} edges={}",
            self.inputs, self.latches, self.gates, self.logic_depth, self.max_fanout, self.edges
        )?;
        let mut ops: Vec<_> = self.gates_by_op.iter().collect();
        ops.sort();
        for (op, count) in ops {
            writeln!(f, "  {op}: {count}")?;
        }
        Ok(())
    }
}

/// Renders the netlist as a Graphviz `dot` digraph (gates as boxes, latches
/// as double circles, inverted fanins as dashed edges).
pub fn to_dot(netlist: &Netlist, graph_name: &str) -> String {
    let mut out = format!("digraph {graph_name} {{\n  rankdir=LR;\n");
    let label = |id: NodeId| -> String {
        match netlist.name(id) {
            Some(name) => name.to_string(),
            None => format!("n{}", id.index()),
        }
    };
    for id in netlist.node_ids() {
        match netlist.node(id) {
            Node::Const => {
                out.push_str(&format!(
                    "  n{} [label=\"0\" shape=plaintext];\n",
                    id.index()
                ));
            }
            Node::Input => {
                out.push_str(&format!(
                    "  n{} [label=\"{}\" shape=triangle];\n",
                    id.index(),
                    label(id)
                ));
            }
            Node::Latch { next, .. } => {
                out.push_str(&format!(
                    "  n{} [label=\"{}\" shape=doublecircle];\n",
                    id.index(),
                    label(id)
                ));
                if let Some(next) = next {
                    out.push_str(&format!(
                        "  n{} -> n{} [style={}];\n",
                        next.node().index(),
                        id.index(),
                        if next.is_inverted() {
                            "dashed"
                        } else {
                            "solid"
                        }
                    ));
                }
            }
            Node::Gate { op, fanins } => {
                out.push_str(&format!(
                    "  n{} [label=\"{op:?}\" shape=box];\n",
                    id.index()
                ));
                for s in fanins {
                    out.push_str(&format!(
                        "  n{} -> n{} [style={}];\n",
                        s.node().index(),
                        id.index(),
                        if s.is_inverted() { "dashed" } else { "solid" }
                    ));
                }
            }
        }
    }
    for (name, sig) in netlist.outputs() {
        out.push_str(&format!(
            "  out_{name} [label=\"{name}\" shape=invtriangle];\n  n{} -> out_{name};\n",
            sig.node().index()
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LatchInit, Signal};

    fn sample() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let l = n.add_latch("l", LatchInit::Zero);
        let g1 = n.and2(a, b);
        let g2 = n.xor2(g1, l);
        let g3 = n.mux(a, g2, !l);
        n.set_next(l, g3);
        n.add_output("f", g2);
        n
    }

    #[test]
    fn counts_are_correct() {
        let n = sample();
        let stats = NetlistStats::of(&n);
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.latches, 1);
        assert_eq!(stats.gates, 3);
        assert_eq!(stats.gates_by_op["and"], 1);
        assert_eq!(stats.gates_by_op["xor"], 1);
        assert_eq!(stats.gates_by_op["mux"], 1);
        // g1 depth 1, g2 depth 2, g3 depth 3.
        assert_eq!(stats.logic_depth, 3);
    }

    #[test]
    fn fanout_counts_all_references() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let mut gates = Vec::new();
        for _ in 0..5 {
            let b = n.add_input("b");
            gates.push(n.and2(a, b));
        }
        let stats = NetlistStats::of(&n);
        assert_eq!(stats.max_fanout, 5, "input a feeds five gates");
    }

    #[test]
    fn display_renders_summary() {
        let text = NetlistStats::of(&sample()).to_string();
        assert!(text.contains("inputs=2"));
        assert!(text.contains("mux: 1"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dot = to_dot(&sample(), "g");
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("out_f"));
        // Inverted fanin of the mux renders dashed.
        assert!(dot.contains("dashed"));
    }

    #[test]
    fn empty_netlist_stats() {
        let n = Netlist::new();
        let stats = NetlistStats::of(&n);
        assert_eq!(stats.gates, 0);
        assert_eq!(stats.logic_depth, 0);
        assert_eq!(stats.max_fanout, 0);
        let _ = Signal::TRUE; // silence unused import in some cfgs
    }
}
