//! Static-analysis lint pass over circuits and raw AIGER files.
//!
//! The linter surfaces, as structured [`Diagnostic`]s, the structural facts
//! the BMC pipeline otherwise computes silently (constants, cones of
//! influence) or rejects opaquely (unsupported AIGER sections): a property
//! that folds to a constant needs no solver, a register-free cone needs no
//! unrolling, and logic outside every property cone is dead weight the
//! preprocessor will drop. Each diagnostic carries a stable code (`L001`…),
//! a severity, a location, and a fix hint, so a runner can print them
//! per-file and a CI gate can fail closed on errors (`rbmc --lint deny`).
//!
//! Entry points:
//!
//! - [`lint_properties`]: the core pass over a [`Netlist`] plus named
//!   property signals.
//! - [`lint_aig`]: the same pass over an [`Aig`] (properties are the
//!   bad-state literals, or the outputs when no `B` lines exist — the same
//!   selection the BMC front door makes).
//! - [`lint_aiger_bytes`]: raw-file checks that are invisible after parsing
//!   (unsupported `C`/`J`/`F` sections, non-normalized ASCII AND lines —
//!   the parser folds and strashes, so the parsed [`Aig`] is always
//!   normalized).
//! - [`lint_aiger`]: both of the above over one byte buffer.
//!
//! # Examples
//!
//! ```
//! use rbmc_circuit::lint::{lint_aiger, LintCode};
//!
//! // A single bad-state property that is constant true.
//! let report = lint_aiger(b"aag 0 0 0 0 0 1\n1\n");
//! assert_eq!(report.codes(), vec![LintCode::ConstantProperty]);
//! assert_eq!(report.num_errors(), 1);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::coi::cone_of_influence;
use crate::{aiger, Aig, GateOp, Netlist, Node, NodeId, Signal};

/// How serious a diagnostic is.
///
/// Errors describe inputs the pipeline cannot check faithfully (or would
/// reject later with a worse message); warnings describe structure that is
/// legal but almost certainly unintended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but checkable; the run proceeds.
    Warning,
    /// The input is broken or vacuous; `--lint deny` fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identity of one lint check. The numeric codes (`L001`…) are part
/// of the tool's interface: tests, CI filters, and the README table key off
/// them, so codes are never renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `L001`: a property literal folds to constant true or false without
    /// solving — trivially failing, or vacuous.
    ConstantProperty,
    /// `L002`: no register in the property's cone of influence; the property
    /// is purely combinational and needs no unrolling.
    RegisterFreeCoi,
    /// `L003`: primary inputs outside every property cone.
    FloatingInput,
    /// `L004`: latches outside every property cone.
    DeadLatch,
    /// `L005`: two properties share a name (downstream reporting keys on
    /// names, so this is an error).
    DuplicateProperty,
    /// `L006`: two properties are the same literal.
    AliasedProperty,
    /// `L007`: the property already holds in the reset state (provable by
    /// ternary constant propagation, before any transition).
    ResetViolation,
    /// `L008`: ASCII AND lines violating the normalized `lhs > rhs0 ≥ rhs1`
    /// form or carrying foldable (constant/duplicate/complementary) fanins.
    NonNormalizedAnd,
    /// `L009`: the header declares `C`/`J`/`F` sections, which this tool
    /// does not support; the file cannot be checked faithfully.
    UnsupportedSection,
}

impl LintCode {
    /// The stable `L###` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::ConstantProperty => "L001",
            LintCode::RegisterFreeCoi => "L002",
            LintCode::FloatingInput => "L003",
            LintCode::DeadLatch => "L004",
            LintCode::DuplicateProperty => "L005",
            LintCode::AliasedProperty => "L006",
            LintCode::ResetViolation => "L007",
            LintCode::NonNormalizedAnd => "L008",
            LintCode::UnsupportedSection => "L009",
        }
    }

    /// The default severity of this check.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::ConstantProperty
            | LintCode::DuplicateProperty
            | LintCode::UnsupportedSection => Severity::Error,
            LintCode::RegisterFreeCoi
            | LintCode::FloatingInput
            | LintCode::DeadLatch
            | LintCode::AliasedProperty
            | LintCode::ResetViolation
            | LintCode::NonNormalizedAnd => Severity::Warning,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One finding of the lint pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which check fired.
    pub code: LintCode,
    /// Severity (the check's default; callers may escalate).
    pub severity: Severity,
    /// Where: a property name, a section, or a line reference.
    pub location: String,
    /// What was found.
    pub message: String,
    /// How to fix it (empty when there is nothing useful to say).
    pub hint: String,
}

impl Diagnostic {
    fn new(code: LintCode, location: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            location: location.into(),
            message: message.into(),
            hint: String::new(),
        }
    }

    fn hint(mut self, hint: impl Into<String>) -> Diagnostic {
        self.hint = hint.into();
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )?;
        if !self.hint.is_empty() {
            write!(f, " (hint: {})", self.hint)?;
        }
        Ok(())
    }
}

/// The collected diagnostics of one lint run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// The diagnostics, in the order the checks ran.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The codes that fired, in order (convenient for tests).
    pub fn codes(&self) -> Vec<LintCode> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Number of error-severity diagnostics.
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when no check fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Appends all diagnostics of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }
}

/// Formats up to four names followed by an ellipsis marker ("a, b, c, …").
fn name_sample(names: &[String]) -> String {
    const SHOW: usize = 4;
    let mut s = names
        .iter()
        .take(SHOW)
        .cloned()
        .collect::<Vec<_>>()
        .join(", ");
    if names.len() > SHOW {
        s.push_str(", …");
    }
    s
}

/// Evaluates every node in three-valued logic at the reset state: latches
/// take their reset values ([`crate::LatchInit::Free`] is unknown), inputs
/// are unknown, and gates propagate constants where the operator allows
/// (`x ∧ 0 = 0` even when `x` is unknown).
fn ternary_reset_values(netlist: &Netlist) -> Vec<Option<bool>> {
    use crate::LatchInit;
    let mut vals: Vec<Option<bool>> = vec![None; netlist.num_nodes()];
    let read = |vals: &[Option<bool>], s: Signal| -> Option<bool> {
        vals[s.node().index()].map(|b| b ^ s.is_inverted())
    };
    for id in netlist.topo_order() {
        vals[id.index()] = match netlist.node(id) {
            Node::Const => Some(false),
            Node::Input => None,
            Node::Latch { init, .. } => match init {
                LatchInit::Zero => Some(false),
                LatchInit::One => Some(true),
                LatchInit::Free => None,
            },
            Node::Gate { op, fanins } => {
                let f: Vec<Option<bool>> = fanins.iter().map(|&s| read(&vals, s)).collect();
                match op {
                    GateOp::And => {
                        if f.contains(&Some(false)) {
                            Some(false)
                        } else if f.iter().all(|v| *v == Some(true)) {
                            Some(true)
                        } else {
                            None
                        }
                    }
                    GateOp::Or => {
                        if f.contains(&Some(true)) {
                            Some(true)
                        } else if f.iter().all(|v| *v == Some(false)) {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    GateOp::Xor => f.iter().try_fold(false, |acc, v| v.map(|b| acc ^ b)),
                    GateOp::Mux => match f[0] {
                        Some(true) => f[1],
                        Some(false) => f[2],
                        None => {
                            if f[1].is_some() && f[1] == f[2] {
                                f[1]
                            } else {
                                None
                            }
                        }
                    },
                }
            }
        };
    }
    vals
}

/// Lints a [`Netlist`] against a set of named property signals (the
/// bad-state literals BMC would check). This is the core pass behind
/// [`lint_aig`]; call it directly when the properties do not come from an
/// AIGER file.
///
/// Runs the checks `L001`–`L007`. Cone and reset checks need a well-formed
/// netlist; when [`Netlist::validate`] fails, only the purely property-level
/// checks (constants, duplicates, aliases) run.
pub fn lint_properties(netlist: &Netlist, props: &[(String, Signal)]) -> LintReport {
    let mut report = LintReport::default();

    // L001: structurally constant properties.
    for (name, sig) in props {
        if *sig == Signal::TRUE {
            report.push(
                Diagnostic::new(
                    LintCode::ConstantProperty,
                    format!("property `{name}`"),
                    "bad-state literal is constant true: every run fails at depth 0",
                )
                .hint("check the property polarity (AIGER bad literals are 1 when violated)"),
            );
        } else if *sig == Signal::FALSE {
            report.push(
                Diagnostic::new(
                    LintCode::ConstantProperty,
                    format!("property `{name}`"),
                    "bad-state literal is constant false: the property is vacuous",
                )
                .hint("the property can never fail; drop it or fix the generator"),
            );
        }
    }

    // L005: duplicate names. L006: aliased literals.
    let mut by_name: HashMap<&str, usize> = HashMap::new();
    for (name, _) in props {
        *by_name.entry(name.as_str()).or_insert(0) += 1;
    }
    let mut dups: Vec<&str> = by_name
        .iter()
        .filter(|&(_, &n)| n > 1)
        .map(|(&name, _)| name)
        .collect();
    dups.sort_unstable();
    for name in dups {
        report.push(
            Diagnostic::new(
                LintCode::DuplicateProperty,
                format!("property `{name}`"),
                format!("{} properties share the name `{name}`", by_name[name]),
            )
            .hint("rename via the symbol table (`b<i> name` lines) so verdicts stay attributable"),
        );
    }
    let mut by_signal: HashMap<Signal, &str> = HashMap::new();
    for (name, sig) in props {
        if sig.is_const() {
            continue; // already reported as L001
        }
        if let Some(first) = by_signal.get(sig) {
            report.push(
                Diagnostic::new(
                    LintCode::AliasedProperty,
                    format!("property `{name}`"),
                    format!("same bad-state literal as property `{first}`"),
                )
                .hint("duplicate properties are solved twice; keep one"),
            );
        } else {
            by_signal.insert(*sig, name);
        }
    }

    if netlist.validate().is_err() {
        return report;
    }

    // L002: register-free cones (per property; constants already reported).
    for (name, sig) in props {
        if sig.is_const() {
            continue;
        }
        let cone = cone_of_influence(netlist, &[*sig]);
        let has_latch = cone
            .iter()
            .any(|&id| matches!(netlist.node(id), Node::Latch { .. }));
        if !has_latch {
            report.push(
                Diagnostic::new(
                    LintCode::RegisterFreeCoi,
                    format!("property `{name}`"),
                    "no register in the cone of influence",
                )
                .hint("the property is purely combinational; depth 0 decides it"),
            );
        }
    }

    // L003/L004: inputs and latches outside the union cone of all properties.
    let seeds: Vec<Signal> = props.iter().map(|&(_, s)| s).collect();
    let union = cone_of_influence(netlist, &seeds);
    let in_union = |id: NodeId| union.binary_search(&id).is_ok();
    let floating: Vec<String> = netlist
        .inputs()
        .iter()
        .filter(|&&id| !in_union(id))
        .map(|&id| netlist.name(id).unwrap_or("?").to_string())
        .collect();
    if !floating.is_empty() {
        report.push(
            Diagnostic::new(
                LintCode::FloatingInput,
                "inputs",
                format!(
                    "{} input(s) outside every property cone: {}",
                    floating.len(),
                    name_sample(&floating)
                ),
            )
            .hint("they cannot affect any verdict; COI reduction drops them"),
        );
    }
    let dead: Vec<String> = netlist
        .latches()
        .iter()
        .filter(|&&id| !in_union(id))
        .map(|&id| netlist.name(id).unwrap_or("?").to_string())
        .collect();
    if !dead.is_empty() {
        report.push(
            Diagnostic::new(
                LintCode::DeadLatch,
                "latches",
                format!(
                    "{} latch(es) outside every property cone: {}",
                    dead.len(),
                    name_sample(&dead)
                ),
            )
            .hint("dead state adds frame clauses but no reachable behaviour"),
        );
    }

    // L007: properties that already hold (fail) in the reset state.
    let reset = ternary_reset_values(netlist);
    for (name, sig) in props {
        if sig.is_const() {
            continue;
        }
        let value = reset[sig.node().index()].map(|b| b ^ sig.is_inverted());
        if value == Some(true) {
            report.push(
                Diagnostic::new(
                    LintCode::ResetViolation,
                    format!("property `{name}`"),
                    "bad state is reached in the reset state itself",
                )
                .hint("the counterexample has depth 0; check the latch reset values"),
            );
        }
    }

    report
}

/// Lints an [`Aig`] (checks `L001`–`L007`). The property set mirrors the BMC
/// front door: the bad-state literals when any `B` line exists, otherwise
/// the outputs.
pub fn lint_aig(aig: &Aig) -> LintReport {
    let raised = aig.to_netlist();
    let selected = if aig.bads().is_empty() {
        aig.outputs()
    } else {
        aig.bads()
    };
    let props: Vec<(String, Signal)> = selected
        .iter()
        .map(|(name, lit)| (name.clone(), raised.signal_of(*lit)))
        .collect();
    lint_properties(&raised.netlist, &props)
}

/// Tolerantly splits the first line of an AIGER buffer into numeric header
/// fields (`M I L O A B C J F`), padding missing fields with zero. Returns
/// `None` when the buffer has no parseable `aag`/`aig` header — the parser
/// will report that as a hard error, so the linter stays silent.
fn scan_header(bytes: &[u8]) -> Option<(bool, [usize; 9])> {
    let ascii = if bytes.starts_with(b"aag ") {
        true
    } else if bytes.starts_with(b"aig ") {
        false
    } else {
        return None;
    };
    let end = bytes.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&bytes[..end]).ok()?;
    let mut fields = [0usize; 9];
    for (i, tok) in line.split_whitespace().skip(1).take(9).enumerate() {
        fields[i] = tok.parse().ok()?;
    }
    Some((ascii, fields))
}

/// Raw-file lint over an AIGER byte buffer: checks that are only visible
/// *before* parsing (`L008`, `L009`). The parser constant-folds and strashes
/// every AND it assembles, so a parsed [`Aig`] is always normalized; the
/// binary encoding enforces `lhs > rhs0 ≥ rhs1` structurally, so `L008` is
/// an ASCII-only diagnostic.
pub fn lint_aiger_bytes(bytes: &[u8]) -> LintReport {
    let mut report = LintReport::default();
    let Some((ascii, fields)) = scan_header(bytes) else {
        return report;
    };
    let [_m, i, l, o, b, a, c, j, f] = fields;

    // L009: C/J/F sections declared in the header.
    let unsupported: Vec<String> = [
        (c, "constraint (C)"),
        (j, "justice (J)"),
        (f, "fairness (F)"),
    ]
    .iter()
    .filter(|&&(n, _)| n > 0)
    .map(|&(n, what)| format!("{n} {what}"))
    .collect();
    if !unsupported.is_empty() {
        report.push(
            Diagnostic::new(
                LintCode::UnsupportedSection,
                "header",
                format!("unsupported sections declared: {}", unsupported.join(", ")),
            )
            .hint("only safety properties (B lines / outputs) are checked; strip or translate the file"),
        );
    }

    // L008: non-normalized ASCII AND lines.
    if ascii {
        if let Ok(text) = std::str::from_utf8(bytes) {
            let mut counts = [i, l, o, b, a];
            let mut section = 0usize;
            let mut bad_lines: Vec<usize> = Vec::new();
            let mut total = 0usize;
            'lines: for (lineno, raw) in text.lines().enumerate().skip(1) {
                let line = raw.trim();
                if line.is_empty() {
                    continue;
                }
                if line == "c" {
                    break;
                }
                if matches!(line.as_bytes()[0], b'i' | b'l' | b'o' | b'b') {
                    if let Some((key, _)) = line.split_once(' ') {
                        if key.len() >= 2 && key[1..].chars().all(|ch| ch.is_ascii_digit()) {
                            continue; // symbol table entry
                        }
                    }
                }
                while section < 5 && counts[section] == 0 {
                    section += 1;
                }
                if section == 5 {
                    break;
                }
                counts[section] -= 1;
                if section != 4 {
                    continue;
                }
                let mut nums = [0usize; 3];
                let mut toks = line.split_whitespace();
                for slot in &mut nums {
                    match toks.next().and_then(|t| t.parse().ok()) {
                        Some(n) => *slot = n,
                        None => break 'lines, // malformed: the parser reports it
                    }
                }
                let [lhs, r0, r1] = nums;
                let ordered = lhs > r0 && r0 >= r1;
                let foldable = r1 < 2 || r0 / 2 == r1 / 2;
                if !ordered || foldable {
                    total += 1;
                    if bad_lines.len() < 4 {
                        bad_lines.push(lineno + 1);
                    }
                }
            }
            if total > 0 {
                let lines: Vec<String> = bad_lines
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect();
                report.push(
                    Diagnostic::new(
                        LintCode::NonNormalizedAnd,
                        format!("line {}", name_sample(&lines)),
                        format!(
                            "{total} AND gate(s) not in normalized form \
                             (lhs > rhs0 ≥ rhs1, non-foldable fanins)"
                        ),
                    )
                    .hint("the reader folds them; re-emit the file to keep it canonical"),
                );
            }
        }
    }
    report
}

/// Lints one AIGER byte buffer end to end: the raw-file checks
/// ([`lint_aiger_bytes`]), plus the circuit-level checks ([`lint_aig`]) when
/// the buffer parses. Parse failures are not diagnostics — the caller sees
/// them from [`aiger::parse_aiger`] directly.
pub fn lint_aiger(bytes: &[u8]) -> LintReport {
    let mut report = lint_aiger_bytes(bytes);
    if let Ok(aig) = aiger::parse_aiger(bytes) {
        report.merge(lint_aig(&aig));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatchInit;

    fn codes(bytes: &[u8]) -> Vec<LintCode> {
        lint_aiger(bytes).codes()
    }

    #[test]
    fn clean_model_is_clean() {
        // Toggling latch with its own literal as the bad property.
        assert_eq!(codes(b"aag 1 0 1 0 0 1\n2 3\n2\n"), vec![]);
    }

    #[test]
    fn constant_true_property() {
        let report = lint_aiger(b"aag 0 0 0 0 0 1\n1\n");
        assert_eq!(report.codes(), vec![LintCode::ConstantProperty]);
        assert_eq!(report.num_errors(), 1);
        assert!(report.diagnostics()[0].message.contains("constant true"));
    }

    #[test]
    fn constant_false_property_is_vacuous() {
        let report = lint_aiger(b"aag 0 0 0 0 0 1\n0\n");
        assert_eq!(report.codes(), vec![LintCode::ConstantProperty]);
        assert!(report.diagnostics()[0].message.contains("vacuous"));
    }

    #[test]
    fn register_free_cone() {
        assert_eq!(
            codes(b"aag 1 1 0 0 0 1\n2\n2\n"),
            vec![LintCode::RegisterFreeCoi]
        );
    }

    #[test]
    fn floating_input_and_dead_latch() {
        assert_eq!(
            codes(b"aag 2 1 1 0 0 1\n2\n4 5\n4\n"),
            vec![LintCode::FloatingInput]
        );
        assert_eq!(
            codes(b"aag 2 0 2 0 0 1\n2 3\n4 5\n2\n"),
            vec![LintCode::DeadLatch]
        );
    }

    #[test]
    fn duplicate_and_aliased_properties() {
        assert_eq!(
            codes(b"aag 1 0 1 0 0 2\n2 3 2\n2\n3\nb0 p\nb1 p\n"),
            vec![LintCode::DuplicateProperty]
        );
        assert_eq!(
            codes(b"aag 1 0 1 0 0 2\n2 3\n2\n2\n"),
            vec![LintCode::AliasedProperty]
        );
    }

    #[test]
    fn reset_violation() {
        assert_eq!(
            codes(b"aag 1 0 1 0 0 1\n2 3 1\n2\n"),
            vec![LintCode::ResetViolation]
        );
    }

    #[test]
    fn non_normalized_ascii_and() {
        // AND `6 2 4` breaks rhs0 >= rhs1.
        assert_eq!(
            codes(b"aag 3 1 1 0 1 1\n2\n4 5\n6\n6 2 4\n"),
            vec![LintCode::NonNormalizedAnd]
        );
    }

    #[test]
    fn unsupported_sections_reported_with_counts() {
        let report = lint_aiger(b"aag 1 0 1 0 0 1 1\n2 3\n2\n0\n");
        assert_eq!(report.codes(), vec![LintCode::UnsupportedSection]);
        assert!(report.diagnostics()[0].message.contains("1 constraint"));
    }

    #[test]
    fn ternary_reset_propagates_constants() {
        let mut n = Netlist::new();
        let x = n.add_input("x");
        let l = n.add_latch("l", LatchInit::Zero);
        n.set_next(l, x);
        // AND(x, l): l is 0 at reset, so the gate is 0 despite the unknown x.
        let g = n.and2(x, l);
        let vals = ternary_reset_values(&n);
        assert_eq!(vals[g.node().index()], Some(false));
        assert_eq!(vals[x.node().index()], None);
        // OR(x, !l): !l is 1 at reset, so the OR is known true.
        // o = !(AND(!x, l)) — the AND is Some(false), so o reads Some(true).
        let o = n.or2(x, !l);
        let vals = ternary_reset_values(&n);
        let read = vals[o.node().index()];
        assert_eq!(read.map(|b| b ^ o.is_inverted()), Some(true));
    }

    #[test]
    fn diagnostics_render_with_code_and_hint() {
        let report = lint_aiger(b"aag 0 0 0 0 0 1\n1\n");
        let line = report.diagnostics()[0].to_string();
        assert!(line.starts_with("error[L001]"), "{line}");
        assert!(line.contains("hint:"), "{line}");
    }

    #[test]
    fn garbage_bytes_lint_clean() {
        // Unparseable input is the parser's problem, not the linter's.
        assert!(lint_aiger(b"not an aiger file").is_clean());
    }
}
