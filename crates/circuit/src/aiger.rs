//! AIGER reading and writing for [`Aig`]s — ASCII (`aag`) and binary (`aig`).
//!
//! Supports the sequential subset of AIGER 1.9 in both encodings: the
//! header, inputs, latches with optional reset values, outputs, **bad-state
//! properties** (`B` lines — the HWMCC property convention), AND gates, and
//! the symbol table. The binary format stores AND gates as delta-encoded
//! varint pairs ([`parse_aig`]/[`write_aig`]); [`parse_aiger`] auto-detects
//! the encoding from the header magic. Invariant-constraint, justice, and
//! fairness sections (`C`/`J`/`F`) are rejected as unsupported rather than
//! silently misread: ignoring them would change the model's semantics.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{Aig, AigLit, LatchInit};

/// Error produced when parsing an AIGER file fails.
///
/// Every error carries the byte offset of the failure — the only position
/// that stays meaningful inside the delta-encoded binary AND section, and
/// the robustness contract the fuzz suite enforces: truncated, bit-flipped,
/// or otherwise adversarial input must yield a positioned error, never a
/// panic. ASCII-attributable failures additionally carry the 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAigerError {
    line: usize,
    offset: usize,
    message: String,
}

impl ParseAigerError {
    fn at_byte(offset: usize, line: usize, message: impl Into<String>) -> ParseAigerError {
        ParseAigerError {
            line,
            offset,
            message: message.into(),
        }
    }

    /// The 1-based line of the error (0 when the failure is not attributable
    /// to a single line, e.g. a section count mismatch noticed at the end).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The byte offset of the failure within the input (the input length
    /// when the problem is that the file ended too early).
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "aiger error at byte {}: {}", self.offset, self.message)
        } else {
            write!(
                f,
                "aiger error at byte {} (line {}): {}",
                self.offset, self.line, self.message
            )
        }
    }
}

impl Error for ParseAigerError {}

/// A parse position — byte offset plus 1-based line — threaded through the
/// section model so errors discovered during assembly (dangling literals,
/// redefined variables) still point at the source bytes that caused them.
#[derive(Clone, Copy, Debug)]
struct Pos {
    offset: usize,
    line: usize,
}

impl Pos {
    fn err(self, message: impl Into<String>) -> ParseAigerError {
        ParseAigerError::at_byte(self.offset, self.line, message)
    }
}

// ---------------------------------------------------------------------------
// Shared section model: both parsers collect these and assemble one way.
// ---------------------------------------------------------------------------

struct LatchLine {
    own_var: usize,
    next_code: usize,
    reset: usize,
    pos: Pos,
}

struct AndLine {
    lhs_var: usize,
    rhs0: usize,
    rhs1: usize,
    pos: Pos,
}

/// Everything both encodings share once their sections are tokenized. Each
/// entry keeps the position of the line (or varint pair) that declared it.
struct Sections {
    input_vars: Vec<(usize, Pos)>,
    latches: Vec<LatchLine>,
    output_codes: Vec<(usize, Pos)>,
    bad_codes: Vec<(usize, Pos)>,
    ands: Vec<AndLine>,
    symbols: HashMap<String, String>,
}

/// Builds the [`Aig`] out of tokenized sections (shared between the `aag`
/// and `aig` readers). AND definitions may arrive in any order in ASCII
/// files, so resolution iterates to a fixed point; well-formed binary files
/// resolve in one pass.
fn assemble(sections: Sections) -> Result<Aig, ParseAigerError> {
    let Sections {
        input_vars,
        latches,
        output_codes,
        bad_codes,
        ands,
        symbols,
    } = sections;
    let mut aig = Aig::new();
    let mut lit_of_var: HashMap<usize, AigLit> = HashMap::new();
    lit_of_var.insert(0, AigLit::FALSE);
    for &(v, pos) in &input_vars {
        let lit = aig.add_input();
        if lit_of_var.insert(v, lit).is_some() {
            return Err(pos.err(format!("variable {v} redefined")));
        }
    }
    for line in &latches {
        let init = match line.reset {
            0 => LatchInit::Zero,
            1 => LatchInit::One,
            r if r == line.own_var * 2 => LatchInit::Free,
            other => {
                return Err(line.pos.err(format!("bad reset {other}")));
            }
        };
        let lit = aig.add_latch(init);
        if lit_of_var.insert(line.own_var, lit).is_some() {
            return Err(line.pos.err(format!("variable {} redefined", line.own_var)));
        }
    }
    // Resolve AND gates; AIGER guarantees rhs < lhs in well-formed files, but
    // be liberal: iterate until a fixed point, then fail on leftovers.
    let mut remaining: Vec<&AndLine> = ands.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|line| {
            let r0 = lit_of_var.get(&(line.rhs0 / 2)).copied();
            let r1 = lit_of_var.get(&(line.rhs1 / 2)).copied();
            match (r0, r1) {
                (Some(a), Some(b)) => {
                    let a = if line.rhs0 % 2 == 1 { !a } else { a };
                    let b = if line.rhs1 % 2 == 1 { !b } else { b };
                    let lit = aig.and2(a, b);
                    lit_of_var.insert(line.lhs_var, lit);
                    false
                }
                _ => true,
            }
        });
        if remaining.len() == before {
            return Err(remaining[0].pos.err("cyclic or dangling AND definitions"));
        }
    }
    let resolve = |code: usize, pos: Pos| -> Result<AigLit, ParseAigerError> {
        let base = lit_of_var
            .get(&(code / 2))
            .copied()
            .ok_or_else(|| pos.err(format!("undefined literal {code}")))?;
        Ok(if code % 2 == 1 { !base } else { base })
    };
    for line in &latches {
        let own = lit_of_var[&line.own_var];
        aig.set_next(own, resolve(line.next_code, line.pos)?);
    }
    for (idx, &(code, pos)) in output_codes.iter().enumerate() {
        let name = symbols
            .get(&format!("o{idx}"))
            .cloned()
            .unwrap_or_else(|| format!("o{idx}"));
        let lit = resolve(code, pos)?;
        aig.add_output(&name, lit);
    }
    for (idx, &(code, pos)) in bad_codes.iter().enumerate() {
        let name = symbols
            .get(&format!("b{idx}"))
            .cloned()
            .unwrap_or_else(|| format!("b{idx}"));
        let lit = resolve(code, pos)?;
        aig.add_bad(&name, lit);
    }
    Ok(aig)
}

/// Parsed `M I L O A [B [C [J [F]]]]` counts of either header.
struct Header {
    m: usize,
    i: usize,
    l: usize,
    o: usize,
    a: usize,
    b: usize,
}

/// Every header count is capped far below `usize::MAX` so downstream
/// arithmetic — literal codes `2v + 1`, the binary `M = I + L + A` check,
/// the implicit binary lhs `2 * (I + L + 1 + idx)` — can never overflow no
/// matter what an adversarial header declares.
const MAX_HEADER_COUNT: usize = usize::MAX / 8;

fn parse_header(line: &str, magic: &str) -> Result<Header, ParseAigerError> {
    let at_header = |message: String| ParseAigerError::at_byte(0, 1, message);
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 6 || fields.len() > 10 || fields[0] != magic {
        return Err(at_header(format!(
            "malformed header (want `{magic} M I L O A [B [C [J [F]]]]`)"
        )));
    }
    let num = |idx: usize| -> Result<usize, ParseAigerError> {
        match fields.get(idx) {
            None => Ok(0),
            Some(s) => {
                let n: usize = s
                    .parse()
                    .map_err(|_| at_header(format!("bad number `{s}`")))?;
                if n > MAX_HEADER_COUNT {
                    return Err(at_header(format!("header count {n} is too large")));
                }
                Ok(n)
            }
        }
    };
    let header = Header {
        m: num(1)?,
        i: num(2)?,
        l: num(3)?,
        o: num(4)?,
        a: num(5)?,
        b: num(6)?,
    };
    for (idx, section) in [(7, "constraint"), (8, "justice"), (9, "fairness")] {
        if num(idx)? != 0 {
            return Err(at_header(format!("{section} sections are not supported")));
        }
    }
    Ok(header)
}

// ---------------------------------------------------------------------------
// ASCII (`aag`)
// ---------------------------------------------------------------------------

/// Renumbering shared by both writers: inputs first, then latches, then ANDs
/// in index order (which is topological, so AND fanins always get smaller
/// variables — the invariant the binary delta encoding requires).
fn writer_numbering(aig: &Aig) -> (HashMap<usize, usize>, Vec<usize>) {
    let mut var_of: HashMap<usize, usize> = HashMap::new();
    var_of.insert(0, 0); // constant
    let mut next_var = 1;
    for &id in aig.inputs() {
        var_of.insert(id, next_var);
        next_var += 1;
    }
    for &id in aig.latches() {
        var_of.insert(id, next_var);
        next_var += 1;
    }
    let mut and_nodes: Vec<usize> = Vec::new();
    for node in 0..aig.num_nodes() {
        if aig.and_fanins(node).is_some() {
            var_of.insert(node, next_var);
            and_nodes.push(node);
            next_var += 1;
        }
    }
    (var_of, and_nodes)
}

/// Symbol-table lines for named outputs and bad-state properties (shared by
/// both writers). Every entry is written, including default `o<i>`/`b<i>`
/// names, so re-serialization is position-independent and byte-stable.
fn symbol_table(aig: &Aig) -> String {
    let mut out = String::new();
    for (i, (name, _)) in aig.outputs().iter().enumerate() {
        out.push_str(&format!("o{i} {name}\n"));
    }
    for (i, (name, _)) in aig.bads().iter().enumerate() {
        out.push_str(&format!("b{i} {name}\n"));
    }
    out
}

/// Writes an [`Aig`] as an ASCII AIGER (`aag`) string, including a symbol
/// table for the outputs and bad-state properties. The `B` count appears in
/// the header only when the AIG declares bad-state properties, so AIGER 1.0
/// consumers keep reading property-free files.
///
/// Latch resets follow AIGER 1.9: `0`, `1`, or the latch's own literal for
/// an uninitialized ([`LatchInit::Free`]) latch.
///
/// # Panics
///
/// Panics if some latch has no next-state function.
pub fn write_aag(aig: &Aig) -> String {
    let (var_of, and_nodes) = writer_numbering(aig);
    let lit_of = |lit: AigLit| -> usize { var_of[&lit.node()] * 2 + lit.is_inverted() as usize };

    let m = var_of.len() - 1;
    let mut out = format!(
        "aag {m} {} {} {} {}",
        aig.inputs().len(),
        aig.latches().len(),
        aig.outputs().len(),
        and_nodes.len()
    );
    if !aig.bads().is_empty() {
        out.push_str(&format!(" {}", aig.bads().len()));
    }
    out.push('\n');
    for &id in aig.inputs() {
        out.push_str(&format!("{}\n", var_of[&id] * 2));
    }
    for &id in aig.latches() {
        let next = aig.next_of(id).expect("latch connected");
        let own = var_of[&id] * 2;
        let reset = match aig.init_of(id).unwrap_or(LatchInit::Zero) {
            LatchInit::Zero => 0,
            LatchInit::One => 1,
            LatchInit::Free => own,
        };
        if reset == 0 {
            out.push_str(&format!("{own} {}\n", lit_of(next)));
        } else {
            out.push_str(&format!("{own} {} {reset}\n", lit_of(next)));
        }
    }
    for (_, lit) in aig.outputs() {
        out.push_str(&format!("{}\n", lit_of(*lit)));
    }
    for (_, lit) in aig.bads() {
        out.push_str(&format!("{}\n", lit_of(*lit)));
    }
    for &node in &and_nodes {
        let (a, b) = aig.and_fanins(node).expect("node is an AND");
        // AIGER convention: lhs > rhs0 >= rhs1.
        let (mut r0, mut r1) = (lit_of(a), lit_of(b));
        if r0 < r1 {
            std::mem::swap(&mut r0, &mut r1);
        }
        out.push_str(&format!("{} {r0} {r1}\n", var_of[&node] * 2));
    }
    out.push_str(&symbol_table(aig));
    out
}

/// Parses an ASCII AIGER (`aag`) string into an [`Aig`].
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers, out-of-range literals,
/// counts that do not match the header, or AND definitions that form a cycle.
pub fn parse_aag(text: &str) -> Result<Aig, ParseAigerError> {
    // Line iterator that tracks the byte offset of every line start, so each
    // diagnostic can point into the raw input.
    let mut byte = 0usize;
    let mut lines = text.split_inclusive('\n').enumerate().map(move |(i, raw)| {
        let pos = Pos {
            offset: byte,
            line: i + 1,
        };
        byte += raw.len();
        (pos, raw.strip_suffix('\n').unwrap_or(raw))
    });
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseAigerError::at_byte(0, 1, "empty file"))?;
    let header = parse_header(header, "aag")?;
    let Header { m, i, l, o, a, b } = header;
    let parse_num = |s: &str, pos: Pos| -> Result<usize, ParseAigerError> {
        s.parse().map_err(|_| pos.err(format!("bad number `{s}`")))
    };

    // Cap pre-allocation: the header is untrusted, so a declared count buys
    // at most a modest reservation up front.
    let cap = |n: usize| n.min(1 << 16);
    let mut sections = Sections {
        input_vars: Vec::with_capacity(cap(i)),
        latches: Vec::with_capacity(cap(l)),
        output_codes: Vec::with_capacity(cap(o)),
        bad_codes: Vec::with_capacity(cap(b)),
        ands: Vec::with_capacity(cap(a)),
        symbols: HashMap::new(),
    };

    let mut section_counts = [i, l, o, b, a];
    let mut section = 0usize;
    for (pos, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line == "c" {
            break; // comment section: ignore the rest
        }
        // Symbol table entries.
        if line.starts_with('i')
            || line.starts_with('l')
            || line.starts_with('o')
            || line.starts_with('b')
        {
            if let Some((key, name)) = line.split_once(' ') {
                if key.len() >= 2 && key[1..].chars().all(|c| c.is_ascii_digit()) {
                    sections.symbols.insert(key.to_string(), name.to_string());
                    continue;
                }
            }
        }
        while section < 5 && section_counts[section] == 0 {
            section += 1;
        }
        if section == 5 {
            return Err(pos.err("unexpected extra line"));
        }
        section_counts[section] -= 1;
        let nums: Vec<usize> = {
            let mut v = Vec::new();
            for tok in line.split_whitespace() {
                v.push(parse_num(tok, pos)?);
            }
            v
        };
        let check_lit = |code: usize, pos: Pos| -> Result<usize, ParseAigerError> {
            if code / 2 > m {
                Err(pos.err(format!("literal {code} exceeds M")))
            } else {
                Ok(code)
            }
        };
        match section {
            0 => {
                if nums.len() != 1 || !nums[0].is_multiple_of(2) || nums[0] == 0 {
                    return Err(pos.err("malformed input line"));
                }
                sections
                    .input_vars
                    .push((check_lit(nums[0], pos)? / 2, pos));
            }
            1 => {
                if !(nums.len() == 2 || nums.len() == 3)
                    || !nums[0].is_multiple_of(2)
                    || nums[0] == 0
                {
                    return Err(pos.err("malformed latch line"));
                }
                sections.latches.push(LatchLine {
                    own_var: check_lit(nums[0], pos)? / 2,
                    next_code: check_lit(nums[1], pos)?,
                    reset: if nums.len() == 3 { nums[2] } else { 0 },
                    pos,
                });
            }
            2 | 3 => {
                if nums.len() != 1 {
                    return Err(pos.err(if section == 2 {
                        "malformed output line"
                    } else {
                        "malformed bad-state line"
                    }));
                }
                let code = check_lit(nums[0], pos)?;
                if section == 2 {
                    sections.output_codes.push((code, pos));
                } else {
                    sections.bad_codes.push((code, pos));
                }
            }
            4 => {
                if nums.len() != 3 || !nums[0].is_multiple_of(2) || nums[0] == 0 {
                    return Err(pos.err("malformed and line"));
                }
                sections.ands.push(AndLine {
                    lhs_var: check_lit(nums[0], pos)? / 2,
                    rhs0: check_lit(nums[1], pos)?,
                    rhs1: check_lit(nums[2], pos)?,
                    pos,
                });
            }
            _ => unreachable!(),
        }
    }
    if section_counts.iter().any(|&c| c != 0) {
        return Err(ParseAigerError::at_byte(
            text.len(),
            0,
            "fewer lines than the header declares",
        ));
    }
    assemble(sections)
}

// ---------------------------------------------------------------------------
// Binary (`aig`)
// ---------------------------------------------------------------------------

/// Appends an unsigned delta in the AIGER varint encoding: 7 bits per byte,
/// high bit set on every byte but the last.
fn push_delta(out: &mut Vec<u8>, mut delta: usize) {
    while delta >= 0x80 {
        out.push((delta as u8 & 0x7f) | 0x80);
        delta >>= 7;
    }
    out.push(delta as u8);
}

/// Writes an [`Aig`] in the binary AIGER (`aig`) format: latch/output/bad
/// lines stay ASCII, AND gates become delta-encoded varint pairs, and the
/// symbol table follows the binary section.
///
/// The writer renumbers nodes as inputs, latches, then ANDs in index order;
/// AIG indices are topological, so every AND's `lhs` exceeds both fanin
/// literals, which is exactly what the delta encoding requires.
///
/// # Panics
///
/// Panics if some latch has no next-state function.
pub fn write_aig(aig: &Aig) -> Vec<u8> {
    let (var_of, and_nodes) = writer_numbering(aig);
    let lit_of = |lit: AigLit| -> usize { var_of[&lit.node()] * 2 + lit.is_inverted() as usize };

    let m = var_of.len() - 1;
    let mut header = format!(
        "aig {m} {} {} {} {}",
        aig.inputs().len(),
        aig.latches().len(),
        aig.outputs().len(),
        and_nodes.len()
    );
    if !aig.bads().is_empty() {
        header.push_str(&format!(" {}", aig.bads().len()));
    }
    header.push('\n');
    let mut out = header.into_bytes();
    for &id in aig.latches() {
        let next = aig.next_of(id).expect("latch connected");
        let own = var_of[&id] * 2;
        let reset = match aig.init_of(id).unwrap_or(LatchInit::Zero) {
            LatchInit::Zero => 0,
            LatchInit::One => 1,
            LatchInit::Free => own,
        };
        if reset == 0 {
            out.extend_from_slice(format!("{}\n", lit_of(next)).as_bytes());
        } else {
            out.extend_from_slice(format!("{} {reset}\n", lit_of(next)).as_bytes());
        }
    }
    for (_, lit) in aig.outputs() {
        out.extend_from_slice(format!("{}\n", lit_of(*lit)).as_bytes());
    }
    for (_, lit) in aig.bads() {
        out.extend_from_slice(format!("{}\n", lit_of(*lit)).as_bytes());
    }
    for &node in &and_nodes {
        let (a, b) = aig.and_fanins(node).expect("node is an AND");
        let lhs = var_of[&node] * 2;
        let (mut r0, mut r1) = (lit_of(a), lit_of(b));
        if r0 < r1 {
            std::mem::swap(&mut r0, &mut r1);
        }
        debug_assert!(lhs > r0 && r0 >= r1, "writer numbering is topological");
        push_delta(&mut out, lhs - r0);
        push_delta(&mut out, r0 - r1);
    }
    out.extend_from_slice(symbol_table(aig).as_bytes());
    out
}

/// Byte cursor over a binary AIGER file, tracking offset and line for error
/// positions.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor {
            bytes,
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseAigerError {
        ParseAigerError::at_byte(self.pos, self.line, message)
    }

    /// The current position as a [`Pos`], recorded into section entries so
    /// assembly-stage errors can point back at their source bytes.
    fn mark(&self) -> Pos {
        Pos {
            offset: self.pos,
            line: self.line,
        }
    }

    /// Reads one `\n`-terminated ASCII line (without the terminator).
    fn ascii_line(&mut self) -> Result<&'a str, ParseAigerError> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        if self.pos == self.bytes.len() {
            return Err(self.error("unexpected end of file inside an ASCII section"));
        }
        let line = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("non-UTF-8 bytes in an ASCII section"))?;
        self.pos += 1; // consume the newline
        self.line += 1;
        Ok(line)
    }

    /// Decodes one varint delta of the binary AND section.
    fn delta(&mut self) -> Result<usize, ParseAigerError> {
        let mut value = 0usize;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = self.bytes.get(self.pos) else {
                return Err(self.error("unexpected end of file inside the binary AND section"));
            };
            self.pos += 1;
            if shift >= usize::BITS {
                return Err(self.error("varint delta overflows"));
            }
            value |= ((byte & 0x7f) as usize) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

/// Parses a binary AIGER (`aig`) file into an [`Aig`].
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers, inconsistent counts
/// (`M ≠ I + L + A`), out-of-range literals, truncated varints, or deltas
/// that break the `lhs > rhs0 ≥ rhs1` ordering the format guarantees.
/// Errors inside the binary AND section report the byte offset of the
/// offending varint.
pub fn parse_aig(bytes: &[u8]) -> Result<Aig, ParseAigerError> {
    let mut cur = Cursor::new(bytes);
    if bytes.is_empty() {
        return Err(ParseAigerError::at_byte(0, 1, "empty file"));
    }
    let header = parse_header(cur.ascii_line()?, "aig")?;
    let Header { m, i, l, o, a, b } = header;
    if m != i + l + a {
        return Err(ParseAigerError::at_byte(
            0,
            1,
            format!("binary header requires M = I + L + A, got {m} != {i} + {l} + {a}"),
        ));
    }
    let parse_num = |cur: &Cursor<'_>, s: &str| -> Result<usize, ParseAigerError> {
        s.parse()
            .map_err(|_| ParseAigerError::at_byte(cur.pos, cur.line, format!("bad number `{s}`")))
    };
    let check_lit = |cur: &Cursor<'_>, code: usize| -> Result<usize, ParseAigerError> {
        if code / 2 > m {
            Err(ParseAigerError::at_byte(
                cur.pos,
                cur.line,
                format!("literal {code} exceeds M"),
            ))
        } else {
            Ok(code)
        }
    };

    let cap = |n: usize| n.min(1 << 16);
    let header_pos = Pos { offset: 0, line: 1 };
    let mut sections = Sections {
        // Binary numbering is implicit and dense: inputs are variables
        // 1..=I, latches I+1..=I+L, ANDs I+L+1..=M. Implicit inputs have no
        // bytes of their own, so they all point at the header.
        input_vars: (1..=i).map(|v| (v, header_pos)).collect(),
        latches: Vec::with_capacity(cap(l)),
        output_codes: Vec::with_capacity(cap(o)),
        bad_codes: Vec::with_capacity(cap(b)),
        ands: Vec::with_capacity(cap(a)),
        symbols: HashMap::new(),
    };
    for j in 0..l {
        let own_var = i + 1 + j;
        let pos = cur.mark();
        let line = cur.ascii_line()?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.is_empty() || toks.len() > 2 {
            return Err(cur.error("malformed latch line"));
        }
        sections.latches.push(LatchLine {
            own_var,
            next_code: check_lit(&cur, parse_num(&cur, toks[0])?)?,
            reset: if toks.len() == 2 {
                parse_num(&cur, toks[1])?
            } else {
                0
            },
            pos,
        });
    }
    for _ in 0..o {
        let pos = cur.mark();
        let line = cur.ascii_line()?;
        let code = check_lit(&cur, parse_num(&cur, line.trim())?)?;
        sections.output_codes.push((code, pos));
    }
    for _ in 0..b {
        let pos = cur.mark();
        let line = cur.ascii_line()?;
        let code = check_lit(&cur, parse_num(&cur, line.trim())?)?;
        sections.bad_codes.push((code, pos));
    }
    for idx in 0..a {
        let lhs = 2 * (i + l + 1 + idx);
        let pos = cur.mark();
        let delta0 = cur.delta()?;
        if delta0 == 0 || delta0 > lhs {
            return Err(cur.error(format!("delta {delta0} breaks lhs > rhs0 at gate {idx}")));
        }
        let rhs0 = lhs - delta0;
        let delta1 = cur.delta()?;
        if delta1 > rhs0 {
            return Err(cur.error(format!("delta {delta1} breaks rhs0 >= rhs1 at gate {idx}")));
        }
        sections.ands.push(AndLine {
            lhs_var: lhs / 2,
            rhs0,
            rhs1: rhs0 - delta1,
            pos,
        });
    }
    // Symbol table and comments (both optional, both ASCII).
    while cur.pos < cur.bytes.len() {
        let line = cur.ascii_line()?;
        let trimmed = line.trim();
        if trimmed == "c" {
            break;
        }
        if trimmed.is_empty() {
            continue;
        }
        match trimmed.split_once(' ') {
            Some((key, name))
                if key.len() >= 2
                    && matches!(key.as_bytes()[0], b'i' | b'l' | b'o' | b'b')
                    && key[1..].chars().all(|c| c.is_ascii_digit()) =>
            {
                sections.symbols.insert(key.to_string(), name.to_string());
            }
            _ => return Err(cur.error("unexpected line after the binary AND section")),
        }
    }
    assemble(sections)
}

/// Parses an AIGER file in either encoding, auto-detected from the header
/// magic (`aag` → ASCII, `aig` → binary).
///
/// # Errors
///
/// Returns [`ParseAigerError`] if the magic is neither, or from the
/// underlying parser.
pub fn parse_aiger(bytes: &[u8]) -> Result<Aig, ParseAigerError> {
    if bytes.starts_with(b"aig ") {
        parse_aig(bytes)
    } else if bytes.starts_with(b"aag ") {
        let text = std::str::from_utf8(bytes).map_err(|e| {
            let at = e.valid_up_to();
            let line = bytes[..at].iter().filter(|&&c| c == b'\n').count() + 1;
            ParseAigerError::at_byte(at, line, "aag file is not valid UTF-8")
        })?;
        parse_aag(text)
    } else {
        Err(ParseAigerError::at_byte(
            0,
            1,
            "unrecognized header (want `aag` or `aig` magic)",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LatchInit, Netlist};

    fn behaviourally_equal(a: &Aig, b: &Aig, steps: usize) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.latches().len(), b.latches().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        assert_eq!(a.bads().len(), b.bads().len());
        let init = |aig: &Aig| -> Vec<bool> {
            aig.latches()
                .iter()
                .map(|&l| matches!(aig.init_of(l), Some(LatchInit::One)))
                .collect()
        };
        let mut sa = init(a);
        let mut sb = init(b);
        for step in 0..steps {
            let inputs: Vec<bool> = (0..a.inputs().len()).map(|k| (step + k) % 3 == 0).collect();
            let va = a.eval_frame(&sa, &inputs);
            let vb = b.eval_frame(&sb, &inputs);
            for ((_, la), (_, lb)) in a.outputs().iter().zip(b.outputs()) {
                assert_eq!(
                    la.apply(va[la.node()]),
                    lb.apply(vb[lb.node()]),
                    "output diverged at step {step}"
                );
            }
            for ((_, la), (_, lb)) in a.bads().iter().zip(b.bads()) {
                assert_eq!(
                    la.apply(va[la.node()]),
                    lb.apply(vb[lb.node()]),
                    "bad property diverged at step {step}"
                );
            }
            sa = a
                .latches()
                .iter()
                .map(|&l| {
                    let nx = a.next_of(l).unwrap();
                    nx.apply(va[nx.node()])
                })
                .collect();
            sb = b
                .latches()
                .iter()
                .map(|&l| {
                    let nx = b.next_of(l).unwrap();
                    nx.apply(vb[nx.node()])
                })
                .collect();
        }
    }

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let l = aig.add_latch(LatchInit::One);
        let g = aig.xor2(a, l);
        let h = aig.and2(g, !b);
        aig.set_next(l, h);
        aig.add_output("out", g);
        aig
    }

    fn sample_aig_with_bads() -> Aig {
        let mut aig = sample_aig();
        let l = aig.latches()[0];
        let land = aig.and2(AigLit::new(l, false), aig.outputs()[0].1);
        aig.add_bad("never_both", land);
        aig.add_bad("latch_high", AigLit::new(l, false));
        aig
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let aig = sample_aig();
        let text = write_aag(&aig);
        let back = parse_aag(&text).unwrap();
        behaviourally_equal(&aig, &back, 16);
        // Output name carried through the symbol table.
        assert_eq!(back.outputs()[0].0, "out");
    }

    #[test]
    fn roundtrip_from_netlist() {
        let mut n = Netlist::new();
        let x = n.add_input("x");
        let l0 = n.add_latch("l0", LatchInit::Zero);
        let l1 = n.add_latch("l1", LatchInit::Free);
        let g = n.mux(x, l0, !l1);
        n.set_next(l0, g);
        n.set_next(l1, !g);
        n.add_output("g", g);
        let lowered = Aig::from_netlist(&n);
        let text = write_aag(&lowered.aig);
        let back = parse_aag(&text).unwrap();
        behaviourally_equal(&lowered.aig, &back, 12);
        // Free latch reset survives the roundtrip.
        let free_latches = back
            .latches()
            .iter()
            .filter(|&&l| matches!(back.init_of(l), Some(LatchInit::Free)))
            .count();
        assert_eq!(free_latches, 1);
    }

    #[test]
    fn parses_minimal_file() {
        // Single AND of two inputs.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 4 2\n";
        let aig = parse_aag(text).unwrap();
        assert_eq!(aig.inputs().len(), 2);
        assert_eq!(aig.num_ands(), 1);
        let vals = aig.eval_frame(&[], &[true, true]);
        let (_, out) = &aig.outputs()[0];
        assert!(out.apply(vals[out.node()]));
    }

    #[test]
    fn parses_constant_output() {
        let text = "aag 0 0 0 1 0\n1\n";
        let aig = parse_aag(text).unwrap();
        assert_eq!(aig.outputs()[0].1, AigLit::TRUE);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_aag("aig 1 1 0 0 0\n2\n").is_err());
        assert!(parse_aag("aag 1 1\n").is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let err = parse_aag("aag 2 2 0 0 0\n2\n").unwrap_err();
        assert!(err.to_string().contains("fewer lines"));
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let err = parse_aag("aag 1 0 0 1 0\n99\n").unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn comment_section_is_ignored() {
        let text = "aag 1 1 0 1 0\n2\n2\nc\nanything goes here\n";
        let aig = parse_aag(text).unwrap();
        assert_eq!(aig.inputs().len(), 1);
    }

    #[test]
    fn bad_section_roundtrips_with_names() {
        let aig = sample_aig_with_bads();
        let text = write_aag(&aig);
        // The header grows a B column and the symbol table names the bads.
        assert!(text.starts_with("aag "));
        assert!(text.contains("b0 never_both\n"));
        assert!(text.contains("b1 latch_high\n"));
        let back = parse_aag(&text).unwrap();
        assert_eq!(back.bads().len(), 2);
        assert_eq!(back.bads()[0].0, "never_both");
        assert_eq!(back.bads()[1].0, "latch_high");
        behaviourally_equal(&aig, &back, 16);
    }

    #[test]
    fn parses_bad_lines_without_symbols() {
        // One latch toggling, its own literal as a bad property.
        let text = "aag 1 0 1 0 0 1\n2 3\n2\n";
        let aig = parse_aag(text).unwrap();
        assert_eq!(aig.bads().len(), 1);
        assert_eq!(aig.bads()[0].0, "b0");
    }

    #[test]
    fn rejects_unsupported_sections() {
        // C (constraint) count of 1.
        let err = parse_aag("aag 1 0 1 0 0 0 1\n2 3\n2\n").unwrap_err();
        assert!(err.to_string().contains("not supported"));
    }

    #[test]
    fn binary_roundtrip_preserves_behaviour() {
        let aig = sample_aig_with_bads();
        let bytes = write_aig(&aig);
        assert!(bytes.starts_with(b"aig "));
        let back = parse_aig(&bytes).unwrap();
        behaviourally_equal(&aig, &back, 16);
        assert_eq!(back.outputs()[0].0, "out");
        assert_eq!(back.bads()[0].0, "never_both");
    }

    #[test]
    fn binary_and_ascii_agree() {
        let aig = sample_aig_with_bads();
        let via_ascii = parse_aag(&write_aag(&aig)).unwrap();
        let via_binary = parse_aig(&write_aig(&aig)).unwrap();
        behaviourally_equal(&via_ascii, &via_binary, 16);
        // Same renumbering on both paths: re-serializing to ASCII from either
        // side yields identical bytes.
        assert_eq!(write_aag(&via_ascii), write_aag(&via_binary));
    }

    #[test]
    fn parse_aiger_auto_detects() {
        let aig = sample_aig();
        let ascii = write_aag(&aig);
        let binary = write_aig(&aig);
        behaviourally_equal(
            &parse_aiger(ascii.as_bytes()).unwrap(),
            &parse_aiger(&binary).unwrap(),
            12,
        );
        assert!(parse_aiger(b"garbage").is_err());
    }

    #[test]
    fn binary_errors_carry_byte_offsets() {
        // Truncate inside the AND section: the error must point past the
        // ASCII prefix, at the byte where the varint ran out.
        let aig = sample_aig();
        let bytes = write_aig(&aig);
        let truncated = &bytes[..bytes.len().min(14)];
        let err = parse_aig(truncated).unwrap_err();
        assert!(
            err.offset() > 0 && err.offset() <= truncated.len(),
            "binary error must point into the input, got byte {}",
            err.offset()
        );
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn ascii_errors_carry_byte_offsets() {
        // The malformed latch line starts right after "aag 1 0 1 0 0\n".
        let text = "aag 1 0 1 0 0\n2 bogus\n";
        let err = parse_aag(text).unwrap_err();
        assert_eq!(err.offset(), 14);
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn assembly_errors_point_at_the_offending_line() {
        // Output literal 4 names a variable the file never defines; the
        // error surfaces during assembly but must cite the output line,
        // which starts at byte 16 ("aag 2 1 0 1 0\n2\n").
        let err = parse_aag("aag 2 1 0 1 0\n2\n4\n").unwrap_err();
        assert!(err.to_string().contains("undefined literal"));
        assert_eq!(err.offset(), 16);
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn truncation_error_points_at_end_of_file() {
        let text = "aag 2 2 0 0 0\n2\n";
        let err = parse_aag(text).unwrap_err();
        assert!(err.to_string().contains("fewer lines"));
        assert_eq!(err.offset(), text.len());
    }

    #[test]
    fn invalid_utf8_error_points_at_first_bad_byte() {
        let mut bytes = b"aag 1 0 1 0 0 1\n2 3\n2\n".to_vec();
        bytes[17] = 0xff;
        let err = parse_aiger(&bytes).unwrap_err();
        assert!(err.to_string().contains("UTF-8"));
        assert_eq!(err.offset(), 17);
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn oversized_header_counts_are_rejected() {
        let text = format!("aag {0} {0} 0 0 0\n", usize::MAX / 2);
        let err = parse_aag(&text).unwrap_err();
        assert!(err.to_string().contains("too large"));
    }

    #[test]
    fn binary_rejects_inconsistent_header() {
        // M must equal I + L + A in the binary format.
        let err = parse_aig(b"aig 5 2 0 1 1\n6\n").unwrap_err();
        assert!(err.to_string().contains("M = I + L + A"));
    }

    #[test]
    fn binary_rejects_breaking_deltas() {
        // Header: M=1 I=0 L=0 O=0 A=1 → single AND with lhs literal 2.
        // delta0 = 0 would make rhs0 == lhs.
        let err = parse_aig(b"aig 1 0 0 0 1\n\x00\x00").unwrap_err();
        assert!(err.to_string().contains("lhs > rhs0"));
        assert!(err.offset() >= 14, "must point into the AND section");
    }
}
